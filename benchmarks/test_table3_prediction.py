"""Bench T3 — Table III: degradation-prediction RMSE / error rates.

Paper: RMSE 0.216 / 0.114 / 0.129 (error 10.8% / 5.7% / 6.4%) with
Group 1 the hardest to predict.
"""

from repro.experiments import table3_prediction


def test_table3_prediction(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(table3_prediction.run, args=(bench_report,),
                                rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["hardest"] == "group1"
    for group in ("group1", "group2", "group3"):
        assert result.data[group]["error_rate"] < 0.15
