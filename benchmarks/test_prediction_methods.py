"""Bench A3 — extension: alternative degradation predictors.

Paper Section VI future work: "test more prediction methods".  Target
shape: the nonlinear methods (tree, k-NN) beat the linear baseline,
because the signature targets are polynomial in time.
"""

from repro.experiments import prediction_methods


def test_prediction_methods(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(prediction_methods.run,
                                args=(bench_report,), rounds=1, iterations=1)
    save_artifact(result)
    errors = result.data["errors"]
    nonlinear_wins = sum(
        min(m["regression_tree"], m["knn_5"]) <= m["ridge_linear"]
        for m in errors.values()
    )
    assert nonlinear_wins >= 2
