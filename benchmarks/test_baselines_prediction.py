"""Bench B1 — classical detector baselines (Section II-C context).

Paper: vendor thresholds achieve only 3-10% FDR (at ~0.1% FAR);
statistical detectors (rank-sum, Bayesian) detect far more.
"""

from repro.experiments import baselines_prediction


def test_baselines_prediction(benchmark, bench_fleet, save_artifact):
    result = benchmark.pedantic(baselines_prediction.run,
                                args=(bench_fleet,), rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["ordering_holds"]
    assert result.data["vendor_threshold"]["far"] < 0.05
