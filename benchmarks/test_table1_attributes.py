"""Bench T1 — Table I: selected SMART attributes."""

from repro.experiments import table1_attributes


def test_table1_attributes(benchmark, save_artifact):
    result = benchmark.pedantic(table1_attributes.run, rounds=3, iterations=1)
    save_artifact(result)
    assert result.data["n_attributes"] == 12
