"""Bench F5 — Figure 5: centroid failure records.

Paper: the G2 centroid shows the most uncorrectable errors, the G3
centroid the most reallocated sectors, the G1 centroid looks normal.
"""

from repro.core.taxonomy import FailureType
from repro.experiments import fig05_centroids


def test_fig05_centroids(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig05_centroids.run, args=(bench_report,),
                                rounds=3, iterations=1)
    save_artifact(result)
    values = result.data["centroid_values"]
    assert values[FailureType.BAD_SECTOR]["RUE"] == min(
        v["RUE"] for v in values.values()
    )
    assert values[FailureType.HEAD]["R-RSC"] == max(
        v["R-RSC"] for v in values.values()
    )
