"""Tier-2 determinism gate for the parallel experiment runner.

The acceptance bar for the ``--jobs`` fan-out is byte-identity: the
rendered document of ``repro-experiments --all --jobs 4`` must match a
serial run exactly, at any scale.  This test runs both through the real
CLI (fresh interpreters, so each run builds its own memoized fleet) at
a reduced fleet size and compares the ``--output`` files byte for byte.
"""

import os
import subprocess
import sys

import pytest

_SCALE = ["--n-drives", "1500", "--seed", "7"]


def _run_cli(extra, output_path):
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--all",
         "--output", str(output_path)] + _SCALE + extra,
        capture_output=True, text=True, env=env,
    )


@pytest.mark.tier2
def test_all_jobs4_output_identical_to_serial(tmp_path):
    serial_path = tmp_path / "serial.txt"
    parallel_path = tmp_path / "jobs4.txt"

    serial = _run_cli([], serial_path)
    assert serial.returncode == 0, serial.stderr[-2000:]
    parallel = _run_cli(["--jobs", "4"], parallel_path)
    assert parallel.returncode == 0, parallel.stderr[-2000:]

    assert serial_path.read_bytes() == parallel_path.read_bytes()

    # stdout matches too, once the (inherently run-specific) duration
    # lines and the differing --output paths are stripped.
    def stable_lines(text):
        return [line for line in text.splitlines()
                if "finished in" not in line
                and "results written to" not in line]

    assert stable_lines(serial.stdout) == stable_lines(parallel.stdout)
