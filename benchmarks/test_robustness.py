"""Bench A7 — extension: categorization robustness across fleets.

Target shape: high mean accuracy and a tight logical-share spread over
independently seeded fleets.
"""

from repro.experiments import robustness


def test_robustness(benchmark, save_artifact):
    result = benchmark.pedantic(robustness.run, rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["mean_accuracy"] >= 0.95
    assert result.data["min_accuracy"] >= 0.9
    shares = result.data["logical_shares"]
    assert max(shares) - min(shares) < 0.15
