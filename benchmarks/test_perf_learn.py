"""Shadow-scoring benchmarks: the cost of running two bundles at once.

A shadow run scores every block twice — once per bundle — so its floor
is 2x single-bundle scoring.  The pinned contract: the divergence
bookkeeping (confusion bincount, stage deltas, alert-delta tallies) on
top of that floor stays cheap enough that shadow throughput is within
**2.2x** of a single :class:`~repro.serve.scorer.StreamScorer` over the
same blocked stream.  Both throughputs land in
``benchmarks/output/perf_learn.json``, where
``scripts/compare_bench.py`` pins them against the committed baseline
via its ``*samples_per_s`` rule.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_environment
from repro.core.serialize import canonical_json_dumps
from repro.learn.shadow import ShadowScorer
from repro.serve.bundle import build_bundle, stamp_lineage
from repro.serve.scorer import StreamScorer

#: Samples per block — the daemon-typical ingest batch size.
BLOCK_SIZE = 256


def _best_of(fn, repeat=3):
    """Min over ``repeat`` calls of a fn that returns elapsed seconds."""
    return min(fn() for _ in range(repeat))


@pytest.fixture(scope="module")
def learn_bundles(bench_report):
    """A champion and a lineage-stamped challenger over the same models.

    The shadow tax is per-sample scoring work, not model content, so a
    re-stamped copy of the champion measures the same cost a refit
    challenger would — without paying a second pipeline run here.
    """
    champion = build_bundle(bench_report)
    return champion, stamp_lineage(champion, champion)


@pytest.fixture(scope="module")
def blocked_stream(bench_fleet):
    """~200 drives of hourly samples cut into daemon-sized blocks."""
    dataset = bench_fleet.dataset
    profiles = dataset.failed_profiles[:40] + dataset.good_profiles[:160]
    serials, hours, rows = [], [], []
    for profile in profiles:
        for hour, row in zip(profile.hours, profile.matrix):
            serials.append(profile.serial)
            hours.append(int(hour))
            rows.append(np.asarray(row, dtype=np.float64))
    matrix = np.vstack(rows)
    return [(serials[i:i + BLOCK_SIZE], hours[i:i + BLOCK_SIZE],
             matrix[i:i + BLOCK_SIZE])
            for i in range(0, len(serials), BLOCK_SIZE)]


def test_shadow_champion_stream_is_byte_identical(learn_bundles,
                                                  blocked_stream):
    """Cheap tier: shadowing observes the champion, never changes it."""
    champion, challenger = learn_bundles
    subset = blocked_stream[:8]
    scorer = StreamScorer(champion)
    expected = []
    for serials, hours, matrix in subset:
        expected.extend(scorer.score_block(serials, hours,
                                           matrix).to_json_lines())
    shadow = ShadowScorer(champion, challenger)
    actual = []
    for serials, hours, matrix in subset:
        champ_block, _chall_block = shadow.score_block(serials, hours,
                                                       matrix)
        actual.extend(champ_block.to_json_lines())
    assert actual == expected


@pytest.mark.tier2
def test_perf_learn_recorded(learn_bundles, blocked_stream, artifact_dir):
    """Record single-bundle vs shadow blocked-scoring throughput.

    Identity between the timed paths is pinned by the cheap tier above;
    the timings compare the same champion verdict stream with and
    without a challenger riding shotgun.
    """
    champion, challenger = learn_bundles
    n_samples = sum(len(serials) for serials, _hours, _matrix
                    in blocked_stream)

    def single():
        scorer = StreamScorer(champion)
        start = time.perf_counter()
        for serials, hours, matrix in blocked_stream:
            scorer.score_block(serials, hours, matrix)
        return time.perf_counter() - start

    def shadowed():
        shadow = ShadowScorer(champion, challenger)
        start = time.perf_counter()
        for serials, hours, matrix in blocked_stream:
            shadow.score_block(serials, hours, matrix)
        return time.perf_counter() - start

    single_s = _best_of(single, repeat=3)
    shadow_s = _best_of(shadowed, repeat=3)

    overhead = shadow_s / single_s
    assert overhead <= 2.2, (
        f"shadow scoring is {overhead:.2f}x single-bundle scoring — the "
        f"divergence bookkeeping is costing more than the second bundle")

    payload = {
        "recorded_by":
            "benchmarks/test_perf_learn.py::test_perf_learn_recorded",
        "environment": bench_environment(),
        "stream": {
            "n_samples": n_samples,
            "n_blocks": len(blocked_stream),
            "block_size": BLOCK_SIZE,
        },
        "shadow_throughput": {
            "single_s": single_s,
            "single_samples_per_s": n_samples / single_s,
            "shadow_s": shadow_s,
            "shadow_samples_per_s": n_samples / shadow_s,
            "shadow_overhead_vs_single": overhead,
            "note": "blocked columnar scoring; shadow scores every "
                    "block through champion and challenger and tallies "
                    "the divergence report",
        },
    }
    path = artifact_dir / "perf_learn.json"
    path.write_text(canonical_json_dumps(payload) + "\n")
