"""Bench A2 — ablation: clustering feature sets.

The paper clusters on 30 features (attribute values plus the 24-hour
standard deviation and change rate); this ablation scores both feature
sets against the simulator's ground truth.
"""

from repro.experiments import ablation_features


def test_ablation_features(benchmark, bench_fleet, save_artifact):
    result = benchmark.pedantic(ablation_features.run, args=(bench_fleet,),
                                rounds=1, iterations=1)
    save_artifact(result)
    assert all(purity > 0.9 for purity in result.data["purity"].values())
