"""Bench F12 — Figure 12: temporal z-scores of POH.

Paper: Group 3 (head failures) differs most from good drives in power-on
hours; Group 2 sits closest to the good population.
"""

from repro.experiments import fig12_poh_zscores


def test_fig12_poh_zscores(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig12_poh_zscores.run, args=(bench_report,),
                                rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["most_negative"] == "group3"
    assert result.data["least_negative"] == "group2"
