"""Bench A9 — extension: monitor middleware operating curve.

Target shape: on an unseen fleet, a sizable fraction of failures is
detectable with >= 24 h of lead at near-zero false alarms, with
detection falling (never rising) as the threshold tightens.  Logical
failures bound the ceiling — their windows are shorter than the lead.
"""

from repro.experiments import monitor_roc


def test_monitor_roc(benchmark, save_artifact):
    result = benchmark.pedantic(monitor_roc.run, rounds=1, iterations=1)
    save_artifact(result)
    curve = result.data["curve"]
    thresholds = sorted(curve, reverse=True)  # loose -> tight
    fdrs = [curve[t]["fdr"] for t in thresholds]
    assert fdrs[0] >= 0.3
    assert all(a >= b for a, b in zip(fdrs, fdrs[1:]))
    assert all(curve[t]["far"] <= 0.02 for t in thresholds)
