"""Telemetry-overhead benchmarks: the observability plane must be
(nearly) free on the scoring hot path.

The cheap tier asserts the invariant the whole plane is built on —
instrumented and uninstrumented scoring emit byte-identical verdicts.
``test_perf_obs_recorded`` (tier 2) times the streaming scorer with a
:class:`~repro.obs.observer.TelemetryObserver` attached against the
``NULL_OBSERVER`` baseline and fails if telemetry costs more than 10%
(the design target is <5%; the assertion leaves noise headroom).  The
machine-relative ``speedup`` ratio (uninstrumented over instrumented,
~1.0 when telemetry is free) lands in
``benchmarks/output/perf_obs.json`` and is pinned by
``scripts/compare_bench.py``.
"""

from __future__ import annotations

import gc
import time

import numpy as np
import pytest

from conftest import bench_environment
from repro.core.serialize import canonical_json_dumps
from repro.obs.export import render_prometheus
from repro.obs.metrics import Histogram
from repro.obs.observer import NULL_OBSERVER, TelemetryObserver
from repro.serve.bundle import build_bundle
from repro.serve.scorer import StreamScorer


def _best_of(fn, repeat=3):
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def obs_bundle(bench_report):
    return build_bundle(bench_report)


@pytest.fixture(scope="module")
def obs_samples(bench_fleet):
    """~120 drives of raw hourly samples, failed drives included."""
    dataset = bench_fleet.dataset
    profiles = dataset.failed_profiles[:40] + dataset.good_profiles[:80]
    return [
        (profile.serial, int(hour), row)
        for profile in profiles
        for hour, row in zip(profile.hours, profile.matrix)
    ]


def test_instrumented_verdicts_identical_at_bench_scale(obs_bundle,
                                                        obs_samples):
    """Telemetry observes scoring; it never changes a verdict."""
    bare = StreamScorer(obs_bundle, observer=NULL_OBSERVER)
    instrumented = StreamScorer(obs_bundle, observer=TelemetryObserver())
    bare_lines = [v.to_json_line() for v in bare.push_many(obs_samples)]
    inst_lines = [v.to_json_line()
                  for v in instrumented.push_many(obs_samples)]
    assert inst_lines == bare_lines


@pytest.mark.tier2
def test_perf_obs_recorded(obs_bundle, obs_samples, artifact_dir):
    """Record the telemetry tax on the scoring hot path.

    Byte-identity is asserted by the cheap tier above; here fresh
    scorers replay the same stream with and without telemetry and the
    instrumented path must stay within 10% of the bare one.
    """
    n_samples = len(obs_samples)

    def bare_once():
        StreamScorer(obs_bundle, observer=NULL_OBSERVER).push_many(obs_samples)

    def instrumented_once():
        StreamScorer(
            obs_bundle, observer=TelemetryObserver()).push_many(obs_samples)

    # Interleave the repetitions: timing all bare reps in one block and
    # all instrumented reps in another lets machine-speed drift between
    # the blocks (a shared box, a thermal step) masquerade as telemetry
    # overhead.  Each back-to-back pair shares its noise environment, so
    # the *cleanest pair's* ratio is the least-contaminated estimate of
    # the intrinsic telemetry tax — on a contended 1-core box individual
    # pairs swing by +-10%, but a real regression lifts every pair, so
    # the minimum still catches it.  The unmeasured warmup pair and the
    # collect sweep keep cold caches and the heap state left behind by
    # earlier benches out of the first sample.
    bare_once()
    instrumented_once()
    gc.collect()
    bare_times, instrumented_times, pair_ratios = [], [], []
    for _ in range(7):
        start = time.perf_counter()
        bare_once()
        bare_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        instrumented_once()
        instrumented_times.append(time.perf_counter() - start)
        pair_ratios.append(instrumented_times[-1] / bare_times[-1])
    bare_s = min(bare_times)
    instrumented_s = min(instrumented_times)
    overhead = min(pair_ratios) - 1.0
    assert overhead < 0.10, (
        f"telemetry costs {overhead:.1%} on the scoring hot path "
        f"(target <5%, hard ceiling 10%; cleanest of "
        f"{len(pair_ratios)} interleaved pairs)"
    )

    # Context: the raw per-observation cost of the bounded histogram,
    # and the /metrics render latency a scrape pays at bench scale.
    stress = Histogram("bench_stress")
    n_obs = 200_000
    values = [float(i % 977) / 977.0 for i in range(n_obs)]

    def observe_all():
        for value in values:
            stress.observe(value)

    observe_s = _best_of(observe_all, repeat=3)

    scrape_observer = TelemetryObserver()
    StreamScorer(obs_bundle, observer=scrape_observer).push_many(obs_samples)
    registry = scrape_observer.metrics
    render_s = _best_of(lambda: render_prometheus(registry), repeat=5)

    payload = {
        "recorded_by": "benchmarks/test_perf_obs.py::test_perf_obs_recorded",
        "environment": bench_environment(),
        "stream": {"n_samples": n_samples},
        "scoring_overhead": {
            "bare_s": bare_s,
            "instrumented_s": instrumented_s,
            "overhead_fraction": overhead,
            "pair_ratio_median": sorted(pair_ratios)[len(pair_ratios) // 2],
            "speedup": bare_s / instrumented_s,
            "identical_verdicts": True,
        },
        "histogram_observe": {
            "n_observations": n_obs,
            "total_s": observe_s,
            "ns_per_observe": observe_s / n_obs * 1e9,
            "retained": stress.retained,
        },
        "prometheus_render": {
            "render_s": render_s,
            "note": "full /metrics body over the scorer's registry; raw "
                    "seconds are context, not pinned",
        },
    }
    path = artifact_dir / "perf_obs.json"
    path.write_text(canonical_json_dumps(payload) + "\n")
