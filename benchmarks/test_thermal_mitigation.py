"""Bench A6 — extension: thermal mitigation of logical failures.

Paper Section V-A: cooling technologies should "reduce the number of
logical failures, which will in turn improve the storage system's
reliability".  Target shape: logical failures fall monotonically with
inlet temperature while wear-driven failures stay flat.
"""

from repro.experiments import thermal_mitigation


def test_thermal_mitigation(benchmark, save_artifact):
    result = benchmark.pedantic(thermal_mitigation.run,
                                rounds=1, iterations=1)
    save_artifact(result)
    counts = result.data["counts_by_temp"]
    temps = sorted(counts)
    logical = [counts[t]["logical"] for t in temps]
    assert logical == sorted(logical)
    assert counts[temps[0]]["head"] == counts[temps[-1]]["head"]
