"""Daemon-plane benchmarks: sharded ingest throughput vs the raw scorer.

The cheap tier asserts the shard plane's byte-identity contract at
bench scale.  ``test_perf_daemon_recorded`` measures columnar ingest
throughput along the daemon's admission path — ``StreamScorer.push_block``
as the unsharded baseline, :class:`~repro.serve.shard.ShardSet` at 1, 2
and 4 shards, and the full :class:`~repro.serve.daemon.ServingDaemon`
ingest (sink fan-out and accounting included) — and writes the numbers
to ``benchmarks/output/perf_daemon.json``.  On this 1-CPU container the
shards are a placement/isolation mechanism, not a speedup, so the
pinned floor is the *overhead* bound: sharded ingest must stay within a
constant factor of the raw columnar path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_environment
from repro.core.serialize import canonical_json_dumps
from repro.serve.bundle import build_bundle
from repro.serve.daemon import ServingDaemon
from repro.serve.scorer import StreamScorer
from repro.serve.shard import ShardSet


def _best_of(fn, repeat=3):
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def daemon_bundle(bench_report):
    return build_bundle(bench_report)


@pytest.fixture(scope="module")
def columnar_stream(bench_fleet):
    """~200 drives of hourly samples in columnar (serials, hours, matrix)."""
    dataset = bench_fleet.dataset
    profiles = dataset.failed_profiles[:40] + dataset.good_profiles[:160]
    serials, hours, rows = [], [], []
    for profile in profiles:
        for hour, row in zip(profile.hours, profile.matrix):
            serials.append(profile.serial)
            hours.append(int(hour))
            rows.append(np.asarray(row, dtype=np.float64))
    return serials, hours, np.vstack(rows)


def test_sharded_identity_at_bench_scale(daemon_bundle, columnar_stream):
    serials, hours, matrix = columnar_stream
    subset = slice(0, 2000)
    expected = [v.to_json_line() for v in StreamScorer(daemon_bundle)
                .push_block(serials[subset], hours[subset], matrix[subset])]
    with ShardSet(daemon_bundle, n_shards=4) as shards:
        actual = [v.to_json_line() for v in shards.submit(
            serials[subset], hours[subset], matrix[subset])]
    assert actual == expected


@pytest.mark.tier2
def test_perf_daemon_recorded(daemon_bundle, columnar_stream, artifact_dir):
    """Record daemon-path ingest throughput against the raw scorer.

    Identity between the timed paths is covered by the cheap tier above
    and the serving test suite, so the timings here compare the same
    verdict stream algorithm-for-algorithm.
    """
    serials, hours, matrix = columnar_stream
    n_samples = len(serials)

    block_s = _best_of(
        lambda: StreamScorer(daemon_bundle).push_block(serials, hours,
                                                       matrix),
        repeat=3)

    def sharded(n_shards):
        def run():
            with ShardSet(daemon_bundle, n_shards=n_shards) as shards:
                shards.submit(serials, hours, matrix)
        return _best_of(run, repeat=3)

    shard_timings = {n: sharded(n) for n in (1, 2, 4)}

    def daemon_ingest():
        daemon = ServingDaemon(daemon_bundle, n_shards=4)
        daemon.ingest(serials, hours, matrix)
        daemon.stop()
    daemon_s = _best_of(daemon_ingest, repeat=3)

    # The shard plane rides on push_block; its tax is queue hops and
    # verdict reassembly.  Keep it a bounded constant factor so a
    # regression in the hot path cannot hide behind "sharding is slow".
    overhead = shard_timings[4] / block_s
    assert overhead < 3.0, (
        f"4-shard ingest is {overhead:.2f}x the raw columnar path")
    assert n_samples / daemon_s > 10_000, (
        f"daemon ingest fell to {n_samples / daemon_s:,.0f} samples/s")

    payload = {
        "recorded_by": "benchmarks/test_perf_daemon.py"
                       "::test_perf_daemon_recorded",
        "environment": bench_environment(),
        "stream": {
            "n_drives": len(set(serials)),
            "n_samples": n_samples,
        },
        "ingest_throughput": {
            "push_block_s": block_s,
            "push_block_samples_per_s": n_samples / block_s,
            "sharded_s": {str(n): s for n, s in shard_timings.items()},
            "sharded_samples_per_s": {
                str(n): n_samples / s for n, s in shard_timings.items()},
            "daemon_ingest_s": daemon_s,
            "daemon_ingest_samples_per_s": n_samples / daemon_s,
            "shard4_overhead_vs_block": overhead,
            "note": "single CPU: shards are placement, not speedup; "
                    "the overhead ratio is the pinned contract",
        },
    }
    path = artifact_dir / "perf_daemon.json"
    path.write_text(canonical_json_dumps(payload) + "\n")
