"""Micro-benchmarks of the ML substrate.

Not paper artifacts — these pin the performance of the hot algorithms so
regressions (e.g. de-vectorizing tree prediction) show up next to the
reproduction benches.
"""

import numpy as np
import pytest

from repro.ml.hmm import GaussianHMM
from repro.ml.kmeans import KMeans
from repro.ml.svc import SupportVectorClustering
from repro.ml.tree import RegressionTree


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_kmeans_500x30(benchmark, rng):
    data = rng.normal(size=(500, 30))
    result = benchmark.pedantic(
        lambda: KMeans(3, seed=0).fit(data), rounds=3, iterations=1
    )
    assert result.inertia_ is not None


def test_tree_fit_50k_samples(benchmark, rng):
    features = rng.uniform(size=(50_000, 12))
    targets = np.where(features[:, 0] < 0.5, -1.0, 1.0)
    tree = benchmark.pedantic(
        lambda: RegressionTree(max_depth=8).fit(features, targets),
        rounds=3, iterations=1,
    )
    assert tree.n_leaves() >= 2


def test_tree_predict_100k_rows(benchmark, rng):
    features = rng.uniform(size=(20_000, 12))
    targets = rng.uniform(size=20_000)
    tree = RegressionTree(max_depth=8).fit(features, targets)
    probe = rng.uniform(size=(100_000, 12))
    predictions = benchmark.pedantic(
        lambda: tree.predict(probe), rounds=3, iterations=1
    )
    assert predictions.shape == (100_000,)


def test_svc_150_points(benchmark, rng):
    data = np.vstack([
        rng.normal((0, 0), 0.2, size=(75, 2)),
        rng.normal((4, 4), 0.2, size=(75, 2)),
    ])
    model = benchmark.pedantic(
        lambda: SupportVectorClustering(gaussian_width=2.0).fit(data),
        rounds=1, iterations=1,
    )
    assert model.n_clusters_ == 2


def test_hmm_fit_20x48x8(benchmark, rng):
    sequences = [rng.normal(size=(48, 8)) for _ in range(20)]
    model = benchmark.pedantic(
        lambda: GaussianHMM(n_states=3, n_iter=15, seed=1).fit(sequences),
        rounds=1, iterations=1,
    )
    assert model.is_fitted
