"""Micro-benchmarks of the ML substrate.

Not paper artifacts — these pin the performance of the hot algorithms so
regressions (e.g. de-vectorizing tree prediction) show up next to the
reproduction benches.

``test_perf_ml_recorded`` additionally measures the batched kernels
against the frozen loop references in ``repro.ml._reference`` and
writes the speedups to ``benchmarks/output/perf_ml.json`` — the file
``scripts/compare_bench.py`` diffs against, and the table quoted by
``docs/performance.md``.
"""

import time

import numpy as np
import pytest

from conftest import bench_environment
from repro.core.serialize import canonical_json_dumps
from repro.ml._reference import (
    ReferenceGaussianHMM,
    ReferenceRegressionTree,
    reference_connectivity_labels,
    reference_pairwise_sq_distances,
)
from repro.ml.hmm import GaussianHMM
from repro.ml.kmeans import KMeans, _pairwise_sq_distances
from repro.ml.svc import SupportVectorClustering
from repro.ml.tree import RegressionTree


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_kmeans_500x30(benchmark, rng):
    data = rng.normal(size=(500, 30))
    result = benchmark.pedantic(
        lambda: KMeans(3, seed=0).fit(data), rounds=3, iterations=1
    )
    assert result.inertia_ is not None


def test_tree_fit_50k_samples(benchmark, rng):
    features = rng.uniform(size=(50_000, 12))
    targets = np.where(features[:, 0] < 0.5, -1.0, 1.0)
    tree = benchmark.pedantic(
        lambda: RegressionTree(max_depth=8).fit(features, targets),
        rounds=3, iterations=1,
    )
    assert tree.n_leaves() >= 2


def test_tree_predict_100k_rows(benchmark, rng):
    features = rng.uniform(size=(20_000, 12))
    targets = rng.uniform(size=20_000)
    tree = RegressionTree(max_depth=8).fit(features, targets)
    probe = rng.uniform(size=(100_000, 12))
    predictions = benchmark.pedantic(
        lambda: tree.predict(probe), rounds=3, iterations=1
    )
    assert predictions.shape == (100_000,)


def test_svc_150_points(benchmark, rng):
    data = np.vstack([
        rng.normal((0, 0), 0.2, size=(75, 2)),
        rng.normal((4, 4), 0.2, size=(75, 2)),
    ])
    model = benchmark.pedantic(
        lambda: SupportVectorClustering(gaussian_width=2.0).fit(data),
        rounds=1, iterations=1,
    )
    assert model.n_clusters_ == 2


def test_hmm_fit_20x48x8(benchmark, rng):
    sequences = [rng.normal(size=(48, 8)) for _ in range(20)]
    model = benchmark.pedantic(
        lambda: GaussianHMM(n_states=3, n_iter=15, seed=1).fit(sequences),
        rounds=1, iterations=1,
    )
    assert model.is_fitted


def test_svc_connectivity_500_points(benchmark, rng):
    """The batched connectivity labeling alone, at the acceptance size."""
    data = np.vstack([
        rng.normal((0, 0), 0.45, size=(250, 2)),
        rng.normal((4, 4), 0.45, size=(250, 2)),
    ])
    model = SupportVectorClustering(gaussian_width=1.0).fit(data)
    labels = benchmark.pedantic(
        lambda: model._label_by_connectivity(data, model.beta_),
        rounds=3, iterations=1,
    )
    assert np.array_equal(labels, model.labels_)


def test_hmm_score_many_300_windows(benchmark, rng):
    windows = [rng.normal(size=(24, 4)) for _ in range(300)]
    model = GaussianHMM(n_states=3, n_iter=5, seed=1).fit(windows[:50])
    scores = benchmark.pedantic(
        lambda: model.score_many(windows), rounds=3, iterations=1
    )
    assert scores.shape == (300,)


# -- recorded before/after speedups ------------------------------------------

def _best_of(fn, repeat=3):
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.mark.tier2
def test_perf_ml_recorded(artifact_dir):
    """Measure the batched ML kernels against their loop references.

    Every comparison requires identical outputs before the timing
    counts, so the recorded speedups are algorithm-for-algorithm.  The
    SVC connectivity acceptance bar (>= 5x at n=500) is asserted here;
    the other speedups are recorded and guarded against regression by
    ``scripts/compare_bench.py``.
    """
    rng = np.random.default_rng(0)

    # 1) SVC connectivity at n=500: batched pair blocks + midpoint
    #    screen vs the per-pair double loop.
    svc_data = np.vstack([
        rng.normal((0, 0), 0.45, size=(250, 2)),
        rng.normal((4, 4), 0.45, size=(250, 2)),
    ])
    svc = SupportVectorClustering(gaussian_width=1.0).fit(svc_data)
    reference_labels = reference_connectivity_labels(svc, svc_data)
    assert np.array_equal(svc.labels_, reference_labels)
    svc_loop_s = _best_of(
        lambda: reference_connectivity_labels(svc, svc_data), repeat=2)
    svc_batched_s = _best_of(
        lambda: svc._label_by_connectivity(svc_data, svc.beta_), repeat=3)
    svc_speedup = svc_loop_s / svc_batched_s
    assert svc_speedup >= 5.0

    # 2) HMM Baum-Welch: length-grouped batched forward/backward vs the
    #    one-sequence-at-a-time reference (byte-identical parameters).
    windows = [rng.normal(size=(24, 4)) for _ in range(150)]
    fast_hmm = GaussianHMM(3, n_iter=5, tol=0.0, seed=1)
    slow_hmm = ReferenceGaussianHMM(3, n_iter=5, tol=0.0, seed=1)
    fast_hmm.fit(windows)
    slow_hmm.fit(windows)
    assert np.array_equal(fast_hmm.means_, slow_hmm.means_)
    assert np.array_equal(fast_hmm.transition_log_, slow_hmm.transition_log_)
    hmm_loop_s = _best_of(
        lambda: ReferenceGaussianHMM(3, n_iter=5, tol=0.0, seed=1)
        .fit(windows), repeat=2)
    hmm_batched_s = _best_of(
        lambda: GaussianHMM(3, n_iter=5, tol=0.0, seed=1).fit(windows),
        repeat=3)
    hmm_speedup = hmm_loop_s / hmm_batched_s
    assert hmm_speedup >= 3.0

    # 3) Presort CART vs the re-argsorting grower (identical trees).
    tree_features = rng.uniform(size=(50_000, 12))
    tree_targets = (np.where(tree_features[:, 0] < 0.5, -1.0, 1.0)
                    + rng.normal(0.0, 0.1, size=50_000))
    fast_tree = RegressionTree(max_depth=8).fit(tree_features, tree_targets)
    slow_tree = ReferenceRegressionTree(max_depth=8).fit(tree_features,
                                                         tree_targets)
    assert fast_tree.n_leaves() == slow_tree.n_leaves()
    probe = rng.uniform(size=(2_000, 12))
    assert np.array_equal(fast_tree.predict(probe), slow_tree.predict(probe))
    tree_resort_s = _best_of(
        lambda: ReferenceRegressionTree(max_depth=8)
        .fit(tree_features, tree_targets), repeat=2)
    tree_presort_s = _best_of(
        lambda: RegressionTree(max_depth=8)
        .fit(tree_features, tree_targets), repeat=3)
    tree_speedup = tree_resort_s / tree_presort_s
    assert tree_speedup >= 1.2

    # 4) K-means distance kernel: expanded-form GEMM vs the difference
    #    tensor (equal to fp tolerance; assignments pinned elsewhere).
    km_data = rng.normal(size=(4_000, 30))
    km_centers = rng.normal(size=(10, 30))
    assert np.allclose(_pairwise_sq_distances(km_data, km_centers),
                       reference_pairwise_sq_distances(km_data, km_centers))
    km_loop_s = _best_of(
        lambda: [reference_pairwise_sq_distances(km_data, km_centers)
                 for _ in range(20)])
    km_gemm_s = _best_of(
        lambda: [_pairwise_sq_distances(km_data, km_centers)
                 for _ in range(20)])
    km_speedup = km_loop_s / km_gemm_s

    payload = {
        "recorded_by": "benchmarks/test_ml_microbench.py"
                       "::test_perf_ml_recorded",
        "environment": bench_environment(),
        "svc_connectivity_n500": {
            "pairwise_loop_s": svc_loop_s,
            "batched_s": svc_batched_s,
            "speedup": svc_speedup,
            "identical_labels": True,
        },
        "hmm_baum_welch_150x24x4": {
            "sequential_s": hmm_loop_s,
            "batched_s": hmm_batched_s,
            "speedup": hmm_speedup,
            "identical_parameters": True,
        },
        "tree_fit_50kx12": {
            "resorting_s": tree_resort_s,
            "presorted_s": tree_presort_s,
            "speedup": tree_speedup,
            "identical_structure": True,
        },
        "kmeans_distances_4000x30x10": {
            "difference_tensor_s": km_loop_s,
            "expanded_gemm_s": km_gemm_s,
            "speedup": km_speedup,
            "note": "fp reformulation; equality to tolerance only",
        },
    }
    path = artifact_dir / "perf_ml.json"
    path.write_text(canonical_json_dumps(payload) + "\n")
