"""Bench A8 — extension: AFR in the related-work context.

Paper Section II-B: field AFRs of 1-13%; the studied fleet's 1.85% per
eight weeks annualizes to ~12%, matching the top of that range by
construction of the simulator's failure rate.
"""

from repro.experiments import failure_rates


def test_failure_rates(benchmark, bench_fleet, save_artifact):
    result = benchmark.pedantic(failure_rates.run, args=(bench_fleet,),
                                rounds=3, iterations=1)
    save_artifact(result)
    assert 0.05 < result.data["afr"] < 0.2
    assert abs(result.data["afr"] - result.data["paper_afr"]) < 0.02
