"""Bench F13 — Figure 13: the Group 1 degradation regression tree.

Paper: the Group 1 tree splits on POH/TC/SUT/RUE/SER; Group 3's
degradation is described by R-RSC alone.
"""

from repro.experiments import fig13_regression_tree


def test_fig13_regression_tree(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig13_regression_tree.run,
                                args=(bench_report,), rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["g3_dominant_feature"] in ("R-RSC", "RSC")
    assert result.data["tree_text"].strip()
