"""Bench F11 — Figure 11: temporal z-scores of TC.

Paper: all groups run hotter than good drives; Group 1 (logical failures)
is the hottest across the 20-day horizon — the thermal-cause finding.
"""

from repro.experiments import fig11_tc_zscores


def test_fig11_tc_zscores(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig11_tc_zscores.run, args=(bench_report,),
                                rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["most_negative"] == "group1"
    assert all(v < 0 for v in result.data["means"].values())
