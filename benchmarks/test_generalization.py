"""Bench A4 — extension: transfer to a backup-storage fleet.

Paper: "our proposed approach is generic and applicable to other storage
systems"; in dedicated backup systems "bad sector failures dominate"
(Ma et al.).  Target shape: the unchanged pipeline on a write-heavy
backup fleet recovers the flipped mixture with high accuracy.
"""

from repro.experiments import generalization


def test_generalization(benchmark, save_artifact):
    result = benchmark.pedantic(generalization.run, rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["fractions"]["BAD_SECTOR"] > 0.5
    assert result.data["accuracy"] >= 0.9
