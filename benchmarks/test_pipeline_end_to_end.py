"""Substrate benchmarks: fleet simulation and the end-to-end pipeline.

Not a paper artifact — these time the two heavyweight stages so
performance regressions in the simulator or the analysis pipeline are
visible alongside the reproduction benches.  The instrumented pipeline
bench runs with a live observer so its per-stage span timings land in
``benchmarks/output/telemetry.json``.

``test_perf_baseline_recorded`` additionally measures the performance
layer (vectorized signature math, the ``n_jobs`` fan-out, and the
dataset cache) against reference implementations and records the
numbers in ``benchmarks/output/perf_baseline.json`` — the table quoted
by ``docs/performance.md``.
"""

import tempfile
import time

import numpy as np
import pytest

from conftest import bench_environment
from repro.core.pipeline import CharacterizationPipeline
from repro.core.serialize import canonical_json_dumps
from repro.core.signatures import (
    WindowParams,
    derive_signature,
    distance_to_failure,
    extract_degradation_window,
)
from repro.data.cache import DatasetCache
from repro.parallel import ParallelConfig, map_drives
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


@pytest.mark.tier2
def test_simulate_fleet_1000_drives(benchmark):
    config = FleetConfig(n_drives=1000, seed=13)
    result = benchmark.pedantic(simulate_fleet, args=(config,),
                                rounds=3, iterations=1)
    assert len(result.dataset) == 1000


@pytest.mark.tier2
def test_full_pipeline_1000_drives(benchmark):
    fleet = simulate_fleet(FleetConfig(n_drives=1000, seed=13))

    def run_pipeline():
        return CharacterizationPipeline(seed=13).run(fleet.dataset)

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    assert report.categorization.n_groups == 3


@pytest.mark.tier2
def test_full_pipeline_1000_drives_instrumented(benchmark, bench_observer):
    """Same pipeline with live telemetry — quantifies observer overhead
    and feeds per-stage timings into the session telemetry artifact."""
    fleet = simulate_fleet(FleetConfig(n_drives=1000, seed=13))

    def run_pipeline():
        return CharacterizationPipeline(
            seed=13, observer=bench_observer
        ).run(fleet.dataset)

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    assert report.categorization.n_groups == 3
    assert bench_observer.tracer.find("cluster") is not None


# -- performance-layer baseline ---------------------------------------------

_PARAMS = WindowParams()


def _derive(profile):
    """Module-level so the process backend can pickle it."""
    return derive_signature(profile, params=_PARAMS)


def _loop_distance(profile):
    """Per-record reference for the vectorized distance series."""
    reference = profile.failure_record()
    out = np.empty(len(profile))
    for index, row in enumerate(profile.matrix):
        delta = row - reference
        out[index] = np.sqrt(float(np.dot(delta, delta)))
    return out


def _loop_ratchet_scan(distances, params):
    """Per-record reference for the vectorized ratchet scan."""
    from scipy.signal import medfilt

    reversed_series = distances[::-1]
    filtered = medfilt(reversed_series, 3) \
        if reversed_series.shape[0] >= 3 else reversed_series
    running_max = filtered[0]
    accepted = reversed_series.shape[0] - 1
    for index in range(1, filtered.shape[0]):
        if filtered[index] < running_max - params.dip_tolerance:
            accepted = index
            break
        running_max = max(running_max, float(filtered[index]))
    return accepted


def _best_of(fn, repeat=3):
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.mark.tier2
def test_perf_baseline_recorded(artifact_dir):
    """Measure the performance layer and record the honest numbers.

    Three comparisons: the vectorized signature math against a
    per-record reference loop, the ``n_jobs=4`` signature fan-out
    against the serial path (identical results required), and a cached
    pipeline re-run against the cold run.  The fan-out speedup is
    bounded by the CPUs the container actually exposes, so it is
    recorded alongside the CPU count rather than asserted.
    """
    fleet = simulate_fleet(FleetConfig(n_drives=1000, seed=13))
    normalized = fleet.dataset.normalize()
    failed = normalized.failed_profiles
    assert failed

    # 1) vectorized signature math vs the per-record loop.
    rounds = 20

    def loop_math():
        for profile in failed:
            distances = _loop_distance(profile)
            _loop_ratchet_scan(distances, _PARAMS)

    def vector_math():
        for profile in failed:
            distances = distance_to_failure(profile)
            extract_degradation_window(distances, _PARAMS,
                                       hours=profile.hours)

    loop_s = _best_of(lambda: [loop_math() for _ in range(rounds)])
    vector_s = _best_of(lambda: [vector_math() for _ in range(rounds)])
    vector_speedup = loop_s / vector_s
    # The vectorization is the hardware-independent part of the win;
    # it must clear 2x on any machine (in practice it is far higher,
    # even though the vectorized path also does the plateau trim the
    # loop reference omits).
    assert vector_speedup >= 2.0

    # 2) signature fan-out: serial vs n_jobs=4, byte-identical results.
    serial = map_drives(_derive, failed, ParallelConfig(n_jobs=1))
    parallel = map_drives(_derive, failed,
                          ParallelConfig(n_jobs=4, backend="process"))
    assert [s.window_size for s in serial] == \
        [s.window_size for s in parallel]
    assert [s.best_fit.rmse for s in serial] == \
        [s.best_fit.rmse for s in parallel]
    serial_s = _best_of(
        lambda: map_drives(_derive, failed, ParallelConfig(n_jobs=1)))
    jobs4_s = _best_of(
        lambda: map_drives(_derive, failed,
                           ParallelConfig(n_jobs=4, backend="process")))

    # 3) dataset cache: cold vs warm pipeline run (prediction off, so
    # the prepare stage the cache accelerates dominates the run).
    with tempfile.TemporaryDirectory() as cache_home:
        cache = DatasetCache(cache_home)
        pipeline = CharacterizationPipeline(seed=13, run_prediction=False,
                                            cache=cache)
        cold_start = time.perf_counter()
        pipeline.run(fleet.dataset)
        cold_s = time.perf_counter() - cold_start
        assert cache.misses == 1
        warm_start = time.perf_counter()
        pipeline.run(fleet.dataset)
        warm_s = time.perf_counter() - warm_start
        assert cache.hits == 1
    assert warm_s < cold_s

    payload = {
        "recorded_by": "benchmarks/test_pipeline_end_to_end.py"
                       "::test_perf_baseline_recorded",
        "fleet": {"n_drives": 1000, "seed": 13, "n_failed": len(failed)},
        "environment": bench_environment(),
        "signature_math_vectorization": {
            "per_record_loop_s": loop_s,
            "vectorized_s": vector_s,
            "speedup": vector_speedup,
            "rounds": rounds,
        },
        "signature_fanout": {
            "serial_s": serial_s,
            "jobs4_process_s": jobs4_s,
            "speedup": serial_s / jobs4_s,
            "note": "fan-out speedup is bounded by available CPUs; "
                    "see environment.cpus_available",
        },
        "dataset_cache": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s,
            "scope": "pipeline with run_prediction=False",
        },
    }
    path = artifact_dir / "perf_baseline.json"
    path.write_text(canonical_json_dumps(payload) + "\n")
