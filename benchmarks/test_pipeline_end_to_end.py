"""Substrate benchmarks: fleet simulation and the end-to-end pipeline.

Not a paper artifact — these time the two heavyweight stages so
performance regressions in the simulator or the analysis pipeline are
visible alongside the reproduction benches.  The instrumented pipeline
bench runs with a live observer so its per-stage span timings land in
``benchmarks/output/telemetry.json``.
"""

import pytest

from repro.core.pipeline import CharacterizationPipeline
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


@pytest.mark.tier2
def test_simulate_fleet_1000_drives(benchmark):
    config = FleetConfig(n_drives=1000, seed=13)
    result = benchmark.pedantic(simulate_fleet, args=(config,),
                                rounds=3, iterations=1)
    assert len(result.dataset) == 1000


@pytest.mark.tier2
def test_full_pipeline_1000_drives(benchmark):
    fleet = simulate_fleet(FleetConfig(n_drives=1000, seed=13))

    def run_pipeline():
        return CharacterizationPipeline(seed=13).run(fleet.dataset)

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    assert report.categorization.n_groups == 3


@pytest.mark.tier2
def test_full_pipeline_1000_drives_instrumented(benchmark, bench_observer):
    """Same pipeline with live telemetry — quantifies observer overhead
    and feeds per-stage timings into the session telemetry artifact."""
    fleet = simulate_fleet(FleetConfig(n_drives=1000, seed=13))

    def run_pipeline():
        return CharacterizationPipeline(
            seed=13, observer=bench_observer
        ).run(fleet.dataset)

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    assert report.categorization.n_groups == 3
    assert bench_observer.tracer.find("cluster") is not None
