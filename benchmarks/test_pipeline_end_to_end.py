"""Substrate benchmarks: fleet simulation and the end-to-end pipeline.

Not a paper artifact — these time the two heavyweight stages so
performance regressions in the simulator or the analysis pipeline are
visible alongside the reproduction benches.
"""

from repro.core.pipeline import CharacterizationPipeline
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


def test_simulate_fleet_1000_drives(benchmark):
    config = FleetConfig(n_drives=1000, seed=13)
    result = benchmark.pedantic(simulate_fleet, args=(config,),
                                rounds=3, iterations=1)
    assert len(result.dataset) == 1000


def test_full_pipeline_1000_drives(benchmark):
    fleet = simulate_fleet(FleetConfig(n_drives=1000, seed=13))

    def run_pipeline():
        return CharacterizationPipeline(seed=13).run(fleet.dataset)

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    assert report.categorization.n_groups == 3
