"""Shared fixtures of the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures on the
default experiment fleet (~4,000 drives, seed-pinned — a scaled-down
version of the paper's 23,395-drive population) and writes the rendered
artifact to ``benchmarks/output/`` for inspection.

Run with::

   pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import default_fleet, default_report

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_fleet():
    """The default experiment fleet (memoized by the experiments layer)."""
    return default_fleet()


@pytest.fixture(scope="session")
def bench_report(bench_fleet):
    """Full pipeline report on the default fleet."""
    return default_report()


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_artifact(artifact_dir):
    """Writer that stores an experiment's rendering next to the bench."""

    def writer(result) -> None:
        path = artifact_dir / f"{result.experiment_id}.txt"
        path.write_text(str(result) + "\n")

    return writer
