"""Shared fixtures of the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures on the
default experiment fleet (~4,000 drives, seed-pinned — a scaled-down
version of the paper's 23,395-drive population) and writes the rendered
artifact to ``benchmarks/output/`` for inspection.

The session is instrumented: a :class:`~repro.obs.TelemetryObserver` is
installed before the first fleet/report build, so the one expensive
pipeline construction of the session is traced per-stage and its
metrics collected.  Both are written to ``benchmarks/output/telemetry.json``
at session end, letting ``BENCH_*.json`` trajectories be cut per-stage
rather than only end-to-end.

Run with::

   pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import platform
from pathlib import Path

import numpy as np
import pytest

import repro.parallel
from repro.core.serialize import canonical_json_dumps
from repro.experiments.common import (
    default_fleet,
    default_report,
    set_pipeline_observer,
)
from repro.obs import TelemetryObserver

OUTPUT_DIR = Path(__file__).parent / "output"

#: Session-wide telemetry sink; installed before any fleet is built so
#: the memoized pipeline run is the one that gets traced.
_TELEMETRY = TelemetryObserver()


def pytest_configure(config):
    set_pipeline_observer(_TELEMETRY)


def pytest_sessionfinish(session, exitstatus):
    set_pipeline_observer(None)
    if not _TELEMETRY.tracer.roots and not len(_TELEMETRY.metrics):
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = {
        "stage_timings": _TELEMETRY.tracer.stage_timings(),
        "metrics": _TELEMETRY.metrics.snapshot(),
        "trace": _TELEMETRY.tracer.to_dict(),
    }
    (OUTPUT_DIR / "telemetry.json").write_text(canonical_json_dumps(payload))


def bench_environment() -> dict:
    """The host descriptor every recorded ``perf_*.json`` embeds.

    One definition so every benchmark stamps the same keys; throughput
    comparisons across recordings are only meaningful when the
    environment matches.
    """
    return {
        "cpus_available": repro.parallel.available_cpus(),
        "os_cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


@pytest.fixture(scope="session")
def bench_observer() -> TelemetryObserver:
    """The session's telemetry sink (tracer + metrics registry)."""
    return _TELEMETRY


@pytest.fixture(scope="session")
def bench_fleet():
    """The default experiment fleet (memoized by the experiments layer)."""
    return default_fleet()


@pytest.fixture(scope="session")
def bench_report(bench_fleet):
    """Full pipeline report on the default fleet."""
    return default_report()


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_artifact(artifact_dir):
    """Writer that stores an experiment's rendering next to the bench."""

    def writer(result) -> None:
        path = artifact_dir / f"{result.experiment_id}.txt"
        path.write_text(str(result) + "\n")

    return writer
