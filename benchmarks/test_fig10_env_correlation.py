"""Bench F10 — Figure 10: environmental-attribute correlations.

Paper: POH correlates strongly with the dominant R/W attributes inside
degradation windows but the influence diminishes at longer horizons; TC
shows little correlation everywhere.
"""

import numpy as np

from repro.experiments import fig10_env_correlation


def test_fig10_env_correlation(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig10_env_correlation.run,
                                args=(bench_report,), rounds=3, iterations=1)
    save_artifact(result)
    tc_magnitudes = [
        abs(cell.correlation)
        for group in ("group1", "group2", "group3")
        for cell in result.data[group]["cells"]
        if cell.environmental == "TC"
    ]
    assert float(np.median(tc_magnitudes)) < 0.5
