"""Bench F3 — Figure 3: within-cluster distance vs k (elbow at 3)."""

from repro.experiments import fig03_elbow


def test_fig03_elbow(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig03_elbow.run, args=(bench_report,),
                                rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["best_k"] == 3
