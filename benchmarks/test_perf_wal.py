"""WAL-overhead benchmarks: ingest throughput with and without the log.

Crash safety has a price — every admitted block is framed, hashed and
appended (with batched fsync) before it scores.  The pinned contract:
with the default fsync batching, WAL-on ingest stays within **2x** of
WAL-off ingest on the same blocked stream, and WAL-off *is* the PR 8
baseline (the ``--no-wal`` path adds no work at all).  Both throughputs
land in ``benchmarks/output/perf_wal.json``, where
``scripts/compare_bench.py`` pins them against the committed baseline
via its ``*samples_per_s`` rule.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import bench_environment
from repro.core.serialize import canonical_json_dumps
from repro.serve.bundle import build_bundle
from repro.serve.scorer import StreamScorer
from repro.serve.shard import ShardSet

#: Samples per ingest block — the daemon-typical batch size, so the WAL
#: sees one append per block, not one per stream.
BLOCK_SIZE = 256


def _best_of(fn, repeat=3):
    """Min over ``repeat`` calls of a fn that returns elapsed seconds."""
    return min(fn() for _ in range(repeat))


@pytest.fixture(scope="module")
def wal_bundle(bench_report):
    return build_bundle(bench_report)


@pytest.fixture(scope="module")
def blocked_stream(bench_fleet):
    """~200 drives of hourly samples cut into daemon-sized blocks."""
    dataset = bench_fleet.dataset
    profiles = dataset.failed_profiles[:40] + dataset.good_profiles[:160]
    serials, hours, rows = [], [], []
    for profile in profiles:
        for hour, row in zip(profile.hours, profile.matrix):
            serials.append(profile.serial)
            hours.append(int(hour))
            rows.append(np.asarray(row, dtype=np.float64))
    matrix = np.vstack(rows)
    return [(serials[i:i + BLOCK_SIZE], hours[i:i + BLOCK_SIZE],
             matrix[i:i + BLOCK_SIZE])
            for i in range(0, len(serials), BLOCK_SIZE)]


def test_wal_stream_is_byte_identical_to_raw(wal_bundle, blocked_stream,
                                             tmp_path):
    """Cheap tier: the WAL path changes durability, never bytes."""
    subset = blocked_stream[:8]
    scorer = StreamScorer(wal_bundle)
    expected = []
    for serials, hours, matrix in subset:
        expected.extend(scorer.score_block(serials, hours,
                                           matrix).to_json_lines())
    actual = []
    with ShardSet(wal_bundle, n_shards=2, wal_dir=tmp_path / "wal") as shards:
        for index, (serials, hours, matrix) in enumerate(subset):
            actual.extend(shards.submit_block(
                serials, hours, matrix,
                block_id=f"perf-{index}").to_json_lines())
    assert actual == expected


@pytest.mark.tier2
def test_perf_wal_recorded(wal_bundle, blocked_stream, artifact_dir):
    """Record WAL-on vs WAL-off blocked ingest throughput.

    Identity between the timed paths is pinned by the cheap tier above
    and the recovery suite; the timings compare the same verdict stream
    with and without the durability tax.
    """
    n_samples = sum(len(serials) for serials, _hours, _matrix
                    in blocked_stream)

    def run(wal_dir):
        """Time the ingest loop only — spawn and drain are not ingest."""
        with ShardSet(wal_bundle, n_shards=2, wal_dir=wal_dir) as shards:
            start = time.perf_counter()
            for serials, hours, matrix in blocked_stream:
                shards.submit_block(serials, hours, matrix)
            return time.perf_counter() - start

    def wal_off():
        return run(None)

    def wal_on():
        with tempfile.TemporaryDirectory() as scratch:
            return run(Path(scratch) / "wal")

    off_s = _best_of(wal_off, repeat=3)
    on_s = _best_of(wal_on, repeat=3)

    overhead = on_s / off_s
    assert overhead <= 2.0, (
        f"WAL-on ingest is {overhead:.2f}x WAL-off — fsync batching is "
        f"not absorbing the durability tax")

    payload = {
        "recorded_by": "benchmarks/test_perf_wal.py::test_perf_wal_recorded",
        "environment": bench_environment(),
        "stream": {
            "n_samples": n_samples,
            "n_blocks": len(blocked_stream),
            "block_size": BLOCK_SIZE,
        },
        "ingest_throughput": {
            "wal_off_s": off_s,
            "wal_off_samples_per_s": n_samples / off_s,
            "wal_on_s": on_s,
            "wal_on_samples_per_s": n_samples / on_s,
            "wal_overhead_vs_off": overhead,
            "note": "2-shard blocked ingest; WAL-off is the --no-wal "
                    "daemon path (PR 8 baseline), WAL-on uses default "
                    "fsync batching",
        },
    }
    path = artifact_dir / "perf_wal.json"
    path.write_text(canonical_json_dumps(payload) + "\n")
