"""Bench F8 — Figure 8: degradation windows and polynomial fits.

Paper: centroid windows d = 3 / 377 / 12 for Groups 1-3; the degradation
shapes are quadratic / linear / cubic.
"""

from repro.experiments import fig08_poly_fits


def test_fig08_poly_fits(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig08_poly_fits.run, args=(bench_report,),
                                rounds=3, iterations=1)
    save_artifact(result)
    assert result.data["group1"]["window"] <= 20
    assert result.data["group2"]["window"] >= 100
    assert 8 <= result.data["group3"]["window"] <= 40
    assert result.data["group2"]["best_canonical_order"] == 1
