"""Bench F6 — Figure 6: deciles of RUE / R-RSC / RRER per group.

Paper: G2 lowest RUE; G3 R-RSC all above 0.94 with close-to-good
RRER/RUE; G1 close to good states.
"""

import numpy as np

from repro.experiments import fig06_deciles


def test_fig06_deciles(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig06_deciles.run, args=(bench_report,),
                                rounds=3, iterations=1)
    save_artifact(result)
    deciles = result.data["deciles"]
    assert deciles["RUE"]["group2"][0] < deciles["RUE"]["group1"][0]
    assert np.all(deciles["R-RSC"]["group3"] > 0.8)
    # G1 RRER sits below good but above the most degraded group decile.
    assert deciles["RRER"]["group1"][0] <= deciles["RRER"]["good"][0]
