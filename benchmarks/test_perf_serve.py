"""Serving-layer benchmarks: bundle round trip and scoring throughput.

The cheap tier runs on every invocation and asserts the serving layer's
correctness contracts at bench scale.  ``test_perf_serve_recorded``
additionally measures streaming-scorer throughput — batched
``push_many`` against the per-sample ``push`` path, with byte-identical
verdicts asserted before any timing counts — plus warm bundle-load
latency, and writes the numbers to ``benchmarks/output/perf_serve.json``
(the machine-relative ``speedup`` ratios are pinned by
``scripts/compare_bench.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_environment
from repro.core.serialize import canonical_json_dumps
from repro.serve.bundle import build_bundle, load_bundle, save_bundle
from repro.serve.scorer import StreamScorer, replay_fleet


def _best_of(fn, repeat=3):
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def serve_bundle_path(bench_report, artifact_dir, tmp_path_factory):
    bundle = build_bundle(bench_report)
    path = tmp_path_factory.mktemp("serve-bench") / "bench.bundle.json"
    save_bundle(bundle, path)
    return path


@pytest.fixture(scope="module")
def stream_samples(bench_fleet):
    """~200 drives of raw hourly samples, failed drives included."""
    dataset = bench_fleet.dataset
    profiles = (dataset.failed_profiles[:40] + dataset.good_profiles[:160])
    return profiles, [
        (profile.serial, int(hour), row)
        for profile in profiles
        for hour, row in zip(profile.hours, profile.matrix)
    ]


def test_bundle_round_trip_at_bench_scale(serve_bundle_path, bench_report):
    bundle = load_bundle(serve_bundle_path)
    assert bundle.attributes == tuple(bench_report.dataset.attributes)


def test_streamed_verdicts_match_at_bench_scale(serve_bundle_path,
                                                stream_samples):
    _, samples = stream_samples
    bundle = load_bundle(serve_bundle_path)
    sequential = StreamScorer(bundle)
    batched = StreamScorer(bundle)
    expected = [sequential.push(*sample).to_json_line()
                for sample in samples[:2000]]
    actual = [verdict.to_json_line()
              for verdict in batched.push_many(samples[:2000])]
    assert actual == expected


@pytest.mark.tier2
def test_perf_serve_recorded(serve_bundle_path, stream_samples,
                             artifact_dir):
    """Record streaming-scorer throughput and bundle-load latency.

    Byte-identity between the timed paths is asserted before any
    measurement, so the recorded speedup is algorithm-for-algorithm on
    the same verdict stream.
    """
    profiles, samples = stream_samples
    bundle = load_bundle(serve_bundle_path)

    # 1) batched push_many vs the per-sample push loop — identical
    #    verdicts first, then best-of timings on fresh scorers.
    check_single = StreamScorer(bundle)
    check_batched = StreamScorer(bundle)
    single_lines = [check_single.push(*sample).to_json_line()
                    for sample in samples]
    batched_lines = [verdict.to_json_line()
                     for verdict in check_batched.push_many(samples)]
    assert batched_lines == single_lines

    def _push_loop():
        # One fresh scorer per timed run (not per sample — constructing
        # a scorer rebuilds its trees, which is not what "push" costs).
        scorer = StreamScorer(bundle)
        return [scorer.push(*sample) for sample in samples]

    push_s = _best_of(_push_loop, repeat=2)
    push_many_s = _best_of(
        lambda: StreamScorer(bundle).push_many(samples), repeat=3)
    batch_speedup = push_s / push_many_s
    assert batch_speedup >= 1.5

    # 2) warm bundle load: artifact in page cache, full verify + decode.
    load_bundle(serve_bundle_path)
    warm_load_s = _best_of(lambda: load_bundle(serve_bundle_path), repeat=5)

    # 3) fleet replay throughput (serial), for samples/sec context.
    replay_s = _best_of(
        lambda: replay_fleet(bundle, profiles, n_jobs=1), repeat=2)

    payload = {
        "recorded_by": "benchmarks/test_perf_serve.py"
                       "::test_perf_serve_recorded",
        "environment": bench_environment(),
        "stream": {
            "n_drives": len(profiles),
            "n_samples": len(samples),
        },
        "scoring_throughput": {
            "push_s": push_s,
            "push_many_s": push_many_s,
            "push_samples_per_s": len(samples) / push_s,
            "push_many_samples_per_s": len(samples) / push_many_s,
            "speedup": batch_speedup,
            "identical_verdicts": True,
        },
        "bundle_load": {
            "warm_load_s": warm_load_s,
            "note": "verify sha256 + decode trees; raw seconds are "
                    "context, not pinned",
        },
        "fleet_replay": {
            "serial_s": replay_s,
            "samples_per_s": len(samples) / replay_s,
        },
    }
    path = artifact_dir / "perf_serve.json"
    path.write_text(canonical_json_dumps(payload) + "\n")
