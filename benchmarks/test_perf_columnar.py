"""Columnar streaming core: one-batch-per-tick scoring throughput.

The cheap tier pins the contract that makes the columnar path safe to
ship: ``score_block`` over hour ticks serializes byte-identically to the
per-sample ``push`` loop on the same stream.  ``test_perf_columnar_recorded``
then measures the struct-of-arrays path — :meth:`StreamScorer.score_block`
with a :class:`~repro.core.columnar.ColumnStateStore`, no per-row verdict
materialization — against the ``push_many`` baseline recorded by
``benchmarks/test_perf_serve.py`` on the same stream shape (200 drives,
~39k samples), asserts the ``>= 10x`` floor, and writes the numbers to
``benchmarks/output/perf_columnar.json`` (the ``speedup`` ratio and the
``*samples_per_s`` throughputs are pinned by ``scripts/compare_bench.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_environment
from repro.core.serialize import canonical_json_dumps
from repro.serve.bundle import build_bundle
from repro.serve.scorer import StreamScorer


def _best_of(fn, repeat=3):
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def columnar_bundle(bench_report):
    return build_bundle(bench_report)


@pytest.fixture(scope="module")
def columnar_stream(bench_fleet):
    """The ``perf_serve`` stream shape: 200 drives, failed included."""
    dataset = bench_fleet.dataset
    profiles = (dataset.failed_profiles[:40] + dataset.good_profiles[:160])
    return [
        (profile.serial, int(hour), row)
        for profile in profiles
        for hour, row in zip(profile.hours, profile.matrix)
    ]


@pytest.fixture(scope="module")
def tick_blocks(columnar_stream):
    """The stream regrouped one batch per hour tick, column-major.

    Each tick carries the stream indices of its rows so columnar
    verdict lines can be scattered back into stream order for the
    byte-identity checks.
    """
    by_hour: dict[int, list[int]] = {}
    for index, (_, hour, _) in enumerate(columnar_stream):
        by_hour.setdefault(hour, []).append(index)
    ticks = []
    for hour in sorted(by_hour):
        indices = by_hour[hour]
        ticks.append((
            indices,
            [columnar_stream[i][0] for i in indices],
            [hour] * len(indices),
            np.array([columnar_stream[i][2] for i in indices],
                     dtype=np.float64),
        ))
    return ticks


def _columnar_lines(bundle, ticks, n_samples):
    """Score every tick block and return lines in stream order."""
    scorer = StreamScorer(bundle)
    lines: list[str | None] = [None] * n_samples
    for indices, serials, hours, matrix in ticks:
        block = scorer.score_block(serials, hours, matrix)
        for row, index in enumerate(indices):
            lines[index] = block.verdict_at(row).to_json_line()
    return lines


def test_tick_blocks_cover_stream(columnar_stream, tick_blocks):
    covered = sorted(i for tick in tick_blocks for i in tick[0])
    assert covered == list(range(len(columnar_stream)))


def test_columnar_verdicts_match_push(columnar_bundle, columnar_stream,
                                      tick_blocks):
    """Tick-batched ``score_block`` is byte-identical to ``push``."""
    subset = columnar_stream[:2000]
    sequential = StreamScorer(columnar_bundle)
    expected = [sequential.push(*sample).to_json_line() for sample in subset]
    lines = _columnar_lines(columnar_bundle, tick_blocks,
                            len(columnar_stream))
    assert lines[:2000] == expected


@pytest.mark.tier2
def test_perf_columnar_recorded(columnar_bundle, columnar_stream,
                                tick_blocks, artifact_dir):
    """Record columnar block scoring against the ``push_many`` baseline.

    Byte-identity over the full stream is asserted before any timing —
    once through hour ticks, once with the stream as a single block (a
    duplicate-heavy batch, exercising the occurrence-ordered ring
    write) — so the recorded speedup is verdict-for-verdict on the same
    stream.  The headline compares one ``push_many`` call against one
    ``score_block`` call on the same samples; the timed columnar passes
    skip materialization entirely, which is the production daemon's hot
    loop.  Tick-granularity throughput (~29-row blocks here) rides
    along as the small-batch context number.
    """
    n_samples = len(columnar_stream)
    serials = [sample[0] for sample in columnar_stream]
    hours = [sample[1] for sample in columnar_stream]
    matrix = np.array([sample[2] for sample in columnar_stream],
                      dtype=np.float64)

    baseline = StreamScorer(columnar_bundle)
    expected = [verdict.to_json_line()
                for verdict in baseline.push_many(columnar_stream)]
    tick_lines = _columnar_lines(columnar_bundle, tick_blocks, n_samples)
    block = StreamScorer(columnar_bundle).score_block(serials, hours, matrix)
    identical = (tick_lines == expected
                 and block.to_json_lines() == expected)
    assert identical

    push_many_s = _best_of(
        lambda: StreamScorer(columnar_bundle).push_many(columnar_stream),
        repeat=3)
    columnar_s = _best_of(
        lambda: StreamScorer(columnar_bundle).score_block(
            serials, hours, matrix),
        repeat=5)
    speedup = push_many_s / columnar_s
    assert speedup >= 10.0, (
        f"columnar block scoring only {speedup:.1f}x over push_many")

    def tick_pass():
        scorer = StreamScorer(columnar_bundle)
        for _, tick_serials, tick_hours, tick_matrix in tick_blocks:
            scorer.score_block(tick_serials, tick_hours, tick_matrix)

    tick_s = _best_of(tick_pass, repeat=3)

    payload = {
        "recorded_by": "benchmarks/test_perf_columnar.py"
                       "::test_perf_columnar_recorded",
        "environment": bench_environment(),
        "stream": {
            "n_drives": 200,
            "n_samples": n_samples,
            "n_ticks": len(tick_blocks),
            "note": "same stream shape as perf_serve.json",
        },
        "scoring_throughput": {
            "push_many_s": push_many_s,
            "columnar_s": columnar_s,
            "push_many_samples_per_s": n_samples / push_many_s,
            "columnar_samples_per_s": n_samples / columnar_s,
            "speedup": speedup,
            "identical_verdicts": identical,
        },
        "tick_scoring": {
            "tick_s": tick_s,
            "tick_samples_per_s": n_samples / tick_s,
            "rows_per_tick": n_samples / len(tick_blocks),
            "note": "one score_block call per hour tick; small-batch "
                    "overhead context, not the headline",
        },
    }
    path = artifact_dir / "perf_columnar.json"
    path.write_text(canonical_json_dumps(payload) + "\n")
