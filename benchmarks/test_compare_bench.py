"""Tier-2 gate for ``scripts/compare_bench.py`` and the ML perf baseline.

Exercises the regression differ against the committed
``benchmarks/output/perf_ml.json``: the baseline compared to itself is
clean (exit 0), and a candidate whose SVC connectivity speedup dropped
30% trips the 20% threshold (exit 1).  The serving-plane throughput
keys (``*samples_per_s`` in ``perf_serve.json`` / ``perf_daemon.json``
/ ``perf_columnar.json``) are pinned the same way, including numeric
leaves of dict-valued keys like ``sharded_samples_per_s``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "compare_bench.py"
BASELINE = REPO_ROOT / "benchmarks" / "output" / "perf_ml.json"


def _run(args):
    return subprocess.run([sys.executable, str(SCRIPT)] + args,
                          capture_output=True, text=True)


@pytest.mark.tier2
def test_committed_baseline_compares_clean_to_itself():
    assert BASELINE.exists(), "run benchmarks/test_ml_microbench.py first"
    result = _run([str(BASELINE), str(BASELINE)])
    assert result.returncode == 0, result.stderr
    assert "svc_connectivity_n500.speedup" in result.stdout
    assert "REGRESSION" not in result.stdout


@pytest.mark.tier2
def test_regressed_candidate_fails(tmp_path):
    payload = json.loads(BASELINE.read_text())
    payload["svc_connectivity_n500"]["speedup"] *= 0.7
    doctored = tmp_path / "doctored.json"
    doctored.write_text(json.dumps(payload))
    result = _run([str(BASELINE), str(doctored)])
    assert result.returncode == 1
    assert "svc_connectivity_n500.speedup" in result.stderr

    # A drop inside the allowance passes.
    payload = json.loads(BASELINE.read_text())
    payload["svc_connectivity_n500"]["speedup"] *= 0.9
    mild = tmp_path / "mild.json"
    mild.write_text(json.dumps(payload))
    assert _run([str(BASELINE), str(mild)]).returncode == 0


@pytest.mark.tier2
def test_samples_per_s_keys_are_pinned(tmp_path):
    """Throughput keys fail the differ on >20% drops, pass within."""
    baseline = {
        "scoring_throughput": {
            "columnar_s": 0.03,
            "columnar_samples_per_s": 1_000_000.0,
            "speedup": 40.0,
            "identical_verdicts": True,
        },
        "shard_scaling": {
            "sharded_samples_per_s": {"1": 50_000.0, "4": 150_000.0},
        },
    }
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(baseline))

    clean = _run([str(base_path), str(base_path)])
    assert clean.returncode == 0, clean.stderr
    assert "scoring_throughput.columnar_samples_per_s" in clean.stdout
    assert "shard_scaling.sharded_samples_per_s.4" in clean.stdout
    # Wall-clock seconds and booleans stay context, never pinned.
    assert "columnar_s " not in clean.stdout
    assert "identical_verdicts" not in clean.stdout

    doctored = json.loads(base_path.read_text())
    doctored["scoring_throughput"]["columnar_samples_per_s"] *= 0.7
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(json.dumps(doctored))
    result = _run([str(base_path), str(bad_path)])
    assert result.returncode == 1
    assert "scoring_throughput.columnar_samples_per_s" in result.stderr

    mild = json.loads(base_path.read_text())
    mild["shard_scaling"]["sharded_samples_per_s"]["4"] *= 0.9
    mild_path = tmp_path / "mild.json"
    mild_path.write_text(json.dumps(mild))
    assert _run([str(base_path), str(mild_path)]).returncode == 0


@pytest.mark.tier2
def test_missing_pinned_metric_fails(tmp_path):
    payload = json.loads(BASELINE.read_text())
    del payload["hmm_baum_welch_150x24x4"]
    pruned = tmp_path / "pruned.json"
    pruned.write_text(json.dumps(payload))
    result = _run([str(BASELINE), str(pruned)])
    assert result.returncode == 1
    assert "missing from candidate" in result.stderr
