"""Bench F1 — Figure 1: failed-drive profile durations.

Paper: 78.5% of failed drives have profiles longer than 10 days; 51.3%
carry the full 20-day profile.
"""

from repro.experiments import fig01_profile_durations


def test_fig01_profile_durations(benchmark, bench_fleet, save_artifact):
    result = benchmark.pedantic(fig01_profile_durations.run,
                                args=(bench_fleet,), rounds=3, iterations=1)
    save_artifact(result)
    assert 0.6 < result.data["fraction_over_10_days"] <= 1.0
    assert 0.35 < result.data["fraction_full_20_days"] < 0.7
