"""Bench F2 — Figure 2: attribute distributions over failure records.

Paper: CPSC/R-CPSC/RUE/SER/HFW/HER vary little among 90% of records;
RRER/TC/SUT/POH/RSC/R-RSC vary medium-to-large.
"""

import numpy as np

from repro.experiments import fig02_attribute_boxes


def test_fig02_attribute_boxes(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig02_attribute_boxes.run,
                                args=(bench_report,), rounds=3, iterations=1)
    save_artifact(result)
    spread = result.data["central_90_spread"]
    small = np.mean([spread[s] for s in ("CPSC", "R-CPSC", "SER", "HFW",
                                         "HER")])
    large = np.mean([spread[s] for s in ("TC", "SUT", "POH", "RSC",
                                         "R-RSC")])
    assert small < large
