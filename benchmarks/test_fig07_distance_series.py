"""Bench F7 — Figure 7: distance-to-failure series of the centroids.

Paper: G1/G3 fluctuate until the final descent; G2 decreases
monotonically over the whole profile.
"""

from repro.experiments import fig07_distance_series


def test_fig07_distance_series(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig07_distance_series.run,
                                args=(bench_report,), rounds=3, iterations=1)
    save_artifact(result)
    trend = result.data["descent_trend"]
    assert trend["group2"] < -0.9
    assert trend["group2"] < trend["group1"]
    assert trend["group2"] < trend["group3"]
