"""Bench A1 — ablation: Euclidean vs Mahalanobis distance.

Paper: Euclidean characterizes the low-distance (near-failure) changes
better; the low Mahalanobis distances are "all the same".
"""

from repro.experiments import ablation_distance


def test_ablation_distance(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(ablation_distance.run, args=(bench_report,),
                                rounds=1, iterations=1)
    save_artifact(result)
    assert result.data["euclidean_wins"]
