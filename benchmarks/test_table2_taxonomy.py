"""Bench T2 — Table II: failure taxonomy and population mix.

Paper: logical 59.6%, bad sector 7.6%, read/write head 32.8%.
"""

import pytest

from repro.experiments import table2_taxonomy


def test_table2_taxonomy(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(table2_taxonomy.run, args=(bench_report,),
                                rounds=3, iterations=1)
    save_artifact(result)
    fractions = result.data["fractions"]
    assert fractions["LOGICAL"] == pytest.approx(0.596, abs=0.08)
    assert fractions["BAD_SECTOR"] == pytest.approx(0.076, abs=0.05)
    assert fractions["HEAD"] == pytest.approx(0.328, abs=0.08)
