"""Bench A5 — capstone extension: RAID data-loss risk and protection.

Target shape: reactive RAID-5 loses data predominantly through the
single-failure + latent-sector channel of Section I; RAID-6 and
signature-driven proactive migration each remove most of that risk, and
logical failures give the least warning.
"""

from repro.experiments import raid_protection


def test_raid_protection(benchmark, bench_fleet, bench_report, save_artifact):
    result = benchmark.pedantic(raid_protection.run,
                                args=(bench_fleet, bench_report),
                                rounds=1, iterations=1)
    save_artifact(result)
    rates = result.data["loss_rates"]
    assert rates["reactive_RAID5"] > 0
    assert rates["reactive_RAID6"] <= rates["reactive_RAID5"] / 2
    assert rates["proactive_RAID5"] < rates["reactive_RAID5"]
    leads = result.data["median_leads"]
    assert leads["group1"] <= leads["group2"]
    assert leads["group1"] <= leads["group3"]
