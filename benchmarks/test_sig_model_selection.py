"""Bench S1 — Section IV-C: signature-model selection by RMSE.

Paper: the revised second-order form wins for Group 1 (0.24/0.14/0.06
comparison), first order for Group 2, simplified third order for Group 3
(0.45/0.35/0.22/0.16).
"""

from repro.experiments import sig_model_selection


def test_sig_model_selection(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(sig_model_selection.run,
                                args=(bench_report,), rounds=3, iterations=1)
    save_artifact(result)
    assert result.data["group2"]["winner"] == "first_order"
    group1 = result.data["group1"]["rmse"]
    assert group1["revised_second_order"] <= group1["equation_2"]
    group3 = result.data["group3"]["rmse"]
    assert group3["simplified_third_order"] <= group3["equation_5"]
