"""Bench F9 — Figure 9: R/W attribute correlation with degradation.

Paper: RRER dominates Groups 1 and 3; RUE and R-RSC are the top two for
Group 2.
"""

from repro.experiments import fig09_rw_correlation


def test_fig09_rw_correlation(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig09_rw_correlation.run,
                                args=(bench_report,), rounds=3, iterations=1)
    save_artifact(result)
    g1 = result.data["group1"]["correlations"]
    assert max(abs(g1["RRER"]), abs(g1["HER"])) > 0.5
    g2_top = set(result.data["group2"]["top"])
    assert g2_top & {"RUE", "R-RSC", "CPSC", "R-CPSC"}
