"""Whole-daemon chaos drill: SIGKILL ``repro-serve daemon``, recover, diff.

The shard-level kill drills live in the tier-1 recovery suite; this
bench kills the *entire serving process* with SIGKILL at a seeded point
mid-stream — no drain, no final snapshot, alert sink hard-down the
whole time — then restarts it on the same WAL directory and dead-letter
file.  The pinned claims:

* the client-collected verdict stream (first daemon's replies plus the
  restarted daemon's) is byte-identical to an uninterrupted
  ``repro-serve score`` run;
* the dead-letter file holds exactly the alerting subset, in stream
  order, byte-identical lines — nothing lost in the crash, nothing
  duplicated by recovery;
* ``repro-serve recover --dead-letter`` flushes the parked alerts
  through a healthy sink byte-for-byte and leaves the file empty.
"""

from __future__ import annotations

import csv
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from urllib.request import Request, urlopen

import numpy as np
import pytest

from repro.serve.bundle import build_bundle, save_bundle
from repro.serve.cli import main as serve_main

BLOCK_SIZE = 48

#: The sink every daemon in this drill is configured with: nothing
#: listens on the discard port, and the tiny timeout keeps each refused
#: delivery attempt instant.
DEAD_SINK = "webhook:http://127.0.0.1:9/hook|timeout=0.2"


@pytest.fixture(scope="module")
def chaos_bundle(bench_report):
    return build_bundle(bench_report)


@pytest.fixture(scope="module")
def chaos_bundle_path(chaos_bundle, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "fleet.bundle.json"
    save_bundle(chaos_bundle, path)
    return path


@pytest.fixture(scope="module")
def sample_rows(bench_fleet):
    """A small mixed stream: enough blocks for an interior kill point."""
    dataset = bench_fleet.dataset
    profiles = dataset.failed_profiles[:4] + dataset.good_profiles[:10]
    rows = []
    for profile in profiles:
        keep = None if profile.failed else 8
        for hour, row in zip(profile.hours[:keep], profile.matrix[:keep]):
            rows.append((profile.serial, int(hour),
                         [float(v) for v in row]))
    return rows


@pytest.fixture(scope="module")
def score_reference(chaos_bundle, chaos_bundle_path, sample_rows,
                    tmp_path_factory):
    """Uninterrupted ``repro-serve score`` bytes for the sample stream."""
    root = tmp_path_factory.mktemp("chaos-golden")
    stream = root / "stream.csv"
    with open(stream, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["serial", "hour", *chaos_bundle.attributes])
        for serial, hour, values in sample_rows:
            writer.writerow([serial, hour, *(repr(v) for v in values)])
    output = root / "score.jsonl"
    assert serve_main(["score", "--bundle", str(chaos_bundle_path),
                       "--input", str(stream),
                       "--output", str(output)]) == 0
    return output.read_bytes()


def _blocks(rows):
    return [rows[i:i + BLOCK_SIZE]
            for i in range(0, len(rows), BLOCK_SIZE)]


def _post(url, body=b""):
    with urlopen(Request(url, data=body, method="POST"),
                 timeout=30) as response:
        return response.status, response.read()


def _spawn_daemon(bundle_path, port_file, wal_dir, dead_letter):
    """Launch ``repro-serve daemon`` as a real killable OS process."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (f"{src}:{env['PYTHONPATH']}"
                         if env.get("PYTHONPATH") else str(src))
    return subprocess.Popen(
        [sys.executable, "-c",
         "import sys; from repro.serve.cli import main; "
         "sys.exit(main(sys.argv[1:]))",
         "daemon", "--bundle", str(bundle_path), "--shards", "2",
         "--port", "0", "--port-file", str(port_file),
         "--wal-dir", str(wal_dir), "--dead-letter", str(dead_letter),
         "--snapshot-interval-blocks", "4", "--alert-sink", DEAD_SINK],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _await_url(port_file, process, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon exited early with {process.returncode}")
        if port_file.exists() and port_file.read_text().strip():
            return f"http://127.0.0.1:{int(port_file.read_text())}"
        time.sleep(0.05)
    raise AssertionError("daemon never wrote its port file")


def _await_dead_letter(path, n_lines, deadline_s=120.0):
    """Wait for the delivery pipeline to park ``n_lines`` alerts."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        have = (len(path.read_text().splitlines()) if path.exists() else 0)
        if have >= n_lines:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"dead letter never reached {n_lines} lines")


def _alerting(lines):
    return [line for line in lines
            if json.loads(line)["level"] != "HEALTHY"]


@pytest.mark.tier2
def test_daemon_sigkill_recovery_byte_identical(chaos_bundle_path,
                                                sample_rows,
                                                score_reference, tmp_path):
    blocks = _blocks(sample_rows)
    reference_lines = score_reference.decode("utf-8").splitlines()
    block_lines = _blocks(reference_lines)
    assert len(blocks) >= 4, "stream too short for an interior kill"
    rng = np.random.default_rng(2026)
    kill_before = int(rng.integers(1, len(blocks)))

    wal_dir = tmp_path / "wal"
    dead_letter = tmp_path / "dead.jsonl"
    collected: list[str] = []

    def ingest(url, index):
        body = json.dumps({"samples": blocks[index]}).encode("utf-8")
        status, reply = _post(
            url + f"/ingest?verdicts=all&batch=chaos-{index}", body)
        assert status == 200
        collected.extend(reply.decode("utf-8").splitlines())

    first = _spawn_daemon(chaos_bundle_path, tmp_path / "port1",
                          wal_dir, dead_letter)
    try:
        url = _await_url(tmp_path / "port1", first)
        for index in range(kill_before):
            ingest(url, index)
        # Let delivery quiesce, then kill with no warning whatsoever.
        parked = sum(len(_alerting(lines))
                     for lines in block_lines[:kill_before])
        _await_dead_letter(dead_letter, parked)
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=30)
    finally:
        if first.poll() is None:
            first.kill()

    second = _spawn_daemon(chaos_bundle_path, tmp_path / "port2",
                           wal_dir, dead_letter)
    try:
        url = _await_url(tmp_path / "port2", second)
        for index in range(kill_before, len(blocks)):
            ingest(url, index)
        expected_parked = len(_alerting(reference_lines))
        _await_dead_letter(dead_letter, expected_parked)
        _post(url + "/drain")
        assert second.wait(timeout=60) == 0
    finally:
        if second.poll() is None:
            second.kill()

    # Claim 1: the stitched verdict stream is the uninterrupted stream.
    assert collected == reference_lines

    # Claim 2: the dead letter is exactly the alerting subset, in order.
    assert (dead_letter.read_text().splitlines()
            == _alerting(reference_lines))

    # Claim 3: recover --dead-letter flushes it byte-for-byte.
    flushed = tmp_path / "flushed.jsonl"
    assert serve_main(["recover", "--dead-letter", str(dead_letter),
                       "--alert-sink", f"jsonl:{flushed}"]) == 0
    assert flushed.read_text().splitlines() == _alerting(reference_lines)
    assert dead_letter.read_text() == ""
