"""Bench F4 — Figure 4: PCA scatter of the failure groups.

Paper: three separable groups of 258 / 33 / 142 records (population order
group1 > group3 > group2).
"""

from repro.experiments import fig04_pca_groups


def test_fig04_pca_groups(benchmark, bench_report, save_artifact):
    result = benchmark.pedantic(fig04_pca_groups.run, args=(bench_report,),
                                rounds=3, iterations=1)
    save_artifact(result)
    counts = result.data["counts"]
    assert counts["group1"] > counts["group3"] > counts["group2"]
