"""Tests for alert sinks: delivery shapes, failure typing, spec parsing.

The sink contract pinned here: every delivery failure surfaces as a
typed :class:`~repro.errors.SinkError` (never a bare ``OSError`` or
callback exception), JSONL output is the canonical verdict line format,
and the CLI's ``--alert-sink`` spec grammar round-trips into the right
sink class.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.errors import SinkError
from repro.serve.scorer import MonitorVerdict
from repro.serve.sinks import (
    AlertSink,
    CallbackAlertSink,
    JsonlAlertSink,
    WebhookAlertSink,
    parse_sink_spec,
)


def _verdict(serial="ZA1", hour=480, level="WATCH"):
    return MonitorVerdict(
        serial=serial, hour=hour, level=level, stage=0.42,
        likely_type="GRADUAL_WEAROUT", hours_remaining=120.0,
        stages={"GRADUAL_WEAROUT": 0.42}, remaining={"GRADUAL_WEAROUT": 120.0},
    )


# -- jsonl ------------------------------------------------------------------

def test_jsonl_sink_appends_canonical_lines(tmp_path):
    path = tmp_path / "alerts" / "out.jsonl"
    sink = JsonlAlertSink(path)
    assert not path.exists()  # lazy: no file until the first alert
    first, second = _verdict(), _verdict(serial="ZB7", level="CRITICAL")
    sink.emit(first)
    sink.emit(second)
    sink.close()
    lines = path.read_text().splitlines()
    assert lines == [first.to_json_line(), second.to_json_line()]
    assert json.loads(lines[0])["serial"] == "ZA1"


def test_jsonl_sink_close_is_idempotent(tmp_path):
    sink = JsonlAlertSink(tmp_path / "out.jsonl")
    sink.emit(_verdict())
    sink.close()
    sink.close()
    sink.emit(_verdict())  # reopens after close (append mode)
    sink.close()
    assert len((tmp_path / "out.jsonl").read_text().splitlines()) == 2


def test_jsonl_sink_write_failure_is_sink_error(tmp_path):
    target = tmp_path / "blocked"
    target.mkdir()
    sink = JsonlAlertSink(target)  # a directory: open() must fail
    with pytest.raises(SinkError, match="cannot write"):
        sink.emit(_verdict())


def test_jsonl_sink_describe_names_the_path(tmp_path):
    path = tmp_path / "out.jsonl"
    assert JsonlAlertSink(path).describe() == f"jsonl:{path}"


# -- webhook ----------------------------------------------------------------

class _WebhookHandler(BaseHTTPRequestHandler):
    """Records POST bodies; status code is set per-server."""

    def do_POST(self):  # noqa: N802 — http.server's contract
        length = int(self.headers.get("Content-Length", "0"))
        self.server.bodies.append(self.rfile.read(length))
        self.send_response(self.server.reply_status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def log_message(self, format, *args):
        pass


@pytest.fixture()
def webhook_server():
    server = HTTPServer(("127.0.0.1", 0), _WebhookHandler)
    server.bodies = []
    server.reply_status = 200
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://127.0.0.1:{server.server_address[1]}/hook"
    server.shutdown()
    thread.join(timeout=5)
    server.server_close()


def test_webhook_sink_posts_the_verdict(webhook_server):
    server, url = webhook_server
    verdict = _verdict()
    WebhookAlertSink(url).emit(verdict)
    assert server.bodies == [(verdict.to_json_line() + "\n").encode()]


def test_webhook_sink_non_2xx_is_sink_error(webhook_server):
    server, url = webhook_server
    server.reply_status = 500
    with pytest.raises(SinkError, match="answered 500"):
        WebhookAlertSink(url).emit(_verdict())


def test_webhook_sink_unreachable_is_sink_error():
    sink = WebhookAlertSink("http://127.0.0.1:1/hook", timeout_s=0.5)
    with pytest.raises(SinkError, match="unreachable"):
        sink.emit(_verdict())


def test_webhook_sink_rejects_non_http_urls():
    with pytest.raises(SinkError, match="http"):
        WebhookAlertSink("file:///tmp/x")


# -- callback ---------------------------------------------------------------

def test_callback_sink_hands_over_the_verdict():
    seen = []
    sink = CallbackAlertSink(seen.append)
    verdict = _verdict()
    sink.emit(verdict)
    assert seen == [verdict]
    assert sink.describe() == "callback:append"


def test_callback_exceptions_become_sink_errors():
    def explode(_verdict):
        raise RuntimeError("pager down")

    with pytest.raises(SinkError, match="RuntimeError: pager down"):
        CallbackAlertSink(explode).emit(_verdict())
    with pytest.raises(SinkError, match="callable"):
        CallbackAlertSink("not-a-function")


# -- base class and spec grammar --------------------------------------------

def test_base_sink_is_a_silent_null_device():
    sink = AlertSink()
    sink.emit(_verdict())
    sink.close()
    assert sink.describe() == "null"


def test_parse_sink_spec_round_trips(tmp_path):
    jsonl = parse_sink_spec(f"jsonl:{tmp_path}/a.jsonl")
    assert isinstance(jsonl, JsonlAlertSink)
    assert jsonl.path == tmp_path / "a.jsonl"
    webhook = parse_sink_spec("webhook:http://127.0.0.1:9/hook")
    assert isinstance(webhook, WebhookAlertSink)
    assert webhook.url == "http://127.0.0.1:9/hook"


@pytest.mark.parametrize("spec", ["jsonl", "jsonl:", "smoke:signals",
                                  "webhook:ftp://x"])
def test_parse_sink_spec_rejects_malformed(spec):
    with pytest.raises(SinkError):
        parse_sink_spec(spec)
