"""Tests for the flight recorder: bounded ring, tail, dumps, crash guard."""

import itertools
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder


def _recorder(capacity=4):
    ticks = itertools.count(100.0)
    return FlightRecorder(capacity=capacity, clock=lambda: next(ticks))


def test_record_returns_event_with_monotone_seq():
    recorder = _recorder()
    first = recorder.record("alert", "watch", serial="D1")
    second = recorder.record("alert", "critical", serial="D2")
    assert (first.seq, second.seq) == (0, 1)
    assert first.wall_time == 100.0
    assert first.context == {"serial": "D1"}
    assert len(recorder) == 2


def test_ring_evicts_oldest_and_counts_drops():
    recorder = _recorder(capacity=3)
    for i in range(5):
        recorder.record("alert", f"event-{i}")
    assert len(recorder) == 3
    assert recorder.total_recorded == 5
    assert recorder.dropped == 2
    assert [event.message for event in recorder.tail()] == [
        "event-2", "event-3", "event-4"]


def test_tail_returns_most_recent_oldest_first():
    recorder = _recorder(capacity=8)
    for i in range(6):
        recorder.record("lifecycle", f"e{i}")
    assert [event.message for event in recorder.tail(2)] == ["e4", "e5"]
    assert recorder.tail(0) == []
    assert len(recorder.tail(99)) == 6
    with pytest.raises(ObservabilityError, match="tail length"):
        recorder.tail(-1)


def test_events_of_filters_by_kind():
    recorder = _recorder()
    recorder.record("alert", "a")
    recorder.record("lifecycle", "b")
    recorder.record("alert", "c")
    assert [event.message for event in recorder.events_of("alert")] == [
        "a", "c"]


def test_dump_jsonl_round_trips(tmp_path):
    recorder = _recorder()
    recorder.record("alert", "watch", serial="D7", stage=-0.5)
    path = recorder.dump_jsonl(tmp_path / "ring.jsonl")
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert parsed == recorder.to_dicts()
    assert parsed[0]["context"] == {"serial": "D7", "stage": -0.5}
    assert not (tmp_path / "ring.jsonl.tmp").exists()


def test_dump_jsonl_unwritable_raises(tmp_path):
    with pytest.raises(ObservabilityError, match="cannot dump"):
        _recorder().dump_jsonl(tmp_path / "absent" / "ring.jsonl")


def test_guard_dumps_on_crash_with_final_crash_event(tmp_path):
    recorder = _recorder(capacity=16)
    recorder.record("alert", "before the crash")
    path = tmp_path / "crash.jsonl"
    with pytest.raises(ValueError, match="boom"):
        with recorder.guard(path):
            raise ValueError("boom")
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert events[0]["message"] == "before the crash"
    assert events[-1]["kind"] == "crash"
    assert "ValueError: boom" in events[-1]["message"]


def test_guard_clean_exit_writes_nothing(tmp_path):
    recorder = _recorder()
    path = tmp_path / "crash.jsonl"
    with recorder.guard(path):
        recorder.record("lifecycle", "fine")
    assert not path.exists()


def test_capacity_validation_and_default():
    with pytest.raises(ObservabilityError, match="capacity"):
        FlightRecorder(capacity=0)
    assert FlightRecorder().capacity == DEFAULT_CAPACITY
