"""Tests for PCA."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.pca import PCA


def test_first_component_follows_dominant_direction(rng):
    t = rng.normal(size=300)
    data = np.column_stack([t * 10.0, t * 10.0 + rng.normal(size=300) * 0.1])
    pca = PCA(1).fit(data)
    direction = pca.components_[0]
    expected = np.array([1.0, 1.0]) / np.sqrt(2.0)
    np.testing.assert_allclose(np.abs(direction), expected, atol=0.02)


def test_explained_variance_ratio_sums_to_one_for_full_rank(rng):
    data = rng.normal(size=(100, 4))
    pca = PCA(4).fit(data)
    assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)


def test_variance_ordering(rng):
    data = rng.normal(size=(200, 5)) * np.array([5.0, 4.0, 3.0, 2.0, 1.0])
    pca = PCA(5).fit(data)
    assert np.all(np.diff(pca.explained_variance_) <= 1e-9)


def test_transform_centers_data(rng):
    data = rng.normal(size=(150, 3)) + 100.0
    projected = PCA(2).fit_transform(data)
    np.testing.assert_allclose(projected.mean(axis=0), [0.0, 0.0],
                               atol=1e-9)


def test_inverse_transform_round_trips_full_rank(rng):
    data = rng.normal(size=(50, 3))
    pca = PCA(3).fit(data)
    restored = pca.inverse_transform(pca.transform(data))
    np.testing.assert_allclose(restored, data, atol=1e-9)


def test_components_are_orthonormal(rng):
    data = rng.normal(size=(120, 6))
    pca = PCA(3).fit(data)
    gram = pca.components_ @ pca.components_.T
    np.testing.assert_allclose(gram, np.eye(3), atol=1e-9)


def test_deterministic_sign_convention(rng):
    data = rng.normal(size=(80, 4))
    a = PCA(2).fit(data)
    b = PCA(2).fit(data.copy())
    np.testing.assert_allclose(a.components_, b.components_)
    for row in a.components_:
        assert row[np.argmax(np.abs(row))] > 0


def test_too_many_components_rejected(rng):
    with pytest.raises(ModelError):
        PCA(5).fit(rng.normal(size=(3, 4)))


def test_use_before_fit_raises():
    with pytest.raises(ModelError):
        PCA(2).transform(np.zeros((2, 2)))
