"""The examples must at least parse and import cleanly.

Running every example end to end is too slow for the unit suite (the
benchmarks and EXPERIMENTS.md cover outcomes); this guard catches the
cheap failure modes — syntax errors and broken imports after API
changes.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(EXAMPLE_FILES) >= 3  # the deliverable's minimum


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # top level only; main() is guarded
    assert callable(module.main)
