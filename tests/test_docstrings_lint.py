"""Regression gate: the public API surface stays documented.

Runs ``scripts/check_docstrings.py`` the way CI would, and unit-tests
the collector so a silently broken lint cannot pass the gate.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docstrings.py"

sys.path.insert(0, str(SCRIPT.parent))
from check_docstrings import collect_violations, missing_docstrings  # noqa: E402


def test_public_surface_is_documented():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"undocumented public definitions:\n{result.stderr}"
    )


def test_collector_flags_each_undocumented_kind(tmp_path):
    path = tmp_path / "module.py"
    path.write_text(
        "class Widget:\n"
        "    pass\n"
        "def tool():\n"
        "    pass\n"
    )
    found = missing_docstrings(path)
    assert [(kind, name) for _, kind, name in found] == [
        ("module", "module"), ("class", "Widget"), ("function", "tool"),
    ]


def test_collector_skips_private_and_nested(tmp_path):
    path = tmp_path / "module.py"
    path.write_text(
        '"""Documented module."""\n'
        "def _helper():\n"
        "    pass\n"
        "def public():\n"
        '    """Documented."""\n'
        "    def inner():\n"
        "        pass\n"
        "class Widget:\n"
        '    """Documented."""\n'
        "    def method(self):\n"
        "        pass\n"
    )
    assert missing_docstrings(path) == []


def test_reference_module_is_exempt():
    flagged = collect_violations()
    assert not any("ml/_reference.py" in line for line in flagged)


def test_collector_scans_a_tree(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("def tool():\n    pass\n")
    flagged = collect_violations(tmp_path)
    assert any("tool" in line for line in flagged)
    assert any("mod" in line for line in flagged)
