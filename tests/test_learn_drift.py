"""Drift-detector unit tests: warmup, hysteresis, cooldown, freeze.

Everything runs on small synthetic streams with hand-picked shifts so
every suppression layer of :class:`repro.learn.drift.DriftDetector` is
exercised in isolation — and the whole thing is pinned deterministic:
the same blocks in the same order produce byte-identical alarms.
"""

import numpy as np
import pytest

from repro.core.serialize import canonical_json_dumps
from repro.errors import LearnError
from repro.learn.drift import DriftAlarm, DriftDetector, DriftPolicy

ATTRS = ("alpha", "beta")


def _baseline_blocks(n_blocks=8, n=64, seed=0):
    """Stable two-column blocks: N(0, 1) and N(10, 2)."""
    rng = np.random.default_rng(seed)
    return [np.column_stack([rng.normal(0.0, 1.0, n),
                             rng.normal(10.0, 2.0, n)])
            for _ in range(n_blocks)]


def _shifted_block(n=64, seed=99, shift=3.0):
    """A block whose first column's mean has moved by ``shift`` sigma."""
    rng = np.random.default_rng(seed)
    return np.column_stack([rng.normal(shift, 1.0, n),
                            rng.normal(10.0, 2.0, n)])


def _warm_detector(policy=None, **kwargs):
    policy = policy or DriftPolicy(warmup_samples=256, min_consecutive=2,
                                   cooldown_blocks=4, **kwargs)
    detector = DriftDetector(ATTRS, policy=policy)
    for block in _baseline_blocks():
        assert detector.update(block) == []
    assert detector.warmed_up
    return detector


# -- policy validation ------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"warmup_samples": 0},
    {"z_threshold": 0.0},
    {"outlier_sigma": -1.0},
    {"share_threshold": 0.0},
    {"share_threshold": 1.0},
    {"min_consecutive": 0},
    {"cooldown_blocks": -1},
])
def test_policy_rejects_bad_knobs(kwargs):
    with pytest.raises(LearnError):
        DriftPolicy(**kwargs)


def test_detector_needs_attributes_and_matching_width():
    with pytest.raises(LearnError):
        DriftDetector(())
    detector = DriftDetector(ATTRS)
    with pytest.raises(LearnError, match="shape"):
        detector.update(np.zeros((4, 3)))
    with pytest.raises(LearnError):
        detector.update(np.zeros(4))


# -- warmup -----------------------------------------------------------------

def test_no_alarms_during_warmup_even_on_a_huge_shift():
    detector = DriftDetector(
        ATTRS, policy=DriftPolicy(warmup_samples=10_000, min_consecutive=1))
    for _ in range(6):
        assert detector.update(_shifted_block(shift=50.0)) == []
    assert not detector.warmed_up
    assert detector.baseline_samples == 6 * 64


def test_empty_block_is_a_noop():
    detector = _warm_detector()
    before = detector.blocks_seen
    assert detector.update(np.empty((0, len(ATTRS)))) == []
    assert detector.blocks_seen == before


# -- mean shift + hysteresis ------------------------------------------------

def test_single_drifting_block_does_not_fire():
    detector = _warm_detector()
    assert detector.update(_shifted_block()) == []


def test_consecutive_drifting_blocks_fire_one_mean_shift_alarm():
    detector = _warm_detector()
    assert detector.update(_shifted_block(seed=99)) == []
    alarms = detector.update(_shifted_block(seed=100))
    kinds = {(a.attribute, a.kind) for a in alarms}
    assert ("alpha", "mean_shift") in kinds
    assert all(a.attribute == "alpha" for a in alarms)
    alarm = next(a for a in alarms if a.kind == "mean_shift")
    assert alarm.score > detector.policy.z_threshold
    assert abs(alarm.observed - 3.0) < 1.0
    assert abs(alarm.baseline) < 1.0


def test_a_clean_block_resets_the_hysteresis_counter():
    detector = _warm_detector()
    assert detector.update(_shifted_block(seed=1)) == []
    assert detector.update(_baseline_blocks(1, seed=50)[0]) == []
    assert detector.update(_shifted_block(seed=2)) == []


# -- cooldown ---------------------------------------------------------------

def test_cooldown_silences_a_sustained_episode():
    detector = _warm_detector()
    detector.update(_shifted_block(seed=1))
    fired = detector.update(_shifted_block(seed=2))
    assert fired
    # The cooldown counter decrements on every subsequent block, so a
    # sustained episode stays silent for cooldown_blocks - 1 more
    # drifting blocks...
    for seed in range(3, 2 + detector.policy.cooldown_blocks):
        assert detector.update(_shifted_block(seed=seed)) == []
    assert detector.alarms_fired == len(fired)
    # ...and refires once the cooldown has fully elapsed.
    assert detector.update(_shifted_block(seed=40))
    assert detector.alarms_fired > len(fired)


# -- population share -------------------------------------------------------

def test_symmetric_outliers_fire_population_share_not_mean_shift():
    detector = _warm_detector()
    rng = np.random.default_rng(7)
    block = np.column_stack([rng.normal(0.0, 1.0, 64),
                             rng.normal(10.0, 2.0, 64)])
    # Half the rows at +/-10 sigma in equal numbers: the mean barely
    # moves but the outlier share is ~50%.
    block[:16, 0] = 10.0
    block[16:32, 0] = -10.0
    assert detector.update(block) == []
    alarms = detector.update(block)
    assert [(a.attribute, a.kind) for a in alarms] \
        == [("alpha", "population_share")]
    assert alarms[0].score > 0.4


# -- baseline freeze --------------------------------------------------------

def test_flagged_blocks_are_not_absorbed_into_the_baseline():
    detector = _warm_detector()
    frozen_at = detector.baseline_samples
    for seed in range(5):
        detector.update(_shifted_block(seed=seed))
    assert detector.baseline_samples == frozen_at


def test_clean_blocks_keep_refreshing_the_baseline():
    detector = _warm_detector()
    before = detector.baseline_samples
    detector.update(_baseline_blocks(1, seed=51)[0])
    assert detector.baseline_samples == before + 64


# -- determinism ------------------------------------------------------------

def test_identical_streams_produce_byte_identical_alarms():
    streams = []
    for _ in range(2):
        detector = _warm_detector()
        alarms = []
        for seed in range(12):
            alarms.extend(detector.update(_shifted_block(seed=seed)))
        streams.append(canonical_json_dumps(
            [a.to_payload() for a in alarms]))
    assert streams[0] == streams[1]


def test_describe_summarizes_operational_state():
    detector = _warm_detector()
    detector.update(_shifted_block(seed=1))
    detector.update(_shifted_block(seed=2))
    summary = detector.describe()
    assert summary["warmed_up"] is True
    assert summary["blocks_seen"] == detector.blocks_seen
    assert summary["alarms_fired"] == detector.alarms_fired > 0
    assert summary["warmup_samples"] == 256


def test_alarm_describe_is_one_line():
    alarm = DriftAlarm(attribute="alpha", kind="mean_shift", block_index=9,
                       score=5.25, baseline=0.0, observed=3.0, n_samples=64)
    line = alarm.describe()
    assert "alpha" in line and "mean_shift" in line and "block 9" in line
    assert "\n" not in line
