"""Tests for degradation-window extraction and signature derivation."""

import numpy as np
import pytest

from repro.core.signatures import (
    WindowParams,
    derive_signature,
    distance_to_failure,
    extract_degradation_window,
)
from repro.errors import SignatureError
from repro.ml.distance import MahalanobisDistance
from repro.smart.profile import HealthProfile


def synthetic_distances(window, exponent, plateau=200, level=2.0,
                        noise=0.0, seed=0):
    """Distance series: noisy plateau followed by a clean power-law descent."""
    rng = np.random.default_rng(seed)
    flat = level + rng.normal(0.0, noise, plateau)
    t = np.arange(window, -1, -1, dtype=np.float64)
    ramp = level * (t / window) ** exponent
    return np.concatenate([flat, ramp[1:]])


class TestWindowExtraction:
    @pytest.mark.parametrize("window,exponent", [(3, 2.0), (12, 2.0),
                                                 (20, 3.0), (350, 1.0)])
    def test_recovers_planted_window(self, window, exponent):
        distances = synthetic_distances(window, exponent, noise=0.02)
        extracted = extract_degradation_window(distances)
        assert abs(extracted.size - window) <= max(2, int(0.1 * window))

    def test_monotone_series_spans_whole_profile(self):
        t = np.arange(400, -1, -1, dtype=np.float64)
        distances = 2.0 * t / 400.0
        extracted = extract_degradation_window(distances)
        assert extracted.size >= 375

    def test_window_distances_end_at_zero(self):
        distances = synthetic_distances(10, 2.0)
        extracted = extract_degradation_window(distances)
        assert extracted.distances[-1] == 0.0
        assert extracted.distances.shape == (extracted.size + 1,)

    def test_single_sample_spikes_do_not_truncate(self):
        distances = synthetic_distances(50, 1.0, noise=0.0)
        distances[-25] += 1.5  # isolated spike mid-window
        extracted = extract_degradation_window(distances)
        assert extracted.size >= 40

    def test_last_record_must_be_failure(self):
        with pytest.raises(SignatureError):
            extract_degradation_window(np.array([3.0, 2.0, 1.0]))

    def test_needs_two_records(self):
        with pytest.raises(SignatureError):
            extract_degradation_window(np.array([0.0]))

    def test_params_validation(self):
        with pytest.raises(SignatureError):
            WindowParams(dip_tolerance=0.0)
        with pytest.raises(SignatureError):
            WindowParams(min_window=0)


class TestDegradationValues:
    def test_normalized_to_minus_one_zero(self):
        distances = synthetic_distances(10, 2.0)
        window = extract_degradation_window(distances)
        t, s = window.degradation_values()
        assert s[-1] == pytest.approx(-1.0)   # failure event
        assert s.max() == pytest.approx(0.0)  # largest distance
        assert t[-1] == 0.0
        assert t[0] == window.size

    def test_degenerate_window_rejected(self):
        from repro.core.signatures import DegradationWindow
        window = DegradationWindow(size=2, distances=np.zeros(3))
        with pytest.raises(SignatureError):
            window.degradation_values()


class TestDistanceToFailure:
    def test_euclidean_series(self, small_normalized):
        profile = small_normalized.failed_profiles[0]
        distances = distance_to_failure(profile)
        assert distances.shape == (len(profile),)
        assert distances[-1] == 0.0
        assert np.all(distances >= 0.0)

    def test_mahalanobis_requires_fitted_metric(self, small_normalized):
        profile = small_normalized.failed_profiles[0]
        with pytest.raises(SignatureError):
            distance_to_failure(profile, metric="mahalanobis")
        metric = MahalanobisDistance().fit(
            small_normalized.stacked_records()[0]
        )
        distances = distance_to_failure(profile, metric="mahalanobis",
                                        mahalanobis=metric)
        assert distances[-1] == pytest.approx(0.0, abs=1e-6)

    def test_unknown_metric_rejected(self, small_normalized):
        with pytest.raises(SignatureError):
            distance_to_failure(small_normalized.failed_profiles[0],
                                metric="cosine")


class TestDeriveSignature:
    def _profile_from_distances(self, distances):
        """Build a profile whose distance-to-failure equals ``distances``.

        One attribute carries the planted shape; the rest are constant.
        """
        n = distances.shape[0]
        matrix = np.zeros((n, 12))
        matrix[:, 0] = distances  # failure record value is 0
        return HealthProfile("synthetic", np.arange(n), matrix, failed=True)

    @pytest.mark.parametrize("exponent,window", [(1.0, 300), (2.0, 8),
                                                 (3.0, 20)])
    def test_recovers_canonical_order(self, exponent, window):
        distances = synthetic_distances(window, exponent, noise=0.01,
                                        plateau=60)
        profile = self._profile_from_distances(distances)
        signature = derive_signature(profile)
        assert signature.best_canonical_order == int(exponent)

    def test_free_fits_cover_orders(self):
        distances = synthetic_distances(20, 2.0)
        signature = derive_signature(self._profile_from_distances(distances))
        assert [fit.order for fit in signature.polynomial_fits] == [1, 2, 3]
        assert signature.best_fit.rmse == min(
            fit.rmse for fit in signature.polynomial_fits
        )

    def test_window_size_exposed(self):
        distances = synthetic_distances(15, 2.0)
        signature = derive_signature(self._profile_from_distances(distances))
        assert signature.window_size == signature.window.size
