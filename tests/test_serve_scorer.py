"""Tests for the streaming scorer — the byte-identity golden contract."""

import numpy as np
import pytest

from repro.core.monitor import AlertLevel, DegradationMonitor
from repro.core.prediction import DegradationPredictor
from repro.errors import ServeError
from repro.obs.observer import TelemetryObserver
from repro.serve.bundle import build_bundle, load_bundle, save_bundle
from repro.serve.scorer import MonitorVerdict, StreamScorer, replay_fleet


@pytest.fixture(scope="module")
def loaded_bundle(mid_report, tmp_path_factory):
    """A bundle that went through a full disk round trip."""
    bundle = build_bundle(mid_report, seed=7)
    path = tmp_path_factory.mktemp("scorer") / "fleet.bundle.json"
    save_bundle(bundle, path)
    return load_bundle(path)


@pytest.fixture(scope="module")
def reference_monitor(mid_report):
    """The offline monitor built from never-serialized in-memory models."""
    predictor = DegradationPredictor(seed=7)
    predictor.evaluate_all(mid_report.dataset, mid_report.categorization)
    return DegradationMonitor(predictor, mid_report.dataset.normalizer)


@pytest.fixture(scope="module")
def stream_profiles(mid_fleet):
    """A mixed failed/good slice of the fleet, raw records."""
    dataset = mid_fleet.dataset
    return dataset.failed_profiles[:6] + dataset.good_profiles[:6]


def _lines(verdicts):
    return [v.to_json_line() for v in verdicts]


def test_scorer_matches_offline_replay_byte_for_byte(
        loaded_bundle, reference_monitor, stream_profiles):
    """The golden contract: saved->loaded->streamed == offline replay."""
    scorer = StreamScorer(loaded_bundle)
    for profile in stream_profiles:
        offline = [MonitorVerdict.from_alert(alert).to_json_line()
                   for alert in reference_monitor.replay(profile)]
        streamed = _lines(scorer.replay_profile(profile))
        assert streamed == offline


def test_push_many_equals_push(loaded_bundle, stream_profiles):
    samples = [
        (profile.serial, int(hour), row)
        for profile in stream_profiles
        for hour, row in zip(profile.hours, profile.matrix)
    ]
    one_by_one = StreamScorer(loaded_bundle)
    batched = StreamScorer(loaded_bundle)
    sequential = [one_by_one.push(*sample) for sample in samples]
    batch = batched.push_many(samples)
    assert _lines(batch) == _lines(sequential)
    assert one_by_one.samples_scored == batched.samples_scored
    assert one_by_one.alerts_emitted == batched.alerts_emitted


def test_push_many_empty_is_noop(loaded_bundle):
    scorer = StreamScorer(loaded_bundle)
    assert scorer.push_many([]) == []
    assert scorer.samples_scored == 0


def test_score_block_matches_push_lazily(loaded_bundle, stream_profiles):
    """The columnar surface: lazy block == per-sample push, byte for byte."""
    samples = [
        (profile.serial, int(hour), row)
        for profile in stream_profiles
        for hour, row in zip(profile.hours, profile.matrix)
    ]
    one_by_one = StreamScorer(loaded_bundle)
    columnar = StreamScorer(loaded_bundle)
    expected = [one_by_one.push(*sample).to_json_line()
                for sample in samples]
    block = columnar.score_block(
        [s for s, _, _ in samples], [h for _, h, _ in samples],
        np.vstack([np.asarray(r, dtype=np.float64).ravel()
                   for _, _, r in samples]))
    assert block.to_json_lines() == expected
    assert len(block) == len(samples)
    assert block.n_alerting == one_by_one.alerts_emitted
    assert columnar.samples_scored == one_by_one.samples_scored
    # Alerting rows materialize individually to the same verdicts.
    for row in block.alerting_rows():
        assert block.verdict_at(int(row)).to_json_line() == expected[row]
    # Per-drive state agrees with the scalar path afterwards.
    assert columnar.drives_tracked == one_by_one.drives_tracked
    for profile in stream_profiles:
        assert (columnar.level_of(profile.serial)
                is one_by_one.level_of(profile.serial))


def test_score_block_empty(loaded_bundle):
    scorer = StreamScorer(loaded_bundle)
    block = scorer.score_block(
        [], [], np.empty((0, loaded_bundle.n_attributes)))
    assert len(block) == 0
    assert block.verdicts() == []
    assert scorer.samples_scored == 0


def test_scorer_evicts_idle_drives(loaded_bundle, stream_profiles):
    observer = TelemetryObserver()
    scorer = StreamScorer(loaded_bundle, observer=observer)
    early, late = stream_profiles[0], stream_profiles[1]
    scorer.push(early.serial, 10, early.matrix[0])
    scorer.push(late.serial, 500, late.matrix[0])
    assert scorer.evict_idle(before_hour=100) == 1
    assert scorer.drives_tracked == 1
    assert scorer.level_of(early.serial) is AlertLevel.HEALTHY
    snapshot = observer.metrics.snapshot()
    assert snapshot["drives_evicted"]["value"] == 1
    assert snapshot["drives_tracked"]["value"] == 1
    # Nothing idle: no counter movement, no error.
    assert scorer.evict_idle(before_hour=100) == 0


@pytest.mark.parametrize("n_jobs,backend", [(2, "process"), (2, "thread")])
def test_parallel_replay_is_byte_identical(loaded_bundle, stream_profiles,
                                           n_jobs, backend):
    serial = replay_fleet(loaded_bundle, stream_profiles, n_jobs=1)
    parallel = replay_fleet(loaded_bundle, stream_profiles,
                            n_jobs=n_jobs, backend=backend)
    assert [_lines(v) for v in serial] == [_lines(v) for v in parallel]


def test_replay_fleet_preserves_input_order(loaded_bundle, stream_profiles):
    results = replay_fleet(loaded_bundle, stream_profiles, n_jobs=2)
    assert len(results) == len(stream_profiles)
    for profile, verdicts in zip(stream_profiles, results):
        assert len(verdicts) == len(profile.hours)
        assert all(v.serial == profile.serial for v in verdicts)


def test_failed_drive_alerts_and_state_tracks(loaded_bundle, mid_fleet):
    scorer = StreamScorer(loaded_bundle)
    failed = mid_fleet.dataset.failed_profiles[0]
    verdicts = scorer.replay_profile(failed)
    assert verdicts[-1].level == AlertLevel.CRITICAL.name
    assert scorer.level_of(failed.serial) is AlertLevel.CRITICAL
    assert failed.serial in scorer.drives_at(AlertLevel.CRITICAL)
    assert scorer.alerts_emitted > 0
    assert scorer.drives_tracked == 1


def test_record_width_mismatch_is_typed(loaded_bundle):
    scorer = StreamScorer(loaded_bundle)
    with pytest.raises(ServeError, match="attributes"):
        scorer.push("D1", 0, np.zeros(loaded_bundle.n_attributes + 1))


def test_verdict_json_is_canonical(loaded_bundle, stream_profiles):
    scorer = StreamScorer(loaded_bundle)
    verdict = scorer.replay_profile(stream_profiles[0])[0]
    line = verdict.to_json_line()
    assert line == verdict.to_json_line()     # stable
    assert "\n" not in line
    import json
    payload = json.loads(line)
    assert list(payload) == sorted(payload)   # sorted keys
    assert payload["serial"] == stream_profiles[0].serial


def test_scorer_emits_telemetry(loaded_bundle, stream_profiles):
    observer = TelemetryObserver()
    scorer = StreamScorer(loaded_bundle, observer=observer)
    scorer.replay_profile(stream_profiles[0])
    snapshot = observer.metrics.snapshot()
    assert snapshot["samples_scored"]["value"] == scorer.samples_scored
    assert snapshot["drives_tracked"]["value"] == 1
