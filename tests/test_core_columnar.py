"""Tests for the struct-of-arrays drive state store and block scoring.

Two contracts are pinned here.  First, :class:`ColumnStateStore` is a
drop-in for the deque-backed :class:`DriveStateStore`: every scalar
surface matches, ``record_block`` is semantically identical to a
sequential ``record`` loop (including duplicate serials within one
block), rows are recycled on eviction and the arrays grow by doubling.
Second, the vectorized scoring path is *bit-identical* to the scalar
one: a monitor on a columnar store emits exactly the alerts the
per-sample ``observe`` loop produces — for empty blocks, duplicate
serials in one tick, out-of-order hours, and drives reappearing after
eviction — and materialized rescue estimates go through the scalar
libm inversion, never a vectorized ``pow``.
"""

import json

import numpy as np
import pytest

from repro.core.columnar import AlertBlock, ColumnStateStore
from repro.core.monitor import AlertLevel, DegradationMonitor, DriveStateStore
from repro.core.prediction import DegradationPredictor
from repro.core.rescue import rescue_estimate
from repro.core.taxonomy import FailureType
from repro.errors import ReproError


def _filled_stores(history=4, n_attributes=3, n_drives=6, records=9, seed=3):
    """The same random stream recorded into both store flavors."""
    rng = np.random.default_rng(seed)
    deque_store = DriveStateStore(history)
    column_store = ColumnStateStore(history, initial_rows=2)
    for step in range(records):
        for drive in range(n_drives):
            serial = f"drive-{drive}"
            vector = rng.normal(size=n_attributes)
            level = AlertLevel(int(rng.integers(0, 3)))
            for store in (deque_store, column_store):
                store.record(serial, vector, level, hour=step)
    return deque_store, column_store


# -- scalar surface parity ---------------------------------------------------

def test_scalar_surface_matches_deque_store():
    deque_store, column_store = _filled_stores()
    assert column_store.serials() == deque_store.serials()
    assert column_store.n_tracked == deque_store.n_tracked
    for level in AlertLevel:
        assert column_store.drives_at(level) == deque_store.drives_at(level)
    for serial in deque_store.serials():
        assert column_store.level_of(serial) is deque_store.level_of(serial)
        assert np.array_equal(column_store.history_of(serial),
                              deque_store.history_of(serial))
    assert column_store.snapshot() == deque_store.snapshot()


def test_ring_wraparound_matches_deque():
    deque_store = DriveStateStore(3)
    column_store = ColumnStateStore(3)
    for step in range(7):
        vector = np.full(2, float(step))
        deque_store.record("d", vector, AlertLevel.HEALTHY, hour=step)
        column_store.record("d", vector, AlertLevel.HEALTHY, hour=step)
    history = column_store.history_of("d")
    assert np.array_equal(history, deque_store.history_of("d"))
    # Oldest-first: records 4, 5, 6 survive in that order.
    assert history[:, 0].tolist() == [4.0, 5.0, 6.0]


def test_history_of_unknown_serial_raises():
    store = ColumnStateStore(3)
    with pytest.raises(ReproError, match="no observations"):
        store.history_of("never-seen")


def test_constructor_validation():
    with pytest.raises(ReproError, match="history_hours"):
        ColumnStateStore(0)
    with pytest.raises(ReproError, match="initial_rows"):
        ColumnStateStore(3, initial_rows=0)


def test_record_width_mismatch_is_typed():
    store = ColumnStateStore(3)
    store.record("d", np.zeros(4), AlertLevel.HEALTHY)
    with pytest.raises(ReproError, match="attributes"):
        store.record("d", np.zeros(5), AlertLevel.HEALTHY)
    with pytest.raises(ReproError, match="attributes"):
        store.record_block(["e"], np.zeros((1, 5)),
                           np.zeros(1, dtype=np.int8), [0])


# -- growth and recycling ----------------------------------------------------

def test_capacity_grows_by_doubling():
    store = ColumnStateStore(2, initial_rows=2)
    for drive in range(5):
        store.record(f"d{drive}", np.full(2, float(drive)),
                     AlertLevel.HEALTHY, hour=drive)
    assert store.capacity == 8
    assert store.n_tracked == 5
    for drive in range(5):
        assert store.history_of(f"d{drive}")[0, 0] == float(drive)


def test_evict_idle_recycles_rows():
    store = ColumnStateStore(2, initial_rows=2)
    for drive in range(4):
        store.record(f"d{drive}", np.zeros(2), AlertLevel.WATCH, hour=drive)
    capacity_before = store.capacity
    evicted = store.evict_idle(before_hour=2)
    assert evicted == 2
    assert store.drives_evicted == 2
    assert store.serials() == ["d2", "d3"]
    assert store.level_of("d0") is AlertLevel.HEALTHY
    with pytest.raises(ReproError):
        store.history_of("d0")
    assert store.capacity == capacity_before
    # Freed rows are handed to new drives before any growth.
    store.record("d-new", np.ones(2), AlertLevel.HEALTHY, hour=9)
    assert store.capacity == capacity_before
    assert store.snapshot()["drives_evicted"] == 2
    # An all-idle cutoff empties the store.
    assert store.evict_idle(before_hour=100) == 3
    assert store.n_tracked == 0
    assert store.evict_idle(before_hour=100) == 0


def test_reappearing_drive_gets_fresh_history():
    store = ColumnStateStore(4)
    store.record("d", np.full(2, 1.0), AlertLevel.CRITICAL, hour=0)
    store.record("d", np.full(2, 2.0), AlertLevel.CRITICAL, hour=1)
    assert store.evict_idle(before_hour=5) == 1
    store.record("d", np.full(2, 7.0), AlertLevel.HEALTHY, hour=6)
    history = store.history_of("d")
    assert history.shape[0] == 1
    assert history[0, 0] == 7.0
    assert store.level_of("d") is AlertLevel.HEALTHY


def test_deque_store_evicts_too():
    store = DriveStateStore(4)
    store.record("a", np.zeros(2), AlertLevel.WATCH, hour=0)
    store.record("b", np.zeros(2), AlertLevel.WATCH, hour=5)
    assert store.evict_idle(before_hour=3) == 1
    assert store.drives_evicted == 1
    assert store.serials() == ["b"]
    assert store.snapshot()["drives_evicted"] == 1


# -- record_block vs sequential record ---------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_record_block_matches_sequential_record(seed):
    rng = np.random.default_rng(seed)
    history, n_attributes = 3, 2
    serial_pool = [f"d{i}" for i in range(5)]
    # Duplicate-heavy block: 40 samples over 5 drives, so most drives
    # repeat far beyond the ring capacity within the single block.
    serials = [serial_pool[i] for i in rng.integers(0, 5, size=40)]
    normalized = rng.normal(size=(40, n_attributes))
    level_codes = rng.integers(0, 3, size=40).astype(np.int8)
    hours = rng.integers(0, 50, size=40)

    sequential = ColumnStateStore(history, initial_rows=1)
    for i, serial in enumerate(serials):
        sequential.record(serial, normalized[i],
                          AlertLevel(int(level_codes[i])),
                          hour=int(hours[i]))
    blocked = ColumnStateStore(history, initial_rows=1)
    blocked.record_block(serials, normalized, level_codes, hours)

    assert blocked.serials() == sequential.serials()
    assert blocked.snapshot() == sequential.snapshot()
    for serial in sequential.serials():
        assert np.array_equal(blocked.history_of(serial),
                              sequential.history_of(serial))
    # The eviction clock advanced identically (max hour per drive).
    for cutoff in (0, 25, 51):
        assert (blocked.evict_idle(cutoff)
                == sequential.evict_idle(cutoff))


def test_record_block_empty_is_noop():
    store = ColumnStateStore(3)
    store.record_block([], np.empty((0, 4)), np.empty(0, dtype=np.int8), [])
    assert store.n_tracked == 0


def test_rows_of_requires_layout():
    store = ColumnStateStore(3)
    with pytest.raises(ReproError, match="no recorded attributes"):
        store.rows_of(["d"])
    store.record("d", np.zeros(2), AlertLevel.HEALTHY)
    assert store.rows_of(["d", "d"]).tolist() == [0, 0]


# -- lazy rescue inversion ---------------------------------------------------

def test_alert_estimates_use_scalar_rescue_math():
    """Materialized estimates are bitwise the scalar libm inversion.

    A dense stage grid including the order-3 (HEAD) regime where
    numpy's vectorized ``pow`` is known to drift from libm by an ulp:
    ``alert_at`` must route every estimate through the scalar
    ``rescue_estimate``, so each dataclass compares equal bit for bit.
    """
    types = tuple(FailureType)
    n = 1001
    grid = np.linspace(-1.2, 0.5, n)
    stages = np.vstack([grid, np.roll(grid, 100), np.roll(grid, 200)])
    likely_indices = np.argmin(stages, axis=0)
    level_codes = np.zeros(n, dtype=np.int8)
    block = AlertBlock([f"d{i}" for i in range(n)],
                       np.arange(n, dtype=np.int64),
                       stages, likely_indices, level_codes, types)
    for row in range(n):
        alert = block.alert_at(row)
        for type_index, failure_type in enumerate(types):
            expected = rescue_estimate(float(stages[type_index, row]),
                                       failure_type)
            assert alert.estimates[failure_type] == expected


# -- monitor parity: scalar vs columnar --------------------------------------

@pytest.fixture(scope="module")
def monitor_parts(mid_fleet, mid_report):
    predictor = DegradationPredictor(seed=7)
    predictor.evaluate_all(mid_report.dataset, mid_report.categorization)
    normalizer = mid_fleet.dataset.fit_normalizer()
    return predictor, normalizer, mid_fleet


def _monitor_pair(monitor_parts, history_hours=24):
    predictor, normalizer, _ = monitor_parts
    scalar = DegradationMonitor(predictor, normalizer,
                                history_hours=history_hours)
    columnar = DegradationMonitor(
        predictor, normalizer, history_hours=history_hours,
        state=ColumnStateStore(history_hours))
    return scalar, columnar


def _assert_alerts_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.serial == want.serial
        assert got.hour == want.hour
        assert got.level is want.level
        assert got.stage == want.stage          # bitwise, no tolerance
        assert got.likely_type is want.likely_type
        for failure_type in FailureType:
            assert (got.estimates[failure_type]
                    == want.estimates[failure_type])


def _tick_samples(fleet):
    """One duplicate-heavy, out-of-order tick of raw samples."""
    dataset = fleet.dataset
    failed = dataset.failed_profiles[0]
    good = dataset.good_profiles[0]
    samples = [
        (failed.serial, int(failed.hours[-1]), failed.matrix[-1]),
        (good.serial, int(good.hours[0]), good.matrix[0]),
        # The same drives again inside the very same block, with hours
        # running backwards relative to the rows above.
        (failed.serial, int(failed.hours[0]), failed.matrix[0]),
        (good.serial, int(good.hours[2]), good.matrix[2]),
        (failed.serial, int(failed.hours[-2]), failed.matrix[-2]),
    ]
    return samples


def test_empty_block_parity(monitor_parts):
    scalar, columnar = _monitor_pair(monitor_parts)
    for monitor in (scalar, columnar):
        block = monitor.observe_columns([], [], np.empty((0, 4)))
        assert len(block) == 0
        assert block.alerts() == []
        assert block.n_alerting == 0
        assert monitor.n_tracked == 0


def test_duplicate_and_out_of_order_tick_parity(monitor_parts):
    predictor, normalizer, fleet = monitor_parts
    samples = _tick_samples(fleet)
    scalar, columnar = _monitor_pair(monitor_parts)

    expected = [scalar.observe(serial, hour, record)
                for serial, hour, record in samples]
    block = columnar.observe_columns(
        [s for s, _, _ in samples], [h for _, h, _ in samples],
        np.vstack([np.asarray(r, dtype=np.float64).ravel()
                   for _, _, r in samples]))
    _assert_alerts_equal(block.alerts(), expected)

    # Post-tick drive state agrees too: levels and ring contents.
    assert columnar.state.serials() == scalar.state.serials()
    for serial in scalar.state.serials():
        assert columnar.level_of(serial) is scalar.level_of(serial)
        assert np.array_equal(columnar.history_of(serial),
                              scalar.history_of(serial))


def test_reappearance_after_eviction_parity(monitor_parts):
    predictor, normalizer, fleet = monitor_parts
    profile = fleet.dataset.good_profiles[1]
    scalar, columnar = _monitor_pair(monitor_parts)
    stream = [(profile.serial, int(hour), row)
              for hour, row in zip(profile.hours[:4], profile.matrix[:4])]

    for monitor in (scalar, columnar):
        monitor.observe_many(stream)
        assert monitor.state.evict_idle(
            before_hour=int(profile.hours[3]) + 1) == 1
        assert monitor.n_tracked == 0

    reappear = [(profile.serial, int(hour), row)
                for hour, row in zip(profile.hours[4:6],
                                     profile.matrix[4:6])]
    expected = [scalar.observe(*sample) for sample in reappear]
    actual = columnar.observe_block(
        [s for s, _, _ in reappear], [h for _, h, _ in reappear],
        np.vstack([np.asarray(r, dtype=np.float64).ravel()
                   for _, _, r in reappear]))
    _assert_alerts_equal(actual, expected)
    assert np.array_equal(columnar.history_of(profile.serial),
                          scalar.history_of(profile.serial))
    assert columnar.state.drives_evicted == 1


def test_block_shape_validation(monitor_parts):
    _, columnar = _monitor_pair(monitor_parts)
    with pytest.raises(ReproError, match="2-D"):
        columnar.observe_block(["d"], [0], np.zeros(3))
    with pytest.raises(ReproError, match="lengths disagree"):
        columnar.observe_block(["d"], [0, 1], np.zeros((1, 4)))


# -- crash-recovery state dumps ----------------------------------------------

def _dumped_store(seed=13):
    """A columnar store with growth, eviction and duplicates behind it."""
    rng = np.random.default_rng(seed)
    store = ColumnStateStore(3, initial_rows=2)
    for step in range(4):
        for drive in range(5):
            store.record(f"d{drive}", rng.normal(size=3),
                         AlertLevel(int(rng.integers(0, 3))), hour=step)
    store.evict_idle(before_hour=0)  # no-op, but exercises the counter path
    store.record("late", rng.normal(size=3), AlertLevel.WATCH, hour=9)
    store.evict_idle(before_hour=4)  # evicts d0..d4, frees their rows
    store.record("after", rng.normal(size=3), AlertLevel.CRITICAL, hour=10)
    return store


def test_dump_state_round_trips_exactly():
    store = _dumped_store()
    payload = json.loads(json.dumps(store.dump_state()))  # through the wire
    twin = ColumnStateStore.from_snapshot(payload)
    assert twin.serials() == store.serials()
    assert twin.n_tracked == store.n_tracked
    assert twin.capacity == store.capacity
    assert twin.drives_evicted == store.drives_evicted
    for serial in store.serials():
        assert twin.level_of(serial) is store.level_of(serial)
        assert np.array_equal(twin.history_of(serial),
                              store.history_of(serial))
    # The twin's own dump is identical — dumps are a fixed point.
    assert json.dumps(twin.dump_state(), sort_keys=True) \
        == json.dumps(payload, sort_keys=True)


def test_restored_store_recycles_the_same_rows():
    """The free list survives the round trip in order, so the restored
    store hands freed rows to new drives exactly as the original."""
    store = _dumped_store()
    twin = ColumnStateStore.from_snapshot(store.dump_state())
    for name in ("n1", "n2", "n3"):
        store.record(name, np.ones(3), AlertLevel.HEALTHY, hour=20)
        twin.record(name, np.ones(3), AlertLevel.HEALTHY, hour=20)
    assert json.dumps(twin.dump_state(), sort_keys=True) \
        == json.dumps(store.dump_state(), sort_keys=True)


def test_restored_store_continues_identically_under_blocks():
    """Duplicate serials inside one block resolve identically after a
    restore — the in-tick occurrence state is derived, not lost."""
    rng = np.random.default_rng(5)
    store = _dumped_store()
    twin = ColumnStateStore.from_snapshot(store.dump_state())
    serials = ["after", "after", "late", "after", "fresh", "fresh"]
    matrix = rng.normal(size=(len(serials), 3))
    levels = rng.integers(0, 3, size=len(serials)).astype(np.int8)
    hours = [11] * len(serials)
    store.record_block(serials, matrix, levels, hours)
    twin.record_block(serials, matrix, levels, hours)
    assert json.dumps(twin.dump_state(), sort_keys=True) \
        == json.dumps(store.dump_state(), sort_keys=True)
    assert np.array_equal(twin.history_of("after"),
                          store.history_of("after"))


def test_empty_store_round_trips():
    store = ColumnStateStore(4, initial_rows=3)
    twin = ColumnStateStore.from_snapshot(store.dump_state())
    assert twin.serials() == []
    twin.record("first", np.zeros(2), AlertLevel.HEALTHY, hour=0)
    assert twin.serials() == ["first"]


def test_restore_rejects_malformed_payloads():
    store = ColumnStateStore(3)
    with pytest.raises(ReproError, match="'deque'"):
        store.restore({"kind": "deque", "history_hours": 3})
    with pytest.raises(ReproError, match="retains 5 hours"):
        store.restore({"kind": "columnar", "history_hours": 5,
                       "capacity": 1, "n_attributes": 1, "free": [],
                       "drives": {}})
    with pytest.raises(ReproError, match="malformed state dump"):
        store.restore({"kind": "columnar"})
    with pytest.raises(ReproError, match="outside the dumped layout"):
        store.restore({"kind": "columnar", "history_hours": 3,
                       "capacity": 1, "n_attributes": 2, "free": [],
                       "drives": {"d": {"row": 5, "level": 0,
                                        "last_hour": 0,
                                        "window": [[0.0, 0.0]]}}})
    with pytest.raises(ReproError, match="malformed state dump"):
        ColumnStateStore.from_snapshot({"kind": "columnar"})


def test_deque_store_round_trips_exactly():
    deque_store, _ = _filled_stores()
    payload = json.loads(json.dumps(deque_store.dump_state()))
    twin = DriveStateStore.from_snapshot(payload)
    assert twin.serials() == deque_store.serials()
    for serial in deque_store.serials():
        assert twin.level_of(serial) is deque_store.level_of(serial)
        assert np.array_equal(twin.history_of(serial),
                              deque_store.history_of(serial))
    assert json.dumps(twin.dump_state(), sort_keys=True) \
        == json.dumps(payload, sort_keys=True)
    with pytest.raises(ReproError, match="'columnar'"):
        twin.restore({"kind": "columnar", "history_hours": 4})
