"""Shadow-scorer tests: identity, divergence accounting, determinism.

A shadow run must observe without perturbing: the champion stream it
returns is byte-identical to a plain scorer, an identical challenger
produces a perfectly diagonal confusion matrix, and the frozen
:class:`~repro.learn.shadow.DivergenceReport` serializes to the same
bytes run after run.
"""

import numpy as np
import pytest

from repro.core.serialize import canonical_json_dumps
from repro.data.dataset import DiskDataset
from repro.errors import LearnError
from repro.learn.drill import blocked_stream
from repro.learn.shadow import DivergenceReport, ShadowScorer
from repro.serve.bundle import build_bundle, content_hash, stamp_lineage
from repro.serve.scorer import StreamScorer


@pytest.fixture(scope="module")
def champion(mid_report):
    return build_bundle(mid_report, seed=7)


@pytest.fixture(scope="module")
def blocks(mid_fleet):
    """A short mixed stream cut into daemon-sized blocks."""
    dataset = mid_fleet.dataset
    subset = DiskDataset(dataset.failed_profiles[:4]
                         + dataset.good_profiles[:12])
    return blocked_stream(subset, 128)


def _run_shadow(champion, challenger, blocks):
    shadow = ShadowScorer(champion, challenger)
    for serials, hours, matrix in blocks:
        shadow.score_block(serials, hours, matrix)
    return shadow


def test_attribute_mismatch_is_refused(champion):
    from dataclasses import replace

    renamed = replace(champion,
                      attributes=tuple(f"x_{name}"
                                       for name in champion.attributes))
    with pytest.raises(LearnError, match="attribute"):
        ShadowScorer(champion, renamed)


def test_report_before_any_samples_is_refused(champion):
    shadow = ShadowScorer(champion, champion)
    with pytest.raises(LearnError, match="no samples"):
        shadow.report()


def test_champion_stream_is_unperturbed_by_the_shadow(champion, blocks):
    plain = StreamScorer(champion)
    expected = []
    for serials, hours, matrix in blocks:
        expected.extend(plain.score_block(serials, hours,
                                          matrix).to_json_lines())
    shadow = ShadowScorer(champion, stamp_lineage(champion, champion))
    actual = []
    for serials, hours, matrix in blocks:
        champ_block, _chall = shadow.score_block(serials, hours, matrix)
        actual.extend(champ_block.to_json_lines())
    assert actual == expected


def test_identical_models_agree_everywhere(champion, blocks):
    challenger = stamp_lineage(champion, champion)  # same models, new tag
    report = _run_shadow(champion, challenger, blocks).report()
    assert report.n_samples == sum(len(s) for s, _h, _m in blocks)
    assert report.n_agree == report.n_samples
    assert report.agreement_rate == 1.0
    assert report.divergence == 0.0
    assert report.stage_delta_mean == 0.0
    assert report.alert_deltas == {}
    confusion = np.array(report.confusion)
    assert confusion.sum() == report.n_samples
    assert np.all(confusion == np.diag(np.diag(confusion)))


def test_report_names_both_bundles_and_generations(champion, blocks):
    challenger = stamp_lineage(champion, champion)
    report = _run_shadow(champion, challenger, blocks).report()
    assert report.champion_sha256 == content_hash(champion.to_payload())
    assert report.challenger_sha256 \
        == content_hash(challenger.to_payload())
    assert report.champion_generation == 0
    assert report.challenger_generation == 1


def test_report_payload_is_byte_identical_across_runs(champion, blocks):
    challenger = stamp_lineage(champion, champion)
    payloads = [
        canonical_json_dumps(
            _run_shadow(champion, challenger, blocks).report().to_payload())
        for _ in range(2)
    ]
    assert payloads[0] == payloads[1]


def test_agreement_properties_on_a_fabricated_report():
    report = DivergenceReport(
        champion_sha256="c" * 64, challenger_sha256="d" * 64,
        champion_generation=0, challenger_generation=1,
        n_samples=100, n_agree=90,
        confusion=((90, 5, 0), (3, 0, 0), (2, 0, 0)),
        stage_delta_mean=0.125,
        alert_deltas={"drive-b": {"champion_only": 2,
                                  "challenger_only": 0}},
    )
    assert report.agreement_rate == 0.9
    assert report.divergence == pytest.approx(0.1)
    payload = report.to_payload()
    assert payload["levels"] == ["HEALTHY", "WATCH", "CRITICAL"]
    assert payload["confusion"][0] == [90, 5, 0]
    assert list(payload["alert_deltas"]) == ["drive-b"]
