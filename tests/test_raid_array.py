"""Tests for RAID group failure semantics."""

import pytest

from repro.errors import ReproError
from repro.raid.array import DriveState, RaidLevel, evaluate_group


def good(serial, latent=False):
    return DriveState(serial=serial, has_latent_errors=latent)


def failing(serial, hour, latent=False, lead=None):
    return DriveState(serial=serial, failure_hour=hour,
                      has_latent_errors=latent, warning_lead_hours=lead)


def test_no_failures_no_loss():
    members = [good(f"d{i}") for i in range(8)]
    outcome = evaluate_group(members, RaidLevel.RAID5)
    assert outcome.survived
    assert outcome.n_failures == 0


def test_single_clean_failure_survives_raid5():
    members = [failing("f", 100)] + [good(f"d{i}") for i in range(7)]
    outcome = evaluate_group(members, RaidLevel.RAID5)
    assert outcome.survived
    assert outcome.n_failures == 1


def test_latent_error_during_rebuild_defeats_raid5():
    """The paper's Section I scenario."""
    members = ([failing("f", 100)] + [good("lat", latent=True)]
               + [good(f"d{i}") for i in range(6)])
    outcome = evaluate_group(members, RaidLevel.RAID5)
    assert outcome.data_loss
    assert outcome.loss_cause == "latent_error"


def test_latent_error_survives_raid6_single_failure():
    members = ([failing("f", 100)] + [good("lat", latent=True)]
               + [good(f"d{i}") for i in range(6)])
    outcome = evaluate_group(members, RaidLevel.RAID6)
    assert outcome.survived


def test_overlapping_double_failure_defeats_raid5():
    members = ([failing("f1", 100), failing("f2", 105)]
               + [good(f"d{i}") for i in range(6)])
    outcome = evaluate_group(members, RaidLevel.RAID5,
                             reconstruction_hours=12.0)
    assert outcome.data_loss
    assert outcome.loss_cause == "double_failure"


def test_spaced_double_failure_survives_raid5():
    members = ([failing("f1", 100), failing("f2", 400)]
               + [good(f"d{i}") for i in range(6)])
    outcome = evaluate_group(members, RaidLevel.RAID5,
                             reconstruction_hours=12.0)
    assert outcome.survived
    assert outcome.n_failures == 2


def test_raid6_needs_triple_overlap():
    double = ([failing("f1", 100), failing("f2", 105)]
              + [good(f"d{i}") for i in range(6)])
    assert evaluate_group(double, RaidLevel.RAID6).survived
    triple = ([failing("f1", 100), failing("f2", 105), failing("f3", 108)]
              + [good(f"d{i}") for i in range(5)])
    outcome = evaluate_group(triple, RaidLevel.RAID6)
    assert outcome.data_loss
    assert outcome.loss_cause == "double_failure"


def test_raid6_double_failure_plus_latent_loses():
    members = ([failing("f1", 100), failing("f2", 105),
                good("lat", latent=True)]
               + [good(f"d{i}") for i in range(5)])
    outcome = evaluate_group(members, RaidLevel.RAID6)
    assert outcome.data_loss
    assert outcome.loss_cause == "latent_error"


def test_proactive_migration_averts_loss():
    members = ([failing("f", 100, lead=48.0), good("lat", latent=True)]
               + [good(f"d{i}") for i in range(6)])
    reactive = evaluate_group(members, RaidLevel.RAID5, proactive=False)
    proactive = evaluate_group(members, RaidLevel.RAID5, proactive=True)
    assert reactive.data_loss
    assert proactive.survived
    assert proactive.n_proactive_migrations == 1


def test_short_warning_cannot_be_acted_on():
    members = ([failing("f", 100, lead=2.0), good("lat", latent=True)]
               + [good(f"d{i}") for i in range(6)])
    outcome = evaluate_group(members, RaidLevel.RAID5, proactive=True,
                             migration_hours=6.0)
    assert outcome.data_loss
    assert outcome.n_proactive_migrations == 0


def test_group_size_validation():
    with pytest.raises(ReproError):
        evaluate_group([good("a"), good("b")], RaidLevel.RAID6)
    with pytest.raises(ReproError):
        evaluate_group([good(f"d{i}") for i in range(4)], RaidLevel.RAID5,
                       reconstruction_hours=0.0)
