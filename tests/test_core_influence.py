"""Tests for attribute-influence analysis."""

import numpy as np
import pytest

from repro.core.influence import (
    environmental_correlations,
    rw_attribute_correlations,
    top_correlated_attributes,
)
from repro.core.signatures import DegradationWindow
from repro.errors import ReproError
from repro.smart.attributes import READ_WRITE_ATTRIBUTES
from repro.smart.profile import HealthProfile


def planted_profile(n=100, window=20):
    """Profile whose RRER tracks the final descent and RUE is frozen."""
    matrix = np.full((n, 12), 50.0)
    t = np.arange(window, -1, -1, dtype=np.float64)
    descent = 2.0 * (t / window) ** 2
    matrix[-(window + 1):, 0] = 50.0 + descent  # RRER falls to 50 at failure
    matrix[:, 10] = 80.0  # POH constant (smoothed by the analysis)
    return HealthProfile("p", np.arange(n), matrix, failed=True)


def planted_window(profile, window=20):
    from repro.core.signatures import distance_to_failure
    distances = distance_to_failure(profile)
    return DegradationWindow(size=window,
                             distances=distances[-(window + 1):])


def test_ramped_attribute_correlates_strongly():
    profile = planted_profile()
    correlations = rw_attribute_correlations(profile, planted_window(profile))
    assert set(correlations) == set(READ_WRITE_ATTRIBUTES)
    assert abs(correlations["RRER"]) > 0.95


def test_frozen_attributes_correlate_zero():
    profile = planted_profile()
    correlations = rw_attribute_correlations(profile, planted_window(profile))
    assert correlations["RUE"] == 0.0
    assert correlations["SER"] == 0.0


def test_top_correlated_ranking():
    correlations = {"A": 0.2, "B": -0.9, "C": 0.5}
    assert top_correlated_attributes(correlations, count=2) == ["B", "C"]
    with pytest.raises(ReproError):
        top_correlated_attributes(correlations, count=0)


def test_environmental_correlations_cover_horizons():
    profile = planted_profile()
    cells = environmental_correlations(profile, planted_window(profile),
                                       targets=("RRER",))
    horizons = {cell.horizon for cell in cells}
    assert horizons == {"degradation_window", "24_hour_window",
                        "full_profile"}
    environmental = {cell.environmental for cell in cells}
    assert environmental == {"POH", "TC"}


def test_poh_smoothing_enables_in_window_correlation():
    """Raw POH is constant inside a short window; the smoothed series
    correlates perfectly with the (monotone) ramp."""
    profile = planted_profile()
    cells = environmental_correlations(profile, planted_window(profile),
                                       targets=("RRER",))
    in_window = next(c for c in cells
                     if c.environmental == "POH"
                     and c.horizon == "degradation_window")
    assert abs(in_window.correlation) > 0.9


def test_requires_targets():
    profile = planted_profile()
    with pytest.raises(ReproError):
        environmental_correlations(profile, planted_window(profile),
                                   targets=())
