"""Tests for the online degradation monitor."""

import numpy as np
import pytest

from repro.core.monitor import AlertLevel, DegradationMonitor
from repro.core.prediction import DegradationPredictor
from repro.core.taxonomy import FailureType
from repro.errors import ReproError


@pytest.fixture(scope="module")
def monitor_parts(mid_fleet, mid_report):
    predictor = DegradationPredictor(seed=7)
    predictor.evaluate_all(mid_report.dataset, mid_report.categorization)
    # The monitor consumes RAW records; it owns the normalization.
    normalizer = mid_fleet.dataset.fit_normalizer()
    return predictor, normalizer, mid_fleet


@pytest.fixture()
def monitor(monitor_parts):
    predictor, normalizer, _ = monitor_parts
    return DegradationMonitor(predictor, normalizer)


def test_good_drive_stays_healthy(monitor, monitor_parts):
    *_, fleet = monitor_parts
    profile = fleet.dataset.good_profiles[0]
    alerts = monitor.observe_profile(profile)
    levels = {alert.level for alert in alerts}
    assert levels == {AlertLevel.HEALTHY}
    assert monitor.level_of(profile.serial) is AlertLevel.HEALTHY


def test_failed_drive_escalates_to_critical(monitor, monitor_parts):
    *_, fleet = monitor_parts
    from repro.sim.failure_modes import FailureMode
    serial = fleet.failed_serials(FailureMode.BAD_SECTOR)[0]
    profile = fleet.dataset.get(serial)
    alerts = monitor.observe_profile(profile)
    assert alerts[-1].level is AlertLevel.CRITICAL
    # Severity never matters before degradation: the first verdicts sit
    # below CRITICAL for a long-window failure observed from the start.
    assert alerts[-1].stage < alerts[0].stage


def test_alert_carries_per_type_estimates(monitor, monitor_parts):
    *_, fleet = monitor_parts
    profile = fleet.dataset.failed_profiles[0]
    alert = monitor.observe(profile.serial, 0, profile.matrix[-1])
    assert set(alert.estimates) == set(FailureType)
    assert alert.likely_type in FailureType
    assert alert.hours_remaining >= 0.0


def test_drives_at_level_partition(monitor, monitor_parts):
    *_, fleet = monitor_parts
    good = fleet.dataset.good_profiles[0]
    failed = fleet.dataset.failed_profiles[0]
    monitor.observe(good.serial, 0, good.matrix[0])
    monitor.observe(failed.serial, 0, failed.matrix[-1])
    tracked = set()
    for level in AlertLevel:
        tracked.update(monitor.drives_at(level))
    assert tracked == {good.serial, failed.serial}


def test_history_rolls(monitor_parts):
    predictor, normalizer, fleet = monitor_parts
    monitor = DegradationMonitor(predictor, normalizer, history_hours=5)
    profile = fleet.dataset.good_profiles[0]
    for hour, row in zip(profile.hours[:10], profile.matrix[:10]):
        monitor.observe(profile.serial, int(hour), row)
    assert monitor.history_of(profile.serial).shape[0] == 5
    with pytest.raises(ReproError):
        monitor.history_of("never-seen")


def test_untrained_predictor_rejected(monitor_parts):
    _, normalizer, _ = monitor_parts
    with pytest.raises(ReproError):
        DegradationMonitor(DegradationPredictor(), normalizer)


def test_threshold_validation(monitor_parts):
    predictor, normalizer, _ = monitor_parts
    with pytest.raises(ReproError):
        DegradationMonitor(predictor, normalizer,
                           watch_threshold=-0.5, critical_threshold=-0.1)
    with pytest.raises(ReproError):
        DegradationMonitor(predictor, normalizer, history_hours=0)


def test_alert_levels_ordered():
    assert AlertLevel.HEALTHY < AlertLevel.WATCH < AlertLevel.CRITICAL
