"""Tests for polynomial regression and model evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.ml.polyfit import (
    evaluate_model,
    fit_polynomial,
    fit_polynomial_family,
)


def test_exact_fit_on_polynomial_data():
    t = np.linspace(0, 10, 20)
    y = 2.0 * t ** 2 - 3.0 * t + 1.0
    fit = fit_polynomial(t, y, 2)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.rmse == pytest.approx(0.0, abs=1e-8)
    np.testing.assert_allclose(fit.coefficients, [2.0, -3.0, 1.0],
                               atol=1e-8)


def test_predict_matches_polyval():
    t = np.linspace(0, 5, 10)
    y = t ** 2
    fit = fit_polynomial(t, y, 2)
    assert fit.predict(3.0) == pytest.approx(9.0, abs=1e-8)


def test_higher_order_never_fits_worse():
    rng = np.random.default_rng(4)
    t = np.linspace(0, 1, 30)
    y = np.sin(3 * t) + rng.normal(0, 0.05, 30)
    fits = fit_polynomial_family(t, y, max_order=3)
    rmses = [fit.rmse for fit in fits]
    assert rmses[0] >= rmses[1] >= rmses[2]


def test_r_squared_between_zero_and_one_for_reasonable_data():
    rng = np.random.default_rng(5)
    t = np.linspace(0, 1, 50)
    y = 2 * t + rng.normal(0, 0.1, 50)
    fit = fit_polynomial(t, y, 1)
    assert 0.9 < fit.r_squared <= 1.0


def test_underdetermined_fit_rejected():
    with pytest.raises(ModelError):
        fit_polynomial(np.array([1.0, 2.0]), np.array([1.0, 2.0]), 2)


def test_invalid_order_rejected():
    with pytest.raises(ModelError):
        fit_polynomial(np.arange(5.0), np.arange(5.0), 0)


def test_mismatched_shapes_rejected():
    with pytest.raises(ModelError):
        fit_polynomial(np.arange(5.0), np.arange(4.0), 1)


def test_evaluate_model_scores_fixed_function():
    t = np.linspace(0, 12, 13)
    y = (t / 12.0) ** 2 - 1.0
    rmse, r_squared = evaluate_model(t, y, lambda x: (x / 12.0) ** 2 - 1.0)
    assert rmse == pytest.approx(0.0, abs=1e-12)
    assert r_squared == pytest.approx(1.0)


def test_evaluate_model_penalizes_wrong_shape():
    t = np.linspace(0, 12, 13)
    y = (t / 12.0) ** 2 - 1.0
    rmse_right, _ = evaluate_model(t, y, lambda x: (x / 12.0) ** 2 - 1.0)
    rmse_wrong, _ = evaluate_model(t, y, lambda x: x / 12.0 - 1.0)
    assert rmse_wrong > rmse_right


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=4, max_size=30,
                unique=True))
def test_linear_fit_reproduces_line(points):
    # Integer abscissae keep the normal equations well-conditioned; the
    # property under test is exact recovery, not numerical conditioning.
    t = np.array(sorted(points), dtype=np.float64) * 0.1
    y = 3.0 * t - 7.0
    fit = fit_polynomial(t, y, 1)
    np.testing.assert_allclose(fit.coefficients, [3.0, -7.0],
                               rtol=1e-6, atol=1e-6)
