"""Tests for deterministic random-stream management."""

from repro.sim.rng import child_rng


def test_same_keys_same_stream():
    a = child_rng(1, "drive-1", "workload")
    b = child_rng(1, "drive-1", "workload")
    assert a.random(5).tolist() == b.random(5).tolist()


def test_different_keys_different_streams():
    a = child_rng(1, "drive-1", "workload")
    b = child_rng(1, "drive-2", "workload")
    assert a.random(5).tolist() != b.random(5).tolist()


def test_different_subsystems_different_streams():
    a = child_rng(1, "drive-1", "workload")
    b = child_rng(1, "drive-1", "thermal")
    assert a.random(5).tolist() != b.random(5).tolist()


def test_different_seeds_different_streams():
    a = child_rng(1, "drive-1")
    b = child_rng(2, "drive-1")
    assert a.random(5).tolist() != b.random(5).tolist()


def test_integer_keys_accepted():
    a = child_rng(1, 42, "x")
    b = child_rng(1, "42", "x")
    # int and its string form hash identically by design (CRC of str()).
    assert a.random(3).tolist() == b.random(3).tolist()
