"""Tests for rescue-time estimation."""

import numpy as np
import pytest

from repro.core.rescue import (
    estimate_remaining_hours,
    rescue_estimate,
)
from repro.core.signature_models import (
    PREDICTION_WINDOW_BY_TYPE,
    signature_for_type,
)
from repro.core.taxonomy import FailureType
from repro.errors import SignatureError


def test_failure_stage_means_zero_hours():
    for failure_type in FailureType:
        assert estimate_remaining_hours(-1.0, failure_type) == 0.0


def test_window_boundary_means_full_window():
    for failure_type in FailureType:
        window = PREDICTION_WINDOW_BY_TYPE[failure_type]
        hours = estimate_remaining_hours(-1.0e-9, failure_type)
        assert hours == pytest.approx(window, rel=1e-3)


def test_healthy_stage_is_infinite():
    assert estimate_remaining_hours(0.0, FailureType.HEAD) == np.inf
    assert estimate_remaining_hours(0.7, FailureType.HEAD) == np.inf


@pytest.mark.parametrize("failure_type", list(FailureType))
def test_inversion_round_trips_the_signature(failure_type):
    window = PREDICTION_WINDOW_BY_TYPE[failure_type]
    signature = signature_for_type(failure_type, window)
    for t_true in (1.0, window / 4.0, window / 2.0, window - 1.0):
        stage = float(signature(np.array([t_true]))[0])
        recovered = estimate_remaining_hours(stage, failure_type)
        assert recovered == pytest.approx(t_true, rel=1e-9)


def test_remaining_hours_monotone_in_stage():
    stages = np.linspace(-1.0, -0.01, 25)
    hours = [estimate_remaining_hours(s, FailureType.LOGICAL)
             for s in stages]
    assert all(a < b for a, b in zip(hours, hours[1:]))


def test_custom_window_scales_estimate():
    half = estimate_remaining_hours(-0.5, FailureType.BAD_SECTOR, window=100)
    assert half == pytest.approx(50.0)


def test_stage_clipped_below_minus_one():
    assert estimate_remaining_hours(-5.0, FailureType.HEAD) == 0.0


def test_non_finite_stage_rejected():
    with pytest.raises(SignatureError):
        estimate_remaining_hours(float("nan"), FailureType.HEAD)
    with pytest.raises(SignatureError):
        estimate_remaining_hours(-0.5, FailureType.HEAD, window=0)


def test_rescue_estimate_bundle():
    estimate = rescue_estimate(-0.75, FailureType.HEAD)
    assert estimate.degrading
    assert estimate.window == 24
    assert estimate.urgent(deadline_hours=24)
    healthy = rescue_estimate(0.9, FailureType.LOGICAL)
    assert not healthy.degrading
    assert not healthy.urgent(1.0e6)
