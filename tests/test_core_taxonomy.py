"""Tests for the Table II taxonomy rules."""

import numpy as np
import pytest

from repro.core.records import FailureRecordSet
from repro.core.taxonomy import FailureType, classify_groups
from repro.errors import ReproError
from repro.smart.attributes import CHARACTERIZATION_ATTRIBUTES


def synthetic_records():
    """Nine failure records: three per archetype.

    Cluster 0 = logical (near-good), cluster 1 = bad sector (low RUE),
    cluster 2 = head (high raw R-RSC).
    """
    n = 9
    attribute_values = np.full((n, 12), 0.9)
    rue = CHARACTERIZATION_ATTRIBUTES.index("RUE")
    rrsc = CHARACTERIZATION_ATTRIBUTES.index("R-RSC")
    attribute_values[:, rrsc] = -0.9
    # Bad-sector rows: lowest RUE.
    attribute_values[3:6, rue] = -0.95
    # Head rows: saturated R-RSC.
    attribute_values[6:9, rrsc] = 0.97
    return FailureRecordSet(
        features=np.zeros((n, 30)),
        serials=tuple(f"d{i}" for i in range(n)),
        feature_names=tuple(f"f{i}" for i in range(30)),
        attribute_values=attribute_values,
        attribute_names=CHARACTERIZATION_ATTRIBUTES,
    )


LABELS = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])


def test_rules_assign_the_paper_types():
    groups = classify_groups(synthetic_records(), LABELS)
    assert groups[0].failure_type is FailureType.LOGICAL
    assert groups[1].failure_type is FailureType.BAD_SECTOR
    assert groups[2].failure_type is FailureType.HEAD


def test_assignment_invariant_to_cluster_relabeling():
    relabeled = np.array([2, 2, 2, 0, 0, 0, 1, 1, 1])
    groups = classify_groups(synthetic_records(), relabeled)
    assert groups[2].failure_type is FailureType.LOGICAL
    assert groups[0].failure_type is FailureType.BAD_SECTOR
    assert groups[1].failure_type is FailureType.HEAD


def test_population_fractions():
    groups = classify_groups(synthetic_records(), LABELS)
    for group in groups.values():
        assert group.population_fraction == pytest.approx(1 / 3)
        assert group.n_records == 3


def test_paper_group_numbers():
    groups = classify_groups(synthetic_records(), LABELS)
    numbers = {g.failure_type: g.paper_group_number for g in groups.values()}
    assert numbers[FailureType.LOGICAL] == 1
    assert numbers[FailureType.BAD_SECTOR] == 2
    assert numbers[FailureType.HEAD] == 3


def test_properties_text_present():
    groups = classify_groups(synthetic_records(), LABELS)
    assert "uncorrectable" in groups[1].properties
    assert "high fly" in groups[2].properties


def test_wrong_group_count_rejected():
    records = synthetic_records()
    with pytest.raises(ReproError):
        classify_groups(records, np.zeros(9, dtype=int))
    with pytest.raises(ReproError):
        classify_groups(records, np.arange(9) % 4)


def test_misaligned_labels_rejected():
    with pytest.raises(ReproError):
        classify_groups(synthetic_records(), LABELS[:-1])
