"""Crash-recovery tests: kill workers, replay the WAL, compare bytes.

The robustness acceptance criteria live here: a shard worker killed at
seeded points (SIGKILL on the process backend, the crash sentinel on
threads) is respawned by the supervisor, replays snapshot + WAL suffix
into byte-identical state, and the surviving verdict stream matches an
uninterrupted run exactly — at shard counts 1, 2 and 4, including the
ack gap (WAL-appended but unanswered) via the ``crash_after_seq`` chaos
hook.  A fresh :class:`~repro.serve.shard.ShardSet` on an abandoned WAL
directory resumes the stream, serving retried block ids from the dedup
cache.  Over HTTP, a recovering shard's drives answer 503 with
``Retry-After`` while ``/health`` reports ``degraded``, and both return
to normal once replay finishes.
"""

import json
import time

import numpy as np
import pytest

from repro.errors import FaultInjectionError, ServeError, SinkError
from repro.faults.chaos_serve import (
    BlackholeSink,
    kill_plan,
    run_chaos_stream,
    verdict_lines,
)
from repro.obs.observer import TelemetryObserver
from repro.serve.bundle import build_bundle
from repro.serve.daemon import ServingDaemon
from repro.serve.scorer import StreamScorer
from repro.serve.shard import ShardSet

from tests.test_obs_http import _get, _post


@pytest.fixture(scope="module")
def bundle(mid_report):
    return build_bundle(mid_report, seed=7)


@pytest.fixture(scope="module")
def blocks(mid_fleet):
    """The sample stream cut into columnar blocks of bounded size."""
    dataset = mid_fleet.dataset
    profiles = dataset.failed_profiles[:4] + dataset.good_profiles[:8]
    serials, hours, rows = [], [], []
    for profile in profiles:
        keep = None if profile.failed else 6
        for hour, row in zip(profile.hours[:keep], profile.matrix[:keep]):
            serials.append(profile.serial)
            hours.append(int(hour))
            rows.append(np.asarray(row, dtype=np.float64).ravel())
    matrix = np.vstack(rows)
    size = 24
    return [(serials[i:i + size], hours[i:i + size], matrix[i:i + size])
            for i in range(0, len(serials), size)]


@pytest.fixture(scope="module")
def reference_lines(bundle, blocks):
    """The uninterrupted verdict stream every drill must reproduce."""
    scorer = StreamScorer(bundle)
    return verdict_lines(
        [scorer.score_block(serials, hours, matrix)
         for serials, hours, matrix in blocks])


# -- the kill plan itself ---------------------------------------------------

def test_kill_plan_is_deterministic_and_interior():
    first = kill_plan(20, 4, 3, seed=11)
    assert first == kill_plan(20, 4, 3, seed=11)
    assert len(first) == 4
    positions = [position for position, _shard in first]
    assert len(set(positions)) == 4  # distinct kill points
    assert all(1 <= position < 20 for position in positions)
    assert all(0 <= shard < 3 for _position, shard in first)
    assert first != kill_plan(20, 4, 3, seed=12)


def test_kill_plan_validation():
    with pytest.raises(FaultInjectionError, match="n_kills"):
        kill_plan(10, -1, 2)
    with pytest.raises(FaultInjectionError, match="n_shards"):
        kill_plan(10, 1, 0)
    with pytest.raises(FaultInjectionError, match="one more block"):
        kill_plan(5, 5, 2)


def test_chaos_stream_rejects_out_of_range_shard(bundle, blocks, tmp_path):
    with ShardSet(bundle, n_shards=1, wal_dir=tmp_path / "wal") as shards:
        with pytest.raises(FaultInjectionError, match="names shard 7"):
            run_chaos_stream(shards, blocks[:2], [(1, 7)])


# -- byte identity through seeded kills -------------------------------------

@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_seeded_kills_keep_stream_byte_identical(bundle, blocks,
                                                 reference_lines, tmp_path,
                                                 n_shards):
    """The tentpole contract: kill → respawn → replay → identical bytes."""
    plan = kill_plan(len(blocks), 2, n_shards, seed=n_shards)
    observer = TelemetryObserver()
    with ShardSet(bundle, n_shards=n_shards,
                  wal_dir=tmp_path / f"wal-{n_shards}", wal_fsync_every=1,
                  observer=observer) as shards:
        lines = run_chaos_stream(shards, blocks, plan,
                                 block_id_prefix=f"drill-{n_shards}")
        restarts = shards.shard_restarts()
    assert lines == reference_lines
    assert sum(restarts) == len(plan)
    assert observer.metrics.counter("shard_restarts").value == len(plan)
    # Replay actually happened: the respawned workers re-read the log.
    assert observer.metrics.counter("wal_replayed_blocks").value > 0


def test_process_backend_sigkill_byte_identical(bundle, blocks,
                                                reference_lines, tmp_path):
    """Real SIGKILL on child processes, not the cooperative sentinel."""
    plan = kill_plan(len(blocks), 2, 2, seed=5)
    with ShardSet(bundle, n_shards=2, backend="process",
                  wal_dir=tmp_path / "wal", wal_fsync_every=1) as shards:
        lines = run_chaos_stream(shards, blocks, plan,
                                 block_id_prefix="sigkill")
    assert lines == reference_lines


def test_ack_gap_crash_is_exactly_once(bundle, blocks, reference_lines,
                                       tmp_path):
    """Die *after* the WAL append but *before* the reply.

    The hardest window: the block is durable but unacknowledged.  The
    retry must be served from the replayed dedup cache — scored once,
    answered once, bytes identical.
    """
    with ShardSet(bundle, n_shards=1, backend="process",
                  wal_dir=tmp_path / "wal", wal_fsync_every=1,
                  crash_after_seq={0: 3}) as shards:
        lines = run_chaos_stream(shards, blocks, block_id_prefix="gap")
        assert shards.shard_restarts() == [1]
    assert lines == reference_lines


def test_no_wal_shard_set_still_recovers_workers(bundle, blocks):
    """Without a WAL the supervisor still respawns — state resets, the
    plane keeps serving (fresh-state verdicts, not an outage)."""
    with ShardSet(bundle, n_shards=1) as shards:
        assert not shards.wal_enabled
        first = shards.submit_block(*blocks[0])
        assert len(first)
        lines = run_chaos_stream(shards, blocks[1:3], [(0, 0)],
                                 block_id_prefix="nowal")
        assert len(lines) == len(blocks[1][0]) + len(blocks[2][0])
        assert shards.shard_restarts() == [1]


# -- resuming an abandoned WAL ----------------------------------------------

def test_fresh_shard_set_resumes_from_wal(bundle, blocks, reference_lines,
                                          tmp_path):
    """A daemon crash, modeled honestly: the first ShardSet's workers
    are SIGKILLed with no drain and no final snapshot; a second
    ShardSet on the same WAL directory replays to the exact state,
    answers a retried block id from cache, and finishes the stream."""
    wal_dir = tmp_path / "wal"
    half = len(blocks) // 2
    first_lines: list[str] = []
    veteran = ShardSet(bundle, n_shards=2, backend="process",
                       wal_dir=wal_dir, wal_fsync_every=1, supervise=False)
    try:
        for index in range(half):
            block = veteran.submit_block(*blocks[index],
                                         block_id=f"resume-{index}")
            first_lines.extend(block.to_json_lines())
    finally:
        for shard in range(2):
            veteran.kill_shard(shard)
    observer = TelemetryObserver()
    with ShardSet(bundle, n_shards=2, backend="process", wal_dir=wal_dir,
                  wal_fsync_every=1, observer=observer) as successor:
        assert successor.wait_ready(timeout=30.0)
        # The retried last block is deduplicated, not double-scored.
        retried = successor.submit_block(*blocks[half - 1],
                                         block_id=f"resume-{half - 1}")
        assert (retried.to_json_lines()
                == first_lines[-len(blocks[half - 1][0]):])
        for index in range(half, len(blocks)):
            block = successor.submit_block(*blocks[index],
                                           block_id=f"resume-{index}")
            first_lines.extend(block.to_json_lines())
    assert first_lines == reference_lines
    assert observer.metrics.counter("wal_replayed_blocks").value >= half


def test_killed_unsupervised_set_still_stops(bundle, blocks, tmp_path):
    """``stop()`` must not hang on a shard that died with nobody
    watching; dead shards contribute synthesized empty snapshots."""
    shards = ShardSet(bundle, n_shards=2, wal_dir=tmp_path / "wal")
    shards.submit_block(*blocks[0])
    shards.kill_shard(0)
    deadline = time.monotonic() + 10.0
    while (shards.shard_status()[0] == "serving"
           and time.monotonic() < deadline):
        time.sleep(0.01)
    snapshots = shards.stop()
    assert len(snapshots) == 2


def test_submit_to_failed_shard_is_serve_error(bundle, blocks, tmp_path):
    """A shard whose WAL cannot open reports failed, not recovering —
    and submits targeting it raise a terminal error."""
    wal_dir = tmp_path / "wal"
    (wal_dir / "shard-000").mkdir(parents=True)
    (wal_dir / "shard-000" / "wal.json").write_text("{not json")
    shards = ShardSet(bundle, n_shards=1, wal_dir=wal_dir, supervise=False)
    try:
        deadline = time.monotonic() + 10.0
        while (not shards.shard_status()[0].startswith("failed")
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert shards.shard_status()[0].startswith("failed")
        with pytest.raises(ServeError, match="failed"):
            shards.submit_block(*blocks[0])
    finally:
        shards.stop()


# -- HTTP surface during recovery -------------------------------------------

def _shard_batch(daemon, blocks, shard):
    """A small ingest body whose serials all route to ``shard``."""
    samples = []
    for serials, hours, matrix in blocks:
        for serial, hour, row in zip(serials, hours, matrix):
            if daemon.shards.shard_of(serial) == shard:
                samples.append([serial, int(hour),
                                [float(value) for value in row]])
        if samples:
            break
    assert samples, "no sample routed to the target shard"
    return json.dumps({"samples": samples}).encode("utf-8")


def test_recovering_shard_answers_503_and_degraded_health(bundle, blocks,
                                                          tmp_path):
    with ServingDaemon(bundle, n_shards=2, wal_dir=tmp_path / "wal",
                       snapshot_interval_blocks=10_000) as daemon:
        # Build up enough WAL suffix that replay is observable.
        for index, (serials, hours, matrix) in enumerate(blocks):
            daemon.ingest_block(serials, hours, matrix,
                                block_id=f"http-{index}")
        target = 0
        body = _shard_batch(daemon, blocks, target)
        daemon.shards.kill_shard(target)
        # The killed worker's queue is abandoned, so this batch lands in
        # the ack-less void and must come back 503, never hang or score.
        status, headers, _text = _post(
            daemon.url + "/ingest?batch=retry-me", body)
        assert status == 503
        assert float(headers["Retry-After"]) > 0
        health_status, _ctype, health_body = _get(daemon.url + "/health")
        health = json.loads(health_body)
        if health["status"] == "degraded":  # replay still in progress
            assert health_status == 503
            assert "recovering" in health["shards"]
        # Recovery completes; the same batch then scores normally.
        deadline = time.monotonic() + 30.0
        while True:
            status, headers, _text = _post(
                daemon.url + "/ingest?batch=retry-me", body)
            if status == 200:
                break
            assert status == 503
            assert time.monotonic() < deadline, "shard never recovered"
            time.sleep(0.05)
        health = json.loads(_get(daemon.url + "/health")[2])
        assert health["status"] == "ok"
        assert health["shards"] == ["serving", "serving"]
        assert health["wal"] is True
        doc = json.loads(_get(daemon.url + "/status")[2])
        assert doc["shard_restarts"] == [1, 0]
        assert doc["shard_status"] == ["serving", "serving"]
        assert doc["wal"] == {"enabled": True,
                              "dir": str(tmp_path / "wal")}
        recovering = daemon.registry.counter(
            "ingest_requests", labels={"outcome": "recovering"}).value
        assert recovering >= 1


def test_blackhole_sink_attempts_are_counted():
    from tests.test_serve_sinks import _verdict

    sink = BlackholeSink()
    for _ in range(3):
        with pytest.raises(SinkError, match="blackhole"):
            sink.emit(_verdict())
    assert sink.attempts == 3
    assert sink.describe() == "blackhole"
