"""Tests for the telemetry export layer: Prometheus exposition golden
output, JSONL dumps, and atomic/periodic snapshot files."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    PeriodicSnapshotWriter,
    metrics_jsonl,
    render_prometheus,
    trace_jsonl,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("samples_scored").inc(42)
    registry.gauge("drives_tracked").set(7)
    registry.counter("telemetry_requests",
                     labels={"endpoint": "metrics"}).inc(3)
    histogram = registry.histogram("verdict_stage")
    histogram.observe(-0.5)
    histogram.observe(-0.25)
    return registry


def test_prometheus_golden_output():
    """The exposition is stable enough to pin line by line."""
    registry = MetricsRegistry()
    registry.counter("samples_scored").inc(42)
    registry.gauge("drives_tracked").set(7)
    text = render_prometheus(registry)
    assert text == (
        "# TYPE repro_drives_tracked gauge\n"
        "repro_drives_tracked 7\n"
        "# TYPE repro_samples_scored_total counter\n"
        "repro_samples_scored_total 42\n"
    )


def test_prometheus_counters_get_total_suffix_and_labels():
    text = render_prometheus(_sample_registry())
    assert 'repro_telemetry_requests_total{endpoint="metrics"} 3' in text
    assert "# TYPE repro_telemetry_requests_total counter" in text


def test_prometheus_histogram_is_cumulative_with_inf_bucket():
    text = render_prometheus(_sample_registry())
    lines = [line for line in text.splitlines()
             if line.startswith("repro_verdict_stage")]
    bucket_lines = [line for line in lines if "_bucket" in line]
    assert bucket_lines[-1].startswith('repro_verdict_stage_bucket{le="+Inf"}')
    assert bucket_lines[-1].endswith(" 2")
    counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert counts == sorted(counts)
    assert "repro_verdict_stage_sum -0.75" in text
    assert "repro_verdict_stage_count 2" in text


def test_prometheus_rendering_is_deterministic():
    assert (render_prometheus(_sample_registry())
            == render_prometheus(_sample_registry()))


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c", labels={"k": 'a"b\\c\nd'}).inc()
    text = render_prometheus(registry)
    assert 'repro_c_total{k="a\\"b\\\\c\\nd"} 1' in text


def test_prometheus_custom_namespace_and_empty_registry():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    assert render_prometheus(registry, namespace="acme").startswith(
        "# TYPE acme_x_total")
    assert render_prometheus(MetricsRegistry()) == ""
    assert "0.0.4" in PROMETHEUS_CONTENT_TYPE


def test_metrics_jsonl_one_object_per_metric():
    lines = metrics_jsonl(_sample_registry()).splitlines()
    parsed = [json.loads(line) for line in lines]
    assert [p["name"] for p in parsed] == [
        "drives_tracked", "samples_scored", "telemetry_requests",
        "verdict_stage",
    ]
    labeled = next(p for p in parsed if p["name"] == "telemetry_requests")
    assert labeled["labels"] == {"endpoint": "metrics"}
    assert labeled["value"] == 3.0


def test_trace_jsonl_flattens_with_slash_paths():
    tracer = Tracer()
    with tracer.span("pipeline"):
        with tracer.span("signatures", n=3):
            pass
    parsed = [json.loads(line)
              for line in trace_jsonl(tracer).splitlines()]
    assert [p["path"] for p in parsed] == [
        "pipeline", "pipeline/signatures"]
    assert parsed[1]["attributes"] == {"n": 3}


def test_write_snapshot_is_atomic_and_combined(tmp_path):
    registry = _sample_registry()
    tracer = Tracer()
    with tracer.span("stage"):
        pass
    path = tmp_path / "snap.json"
    write_snapshot(registry, path, tracer=tracer)
    payload = json.loads(path.read_text())
    assert payload["metrics"]["samples_scored"]["value"] == 42.0
    assert payload["trace"]["spans"][0]["name"] == "stage"
    assert not (tmp_path / "snap.json.tmp").exists()


def test_write_snapshot_unwritable_path_raises(tmp_path):
    with pytest.raises(ObservabilityError, match="cannot write"):
        write_snapshot(MetricsRegistry(), tmp_path / "absent" / "x.json")


def test_periodic_writer_writes_final_snapshot_on_stop(tmp_path):
    registry = MetricsRegistry()
    path = tmp_path / "snap.json"
    with PeriodicSnapshotWriter(registry, path, interval_s=60.0) as writer:
        registry.counter("samples_scored").inc(9)
    assert writer.writes >= 1
    assert json.loads(path.read_text())[
        "metrics"]["samples_scored"]["value"] == 9.0


def test_periodic_writer_rejects_bad_interval(tmp_path):
    with pytest.raises(ObservabilityError, match="interval"):
        PeriodicSnapshotWriter(MetricsRegistry(), tmp_path / "s.json", 0.0)
