"""Tests for the thermal-mitigation experiment and its causal model."""

from dataclasses import replace

import pytest

from repro.experiments import thermal_mitigation
from repro.sim.config import FleetConfig
from repro.sim.failure_modes import FailureMode
from repro.sim.fleet import FleetSimulator, simulate_fleet


def count_mode(fleet, mode):
    return sum(1 for m in fleet.true_modes.values() if m is mode)


def test_reference_temperature_preserves_configured_mixture():
    config = FleetConfig(n_drives=2000, seed=5)
    simulator = FleetSimulator(config)
    assert simulator.thermal_hazard_factor() == pytest.approx(1.0)
    fleet = simulator.run()
    assert len(fleet.dataset.failed_profiles) == config.n_failed


def test_hotter_room_grows_logical_failures_only():
    base = FleetConfig(n_drives=2000, seed=5)
    cool = simulate_fleet(replace(base, inlet_temperature_c=20.0))
    hot = simulate_fleet(replace(base, inlet_temperature_c=32.0))
    assert count_mode(hot, FailureMode.LOGICAL) > count_mode(
        cool, FailureMode.LOGICAL
    )
    assert count_mode(hot, FailureMode.BAD_SECTOR) == count_mode(
        cool, FailureMode.BAD_SECTOR
    )
    assert count_mode(hot, FailureMode.HEAD) == count_mode(
        cool, FailureMode.HEAD
    )


def test_sensitivity_zero_disables_the_causal_link():
    base = FleetConfig(n_drives=1000, seed=5,
                       thermal_failure_sensitivity=0.0)
    cool = simulate_fleet(replace(base, inlet_temperature_c=20.0))
    hot = simulate_fleet(replace(base, inlet_temperature_c=32.0))
    assert (len(hot.dataset.failed_profiles)
            == len(cool.dataset.failed_profiles))


def test_experiment_shape():
    result = thermal_mitigation.run(n_drives=1500, seed=5)
    counts = result.data["counts_by_temp"]
    totals = [sum(counts[t].values()) for t in sorted(counts)]
    assert totals == sorted(totals)  # failures rise with temperature
    logical = [counts[t]["logical"] for t in sorted(counts)]
    assert logical[-1] > logical[0]
    assert result.data["logical_reduction_at_coolest"] > 0.1
