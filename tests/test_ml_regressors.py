"""Tests for the alternative regressors (k-NN, ridge linear)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.knn import KNNRegressor
from repro.ml.linear import RidgeRegressor


class TestKNNRegressor:
    def test_exact_match_returns_training_target(self, rng):
        features = rng.uniform(size=(100, 3))
        targets = rng.uniform(size=100)
        model = KNNRegressor(n_neighbors=3).fit(features, targets)
        prediction = model.predict(features[7].reshape(1, -1))[0]
        assert prediction == pytest.approx(targets[7], abs=0.05)

    def test_learns_smooth_function(self, rng):
        features = rng.uniform(-1, 1, size=(2000, 2))
        targets = np.sin(3 * features[:, 0]) + features[:, 1] ** 2
        model = KNNRegressor(n_neighbors=7).fit(features, targets)
        probe = rng.uniform(-0.9, 0.9, size=(200, 2))
        truth = np.sin(3 * probe[:, 0]) + probe[:, 1] ** 2
        error = np.sqrt(np.mean((model.predict(probe) - truth) ** 2))
        assert error < 0.15

    def test_uniform_vs_weighted(self, rng):
        features = np.array([[0.0], [1.0], [2.0]])
        targets = np.array([0.0, 1.0, 2.0])
        uniform = KNNRegressor(n_neighbors=2, weighted=False).fit(
            features, targets
        )
        # Probe nearer to 0 than to 1: uniform average is 0.5.
        assert uniform.predict(np.array([[0.1]]))[0] == pytest.approx(0.5)
        weighted = KNNRegressor(n_neighbors=2, weighted=True).fit(
            features, targets
        )
        assert weighted.predict(np.array([[0.1]]))[0] < 0.5

    def test_chunked_prediction_consistent(self, rng):
        features = rng.uniform(size=(500, 4))
        targets = rng.uniform(size=500)
        model = KNNRegressor(n_neighbors=5).fit(features, targets)
        probe = rng.uniform(size=(600, 4))  # crosses the chunk boundary
        full = model.predict(probe)
        parts = np.concatenate([model.predict(probe[:300]),
                                model.predict(probe[300:])])
        np.testing.assert_allclose(full, parts)

    def test_validation(self, rng):
        with pytest.raises(ModelError):
            KNNRegressor(n_neighbors=0)
        with pytest.raises(ModelError):
            KNNRegressor(n_neighbors=10).fit(rng.uniform(size=(3, 2)),
                                             np.zeros(3))
        model = KNNRegressor(n_neighbors=2).fit(rng.uniform(size=(5, 2)),
                                                np.zeros(5))
        with pytest.raises(ModelError):
            model.predict(np.zeros((1, 3)))
        with pytest.raises(ModelError):
            KNNRegressor().predict(np.zeros((1, 2)))


class TestRidgeRegressor:
    def test_recovers_linear_map(self, rng):
        features = rng.normal(size=(500, 3))
        targets = features @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = RidgeRegressor(ridge=1e-9).fit(features, targets)
        np.testing.assert_allclose(model.coefficients_, [2.0, -1.0, 0.5],
                                   atol=1e-6)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-6)

    def test_survives_collinear_features(self, rng):
        base = rng.normal(size=500)
        features = np.column_stack([base, 2.0 * base])  # perfectly collinear
        targets = base * 3.0
        model = RidgeRegressor(ridge=1e-3).fit(features, targets)
        prediction = model.predict(features)
        assert np.sqrt(np.mean((prediction - targets) ** 2)) < 0.01

    def test_prediction_shape(self, rng):
        model = RidgeRegressor().fit(rng.normal(size=(50, 2)),
                                     rng.normal(size=50))
        assert model.predict(np.zeros(2)).shape == (1,)
        assert model.predict(np.zeros((7, 2))).shape == (7,)

    def test_validation(self, rng):
        with pytest.raises(ModelError):
            RidgeRegressor(ridge=-1.0)
        with pytest.raises(ModelError):
            RidgeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ModelError):
            RidgeRegressor().predict(np.zeros((1, 2)))
