"""Tests for the RAID-protection experiment."""

from repro.experiments import raid_protection
from repro.experiments.raid_protection import compute_warning_leads


def test_raid_protection_shapes(mid_fleet, mid_report):
    result = raid_protection.run(mid_fleet, mid_report, n_groups=4000,
                                 seed=9)
    rates = result.data["loss_rates"]
    assert rates["reactive_RAID5"] > 0
    assert rates["reactive_RAID6"] <= rates["reactive_RAID5"]
    assert rates["proactive_RAID5"] < rates["reactive_RAID5"]


def test_warning_leads_longest_for_bad_sector(mid_fleet, mid_report):
    result = raid_protection.run(mid_fleet, mid_report, n_groups=1000,
                                 seed=9)
    leads = result.data["median_leads"]
    # The long linear degradation gives the most warning; logical
    # failures the least.
    assert leads["group2"] >= leads["group1"]


def test_compute_warning_leads_covers_most_failures(mid_fleet, mid_report):
    leads = compute_warning_leads(mid_fleet, mid_report)
    n_failed = len(mid_report.dataset.failed_profiles)
    assert len(leads) >= 0.6 * n_failed
    assert all(lead >= 0 for lead in leads.values())
