"""Tests for gap-tolerant (hour-aware) degradation analysis."""

import numpy as np
import pytest

from repro.core.pipeline import CharacterizationPipeline
from repro.core.signatures import extract_degradation_window
from repro.core.taxonomy import FailureType
from repro.core.validate import validate_categorization
from repro.errors import SignatureError
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


def planted(window=40, exponent=2.0, plateau=80, level=2.0, seed=0):
    rng = np.random.default_rng(seed)
    flat = level + rng.normal(0.0, 0.02, plateau)
    t = np.arange(window, -1, -1, dtype=np.float64)
    ramp = level * (t / window) ** exponent
    distances = np.concatenate([flat, ramp[1:]])
    hours = np.arange(distances.shape[0], dtype=np.float64)
    return distances, hours


class TestHourAwareExtraction:
    def test_contiguous_hours_match_index_based_result(self):
        distances, hours = planted()
        indexed = extract_degradation_window(distances)
        houred = extract_degradation_window(distances, hours=hours)
        assert houred.size == indexed.size
        np.testing.assert_array_equal(houred.distances, indexed.distances)

    def test_gaps_measured_in_hours_not_records(self):
        distances, hours = planted(window=40)
        # Lose 40% of the in-window samples (never the failure record).
        rng = np.random.default_rng(3)
        keep = rng.random(distances.shape[0]) >= 0.4
        keep[-1] = True
        keep[0] = True
        gapped = extract_degradation_window(distances[keep],
                                            hours=hours[keep])
        # The window is still ~40 *hours* even though far fewer records
        # survive inside it.
        assert 28 <= gapped.size <= 52
        assert gapped.n_records < gapped.size + 1

    def test_degradation_values_use_true_lags(self):
        distances, hours = planted(window=20)
        keep = np.ones(distances.shape[0], dtype=bool)
        keep[-5] = False  # one lost sample inside the window
        window = extract_degradation_window(distances[keep],
                                            hours=hours[keep])
        t, s = window.degradation_values()
        assert t[-1] == 0.0
        assert np.all(np.diff(t) < 0)
        # The lag axis skips the missing hour.
        assert 4.0 not in t

    def test_misaligned_hours_rejected(self):
        distances, hours = planted()
        with pytest.raises(SignatureError):
            extract_degradation_window(distances, hours=hours[:-1])
        with pytest.raises(SignatureError):
            extract_degradation_window(distances,
                                       hours=hours[::-1])


class TestLossySimulation:
    def test_lossy_profiles_have_gaps(self):
        config = FleetConfig(n_drives=80, seed=4, sample_loss_rate=0.2)
        fleet = simulate_fleet(config)
        profile = fleet.dataset.failed_profiles[0]
        spans = np.diff(profile.hours)
        assert np.any(spans > 1)
        # The failure record survives the losses.
        assert profile.failure_hour == int(profile.hours[-1])

    def test_pipeline_survives_lossy_collection(self):
        config = FleetConfig(n_drives=1500, seed=4, sample_loss_rate=0.15)
        fleet = simulate_fleet(config)
        report = CharacterizationPipeline(run_prediction=False,
                                          seed=4).run(fleet.dataset)
        validation = validate_categorization(fleet, report.categorization)
        assert validation.accuracy >= 0.9
        # Signature shapes survive 15% sample loss.
        assert report.group_summaries[FailureType.BAD_SECTOR] \
            .consensus_order == 1

    def test_invalid_loss_rate_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            FleetConfig(n_drives=10, sample_loss_rate=1.0)
