"""Tests for dataset subset/sample/merge utilities."""

import numpy as np
import pytest

from repro.data.dataset import DiskDataset
from repro.errors import DatasetError
from repro.smart.profile import HealthProfile


def make_profile(serial, failed, seed=0):
    rng = np.random.default_rng(seed)
    return HealthProfile(serial, np.arange(20),
                         rng.uniform(size=(20, 12)), failed=failed)


@pytest.fixture()
def dataset():
    profiles = [make_profile(f"f{i}", True, seed=i) for i in range(4)]
    profiles += [make_profile(f"g{i}", False, seed=10 + i)
                 for i in range(8)]
    return DiskDataset(profiles)


def test_subset_by_serial(dataset):
    subset = dataset.subset(["f0", "g3"])
    assert len(subset) == 2
    assert subset.get("f0").failed
    with pytest.raises(DatasetError):
        dataset.subset([])
    with pytest.raises(DatasetError):
        dataset.subset(["nope"])


def test_subset_preserves_normalization_state(dataset):
    normalized = dataset.normalize()
    subset = normalized.subset(["f0", "f1"])
    assert subset.is_normalized
    assert subset.normalizer is normalized.normalizer


def test_sample_population_sizes(dataset):
    sampled = dataset.sample(n_good=3, n_failed=2,
                             rng=np.random.default_rng(1))
    assert len(sampled.failed_profiles) == 2
    assert len(sampled.good_profiles) == 3


def test_sample_none_keeps_side(dataset):
    sampled = dataset.sample(n_good=2, rng=np.random.default_rng(1))
    assert len(sampled.failed_profiles) == 4
    assert len(sampled.good_profiles) == 2


def test_sample_validation(dataset):
    with pytest.raises(DatasetError):
        dataset.sample(n_good=100)
    with pytest.raises(DatasetError):
        dataset.sample(n_good=0, n_failed=0)


def test_sample_is_deterministic(dataset):
    a = dataset.sample(n_good=3, rng=np.random.default_rng(5))
    b = dataset.sample(n_good=3, rng=np.random.default_rng(5))
    assert [p.serial for p in a.profiles] == [p.serial for p in b.profiles]


def test_merge_disjoint_fleets(dataset):
    other = DiskDataset([make_profile("x1", True, seed=99)])
    merged = dataset.merge(other)
    assert len(merged) == len(dataset) + 1
    assert "x1" in merged


def test_merge_rejects_colliding_serials(dataset):
    other = DiskDataset([make_profile("f0", False, seed=99)])
    with pytest.raises(DatasetError):
        dataset.merge(other)


def test_merge_rejects_mixed_normalization(dataset):
    with pytest.raises(DatasetError):
        dataset.merge(dataset.normalize().subset(["f0"]))


def test_cli_output_flag(tmp_path, capsys):
    from repro.experiments.registry import main
    out = tmp_path / "results.txt"
    assert main(["table1", "--output", str(out)]) == 0
    assert "Table I" in out.read_text()
