"""Live-promotion tests: the daemon's /promote plane and the WAL fence.

The promotion contract in full: a lineage-checked challenger swaps in
atomically over HTTP, verdicts before/after the swap are byte-identical
to offline scoring with :meth:`StreamScorer.swap_bundle` at the same
point, the WAL is rebound so recovery replays under the right
generation (``repro-serve recover`` refuses the wrong bundle), and one
call rolls the whole thing back.
"""

import json

import pytest

from repro.errors import ServeError, WalError
from repro.learn.drill import blocked_stream
from repro.data.dataset import DiskDataset
from repro.serve.bundle import (build_bundle, content_hash, save_bundle,
                                stamp_lineage)
from repro.serve.cli import main as serve_main
from repro.serve.daemon import ServingDaemon
from repro.serve.scorer import StreamScorer
from repro.serve.shard import ShardSet
from repro.serve.wal import ShardWal

from tests.test_obs_http import _get, _post


@pytest.fixture(scope="module")
def champion(mid_report):
    return build_bundle(mid_report, seed=7)


@pytest.fixture(scope="module")
def challenger(champion):
    """Same models, lineage-stamped: a distinct, promotable artifact."""
    return stamp_lineage(champion, champion)


@pytest.fixture(scope="module")
def challenger_doc(challenger, tmp_path_factory):
    path = tmp_path_factory.mktemp("promote") / "challenger.bundle.json"
    save_bundle(challenger, path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def blocks(mid_fleet):
    dataset = mid_fleet.dataset
    subset = DiskDataset(dataset.failed_profiles[:4]
                         + dataset.good_profiles[:12])
    return blocked_stream(subset, 128)


def _ingest_body(serials, hours, matrix):
    return json.dumps({"samples": [
        [serial, int(hour), [float(v) for v in row]]
        for serial, hour, row in zip(serials, hours, matrix)
    ]}).encode("utf-8")


# -- the embedding API ------------------------------------------------------

def test_promote_refuses_the_identical_bundle(champion):
    with ServingDaemon(champion) as daemon:
        with pytest.raises(ServeError, match="identical"):
            daemon.promote_bundle(champion)


def test_promote_refuses_a_lineage_break_unless_forced(champion,
                                                       challenger):
    orphan = stamp_lineage(champion, challenger)  # parent != champion
    with ServingDaemon(champion) as daemon:
        with pytest.raises(ServeError, match="lineage"):
            daemon.promote_bundle(orphan)
        receipts = daemon.promote_bundle(orphan, force=True)
        assert len(receipts) == 1


def test_rollback_without_a_promotion_is_refused(champion):
    with ServingDaemon(champion) as daemon:
        with pytest.raises(ServeError, match="no previous"):
            daemon.rollback_bundle()


# -- the HTTP plane ---------------------------------------------------------

def test_http_promote_status_and_rollback(champion, challenger,
                                          challenger_doc):
    champion_sha = content_hash(champion.to_payload())
    challenger_sha = content_hash(challenger.to_payload())
    with ServingDaemon(champion, n_shards=2) as daemon:
        status, _headers, body = _post(daemon.url + "/promote",
                                       challenger_doc)
        assert status == 200
        reply = json.loads(body)
        assert reply["status"] == "promoted"
        assert reply["bundle_sha256"] == challenger_sha
        assert reply["generation"] == 1
        assert reply["shards"] == 2

        _status, _headers, body = _get(daemon.url + "/status")
        bundle_view = json.loads(body)["bundle"]
        assert bundle_view["sha256"] == challenger_sha
        assert bundle_view["generation"] == 1
        assert bundle_view["parent_sha256"] == champion_sha
        assert bundle_view["previous"] == champion_sha

        status, _headers, body = _post(
            daemon.url + "/promote?rollback=1", b"")
        assert status == 200
        reply = json.loads(body)
        assert reply["status"] == "rolled_back"
        assert reply["bundle_sha256"] == champion_sha
        assert reply["generation"] == 0


def test_http_promote_rejects_malformed_and_conflicting(champion,
                                                        challenger_doc):
    with ServingDaemon(champion) as daemon:
        status, _headers, _body = _post(daemon.url + "/promote",
                                        b"not json")
        assert status == 400
        # A raw payload without its content hash fails verification.
        status, _headers, body = _post(
            daemon.url + "/promote",
            json.dumps(champion.to_payload()).encode("utf-8"))
        assert status == 400
        # The serving bundle itself is a conflict, not a bad request.
        _post(daemon.url + "/promote", challenger_doc)
        status, _headers, body = _post(daemon.url + "/promote",
                                       challenger_doc)
        assert status == 409
        assert "identical" in json.loads(body)["error"]
        # Rollback with no further promotion history after using it once.
        status, _, _ = _post(daemon.url + "/promote?rollback=1", b"")
        assert status == 200


def test_http_verdicts_across_promotion_match_offline_swap(champion,
                                                           challenger,
                                                           challenger_doc,
                                                           blocks):
    """The drill's contract, over the wire: promote between two ingest
    batches and the concatenated verdicts equal an offline swap_bundle
    at the same block."""
    promote_at = len(blocks) // 2
    scorer = StreamScorer(champion)
    expected = []
    for index, (serials, hours, matrix) in enumerate(blocks):
        if index == promote_at:
            scorer.swap_bundle(challenger)
        expected.extend(scorer.score_block(serials, hours,
                                           matrix).to_json_lines())
    collected = []
    with ServingDaemon(champion, n_shards=2) as daemon:
        for index, (serials, hours, matrix) in enumerate(blocks):
            if index == promote_at:
                status, _h, _b = _post(daemon.url + "/promote",
                                       challenger_doc)
                assert status == 200
            status, _headers, body = _post(
                daemon.url + "/ingest?verdicts=all",
                _ingest_body(serials, hours, matrix))
            assert status == 200
            collected.extend(body.splitlines())
    assert collected == expected


# -- the WAL fence ----------------------------------------------------------

def test_promotion_rebinds_the_wal_generation(champion, challenger,
                                              blocks, tmp_path):
    wal_dir = tmp_path / "wal"
    with ShardSet(champion, n_shards=1, wal_dir=wal_dir) as shards:
        for serials, hours, matrix in blocks[:2]:
            shards.submit_block(serials, hours, matrix)
        shards.promote(challenger)
        for serials, hours, matrix in blocks[2:4]:
            shards.submit_block(serials, hours, matrix)
    meta = json.loads((wal_dir / "shard-000" / "wal.json").read_text())
    assert meta["generation"] == 1
    assert meta["bundle_sha256"] == content_hash(challenger.to_payload())


def test_wal_refuses_to_reopen_under_the_wrong_generation(champion,
                                                          challenger,
                                                          blocks,
                                                          tmp_path):
    wal_dir = tmp_path / "wal"
    with ShardSet(champion, n_shards=1, wal_dir=wal_dir) as shards:
        shards.submit_block(*blocks[0])
        shards.promote(challenger)
        shards.submit_block(*blocks[1])
    shard_dir = wal_dir / "shard-000"
    challenger_sha = content_hash(challenger.to_payload())
    # Wrong bundle entirely: the sha fence fires first.
    with pytest.raises(WalError, match="refusing to replay"):
        ShardWal(shard_dir,
                 bundle_sha256=content_hash(champion.to_payload()),
                 generation=champion.generation).open()
    # Right bundle bytes claimed under the wrong generation: the
    # generation fence fires on its own.
    with pytest.raises(WalError, match="generation"):
        ShardWal(shard_dir, bundle_sha256=challenger_sha,
                 generation=champion.generation).open()
    with ShardWal(shard_dir,
                  bundle_sha256=content_hash(challenger.to_payload()),
                  generation=challenger.generation) as wal:
        assert wal.generation == challenger.generation


def test_recover_cli_refuses_a_wrong_generation_bundle(champion,
                                                       challenger,
                                                       blocks, tmp_path,
                                                       capsys):
    wal_dir = tmp_path / "wal"
    with ShardSet(champion, n_shards=1, wal_dir=wal_dir) as shards:
        shards.submit_block(*blocks[0])
        shards.promote(challenger)
        shards.submit_block(*blocks[1])
    champion_path = tmp_path / "champion.bundle.json"
    challenger_path = tmp_path / "challenger.bundle.json"
    save_bundle(champion, champion_path)
    save_bundle(challenger, challenger_path)

    assert serve_main(["recover", "--bundle", str(champion_path),
                       "--wal-dir", str(wal_dir)]) == 2
    assert "refusing to replay" in capsys.readouterr().err

    assert serve_main(["recover", "--bundle", str(challenger_path),
                       "--wal-dir", str(wal_dir)]) == 0
