"""Tests for guaranteed alert delivery: retries, breaker, dead letter.

The delivery contract pinned here: every alert submitted to a
:class:`~repro.serve.sinks.DeliveryPipeline` reaches exactly one
outcome — delivered (after bounded retries) or parked in the dead
letter — and never blocks or kills the scoring path.  The circuit
breaker fast-fails while a destination is hard-down, a webhook's
``Retry-After`` hint overrides exponential backoff, the dead-letter
file holds byte-identical verdict lines, and
:func:`~repro.serve.sinks.reprocess_dead_letter` drains it without
changing a byte of the re-emitted alerts.
"""

import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.errors import SinkError
from repro.faults.chaos_serve import BlackholeSink
from repro.obs.observer import TelemetryObserver
from repro.obs.recorder import FlightRecorder
from repro.serve.sinks import (
    CallbackAlertSink,
    DeadLetterWriter,
    DeliveryPipeline,
    DeliveryPolicy,
    JsonlAlertSink,
    WebhookAlertSink,
    parse_sink_spec,
    read_dead_letter,
    reprocess_dead_letter,
)

from tests.test_serve_sinks import _verdict


def _fast_policy(**overrides):
    """A policy with no real sleeps, for single-digit-ms tests."""
    settings = {"max_attempts": 3, "backoff_s": 0.0, "backoff_cap_s": 0.0,
                "breaker_threshold": 3, "breaker_cooldown_s": 60.0,
                "queue_capacity": 16}
    settings.update(overrides)
    return DeliveryPolicy(**settings)


# -- policy validation ------------------------------------------------------

def test_policy_validation():
    with pytest.raises(SinkError, match="max_attempts"):
        DeliveryPolicy(max_attempts=0)
    with pytest.raises(SinkError, match="backoff"):
        DeliveryPolicy(backoff_s=-0.1)
    with pytest.raises(SinkError, match="breaker_threshold"):
        DeliveryPolicy(breaker_threshold=0)
    with pytest.raises(SinkError, match="queue_capacity"):
        DeliveryPolicy(queue_capacity=0)


# -- happy path and retries -------------------------------------------------

def test_pipeline_delivers_in_fifo_order(tmp_path):
    path = tmp_path / "alerts.jsonl"
    pipeline = DeliveryPipeline(JsonlAlertSink(path), policy=_fast_policy())
    verdicts = [_verdict(serial=f"Z{i}") for i in range(5)]
    for verdict in verdicts:
        assert pipeline.submit(verdict) is True
    pipeline.close()
    assert pipeline.delivered == 5
    assert pipeline.failed == 0
    assert path.read_text().splitlines() == [v.to_json_line()
                                             for v in verdicts]


def test_transient_failures_are_retried(tmp_path):
    calls = []

    def flaky(verdict):
        calls.append(verdict.serial)
        if len(calls) < 3:  # first two attempts fail
            raise RuntimeError("pager flapping")

    observer = TelemetryObserver()
    pipeline = DeliveryPipeline(CallbackAlertSink(flaky),
                                policy=_fast_policy(), observer=observer)
    pipeline.submit(_verdict())
    pipeline.close()
    assert calls == ["ZA1"] * 3
    assert pipeline.delivered == 1
    assert pipeline.failed == 0
    assert observer.metrics.counter("sink_retries").value == 2
    assert observer.metrics.counter("alert_sink_emits").value == 1


def test_exhausted_attempts_go_to_the_dead_letter(tmp_path):
    observer = TelemetryObserver()
    recorder = FlightRecorder()
    dead_letter = DeadLetterWriter(tmp_path / "dead.jsonl")
    sink = BlackholeSink()
    pipeline = DeliveryPipeline(
        sink, policy=_fast_policy(max_attempts=2, breaker_threshold=99),
        dead_letter=dead_letter, observer=observer, recorder=recorder)
    verdicts = [_verdict(serial="ZX1"), _verdict(serial="ZX2")]
    for verdict in verdicts:
        pipeline.submit(verdict)
    pipeline.close()
    assert pipeline.delivered == 0
    assert pipeline.failed == 2
    assert sink.attempts == 4  # 2 alerts x 2 attempts
    assert observer.metrics.counter("alert_sink_errors").value == 2
    assert observer.metrics.counter("dead_letter_alerts").value == 2
    assert dead_letter.written == 2
    # Byte-identical verdict lines: the dead letter IS the alert stream.
    assert (tmp_path / "dead.jsonl").read_text().splitlines() == [
        v.to_json_line() for v in verdicts]
    errors = recorder.events_of("sink-error")
    assert errors and errors[0].context["sink"] == "blackhole"


def test_circuit_breaker_fast_fails_while_open(tmp_path):
    dead_letter = DeadLetterWriter(tmp_path / "dead.jsonl")
    sink = BlackholeSink()
    pipeline = DeliveryPipeline(
        sink, policy=_fast_policy(max_attempts=2, breaker_threshold=2,
                                  breaker_cooldown_s=60.0),
        dead_letter=dead_letter)
    for serial in ("ZB1", "ZB2", "ZB3", "ZB4"):
        pipeline.submit(_verdict(serial=serial))
    pipeline.close()
    # Two final failures trip the breaker; the last two alerts never
    # touch the sink but still land in the dead letter.
    assert sink.attempts == 4
    assert pipeline.failed == 4
    assert dead_letter.written == 4
    assert len(read_dead_letter(dead_letter.path)) == 4


def test_full_queue_diverts_to_dead_letter_without_blocking(tmp_path):
    release = threading.Event()

    def slow(_verdict):
        release.wait(timeout=10.0)

    dead_letter = DeadLetterWriter(tmp_path / "dead.jsonl")
    pipeline = DeliveryPipeline(
        CallbackAlertSink(slow), policy=_fast_policy(queue_capacity=1),
        dead_letter=dead_letter)
    pipeline.submit(_verdict(serial="ZQ0"))  # worker picks this up
    time.sleep(0.05)
    assert pipeline.submit(_verdict(serial="ZQ1")) is True  # fills the queue
    overflow = _verdict(serial="ZQ2")
    started = time.monotonic()
    assert pipeline.submit(overflow) is False  # diverted, not blocked
    assert time.monotonic() - started < 1.0
    release.set()
    pipeline.close()
    assert pipeline.delivered == 2
    assert pipeline.failed == 1
    assert read_dead_letter(dead_letter.path)[0].serial == "ZQ2"


def test_submit_after_close_is_sink_error(tmp_path):
    pipeline = DeliveryPipeline(JsonlAlertSink(tmp_path / "out.jsonl"))
    pipeline.close()
    pipeline.close()  # idempotent
    with pytest.raises(SinkError, match="closed"):
        pipeline.submit(_verdict())


# -- Retry-After ------------------------------------------------------------

class _RetryAfterHandler(BaseHTTPRequestHandler):
    """Answers every POST with a fixed status + optional Retry-After."""

    def do_POST(self):  # noqa: N802 — http.server's contract
        length = int(self.headers.get("Content-Length", "0"))
        self.server.bodies.append(self.rfile.read(length))
        self.send_response(self.server.reply_status)
        if self.server.retry_after is not None:
            self.send_header("Retry-After", self.server.retry_after)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def log_message(self, format, *args):
        pass


@pytest.fixture()
def throttling_server():
    server = HTTPServer(("127.0.0.1", 0), _RetryAfterHandler)
    server.bodies = []
    server.reply_status = 429
    server.retry_after = "3"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://127.0.0.1:{server.server_address[1]}/hook"
    server.shutdown()
    thread.join(timeout=5)
    server.server_close()


@pytest.mark.parametrize("status,header,expected", [
    (429, "3", 3.0),
    (503, "0.5", 0.5),
    (429, "not-a-number", None),  # HTTP-date form is ignored
    (429, "-2", None),            # negative hints are nonsense
    (500, "3", None),             # only throttle statuses carry the hint
])
def test_webhook_surfaces_retry_after_hint(throttling_server, status,
                                           header, expected):
    server, url = throttling_server
    server.reply_status = status
    server.retry_after = header
    with pytest.raises(SinkError) as excinfo:
        WebhookAlertSink(url).emit(_verdict())
    assert excinfo.value.retry_after_s == expected


def test_pipeline_prefers_server_hint_over_backoff(throttling_server):
    """A tiny Retry-After beats a large exponential backoff: with
    backoff_s=30 the retry could only happen within the test timeout
    because the server's 0-second hint overrode it."""
    server, url = throttling_server
    server.reply_status = 429
    server.retry_after = "0"
    pipeline = DeliveryPipeline(
        WebhookAlertSink(url, timeout_s=5.0),
        policy=DeliveryPolicy(max_attempts=3, backoff_s=30.0,
                              backoff_cap_s=30.0, breaker_threshold=9,
                              breaker_cooldown_s=60.0, queue_capacity=4))
    started = time.monotonic()
    pipeline.submit(_verdict())
    pipeline.close()
    assert time.monotonic() - started < 10.0
    assert pipeline.failed == 1
    assert len(server.bodies) == 3  # all attempts made, immediately


def test_webhook_timeout_is_configurable():
    assert WebhookAlertSink("http://x.invalid/").timeout_s == 5.0
    assert WebhookAlertSink("http://x.invalid/",
                            timeout_s=0.25).timeout_s == 0.25


# -- dead-letter file handling ----------------------------------------------

def test_dead_letter_writer_appends_and_counts(tmp_path):
    writer = DeadLetterWriter(tmp_path / "nested" / "dead.jsonl")
    verdicts = [_verdict(serial="ZD1"), _verdict(serial="ZD2")]
    for verdict in verdicts:
        writer.write(verdict)
    writer.close()
    assert writer.written == 2
    assert writer.path.read_text().splitlines() == [v.to_json_line()
                                                    for v in verdicts]


def test_read_dead_letter_round_trips(tmp_path):
    writer = DeadLetterWriter(tmp_path / "dead.jsonl")
    original = [_verdict(serial="ZR1"), _verdict(serial="ZR2", level="FATAL")]
    for verdict in original:
        writer.write(verdict)
    writer.close()
    restored = read_dead_letter(writer.path)
    assert [v.to_json_line() for v in restored] == [v.to_json_line()
                                                    for v in original]


def test_read_dead_letter_rejects_damage(tmp_path):
    path = tmp_path / "dead.jsonl"
    path.write_text(_verdict().to_json_line() + "\n{torn...\n")
    with pytest.raises(SinkError, match="malformed dead-letter line"):
        read_dead_letter(path)
    with pytest.raises(SinkError, match="cannot read"):
        read_dead_letter(tmp_path / "missing.jsonl")


def test_reprocess_dead_letter_keeps_exact_remainder(tmp_path):
    writer = DeadLetterWriter(tmp_path / "dead.jsonl")
    verdicts = [_verdict(serial=f"ZP{i}") for i in range(4)]
    for verdict in verdicts:
        writer.write(verdict)
    writer.close()
    delivered_serials = []

    def selective(verdict):
        if verdict.serial == "ZP2":
            raise RuntimeError("still down")
        delivered_serials.append(verdict.serial)

    delivered, remaining = reprocess_dead_letter(
        writer.path, CallbackAlertSink(selective))
    assert (delivered, remaining) == (3, 1)
    assert delivered_serials == ["ZP0", "ZP1", "ZP3"]
    # The file now holds exactly the undelivered alert, byte-identical.
    assert writer.path.read_text() == verdicts[2].to_json_line() + "\n"
    # A second pass against a healthy sink empties it.
    seen = []
    assert reprocess_dead_letter(
        writer.path, CallbackAlertSink(seen.append)) == (1, 0)
    assert writer.path.read_text() == ""
    assert seen[0].to_json_line() == verdicts[2].to_json_line()


# -- spec grammar -----------------------------------------------------------

def test_spec_jsonl_fsync_option(tmp_path):
    sink = parse_sink_spec(f"jsonl:{tmp_path / 'a.jsonl'}|fsync")
    assert isinstance(sink, JsonlAlertSink)
    sink.emit(_verdict())
    sink.close()
    assert len(sink.path.read_text().splitlines()) == 1


def test_spec_webhook_timeout_option():
    sink = parse_sink_spec("webhook:http://example.invalid/hook|timeout=2.5")
    assert isinstance(sink, WebhookAlertSink)
    assert sink.timeout_s == 2.5


@pytest.mark.parametrize("spec,match", [
    ("jsonl:/tmp/x|gzip", "unknown jsonl sink option"),
    ("webhook:http://h/|retries=3", "unknown webhook sink option"),
    ("webhook:http://h/|timeout=soon", "bad webhook timeout"),
    ("webhook:http://h/|timeout=0", "must be positive"),
    ("jsonl:|fsync", "empty target"),
])
def test_spec_option_errors(spec, match):
    with pytest.raises(SinkError, match=match):
        parse_sink_spec(spec)
