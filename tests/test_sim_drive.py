"""Tests for single-drive simulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.config import FleetConfig
from repro.sim.drive import DriveSpec, simulate_drive
from repro.sim.failure_modes import FailureMode
from repro.smart.attributes import CHARACTERIZATION_ATTRIBUTES, attribute_index

CONFIG = FleetConfig(n_drives=100, seed=11)


def failed_spec(mode=FailureMode.LOGICAL, failure_hour=600, serial="F-1"):
    start = max(0, failure_hour - (CONFIG.failed_observation_hours - 1))
    return DriveSpec(serial=serial, mode=mode, start_hour=start,
                     n_samples=failure_hour - start + 1,
                     failure_hour=failure_hour)


def good_spec(serial="G-1"):
    return DriveSpec(serial=serial, mode=FailureMode.GOOD,
                     start_hour=100, n_samples=168)


class TestDriveSpec:
    def test_failed_spec_requires_failure_hour(self):
        with pytest.raises(SimulationError):
            DriveSpec("F", FailureMode.HEAD, 0, 100)

    def test_failure_hour_must_be_final_sample(self):
        with pytest.raises(SimulationError):
            DriveSpec("F", FailureMode.HEAD, 0, 100, failure_hour=50)

    def test_good_spec_rejects_failure_hour(self):
        with pytest.raises(SimulationError):
            DriveSpec("G", FailureMode.GOOD, 0, 100, failure_hour=99)

    def test_hours_span_the_observation(self):
        spec = failed_spec(failure_hour=600)
        assert spec.hours[0] == 600 - 479
        assert spec.hours[-1] == 600


class TestSimulatedProfiles:
    def test_profile_shape_matches_table_one(self):
        profile = simulate_drive(good_spec(), CONFIG)
        assert profile.matrix.shape == (168, 12)
        assert profile.attributes == CHARACTERIZATION_ATTRIBUTES
        assert not profile.failed

    def test_simulation_is_deterministic(self):
        a = simulate_drive(good_spec(), CONFIG)
        b = simulate_drive(good_spec(), CONFIG)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_different_serials_different_profiles(self):
        a = simulate_drive(good_spec("G-1"), CONFIG)
        b = simulate_drive(good_spec("G-2"), CONFIG)
        assert not np.array_equal(a.matrix, b.matrix)

    def test_health_values_within_vendor_range(self):
        profile = simulate_drive(failed_spec(mode=FailureMode.BAD_SECTOR),
                                 CONFIG)
        for symbol in ("RRER", "RSC", "SER", "RUE", "HFW", "HER", "CPSC",
                       "SUT", "POH"):
            column = profile.column(symbol)
            assert np.all(column >= 1.0), symbol
            assert np.all(column <= 100.0), symbol

    def test_raw_counters_monotone_nondecreasing(self):
        profile = simulate_drive(failed_spec(mode=FailureMode.HEAD), CONFIG)
        rrsc = profile.column("R-RSC")
        assert np.all(np.diff(rrsc) >= 0)

    def test_head_failure_exhausts_spare_pool(self):
        profile = simulate_drive(failed_spec(mode=FailureMode.HEAD), CONFIG)
        final = profile.failure_record()[attribute_index("R-RSC")]
        assert final >= 0.9 * CONFIG.spare_sectors

    def test_bad_sector_failure_accumulates_uncorrectables(self):
        profile = simulate_drive(failed_spec(mode=FailureMode.BAD_SECTOR),
                                 CONFIG)
        rue = profile.column("RUE")
        assert rue[-1] < rue[0]  # health value degrades
        assert rue[-1] < 70.0

    def test_logical_failure_stays_smart_quiet_until_the_end(self):
        profile = simulate_drive(failed_spec(mode=FailureMode.LOGICAL),
                                 CONFIG)
        rrsc = profile.column("R-RSC")
        rue = profile.column("RUE")
        assert rrsc[-1] < 100.0          # few reallocations
        assert rue[-1] > 95.0            # almost no uncorrectables

    def test_logical_failure_runs_hot(self):
        logical = simulate_drive(failed_spec(mode=FailureMode.LOGICAL,
                                             serial="F-hot"), CONFIG)
        good = simulate_drive(good_spec("G-cool"), CONFIG)
        # TC health value = 100 - temperature: hot drives score lower.
        assert logical.column("TC").mean() < good.column("TC").mean()

    def test_good_drive_has_negligible_errors(self):
        profile = simulate_drive(good_spec(), CONFIG)
        assert profile.column("RUE").min() >= 99.0
        assert profile.column("RSC").min() >= 99.0

    def test_truncated_bad_sector_profile_warm_starts_rue(self):
        """A drive failing early in the period already shows degradation."""
        spec = failed_spec(mode=FailureMode.BAD_SECTOR, failure_hour=100,
                           serial="F-early")
        profile = simulate_drive(spec, CONFIG)
        assert len(profile) == 101
        # Degradation started before observation: RUE is already reduced
        # at the very first sample.
        assert profile.column("RUE")[0] < 100.0
