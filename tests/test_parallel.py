"""Tests for the deterministic fan-out layer (``repro.parallel``)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParallelError
from repro.obs.observer import TelemetryObserver
from repro.parallel import (
    ParallelConfig,
    available_cpus,
    chunked,
    default_chunk_size,
    effective_jobs,
    map_drives,
)


def _square(x: int) -> int:
    """Module-level so the process backend can pickle it."""
    return x * x


def _explode(x: int) -> int:
    if x == 7:
        raise ValueError("item 7 is cursed")
    return x


# -- configuration ----------------------------------------------------------


def test_available_cpus_is_positive():
    assert available_cpus() >= 1


def test_effective_jobs_resolution():
    assert effective_jobs(None) == available_cpus()
    assert effective_jobs(0) == available_cpus()
    assert effective_jobs(3) == 3
    with pytest.raises(ParallelError):
        effective_jobs(-1)


def test_config_rejects_bad_values():
    with pytest.raises(ParallelError):
        ParallelConfig(n_jobs=-2)
    with pytest.raises(ParallelError):
        ParallelConfig(backend="greenlet")
    with pytest.raises(ParallelError):
        ParallelConfig(chunk_size=0)


def test_default_chunk_size_bounds():
    assert default_chunk_size(0, 4) == 1
    assert default_chunk_size(1, 4) == 1
    # 100 items over 4 jobs x 4 chunks/job -> ceil(100/16) = 7
    assert default_chunk_size(100, 4) == 7
    assert default_chunk_size(5, 1) * 4 >= 5


@given(st.lists(st.integers(), max_size=60), st.integers(1, 9))
def test_chunked_reassembles_exactly(items, size):
    chunks = chunked(items, size)
    assert [x for chunk in chunks for x in chunk] == items
    assert all(len(chunk) <= size for chunk in chunks)
    if items:
        assert all(len(chunk) == size for chunk in chunks[:-1])


def test_chunked_rejects_zero():
    with pytest.raises(ParallelError):
        chunked([1, 2], 0)


# -- map_drives -------------------------------------------------------------


def test_map_empty_items():
    assert map_drives(_square, [], ParallelConfig(n_jobs=4)) == []


def test_map_serial_is_plain_loop():
    assert map_drives(_square, range(10)) == [x * x for x in range(10)]


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("chunk_size", [None, 1, 3, 100])
def test_map_ordered_merge_across_backends(backend, chunk_size):
    config = ParallelConfig(n_jobs=4, backend=backend, chunk_size=chunk_size)
    assert map_drives(_square, range(23), config) == \
        [x * x for x in range(23)]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(), max_size=40), st.integers(1, 6),
       st.integers(1, 8))
def test_map_is_order_preserving_property(items, n_jobs, chunk_size):
    """For any job count and chunking, map_drives == builtin map."""
    config = ParallelConfig(n_jobs=n_jobs, backend="thread",
                            chunk_size=chunk_size)
    assert map_drives(_square, items, config) == [x * x for x in items]


def test_map_jobs_zero_uses_all_cpus():
    config = ParallelConfig(n_jobs=0, backend="thread")
    assert map_drives(_square, range(8), config) == \
        [x * x for x in range(8)]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_map_propagates_worker_exceptions(backend):
    config = ParallelConfig(n_jobs=2, backend=backend, chunk_size=2)
    with pytest.raises(ValueError, match="cursed"):
        map_drives(_explode, range(12), config)


def test_map_emits_fanout_telemetry():
    observer = TelemetryObserver()
    config = ParallelConfig(n_jobs=2, backend="thread", chunk_size=5)
    map_drives(_square, range(12), config, observer=observer,
               label="unit-fanout")
    span = observer.tracer.find("unit-fanout")
    assert span is not None
    assert span.attributes["n_jobs"] == 2
    assert span.attributes["n_chunks"] == 3
    snapshot = observer.metrics.snapshot()
    assert snapshot["parallel_chunks"]["value"] == 3
    assert snapshot["parallel_jobs"]["value"] == 2


def test_map_serial_span_marks_inline():
    observer = TelemetryObserver()
    map_drives(_square, range(3), ParallelConfig(n_jobs=1),
               observer=observer)
    span = observer.tracer.find("map-drives")
    assert span is not None
    assert span.attributes["backend"] == "inline"
