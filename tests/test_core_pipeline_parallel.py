"""Determinism of the parallel pipeline and the empty-window guard.

The ``n_jobs`` knob must be *purely* a performance knob: any job count
and either backend has to produce a byte-for-byte identical canonical
report.  These tests pin that property, the canonical rendering it
relies on (via the golden file), and the pipeline's behaviour when
profiles carry no degradation signal at all.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import CharacterizationPipeline
from repro.core.serialize import canonical_json_dumps, report_to_dict
from repro.data.dataset import DiskDataset
from repro.errors import ReproError, SignatureError
from repro.obs.observer import TelemetryObserver
from repro.smart.profile import HealthProfile

GOLDEN = Path(__file__).parent / "data" / "golden_canonical.json"


def _report_json(dataset, **kwargs) -> str:
    pipeline = CharacterizationPipeline(seed=3, run_prediction=False,
                                        **kwargs)
    return canonical_json_dumps(report_to_dict(pipeline.run(dataset)))


@pytest.fixture(scope="module")
def serial_report_json(small_dataset):
    return _report_json(small_dataset, n_jobs=1)


# -- byte-identity across job counts ----------------------------------------


@pytest.mark.parametrize("backend", ["process", "thread"])
def test_reports_byte_identical_at_four_jobs(backend, small_dataset,
                                             serial_report_json):
    assert _report_json(small_dataset, n_jobs=4,
                        parallel_backend=backend) == serial_report_json


@settings(max_examples=5, deadline=None)
@given(n_jobs=st.integers(min_value=2, max_value=8))
def test_reports_byte_identical_for_any_job_count(n_jobs, small_dataset,
                                                  serial_report_json):
    """Property: job count never leaks into the report bytes."""
    assert _report_json(small_dataset, n_jobs=n_jobs,
                        parallel_backend="thread") == serial_report_json


def test_reports_byte_identical_with_all_cpus(small_dataset,
                                              serial_report_json):
    assert _report_json(small_dataset, n_jobs=0) == serial_report_json


def test_canonical_rendering_is_pinned_by_golden_file():
    """Byte-identity is only meaningful while the canonical format is
    stable; re-canonicalizing the golden file must be a fixed point."""
    golden = GOLDEN.read_text()
    assert canonical_json_dumps(json.loads(golden)) == golden


def test_parallel_run_emits_fanout_span(small_dataset):
    observer = TelemetryObserver()
    pipeline = CharacterizationPipeline(seed=3, run_prediction=False,
                                        n_jobs=2,
                                        parallel_backend="thread",
                                        observer=observer)
    pipeline.run(small_dataset)
    span = observer.tracer.find("signature-fanout")
    assert span is not None
    assert span.attributes["n_jobs"] == 2
    assert observer.metrics.snapshot()["signatures_derived"]["value"] > 0


# -- degenerate telemetry ---------------------------------------------------


def _flat_failed_profile(serial: str, level: float) -> HealthProfile:
    """A failed drive whose telemetry never changes: every sample equals
    the failure record, so its distance-to-failure series is all zeros
    and no degradation window exists."""
    return HealthProfile(serial, np.arange(30),
                         np.tile(np.full(12, level), (30, 1)), failed=True)


def _degenerate_dataset() -> DiskDataset:
    rng = np.random.default_rng(5)
    profiles = [_flat_failed_profile(f"dead-{i}", 0.2 + 0.1 * i)
                for i in range(5)]
    profiles += [
        HealthProfile(f"good-{i}", np.arange(30),
                      rng.uniform(size=(30, 12)), failed=False)
        for i in range(12)
    ]
    return DiskDataset(profiles)


def test_all_degenerate_profiles_raise_a_clear_repro_error():
    pipeline = CharacterizationPipeline(seed=3, run_prediction=False)
    with pytest.raises(SignatureError,
                       match="no degradation signature") as excinfo:
        pipeline.run(_degenerate_dataset())
    assert isinstance(excinfo.value, ReproError)
    assert "degradation window" in str(excinfo.value)


def test_one_degenerate_profile_is_skipped_not_fatal(small_dataset):
    mixed = DiskDataset(small_dataset.profiles
                        + [_flat_failed_profile("dead-1", 0.5)])
    observer = TelemetryObserver()
    pipeline = CharacterizationPipeline(seed=3, run_prediction=False,
                                        observer=observer)
    report = pipeline.run(mixed)
    assert "dead-1" not in report.signatures
    assert len(report.signatures) == len(small_dataset.failed_profiles)
    snapshot = observer.metrics.snapshot()
    assert snapshot["signatures_skipped"]["value"] == 1
