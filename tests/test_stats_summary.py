"""Tests for box summaries and deciles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.stats.summary import box_summary, deciles


class TestBoxSummary:
    def test_quartiles_of_known_sample(self):
        summary = box_summary(np.arange(1.0, 101.0))
        assert summary.median == pytest.approx(50.5)
        assert summary.first_quartile == pytest.approx(25.75)
        assert summary.third_quartile == pytest.approx(75.25)
        assert summary.n_outliers == 0

    def test_outliers_counted_outside_whiskers(self):
        values = np.concatenate([np.zeros(50), np.ones(50), [100.0]])
        summary = box_summary(values)
        assert summary.n_outliers == 1
        assert summary.upper_whisker <= 1.0
        assert summary.maximum == 100.0

    def test_constant_sample(self):
        summary = box_summary(np.full(20, 3.0))
        assert summary.median == 3.0
        assert summary.spread == 0.0
        assert summary.interquartile_range == 0.0

    def test_rejects_empty_and_non_finite(self):
        with pytest.raises(ReproError):
            box_summary(np.array([]))
        with pytest.raises(ReproError):
            box_summary(np.array([1.0, np.nan]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_ordering_invariants(self, values):
        summary = box_summary(np.array(values))
        assert (summary.minimum <= summary.lower_whisker
                <= summary.first_quartile <= summary.median
                <= summary.third_quartile <= summary.upper_whisker
                <= summary.maximum)


class TestDeciles:
    def test_nine_deciles_of_uniform_grid(self):
        values = np.arange(0.0, 101.0)
        result = deciles(values)
        np.testing.assert_allclose(result, np.arange(10.0, 91.0, 10.0))

    def test_default_count_is_nine(self):
        assert deciles(np.arange(100.0)).shape == (9,)

    def test_custom_count(self):
        assert deciles(np.arange(100.0), count=5).shape == (5,)

    def test_invalid_count_rejected(self):
        with pytest.raises(ReproError):
            deciles(np.arange(10.0), count=0)
        with pytest.raises(ReproError):
            deciles(np.arange(10.0), count=10)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_deciles_are_monotone_and_within_range(self, values):
        array = np.array(values)
        result = deciles(array)
        assert np.all(np.diff(result) >= 0)
        assert result[0] >= array.min()
        assert result[-1] <= array.max()
