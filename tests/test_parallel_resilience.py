"""Tests for worker retry, timeout and serial fallback
(``repro.parallel.RetryPolicy``)."""

from __future__ import annotations

import functools
import os
import time
from pathlib import Path

import pytest

from repro.errors import ParallelError, WorkerCrashError, WorkerTimeoutError
from repro.obs.observer import TelemetryObserver
from repro.parallel import ParallelConfig, RetryPolicy, map_drives


def _double(item):
    return item * 2


def _crash_once(item, sentinel_path):
    """Kill the worker process hard on first sight of the sentinel gap."""
    sentinel = Path(sentinel_path)
    if not sentinel.exists():
        sentinel.write_text("crashed")
        os._exit(13)
    return item * 2


def _crash_always(item):
    os._exit(13)


def _hang(item):
    time.sleep(5.0)
    return item


def _raise_on_three(item):
    if item == 3:
        raise ZeroDivisionError("item 3 is cursed")
    return item * 2


# -- policy validation ------------------------------------------------------


def test_retry_policy_validates_parameters():
    with pytest.raises(ParallelError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ParallelError, match="backoff_s"):
        RetryPolicy(backoff_s=-0.1)
    with pytest.raises(ParallelError, match="timeout_s"):
        RetryPolicy(timeout_s=0)


def test_resilient_preset_retries_and_falls_back():
    policy = RetryPolicy.resilient(max_retries=3, timeout_s=10.0)
    assert policy.max_retries == 3
    assert policy.timeout_s == 10.0
    assert policy.serial_fallback


def test_default_config_retries_nothing():
    assert ParallelConfig().retry == RetryPolicy()


# -- crash recovery ---------------------------------------------------------


def test_crashed_worker_is_retried_to_an_identical_result(tmp_path):
    """One hard worker crash, then recovery: the merged result must be
    byte-for-byte what a crash-free run returns."""
    items = list(range(12))
    observer = TelemetryObserver()
    fn = functools.partial(_crash_once, sentinel_path=tmp_path / "sentinel")
    results = map_drives(
        fn, items,
        ParallelConfig(n_jobs=2, backend="process", chunk_size=3,
                       retry=RetryPolicy(max_retries=2, backoff_s=0.0)),
        observer=observer,
    )
    assert results == [item * 2 for item in items]
    snapshot = observer.metrics.snapshot()
    assert snapshot["parallel_worker_crashes"]["value"] >= 1
    assert snapshot["parallel_retries"]["value"] >= 1


def test_persistent_crash_without_fallback_raises_typed_error():
    with pytest.raises(WorkerCrashError, match="attempt"):
        map_drives(
            _crash_always, list(range(4)),
            ParallelConfig(n_jobs=2, backend="process", chunk_size=2,
                           retry=RetryPolicy(max_retries=1, backoff_s=0.0)),
        )


def test_hung_worker_without_fallback_raises_timeout_error():
    observer = TelemetryObserver()
    with pytest.raises(WorkerTimeoutError, match="deadline"):
        map_drives(
            _hang, list(range(2)),
            ParallelConfig(n_jobs=2, backend="process", chunk_size=1,
                           retry=RetryPolicy(timeout_s=0.5)),
            observer=observer,
        )
    assert observer.metrics.snapshot()["parallel_timeouts"]["value"] >= 1


def _crash_unless_parent(item, parent_pid):
    """Dies in every pool worker (different pid) but succeeds when the
    serial fallback re-runs it in the parent process."""
    if os.getpid() != parent_pid:
        os._exit(13)
    return item * 2


def test_serial_fallback_completes_after_persistent_crashes():
    """Workers that always die are infrastructure failure; the items are
    fine, so the serial fallback must finish the job."""
    observer = TelemetryObserver()
    fn = functools.partial(_crash_unless_parent, parent_pid=os.getpid())
    results = map_drives(
        fn, list(range(6)),
        ParallelConfig(n_jobs=2, backend="process", chunk_size=2,
                       retry=RetryPolicy(max_retries=1, backoff_s=0.0,
                                         serial_fallback=True)),
        observer=observer,
    )
    assert results == [item * 2 for item in range(6)]
    snapshot = observer.metrics.snapshot()
    assert snapshot["parallel_serial_fallbacks"]["value"] >= 1


# -- exception semantics ----------------------------------------------------


def test_fn_exception_propagates_unchanged_by_default():
    with pytest.raises(ZeroDivisionError, match="cursed"):
        map_drives(_raise_on_three, list(range(6)),
                   ParallelConfig(n_jobs=2, backend="process", chunk_size=2))


def test_fn_exception_propagates_through_serial_fallback():
    """A genuinely failing item must raise exactly as on the serial
    path, even after retries and fallback."""
    with pytest.raises(ZeroDivisionError, match="cursed"):
        map_drives(
            _raise_on_three, list(range(6)),
            ParallelConfig(n_jobs=2, backend="process", chunk_size=2,
                           retry=RetryPolicy.resilient(max_retries=1)),
        )


def test_retry_policy_is_inert_on_the_serial_path():
    results = map_drives(
        _double, list(range(5)),
        ParallelConfig(n_jobs=1, retry=RetryPolicy.resilient()),
    )
    assert results == [0, 2, 4, 6, 8]
