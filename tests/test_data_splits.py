"""Tests for train/test splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.splits import train_test_split
from repro.errors import DatasetError


def test_partition_is_disjoint_and_complete():
    split = train_test_split(100, rng=np.random.default_rng(1))
    combined = np.concatenate([split.train_indices, split.test_indices])
    assert sorted(combined.tolist()) == list(range(100))


def test_default_fraction_is_seventy_percent():
    split = train_test_split(1000, rng=np.random.default_rng(1))
    assert split.train_indices.shape[0] == 700


def test_select_pairs_arrays():
    features = np.arange(20).reshape(10, 2)
    targets = np.arange(10)
    split = train_test_split(10, rng=np.random.default_rng(1))
    x_train, x_test, y_train, y_test = split.select(features, targets)
    assert x_train.shape[0] == y_train.shape[0]
    assert x_test.shape[0] == y_test.shape[0]
    np.testing.assert_array_equal(x_train[:, 0] // 2, y_train)


def test_group_split_keeps_groups_together():
    groups = np.repeat(np.arange(10), 5)
    split = train_test_split(50, groups=groups,
                             rng=np.random.default_rng(2))
    train_groups = set(groups[split.train_indices].tolist())
    test_groups = set(groups[split.test_indices].tolist())
    assert train_groups.isdisjoint(test_groups)


def test_group_split_needs_two_groups():
    with pytest.raises(DatasetError):
        train_test_split(10, groups=np.zeros(10))


def test_invalid_arguments():
    with pytest.raises(DatasetError):
        train_test_split(1)
    with pytest.raises(DatasetError):
        train_test_split(10, train_fraction=1.5)
    with pytest.raises(DatasetError):
        train_test_split(10, groups=np.zeros(5))


def test_deterministic_given_rng():
    a = train_test_split(50, rng=np.random.default_rng(9))
    b = train_test_split(50, rng=np.random.default_rng(9))
    np.testing.assert_array_equal(a.train_indices, b.train_indices)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 500), fraction=st.floats(0.05, 0.95))
def test_both_sides_nonempty_for_any_fraction(n, fraction):
    split = train_test_split(n, train_fraction=fraction,
                             rng=np.random.default_rng(0))
    assert split.train_indices.shape[0] >= 1
    assert split.test_indices.shape[0] >= 1
    assert split.train_indices.shape[0] + split.test_indices.shape[0] == n
