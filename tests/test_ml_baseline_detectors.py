"""Tests for the classical failure-detection baselines."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.ranksum import RankSumDetector
from repro.ml.threshold import ThresholdDetector


class TestThresholdDetector:
    def test_good_fleet_raises_no_alarm_on_itself(self, rng):
        good = rng.normal(100.0, 1.0, size=(500, 4))
        detector = ThresholdDetector(margin=0.05).fit(good)
        assert not np.any(detector.flag_records(good))

    def test_deep_excursion_flagged(self, rng):
        good = rng.normal(100.0, 1.0, size=(500, 4))
        detector = ThresholdDetector(margin=0.05).fit(good)
        bad = good[0].copy()
        bad[2] = 0.0
        assert detector.flag_records(bad.reshape(1, -1))[0]

    def test_flag_drive_any_record(self, rng):
        good = rng.normal(100.0, 1.0, size=(500, 4))
        detector = ThresholdDetector().fit(good)
        profile = np.vstack([good[:10], np.zeros((1, 4))])
        assert detector.flag_drive(profile)

    def test_conservative_thresholds_fixed_cut(self):
        detector = ThresholdDetector.conservative(3, cut=-0.5)
        records = np.array([[0.0, 0.0, -0.6], [0.0, 0.0, -0.4]])
        flags = detector.flag_records(records)
        assert flags.tolist() == [True, False]

    def test_use_before_fit_raises(self):
        with pytest.raises(ModelError):
            ThresholdDetector().flag_records(np.zeros((1, 2)))

    def test_attribute_count_mismatch(self, rng):
        detector = ThresholdDetector().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ModelError):
            detector.flag_records(np.zeros((1, 4)))


class TestRankSumDetector:
    def test_matching_distribution_not_flagged(self, rng):
        good = rng.normal(0.0, 1.0, size=(3000, 3))
        detector = RankSumDetector(seed=1).fit(good)
        window = rng.normal(0.0, 1.0, size=(48, 3))
        assert not detector.flag(window)

    def test_material_shift_flagged(self, rng):
        good = rng.normal(0.0, 1.0, size=(3000, 3))
        detector = RankSumDetector(seed=1).fit(good)
        shifted = rng.normal(0.0, 1.0, size=(48, 3))
        shifted[:, 1] += 10.0
        assert detector.flag(shifted)

    def test_statistical_but_immaterial_shift_not_flagged(self, rng):
        """A shift inside the reference band must not raise an alarm."""
        good = rng.normal(0.0, 1.0, size=(5000, 1))
        detector = RankSumDetector(seed=1, significance=0.01,
                                   band_quantile=0.001).fit(good)
        slightly = rng.normal(0.5, 0.1, size=(60, 1))  # within the band
        assert not detector.flag(slightly)

    def test_flag_many(self, rng):
        good = rng.normal(0.0, 1.0, size=(2000, 2))
        detector = RankSumDetector(seed=1).fit(good)
        ok = rng.normal(0.0, 1.0, size=(48, 2))
        bad = ok + 20.0
        flags = detector.flag_many([ok, bad])
        assert flags.tolist() == [False, True]

    def test_constant_attribute_yields_p_one(self, rng):
        good = np.full((2000, 1), 7.0)
        detector = RankSumDetector(seed=1).fit(good)
        p_values = detector.attribute_p_values(np.full((48, 1), 7.0))
        assert p_values[0] == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            RankSumDetector(significance=0.0)
        with pytest.raises(ModelError):
            RankSumDetector(band_quantile=0.7)
        with pytest.raises(ModelError):
            RankSumDetector(reference_size=1)

    def test_use_before_fit_raises(self):
        with pytest.raises(ModelError):
            RankSumDetector().flag(np.zeros((5, 2)))


class TestGaussianNaiveBayes:
    def test_separable_classes_classified(self, rng):
        negative = rng.normal(0.0, 1.0, size=(500, 2))
        positive = rng.normal(6.0, 1.0, size=(500, 2))
        features = np.vstack([negative, positive])
        labels = np.concatenate([np.zeros(500, bool), np.ones(500, bool)])
        model = GaussianNaiveBayes().fit(features, labels)
        assert not model.predict(np.array([[0.0, 0.0]]))[0]
        assert model.predict(np.array([[6.0, 6.0]]))[0]

    def test_threshold_trades_detection_for_alarms(self, rng):
        negative = rng.normal(0.0, 1.0, size=(500, 2))
        positive = rng.normal(1.5, 1.0, size=(500, 2))
        features = np.vstack([negative, positive])
        labels = np.concatenate([np.zeros(500, bool), np.ones(500, bool)])
        model = GaussianNaiveBayes().fit(features, labels)
        probe = rng.normal(1.0, 1.0, size=(300, 2))
        lax = model.predict(probe, threshold=-2.0).mean()
        strict = model.predict(probe, threshold=4.0).mean()
        assert lax > strict

    def test_log_odds_sign(self, rng):
        negative = rng.normal(0.0, 0.5, size=(200, 1))
        positive = rng.normal(4.0, 0.5, size=(200, 1))
        model = GaussianNaiveBayes().fit(
            np.vstack([negative, positive]),
            np.concatenate([np.zeros(200, bool), np.ones(200, bool)]),
        )
        assert model.log_odds(np.array([[4.0]]))[0] > 0
        assert model.log_odds(np.array([[0.0]]))[0] < 0

    def test_needs_both_classes(self, rng):
        with pytest.raises(ModelError):
            GaussianNaiveBayes().fit(rng.normal(size=(10, 2)),
                                     np.zeros(10, bool))

    def test_use_before_fit_raises(self):
        with pytest.raises(ModelError):
            GaussianNaiveBayes().log_odds(np.zeros((1, 2)))
