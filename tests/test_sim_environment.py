"""Tests for the thermal environment and power-on clock."""

import numpy as np
import pytest

from repro.sim.config import FleetConfig
from repro.sim.environment import PowerOnClock, ThermalEnvironment
from repro.sim.rng import child_rng


CONFIG = FleetConfig(n_drives=100)


def test_mode_offset_raises_temperature():
    rng_a = child_rng(1, "d", "thermal")
    rng_b = child_rng(1, "d", "thermal")
    cool = ThermalEnvironment.sample(CONFIG, rng_a, mode_offset_c=0.0)
    hot = ThermalEnvironment.sample(CONFIG, rng_b, mode_offset_c=9.0)
    utilization = np.full(200, 0.5)
    t_cool = cool.temperature_series(utilization, child_rng(2, "x"))
    t_hot = hot.temperature_series(utilization, child_rng(2, "x"))
    assert t_hot.mean() - t_cool.mean() == pytest.approx(9.0)


def test_activity_heats_the_drive():
    environment = ThermalEnvironment(CONFIG, rack_offset_c=0.0,
                                     mode_offset_c=0.0)
    idle = environment.temperature_series(np.zeros(500), child_rng(5, "a"))
    busy = environment.temperature_series(np.ones(500), child_rng(5, "a"))
    assert busy.mean() - idle.mean() > 3.0


def test_temperature_health_inverts_temperature():
    health = ThermalEnvironment.temperature_health(np.array([20.0, 40.0]))
    assert health[0] > health[1]
    assert health[0] == 80.0


def test_temperature_health_floors_at_one():
    health = ThermalEnvironment.temperature_health(np.array([250.0]))
    assert health[0] == 1.0


class TestPowerOnClock:
    def test_raw_series_advances_with_hours(self):
        clock = PowerOnClock(age_at_start_hours=1000.0, step_hours=876.0)
        raw = clock.raw_series(np.array([0, 1, 10]))
        np.testing.assert_allclose(raw, [1000.0, 1001.0, 1010.0])

    def test_health_is_stepwise(self):
        clock = PowerOnClock(age_at_start_hours=870.0, step_hours=876.0)
        health = clock.health_series(np.arange(0, 20))
        # Crosses the 876-hour boundary at hour 6: one unit step down.
        assert health[0] == 100.0
        assert health[-1] == 99.0
        assert set(np.diff(health)) <= {0.0, -1.0}

    def test_health_floors_at_one(self):
        clock = PowerOnClock(age_at_start_hours=1.0e6, step_hours=876.0)
        assert clock.health_series(np.array([0]))[0] == 1.0

    def test_age_bias_scales_median_age(self):
        young = [PowerOnClock.sample(CONFIG, child_rng(i, "a"), age_bias=1.0)
                 .age_at_start_hours for i in range(200)]
        old = [PowerOnClock.sample(CONFIG, child_rng(i, "a"), age_bias=2.5)
               .age_at_start_hours for i in range(200)]
        assert np.median(old) > 1.8 * np.median(young)
