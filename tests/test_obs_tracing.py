"""Tests for the span tracer: nesting, exception safety, JSON round-trip."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.tracing import Span, Tracer


def test_spans_nest_into_a_tree():
    tracer = Tracer()
    with tracer.span("pipeline"):
        with tracer.span("cluster", k=3):
            with tracer.span("elbow"):
                pass
        with tracer.span("signatures"):
            pass
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.name == "pipeline"
    assert [child.name for child in root.children] == ["cluster", "signatures"]
    assert root.children[0].children[0].name == "elbow"
    assert root.children[0].attributes == {"k": 3}


def test_sequential_roots():
    tracer = Tracer()
    with tracer.span("simulate-fleet"):
        pass
    with tracer.span("pipeline"):
        pass
    assert [span.name for span in tracer.roots] == ["simulate-fleet",
                                                    "pipeline"]


def test_durations_are_positive_and_nested_spans_are_smaller():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            sum(range(10_000))
    outer = tracer.find("outer")
    inner = tracer.find("inner")
    assert outer.wall_s > 0
    assert inner.wall_s > 0
    assert inner.wall_s <= outer.wall_s
    assert outer.cpu_s >= 0


def test_exception_marks_span_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("boom")
    inner = tracer.find("inner")
    outer = tracer.find("outer")
    assert inner.status == "error"
    assert inner.error == "ValueError: boom"
    assert outer.status == "error"
    # The stack unwound fully: a new span starts a new root.
    assert tracer.current is None
    with tracer.span("next"):
        pass
    assert [span.name for span in tracer.roots] == ["outer", "next"]


def test_span_durations_recorded_even_on_error():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("failing"):
            raise RuntimeError
    assert tracer.find("failing").wall_s > 0


def test_stage_timings_sums_repeated_names():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("stage"):
            pass
    timings = tracer.stage_timings()
    assert set(timings) == {"stage"}
    single = tracer.roots[0].wall_s
    assert timings["stage"] >= single


def test_find_returns_none_for_unknown_name():
    assert Tracer().find("nope") is None


def test_json_round_trip_is_lossless():
    tracer = Tracer()
    with tracer.span("pipeline", n_drives=500):
        with tracer.span("cluster", method="kmeans"):
            pass
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("x")
    payload = tracer.to_dict()
    rebuilt = Tracer.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt.to_dict() == payload
    assert rebuilt.find("cluster").attributes == {"method": "kmeans"}
    assert rebuilt.find("failing").status == "error"


def test_save_and_load_json(tmp_path):
    tracer = Tracer()
    with tracer.span("root"):
        pass
    path = tmp_path / "trace.json"
    tracer.save_json(path)
    loaded = Tracer.load_json(path)
    assert loaded.to_dict() == tracer.to_dict()


def test_load_rejects_bad_schema(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"schema_version": 99, "spans": []}))
    with pytest.raises(ObservabilityError, match="schema version"):
        Tracer.load_json(path)


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text("{broken")
    with pytest.raises(ObservabilityError, match="not a valid trace"):
        Tracer.load_json(path)


def test_span_from_dict_rejects_garbage():
    with pytest.raises(ObservabilityError, match="malformed span"):
        Span.from_dict({"no_name": True})
