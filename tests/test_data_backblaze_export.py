"""Tests for the Backblaze-format exporter (round-trip with the loader)."""

import numpy as np
import pytest

from repro.data.backblaze import load_backblaze_csv, save_backblaze_csv
from repro.data.dataset import DiskDataset
from repro.errors import DatasetError
from repro.smart.profile import HealthProfile


def test_round_trip_through_backblaze_format(tmp_path, small_dataset):
    paths = save_backblaze_csv(small_dataset, tmp_path, model="TEST")
    assert paths, "exporter wrote no files"
    loaded = load_backblaze_csv(paths, model="TEST", apply_policy=False)
    # Every drive survives with its failure label.
    assert len(loaded) == len(small_dataset)
    for profile in small_dataset.profiles:
        restored = loaded.get(profile.serial)
        assert restored.failed == profile.failed
        # The final record (failure record for failed drives) is kept
        # exactly by the downsampler.
        np.testing.assert_allclose(restored.matrix[-1],
                                   profile.failure_record()
                                   if profile.failed else profile.matrix[-1])


def test_daily_downsampling(tmp_path, small_dataset):
    paths = save_backblaze_csv(small_dataset, tmp_path)
    loaded = load_backblaze_csv(paths, apply_policy=False)
    for profile in small_dataset.profiles:
        restored = loaded.get(profile.serial)
        expected = (len(profile) + 23) // 24
        assert len(restored) == expected


def test_unmapped_attributes_rejected(tmp_path):
    profile = HealthProfile(
        serial="x", hours=np.arange(5),
        matrix=np.zeros((5, 2)), failed=False,
        attributes=("CUSTOM1", "CUSTOM2"),
    )
    with pytest.raises(DatasetError, match="without Backblaze columns"):
        save_backblaze_csv(DiskDataset([profile]), tmp_path)


def test_export_creates_directory(tmp_path, small_dataset):
    target = tmp_path / "nested" / "dir"
    paths = save_backblaze_csv(small_dataset, target)
    assert all(path.parent == target for path in paths)
