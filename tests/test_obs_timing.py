"""Tests for the standalone timing helpers."""

import pytest

from repro.obs.timing import TimeitResult, format_duration, timeit


def test_timeit_measures_elapsed_time():
    with timeit("label") as timer:
        sum(range(10_000))
    assert timer.label == "label"
    assert timer.wall_s > 0
    assert timer.cpu_s >= 0
    assert timer.elapsed == timer.wall_s


def test_timeit_populates_on_exception():
    timer_ref: TimeitResult | None = None
    with pytest.raises(RuntimeError):
        with timeit() as timer:
            timer_ref = timer
            raise RuntimeError
    assert timer_ref is not None
    assert timer_ref.wall_s > 0


def test_format_duration_ranges():
    assert format_duration(0.0002) == "200 µs"
    assert format_duration(0.042) == "42 ms"
    assert format_duration(0.431) == "431 ms"
    assert format_duration(2.412) == "2.41 s"
    assert format_duration(192.0) == "3 min 12 s"
    assert format_duration(-0.431) == "-431 ms"
