"""Tests for HealthProfile."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.smart.profile import HealthProfile


def make_profile(n=10, failed=True, serial="d1"):
    hours = np.arange(100, 100 + n)
    matrix = np.arange(n * 12, dtype=np.float64).reshape(n, 12)
    return HealthProfile(serial=serial, hours=hours, matrix=matrix,
                         failed=failed)


def test_len_and_duration():
    profile = make_profile(n=5)
    assert len(profile) == 5
    assert profile.duration_hours == 5


def test_failure_record_is_last_row():
    profile = make_profile(n=4)
    np.testing.assert_array_equal(profile.failure_record(),
                                  profile.matrix[-1])


def test_failure_record_on_good_drive_raises():
    profile = make_profile(failed=False)
    with pytest.raises(DatasetError):
        profile.failure_record()
    with pytest.raises(DatasetError):
        _ = profile.failure_hour


def test_column_returns_attribute_series():
    profile = make_profile(n=3)
    np.testing.assert_array_equal(profile.column("RRER"),
                                  profile.matrix[:, 0])
    np.testing.assert_array_equal(profile.column("TC"),
                                  profile.matrix[:, 11])


def test_last_truncates_from_the_end():
    profile = make_profile(n=10)
    truncated = profile.last(3)
    assert len(truncated) == 3
    np.testing.assert_array_equal(truncated.matrix, profile.matrix[-3:])
    assert truncated.failure_hour == profile.failure_hour


def test_hours_before_failure_counts_down_to_zero():
    profile = make_profile(n=4)
    np.testing.assert_array_equal(profile.hours_before_failure(),
                                  [3, 2, 1, 0])


def test_record_at_round_trip():
    profile = make_profile(n=3)
    record = profile.record_at(1)
    assert record.hour == int(profile.hours[1])
    np.testing.assert_array_equal(record.as_array(), profile.matrix[1])


def test_records_returns_all_samples():
    profile = make_profile(n=4)
    assert len(profile.records()) == 4


def test_non_increasing_hours_rejected():
    with pytest.raises(DatasetError):
        HealthProfile("d", np.array([3, 2, 1]), np.zeros((3, 12)), True)


def test_shape_mismatch_rejected():
    with pytest.raises(DatasetError):
        HealthProfile("d", np.arange(3), np.zeros((4, 12)), True)
    with pytest.raises(DatasetError):
        HealthProfile("d", np.arange(3), np.zeros((3, 5)), True)


def test_empty_profile_rejected():
    with pytest.raises(DatasetError):
        HealthProfile("d", np.array([]), np.zeros((0, 12)), True)


def test_with_matrix_keeps_structure():
    profile = make_profile(n=3)
    replaced = profile.with_matrix(profile.matrix * 2.0)
    assert replaced.serial == profile.serial
    np.testing.assert_array_equal(replaced.hours, profile.hours)
    np.testing.assert_array_equal(replaced.matrix, profile.matrix * 2.0)
