"""Bundle lineage tests: generation + parent hash, end to end.

Lineage is what makes promotions auditable, so it must survive the
full artifact round-trip (serialize → hash → save → load), be covered
by the content hash (a re-stamped bundle is a *different* artifact),
and refuse structurally invalid values.
"""

import json

import pytest

from repro.errors import BundleError
from repro.serve.bundle import (bundle_from_document, build_bundle,
                                content_hash, load_bundle, save_bundle,
                                stamp_lineage)


@pytest.fixture(scope="module")
def champion(mid_report):
    return build_bundle(mid_report, seed=7)


def test_fresh_bundles_start_at_generation_zero(champion):
    assert champion.generation == 0
    assert champion.parent_sha256 == ""


def test_stamp_lineage_chains_generation_and_parent(champion):
    child = stamp_lineage(champion, champion)
    grandchild = stamp_lineage(child, child)
    assert child.generation == 1
    assert child.parent_sha256 == content_hash(champion.to_payload())
    assert grandchild.generation == 2
    assert grandchild.parent_sha256 == content_hash(child.to_payload())


def test_lineage_is_covered_by_the_content_hash(champion):
    stamped = stamp_lineage(champion, champion)
    assert content_hash(stamped.to_payload()) \
        != content_hash(champion.to_payload())


def test_lineage_survives_the_save_load_round_trip(champion, tmp_path):
    stamped = stamp_lineage(champion, champion)
    path = tmp_path / "challenger.bundle.json"
    save_bundle(stamped, path)
    payload = json.loads(path.read_text())
    assert payload["lineage"] == {
        "generation": 1,
        "parent_sha256": content_hash(champion.to_payload()),
    }
    loaded = load_bundle(path)
    assert loaded.generation == 1
    assert loaded.parent_sha256 == stamped.parent_sha256


def test_missing_lineage_key_defaults_to_generation_zero(champion,
                                                         tmp_path):
    """Pre-lineage artifacts (no ``lineage`` key) still decode."""
    path = tmp_path / "old.bundle.json"
    save_bundle(champion, path)
    payload = json.loads(path.read_text())
    del payload["lineage"]
    payload["content_sha256"] = content_hash(payload)
    document = bundle_from_document(payload)
    assert document.generation == 0
    assert document.parent_sha256 == ""


def test_negative_generation_is_refused(champion, tmp_path):
    path = tmp_path / "bad.bundle.json"
    save_bundle(champion, path)
    payload = json.loads(path.read_text())
    payload["lineage"]["generation"] = -1
    payload["content_sha256"] = content_hash(payload)
    with pytest.raises(BundleError, match="generation"):
        bundle_from_document(payload)


def test_tampered_lineage_fails_the_hash_gate(champion, tmp_path):
    path = tmp_path / "tampered.bundle.json"
    save_bundle(stamp_lineage(champion, champion), path)
    payload = json.loads(path.read_text())
    payload["lineage"]["generation"] = 7  # hash not recomputed
    with pytest.raises(BundleError, match="sha256|hash"):
        bundle_from_document(payload)
