"""Tests for AFR and Weibull failure-time fitting."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.stats.afr import (
    HOURS_PER_YEAR,
    annualized_failure_rate,
    fit_weibull,
)


class TestAFR:
    def test_papers_fleet_annualizes_to_twelve_percent(self):
        afr = annualized_failure_rate(433, 23395, 1344)
        assert afr == pytest.approx(0.1207, abs=0.002)

    def test_full_year_period_is_plain_fraction(self):
        afr = annualized_failure_rate(30, 1000, HOURS_PER_YEAR)
        assert afr == pytest.approx(0.03)

    def test_shorter_periods_scale_up(self):
        half_year = annualized_failure_rate(15, 1000, HOURS_PER_YEAR / 2)
        assert half_year == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ReproError):
            annualized_failure_rate(-1, 100, 100)
        with pytest.raises(ReproError):
            annualized_failure_rate(101, 100, 100)
        with pytest.raises(ReproError):
            annualized_failure_rate(1, 100, 0)


class TestWeibull:
    def test_recovers_known_parameters(self, rng):
        samples = rng.weibull(2.0, size=5000) * 300.0
        fit = fit_weibull(samples)
        assert fit.shape == pytest.approx(2.0, rel=0.1)
        assert fit.scale == pytest.approx(300.0, rel=0.1)
        assert fit.hazard_is_increasing

    def test_detects_decreasing_hazard(self, rng):
        samples = rng.weibull(0.6, size=5000) * 300.0
        fit = fit_weibull(samples)
        assert fit.hazard_is_decreasing

    def test_survival_boundaries(self, rng):
        fit = fit_weibull(rng.weibull(1.5, size=500) * 100.0)
        assert fit.survival(0.0) == pytest.approx(1.0)
        assert fit.survival(1.0e9) == pytest.approx(0.0, abs=1e-12)
        # Survival decreases monotonically.
        t = np.linspace(1.0, 500.0, 50)
        assert np.all(np.diff(fit.survival(t)) <= 0)

    def test_hazard_shape_direction(self, rng):
        increasing = fit_weibull(rng.weibull(2.5, size=2000) * 100.0)
        t = np.array([10.0, 100.0, 300.0])
        hazards = increasing.hazard(t)
        assert hazards[0] < hazards[1] < hazards[2]

    def test_validation(self):
        with pytest.raises(ReproError):
            fit_weibull(np.array([1.0, 2.0]))
        with pytest.raises(ReproError):
            fit_weibull(np.array([1.0, -2.0, 3.0]))


def test_failure_rates_experiment(mid_fleet):
    from repro.experiments import failure_rates
    result = failure_rates.run(mid_fleet)
    # Both fleets share the configured period rate -> identical AFR.
    assert result.data["afr"] == pytest.approx(result.data["paper_afr"],
                                               rel=0.05)
    assert 0.05 < result.data["afr"] < 0.2
    assert 0.3 < result.data["weibull_shape"] < 3.0
