"""Tests for watch mode: the live telemetry plane around the scorer.

The acceptance criteria of the telemetry plane live here: a concurrent
HTTP client scrapes ``/metrics``, ``/health`` and ``/status`` *while*
the service scores; the flight recorder retains the last alerts; and
watched verdicts stay byte-identical to an offline replay of the same
samples — telemetry observes scoring, it never participates.
"""

import csv
import json
import threading

import pytest

from repro.errors import ServeError
from repro.obs.observer import NULL_OBSERVER, TelemetryObserver
from repro.obs.recorder import FlightRecorder
from repro.serve.bundle import (
    BUNDLE_SCHEMA_VERSION,
    build_bundle,
    content_hash,
    load_bundle,
    save_bundle,
)
from repro.serve.cli import main as serve_main
from repro.serve.scorer import StreamScorer
from repro.serve.watch import WatchService

from tests.test_obs_http import _get


@pytest.fixture(scope="module")
def loaded_bundle(mid_report, tmp_path_factory):
    bundle = build_bundle(mid_report, seed=7)
    path = tmp_path_factory.mktemp("watch") / "fleet.bundle.json"
    save_bundle(bundle, path)
    return load_bundle(path)


@pytest.fixture(scope="module")
def bundle_path(loaded_bundle, tmp_path_factory):
    path = tmp_path_factory.mktemp("watch-cli") / "fleet.bundle.json"
    save_bundle(loaded_bundle, path)
    return path


@pytest.fixture(scope="module")
def stream_samples(mid_fleet):
    """Raw samples from failed + good drives, flat and batchable."""
    dataset = mid_fleet.dataset
    profiles = dataset.failed_profiles[:4] + dataset.good_profiles[:4]
    samples = [
        (profile.serial, int(hour), row)
        for profile in profiles
        for hour, row in zip(profile.hours, profile.matrix)
    ]
    return profiles, samples


def _batches(samples, size=64):
    return [samples[i:i + size] for i in range(0, len(samples), size)]


def test_watch_verdicts_byte_identical_to_offline_replay(
        loaded_bundle, stream_samples):
    profiles, samples = stream_samples
    offline = StreamScorer(loaded_bundle)
    expected = [verdict.to_json_line()
                for profile in profiles
                for verdict in offline.replay_profile(profile)]
    with WatchService(loaded_bundle) as service:
        watched = [verdict.to_json_line()
                   for batch in _batches(samples)
                   for verdict in service.score_batch(batch)]
    assert sorted(watched) == sorted(expected)


def test_concurrent_scrapes_while_scoring(loaded_bundle, stream_samples):
    """The acceptance scenario: scrape all three endpoints from another
    thread while batches stream through the scorer."""
    _profiles, samples = stream_samples
    scrapes = []
    stop = threading.Event()

    with WatchService(loaded_bundle) as service:
        def scraper():
            while not stop.is_set():
                for endpoint in ("/metrics", "/health", "/status"):
                    scrapes.append((endpoint, _get(service.url + endpoint)))

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        for batch in _batches(samples):
            service.score_batch(batch)
        stop.set()
        thread.join(timeout=10)

        assert len(scrapes) >= 3
        assert all(status == 200 for _e, (status, _c, _b) in scrapes)
        health = json.loads(
            _get(service.url + "/health")[2])
        assert health == {
            "status": "ok",
            "bundle_sha256": content_hash(loaded_bundle.to_payload()),
            "schema_version": BUNDLE_SCHEMA_VERSION,
        }
        final_status = json.loads(_get(service.url + "/status")[2])
        assert final_status["samples_scored"] == len(samples)
        assert final_status["alerts_emitted"] > 0
        assert final_status["flight_recorder"]["total_recorded"] > 0
        metrics_text = _get(service.url + "/metrics")[2]
        assert f"repro_samples_scored_total {len(samples)}" in metrics_text
        assert "repro_verdict_stage_bucket" in metrics_text
        assert "repro_telemetry_requests_total" in metrics_text


def test_flight_recorder_keeps_the_last_alerts(loaded_bundle,
                                               stream_samples):
    _profiles, samples = stream_samples
    recorder = FlightRecorder(capacity=32)
    with WatchService(loaded_bundle, recorder=recorder) as service:
        for batch in _batches(samples):
            service.score_batch(batch)
        alerts = recorder.events_of("alert")
        assert alerts
        assert alerts[-1].context.keys() == {
            "serial", "hour", "level", "stage", "likely_type"}
        assert service.scorer.alerts_emitted >= len(alerts)
    kinds = [event.kind for event in recorder.tail()]
    assert kinds[-1] == "lifecycle"  # the stop event


def test_status_tail_is_bounded(loaded_bundle, stream_samples):
    _profiles, samples = stream_samples
    with WatchService(loaded_bundle, status_tail=3) as service:
        for batch in _batches(samples):
            service.score_batch(batch)
        payload = service.status_payload()
    assert len(payload["flight_recorder"]["tail"]) <= 3


def test_watch_service_requires_metrics_observer(loaded_bundle):
    with pytest.raises(ServeError, match="metrics registry"):
        WatchService(loaded_bundle, observer=NULL_OBSERVER)
    with pytest.raises(ServeError, match="status_tail"):
        WatchService(loaded_bundle, status_tail=-1)


def test_watch_cli_end_to_end(bundle_path, mid_fleet, loaded_bundle,
                              tmp_path, capsys):
    """The CLI wiring: watch a CSV stream, dump the recorder and a
    snapshot, and emit verdicts byte-identical to ``score``."""
    dataset = mid_fleet.dataset
    profiles = dataset.failed_profiles[:2] + dataset.good_profiles[:2]
    stream = tmp_path / "stream.csv"
    with open(stream, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["serial", "hour", *loaded_bundle.attributes])
        for profile in profiles:
            for hour, row in zip(profile.hours, profile.matrix):
                writer.writerow([profile.serial, int(hour),
                                 *(repr(float(v)) for v in row)])

    watch_out = tmp_path / "watch.jsonl"
    score_out = tmp_path / "score.jsonl"
    port_file = tmp_path / "port.txt"
    recorder_dump = tmp_path / "recorder.jsonl"
    snapshot = tmp_path / "snapshot.json"

    assert serve_main(["watch", "--bundle", str(bundle_path),
                       "--input", str(stream),
                       "--output", str(watch_out),
                       "--port-file", str(port_file),
                       "--recorder-dump", str(recorder_dump),
                       "--snapshot", str(snapshot),
                       "--snapshot-interval", "60",
                       "--batch-size", "64"]) == 0
    err = capsys.readouterr().err
    assert "telemetry listening on" in err
    assert int(port_file.read_text()) > 0

    assert serve_main(["score", "--bundle", str(bundle_path),
                       "--input", str(stream),
                       "--output", str(score_out)]) == 0
    assert watch_out.read_bytes() == score_out.read_bytes()

    events = [json.loads(line)
              for line in recorder_dump.read_text().splitlines()]
    assert any(event["kind"] == "alert" for event in events)
    assert any(event["kind"] == "lifecycle" for event in events)

    metrics = json.loads(snapshot.read_text())["metrics"]
    n_samples = sum(len(profile.hours) for profile in profiles)
    assert metrics["samples_scored"]["value"] == n_samples


def test_replay_fleet_telemetry_matches_serial(loaded_bundle, mid_fleet):
    """`--jobs` stays a pure performance knob for serving telemetry."""
    from repro.serve.scorer import replay_fleet

    dataset = mid_fleet.dataset
    profiles = dataset.failed_profiles[:4] + dataset.good_profiles[:4]
    serial, parallel = TelemetryObserver(), TelemetryObserver()
    a = replay_fleet(loaded_bundle, profiles, n_jobs=1, observer=serial)
    b = replay_fleet(loaded_bundle, profiles, n_jobs=2, backend="thread",
                     observer=parallel)
    assert [[v.to_json_line() for v in vs] for vs in a] \
        == [[v.to_json_line() for v in vs] for vs in b]
    for name in ("samples_scored", "alerts_emitted"):
        assert (serial.metrics.counter(name).value
                == parallel.metrics.counter(name).value > 0)
    assert (serial.metrics.histogram("verdict_stage").bucket_counts()
            == parallel.metrics.histogram("verdict_stage").bucket_counts())
    assert (serial.metrics.gauge("drives_tracked").value
            == parallel.metrics.gauge("drives_tracked").value == 8.0)
