"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.metrics import (
    cluster_purity,
    detection_rates,
    error_rate,
    r_squared,
    rand_index,
    rmse,
)


def test_rmse_basic():
    assert rmse(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0
    assert rmse(np.zeros(4), np.full(4, 2.0)) == pytest.approx(2.0)


def test_error_rate_is_papers_rmse_over_range():
    actual = np.array([-1.0, 0.0, 1.0])
    predicted = actual + 0.2
    # Range of targets is 2: the paper's Table III convention.
    assert error_rate(actual, predicted, target_range=2.0) == pytest.approx(0.1)


def test_error_rate_infers_range():
    actual = np.array([0.0, 4.0])
    predicted = np.array([1.0, 3.0])
    assert error_rate(actual, predicted) == pytest.approx(1.0 / 4.0)


def test_error_rate_rejects_degenerate_range():
    with pytest.raises(ModelError):
        error_rate(np.ones(3), np.ones(3))


def test_r_squared_perfect_and_mean_predictor():
    y = np.array([1.0, 2.0, 3.0])
    assert r_squared(y, y) == 1.0
    assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)


def test_detection_rates():
    is_failed = np.array([True, True, False, False, False])
    flagged = np.array([True, False, True, False, False])
    rates = detection_rates(is_failed, flagged)
    assert rates.fdr == pytest.approx(0.5)
    assert rates.far == pytest.approx(1.0 / 3.0)


def test_detection_rates_need_both_classes():
    with pytest.raises(ModelError):
        detection_rates(np.array([True, True]), np.array([True, False]))


def test_rand_index_identical_and_opposite():
    a = np.array([0, 0, 1, 1])
    assert rand_index(a, a) == 1.0
    assert rand_index(a, np.array([1, 1, 0, 0])) == 1.0  # relabeled
    mixed = rand_index(a, np.array([0, 1, 0, 1]))
    assert 0.0 <= mixed < 1.0


def test_cluster_purity():
    labels = np.array([0, 0, 0, 1, 1])
    truth = np.array(["a", "a", "b", "c", "c"])
    assert cluster_purity(labels, truth) == pytest.approx(4 / 5)


def test_shape_validation():
    with pytest.raises(ModelError):
        rmse(np.zeros(3), np.zeros(4))
    with pytest.raises(ModelError):
        rand_index(np.zeros(3), np.zeros(4))
    with pytest.raises(ModelError):
        cluster_purity(np.zeros(3), np.zeros(4))
