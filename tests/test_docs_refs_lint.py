"""Regression gate: ``docs/api.md`` covers modules and CLI subcommands.

Runs ``scripts/check_docs_refs.py`` the way CI would, and unit-tests the
collectors so a silently broken lint cannot pass the gate.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs_refs.py"

sys.path.insert(0, str(SCRIPT.parent))
from check_docs_refs import (  # noqa: E402
    broken_doc_links,
    cli_flags,
    public_modules,
    serve_cli_subcommands,
    undocumented_flags,
    undocumented_modules,
    undocumented_subcommands,
)


def test_api_doc_indexes_every_public_module():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"undocumented public modules:\n{result.stderr}"
    )


def test_collector_finds_modules_and_packages(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "widget.py").write_text("")
    (tmp_path / "pkg" / "_internal.py").write_text("")
    (tmp_path / "__init__.py").write_text("")
    (tmp_path / "tool.py").write_text("")
    assert public_modules(tmp_path) == [
        "repro.pkg", "repro.pkg.widget", "repro.tool",
    ]


def test_known_modules_are_collected():
    names = public_modules()
    assert "repro.parallel" in names
    assert "repro.data.cache" in names
    assert "repro.core.pipeline" in names
    assert "repro.cli" in names


def test_missing_doc_means_everything_undocumented(tmp_path):
    missing = undocumented_modules(tmp_path / "absent.md")
    assert missing == public_modules()


def test_mentioned_modules_are_not_flagged(tmp_path):
    doc = tmp_path / "api.md"
    doc.write_text(" ".join(public_modules()))
    assert undocumented_modules(doc) == []


def test_serve_subcommands_are_collected():
    names = serve_cli_subcommands()
    assert "score" in names
    assert "watch" in names
    assert "daemon" in names
    assert "bench" in names


def test_documented_subcommands_are_not_flagged(tmp_path):
    doc = tmp_path / "api.md"
    doc.write_text(" ".join(f"repro-serve {name}"
                            for name in serve_cli_subcommands()))
    assert undocumented_subcommands(doc) == []


def test_bare_subcommand_mention_is_not_enough(tmp_path):
    doc = tmp_path / "api.md"
    doc.write_text(" ".join(serve_cli_subcommands()))
    assert undocumented_subcommands(doc) == serve_cli_subcommands()


def _fake_cli(tmp_path, source):
    path = tmp_path / "cli.py"
    path.write_text(source)
    return (("fake-tool", path),)


def test_flag_collector_takes_long_options_only(tmp_path):
    modules = _fake_cli(tmp_path, (
        'import argparse\n'
        'p = argparse.ArgumentParser()\n'
        'p.add_argument("positional")\n'
        'p.add_argument("-v", "--verbose", action="count")\n'
        'p.add_argument("--seed", type=int)\n'
        'p.add_argument("-x")\n'
    ))
    assert cli_flags(modules) == [
        ("fake-tool", "--seed"), ("fake-tool", "--verbose"),
    ]


def test_known_flags_are_collected():
    flags = cli_flags()
    assert ("repro-serve", "--wal-dir") in flags
    assert ("repro-serve", "--learn") in flags
    assert ("repro-learn", "--rollback") in flags
    assert ("repro-characterize", "--export-model") in flags


def test_mentioned_flags_are_not_flagged(tmp_path):
    modules = _fake_cli(tmp_path, 'p.add_argument("--seed")\n')
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "guide.md").write_text("pass `--seed` to pin the run")
    assert undocumented_flags(docs, modules) == []


def test_unmentioned_flag_is_flagged(tmp_path):
    modules = _fake_cli(
        tmp_path, 'p.add_argument("--seed")\np.add_argument("--out")\n')
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "guide.md").write_text("only `--seed` is written up")
    assert undocumented_flags(docs, modules) == [("fake-tool", "--out")]


def test_readme_counts_as_flag_documentation(tmp_path):
    modules = _fake_cli(tmp_path, 'p.add_argument("--seed")\n')
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "guide.md").write_text("nothing here")
    (tmp_path / "README.md").write_text("use `--seed` for determinism")
    assert undocumented_flags(docs, modules) == []


def test_link_checker_resolves_relative_targets(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "other.md").write_text("target page")
    (docs / "guide.md").write_text(
        "[ok](other.md) [anchored](other.md#section) [self](#here)\n"
        "[ext](https://example.com/x) [gone](missing.md)\n"
        "[updir](../README.md)\n")
    (tmp_path / "README.md").write_text("[into docs](docs/other.md)")
    broken = broken_doc_links(docs)
    assert len(broken) == 1
    page, target = broken[0]
    assert page.endswith("guide.md")
    assert target == "missing.md"


def test_repo_docs_have_no_broken_links():
    assert broken_doc_links() == []
