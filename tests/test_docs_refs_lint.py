"""Regression gate: ``docs/api.md`` covers modules and CLI subcommands.

Runs ``scripts/check_docs_refs.py`` the way CI would, and unit-tests the
collectors so a silently broken lint cannot pass the gate.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs_refs.py"

sys.path.insert(0, str(SCRIPT.parent))
from check_docs_refs import (  # noqa: E402
    public_modules,
    serve_cli_subcommands,
    undocumented_modules,
    undocumented_subcommands,
)


def test_api_doc_indexes_every_public_module():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"undocumented public modules:\n{result.stderr}"
    )


def test_collector_finds_modules_and_packages(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "widget.py").write_text("")
    (tmp_path / "pkg" / "_internal.py").write_text("")
    (tmp_path / "__init__.py").write_text("")
    (tmp_path / "tool.py").write_text("")
    assert public_modules(tmp_path) == [
        "repro.pkg", "repro.pkg.widget", "repro.tool",
    ]


def test_known_modules_are_collected():
    names = public_modules()
    assert "repro.parallel" in names
    assert "repro.data.cache" in names
    assert "repro.core.pipeline" in names
    assert "repro.cli" in names


def test_missing_doc_means_everything_undocumented(tmp_path):
    missing = undocumented_modules(tmp_path / "absent.md")
    assert missing == public_modules()


def test_mentioned_modules_are_not_flagged(tmp_path):
    doc = tmp_path / "api.md"
    doc.write_text(" ".join(public_modules()))
    assert undocumented_modules(doc) == []


def test_serve_subcommands_are_collected():
    names = serve_cli_subcommands()
    assert "score" in names
    assert "watch" in names
    assert "daemon" in names
    assert "bench" in names


def test_documented_subcommands_are_not_flagged(tmp_path):
    doc = tmp_path / "api.md"
    doc.write_text(" ".join(f"repro-serve {name}"
                            for name in serve_cli_subcommands()))
    assert undocumented_subcommands(doc) == []


def test_bare_subcommand_mention_is_not_enough(tmp_path):
    doc = tmp_path / "api.md"
    doc.write_text(" ".join(serve_cli_subcommands()))
    assert undocumented_subcommands(doc) == serve_cli_subcommands()
