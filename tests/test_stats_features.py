"""Tests for feature statistics (rolling std, change rate, POH smoothing)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.stats.features import change_rate, rolling_std, smooth_poh


def test_rolling_std_uses_trailing_window():
    series = np.concatenate([np.random.default_rng(0).normal(0, 5, 100),
                             np.full(24, 7.0)])
    assert rolling_std(series, window=24) == 0.0


def test_rolling_std_of_short_series():
    assert rolling_std(np.array([3.0]), window=24) == 0.0


def test_change_rate_of_linear_series():
    series = 2.5 * np.arange(48.0)
    assert change_rate(series, window=24) == pytest.approx(2.5)


def test_change_rate_of_flat_series_is_zero():
    assert change_rate(np.full(30, 9.0)) == 0.0


def test_change_rate_robust_to_one_outlier():
    series = np.zeros(24)
    series[-1] = 10.0  # one spiked endpoint
    naive_rate = 10.0 / 23.0
    assert change_rate(series, window=24) < naive_rate * 1.5


def test_change_rate_single_sample():
    assert change_rate(np.array([1.0])) == 0.0


def test_smooth_poh_breaks_plateaus():
    poh = np.full(10, 88.0)
    hours = np.arange(100, 110)
    smoothed = smooth_poh(poh, hours)
    assert np.all(np.diff(smoothed) > 0)
    assert smoothed[0] == 88.0


def test_smooth_poh_alignment_required():
    with pytest.raises(ReproError):
        smooth_poh(np.zeros(5), np.arange(4))


def test_empty_series_rejected():
    with pytest.raises(ReproError):
        rolling_std(np.array([]))
