"""Tests for the native CSV round-trip."""

import numpy as np
import pytest

from repro.data.loader import load_csv, save_csv
from repro.errors import DatasetError


def test_round_trip_preserves_everything(tmp_path, small_dataset):
    path = tmp_path / "fleet.csv"
    save_csv(small_dataset, path)
    loaded = load_csv(path)
    assert len(loaded) == len(small_dataset)
    assert loaded.attributes == small_dataset.attributes
    for profile in small_dataset.profiles:
        restored = loaded.get(profile.serial)
        assert restored.failed == profile.failed
        np.testing.assert_array_equal(restored.hours, profile.hours)
        np.testing.assert_array_equal(restored.matrix, profile.matrix)


def test_rows_sorted_by_hour_on_load(tmp_path):
    path = tmp_path / "unsorted.csv"
    path.write_text(
        "serial,hour,failed,A,B\n"
        "d1,5,1,5.0,50.0\n"
        "d1,3,1,3.0,30.0\n"
        "d1,4,1,4.0,40.0\n"
    )
    dataset = load_csv(path)
    profile = dataset.get("d1")
    np.testing.assert_array_equal(profile.hours, [3, 4, 5])
    np.testing.assert_array_equal(profile.matrix[:, 0], [3.0, 4.0, 5.0])


def test_missing_file_header_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(DatasetError):
        load_csv(path)


def test_wrong_header_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b,c,d\n")
    with pytest.raises(DatasetError):
        load_csv(path)


def test_ragged_row_rejected(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("serial,hour,failed,A\nx,1,0\n")
    with pytest.raises(DatasetError, match="expected 4 fields"):
        load_csv(path)


def test_inconsistent_failed_flag_rejected(tmp_path):
    path = tmp_path / "flags.csv"
    path.write_text(
        "serial,hour,failed,A\n"
        "d1,1,0,1.0\n"
        "d1,2,1,2.0\n"
    )
    with pytest.raises(DatasetError, match="inconsistent"):
        load_csv(path)


def test_non_numeric_cell_rejected(tmp_path):
    path = tmp_path / "nan.csv"
    path.write_text("serial,hour,failed,A\nd1,1,0,oops\n")
    with pytest.raises(DatasetError):
        load_csv(path)
