"""Tests for the shard plane: placement, identity, backpressure, drain.

The sharding contracts pinned here: consistent-hash placement is
deterministic and balanced; a :class:`ShardSet` returns byte-identical
verdicts for any shard count and backend; a saturated shard rejects
whole batches (all-or-nothing — a rejected batch is never partially
scored); and ``stop()`` drains every admitted batch before workers
snapshot and exit.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import BackpressureError, ParallelError, ServeError
from repro.obs.observer import TelemetryObserver
from repro.serve.bundle import build_bundle
from repro.serve.scorer import StreamScorer
from repro.serve.shard import HashRing, ShardSet


@pytest.fixture(scope="module")
def bundle(mid_report):
    return build_bundle(mid_report, seed=7)


@pytest.fixture(scope="module")
def columnar_samples(mid_fleet):
    """A columnar batch mixing failed and good drives."""
    dataset = mid_fleet.dataset
    profiles = dataset.failed_profiles[:4] + dataset.good_profiles[:8]
    serials, hours, rows = [], [], []
    for profile in profiles:
        # Failed drives contribute their whole history (their late hours
        # are what alerts), good drives a short prefix.
        keep = None if profile.failed else 6
        for hour, row in zip(profile.hours[:keep], profile.matrix[:keep]):
            serials.append(profile.serial)
            hours.append(int(hour))
            rows.append(np.asarray(row, dtype=np.float64).ravel())
    return serials, hours, np.vstack(rows)


# -- hash ring --------------------------------------------------------------

def test_ring_is_deterministic_across_instances():
    a, b = HashRing(4), HashRing(4)
    for serial in (f"drive-{i}" for i in range(200)):
        assert a.shard_of(serial) == b.shard_of(serial)


def test_ring_covers_every_shard_reasonably():
    ring = HashRing(4)
    counts = [0, 0, 0, 0]
    for i in range(2000):
        counts[ring.shard_of(f"serial-{i:05d}")] += 1
    assert min(counts) > 0
    # 64 vnodes keep imbalance well inside 2x of the fair share.
    assert max(counts) < 2 * (2000 / 4)


def test_ring_single_shard_takes_everything():
    ring = HashRing(1)
    assert all(ring.shard_of(f"d{i}") == 0 for i in range(50))


def test_ring_rejects_bad_parameters():
    with pytest.raises(ServeError, match="n_shards"):
        HashRing(0)
    with pytest.raises(ServeError, match="vnodes"):
        HashRing(2, vnodes=0)


# -- byte identity ----------------------------------------------------------

@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_sharded_verdicts_byte_identical(bundle, columnar_samples, n_shards):
    serials, hours, matrix = columnar_samples
    reference = StreamScorer(bundle)
    expected = [v.to_json_line()
                for v in reference.push_block(serials, hours, matrix)]
    with ShardSet(bundle, n_shards=n_shards) as shards:
        got = [v.to_json_line()
               for v in shards.submit(serials, hours, matrix)]
    assert got == expected


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_submit_block_byte_identical(bundle, columnar_samples, n_shards):
    """The lazy block surface matches per-sample push at any shard count."""
    serials, hours, matrix = columnar_samples
    reference = StreamScorer(bundle)
    expected = [reference.push(serial, hour, row).to_json_line()
                for serial, hour, row in zip(serials, hours, matrix)]
    with ShardSet(bundle, n_shards=n_shards) as shards:
        block = shards.submit_block(serials, hours, matrix)
        assert block.to_json_lines() == expected
        assert block.serials == list(serials)
        assert block.n_alerting == sum(
            1 for line in expected if '"level":"HEALTHY"' not in line)
        for row in block.alerting_rows():
            assert (block.verdict_at(int(row)).to_json_line()
                    == expected[row])


def test_process_backend_byte_identical(bundle, columnar_samples):
    serials, hours, matrix = columnar_samples
    reference = StreamScorer(bundle)
    expected = [v.to_json_line()
                for v in reference.push_block(serials, hours, matrix)]
    with ShardSet(bundle, n_shards=2, backend="process") as shards:
        got = [v.to_json_line()
               for v in shards.submit(serials, hours, matrix)]
    assert got == expected


def test_multiple_submits_keep_per_drive_state_whole(bundle,
                                                     columnar_samples):
    serials, hours, matrix = columnar_samples
    with ShardSet(bundle, n_shards=3) as shards:
        shards.submit(serials, hours, matrix)
        shards.submit(serials, hours, matrix)
        snapshots = shards.stop()
    tracked = sum(s["drives_tracked"] for s in snapshots)
    assert tracked == len(set(serials))
    for snapshot in snapshots:
        for serial in snapshot["state"]["drives"]:
            assert shards.shard_of(serial) == snapshot["shard"]


def test_parent_telemetry_matches_unsharded(bundle, columnar_samples):
    serials, hours, matrix = columnar_samples
    plain, sharded = TelemetryObserver(), TelemetryObserver()
    StreamScorer(bundle, observer=plain).push_block(serials, hours, matrix)
    with ShardSet(bundle, n_shards=4, observer=sharded) as shards:
        shards.submit(serials, hours, matrix)
    for name in ("samples_scored", "alerts_emitted"):
        assert (plain.metrics.counter(name).value
                == sharded.metrics.counter(name).value > 0)
    assert (plain.metrics.histogram("verdict_stage").bucket_counts()
            == sharded.metrics.histogram("verdict_stage").bucket_counts())


# -- backpressure -----------------------------------------------------------

def test_saturated_shard_rejects_whole_batch(bundle, columnar_samples):
    """Capacity 1 + throttled worker: concurrent submits beyond the
    first are refused, and no refused sample is ever scored."""
    serials, hours, matrix = columnar_samples
    shards = ShardSet(bundle, n_shards=1, queue_capacity=1,
                      throttle_s=0.4)
    barrier = threading.Barrier(3)
    outcomes = []

    def submitter():
        barrier.wait()
        try:
            verdicts = shards.submit(serials, hours, matrix)
            outcomes.append(("ok", len(verdicts)))
        except BackpressureError as error:
            outcomes.append(("rejected", error))

    threads = [threading.Thread(target=submitter) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    snapshots = shards.stop()

    accepted = [n for kind, n in outcomes if kind == "ok"]
    rejected = [e for kind, e in outcomes if kind == "rejected"]
    assert accepted and rejected
    error = rejected[0]
    assert error.shard == 0
    assert error.retry_after_s > 0
    assert error.capacity == 1
    # All-or-nothing admission: exactly the accepted batches were
    # scored — a rejected batch contributed zero samples.
    scored = sum(s["samples_scored"] for s in snapshots)
    assert scored == sum(accepted)


def test_stopped_shardset_refuses_new_batches(bundle, columnar_samples):
    serials, hours, matrix = columnar_samples
    shards = ShardSet(bundle, n_shards=1)
    shards.stop()
    with pytest.raises(ServeError, match="stopped"):
        shards.submit(serials, hours, matrix)


# -- drain ------------------------------------------------------------------

def test_stop_drains_in_flight_batches(bundle, columnar_samples):
    """stop() lands behind queued work: the in-flight batch finishes
    scoring and appears in the final snapshots."""
    serials, hours, matrix = columnar_samples
    shards = ShardSet(bundle, n_shards=2, throttle_s=0.2)
    result = {}

    def submitter():
        result["verdicts"] = shards.submit(serials, hours, matrix)

    thread = threading.Thread(target=submitter)
    thread.start()
    # Let the batch get admitted, then stop while it is (likely) still
    # throttled; either way every admitted sample must end up scored.
    deadline = time.monotonic() + 10.0
    while (sum(shards.inflight()) == 0 and thread.is_alive()
           and time.monotonic() < deadline):
        time.sleep(0.005)
    snapshots = shards.stop()
    thread.join(timeout=30)

    assert len(result["verdicts"]) == len(serials)
    assert sum(s["samples_scored"] for s in snapshots) == len(serials)
    assert {s["shard"] for s in snapshots} == {0, 1}


def test_stop_is_idempotent(bundle, columnar_samples):
    serials, hours, matrix = columnar_samples
    shards = ShardSet(bundle, n_shards=2)
    shards.submit(serials, hours, matrix)
    first = shards.stop()
    second = shards.stop()
    assert first == second


# -- validation -------------------------------------------------------------

def test_shardset_validates_configuration(bundle):
    with pytest.raises(ServeError, match="queue_capacity"):
        ShardSet(bundle, queue_capacity=0)
    with pytest.raises(ParallelError, match="backend"):
        ShardSet(bundle, backend="fiber")


def test_submit_validates_columns(bundle):
    with ShardSet(bundle) as shards:
        with pytest.raises(ServeError, match="2-D"):
            shards.submit(["a"], [1], np.zeros(4))
        with pytest.raises(ServeError, match="disagree"):
            shards.submit(["a", "b"], [1], np.zeros((1, 4)))
        assert shards.submit([], [], np.zeros((0, 4))) == []
