"""Tests for the pipeline's stage error boundaries and retry plumbing
(``repro.core.pipeline``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import CharacterizationPipeline
from repro.core.serialize import canonical_json_dumps, report_to_dict
from repro.data.dataset import DiskDataset
from repro.errors import PipelineStageError, SignatureError
from repro.obs.observer import TelemetryObserver
from repro.parallel import RetryPolicy
from repro.smart.profile import HealthProfile


def test_foreign_exception_is_wrapped_with_stage_context(small_dataset,
                                                         monkeypatch):
    """A non-library crash mid-run surfaces as PipelineStageError naming
    the stage, the completed stages and the partial progress."""
    def exploding_summarize(self, dataset, categorization, signatures):
        raise KeyError("boom")

    monkeypatch.setattr(
        CharacterizationPipeline, "_summarize_groups", exploding_summarize)
    observer = TelemetryObserver()
    pipeline = CharacterizationPipeline(seed=3, run_prediction=False,
                                        observer=observer)
    with pytest.raises(PipelineStageError) as excinfo:
        pipeline.run(small_dataset)
    error = excinfo.value
    assert error.stage == "influence"
    assert error.completed == ("prepare", "categorize", "signatures")
    assert error.partial["n_drives"] == len(small_dataset.profiles)
    assert error.partial["n_signatures"] > 0
    assert isinstance(error.cause, KeyError)
    message = str(error)
    assert "influence" in message
    assert "prepare" in message
    snapshot = observer.metrics.snapshot()
    assert snapshot["pipeline_stage_failures"]["value"] == 1


def test_early_stage_failure_reports_no_completed_stages(small_dataset,
                                                         monkeypatch):
    def exploding_prepare(self, dataset):
        raise RuntimeError("normalization exploded")

    monkeypatch.setattr(CharacterizationPipeline, "_prepare",
                        exploding_prepare)
    with pytest.raises(PipelineStageError) as excinfo:
        CharacterizationPipeline(seed=3).run(small_dataset)
    assert excinfo.value.stage == "prepare"
    assert excinfo.value.completed == ()
    assert excinfo.value.partial == {}


def test_library_errors_pass_through_unwrapped():
    """Flat-lined failed drives raise SignatureError from the signatures
    stage — already typed, so the boundary must not re-wrap it."""
    rng = np.random.default_rng(5)
    profiles = [
        HealthProfile(f"dead-{i}", np.arange(30),
                      np.tile(np.full(12, 0.2 + 0.1 * i), (30, 1)),
                      failed=True)
        for i in range(5)
    ] + [
        HealthProfile(f"good-{i}", np.arange(30),
                      rng.uniform(size=(30, 12)), failed=False)
        for i in range(12)
    ]
    pipeline = CharacterizationPipeline(seed=3, run_prediction=False)
    with pytest.raises(SignatureError, match="degradation window"):
        pipeline.run(DiskDataset(profiles))


def test_retry_policy_is_a_pure_performance_knob(small_dataset):
    """On clean data the resilient policy must not change one byte."""
    baseline = CharacterizationPipeline(
        seed=3, run_prediction=False).run(small_dataset)
    resilient = CharacterizationPipeline(
        seed=3, run_prediction=False,
        retry_policy=RetryPolicy.resilient(max_retries=2, timeout_s=300.0),
    ).run(small_dataset)
    assert canonical_json_dumps(report_to_dict(baseline)) == \
        canonical_json_dumps(report_to_dict(resilient))
