"""Tests for trace-driven workloads."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.config import FleetConfig
from repro.sim.rng import child_rng
from repro.sim.workload import WorkloadGenerator


def generate(config, hours=None, key="d1"):
    hours = hours if hours is not None else np.arange(0, 48)
    return WorkloadGenerator(config).generate(
        hours, child_rng(3, key, "workload")
    )


def test_trace_shapes_the_load():
    trace = tuple([0.1] * 12 + [3.0] * 12)  # quiet nights, busy days
    config = FleetConfig(n_drives=100, workload_trace=trace)
    workload = generate(config)
    night = workload.read_ops.reshape(2, 24)[:, :12].mean()
    day = workload.read_ops.reshape(2, 24)[:, 12:].mean()
    assert day > 10 * night


def test_trace_replays_cyclically():
    trace = (1.0, 2.0, 4.0)
    config = FleetConfig(n_drives=100, workload_trace=trace,
                         workload_noise=1.0e-9)
    workload = generate(config, hours=np.arange(0, 9))
    ratios = workload.read_ops / workload.read_ops[0]
    np.testing.assert_allclose(ratios, [1, 2, 4, 1, 2, 4, 1, 2, 4],
                               rtol=1e-6)


def test_trace_aligned_to_absolute_time():
    trace = tuple(float(i) for i in range(1, 25))
    config = FleetConfig(n_drives=100, workload_trace=trace,
                         workload_noise=1.0e-9)
    offset = generate(config, hours=np.arange(5, 10))
    aligned = generate(config, hours=np.arange(0, 24))
    # Jitter draws differ by position in the stream, but at sigma ~1e-9
    # the trace alignment dominates any residual difference.
    np.testing.assert_allclose(offset.read_ops,
                               aligned.read_ops[5:10], rtol=1e-6)


def test_zero_factor_silences_the_drive():
    config = FleetConfig(n_drives=100, workload_trace=(0.0,))
    workload = generate(config)
    assert np.all(workload.read_ops == 0.0)
    assert np.all(workload.utilization == 0.0)


def test_invalid_traces_rejected():
    with pytest.raises(SimulationError):
        FleetConfig(n_drives=100, workload_trace=())
    with pytest.raises(SimulationError):
        FleetConfig(n_drives=100, workload_trace=(1.0, -0.5))


def test_traced_fleet_simulates_end_to_end():
    from repro.sim.fleet import simulate_fleet
    config = FleetConfig(n_drives=60, seed=2,
                         workload_trace=tuple([0.5] * 12 + [2.0] * 12))
    fleet = simulate_fleet(config)
    assert len(fleet.dataset) == 60
