"""Tests for aggregate result rendering."""

import pytest

from repro.errors import ReproError
from repro.experiments.common import (
    ExperimentResult,
    configure_default_fleet,
    default_config,
)
from repro.reporting.report import render_results, save_results


def make_result(experiment_id):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Title {experiment_id}",
        paper_reference="ref",
        rendered=f"body of {experiment_id}",
    )


def test_render_joins_sections():
    text = render_results([make_result("a"), make_result("b")])
    assert "body of a" in text and "body of b" in text
    assert text.index("body of a") < text.index("body of b")


def test_render_with_title():
    text = render_results([make_result("a")], title="Reproduction run")
    assert text.startswith("=")
    assert "Reproduction run" in text


def test_render_requires_results():
    with pytest.raises(ReproError):
        render_results([])


def test_save_results(tmp_path):
    path = tmp_path / "report.txt"
    save_results([make_result("x")], path, title="T")
    content = path.read_text()
    assert "body of x" in content and content.endswith("\n")


def test_configure_default_fleet_overrides_scale():
    original = default_config()
    try:
        configure_default_fleet(n_drives=123, seed=9)
        overridden = default_config()
        assert overridden.n_drives == 123
        assert overridden.seed == 9
        # Explicit arguments still win over the override.
        assert default_config(n_drives=50).n_drives == 50
    finally:
        configure_default_fleet(n_drives=original.n_drives,
                                seed=original.seed)
