"""Regression gate: library code logs, it does not print.

Runs ``scripts/check_no_print.py`` the way CI would, and unit-tests the
checker itself so a silently broken lint cannot pass the gate.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_no_print.py"

sys.path.insert(0, str(SCRIPT.parent))
from check_no_print import find_print_calls  # noqa: E402


def test_src_repro_is_print_free():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"bare print() calls crept into src/repro:\n{result.stderr}"
    )


def test_checker_finds_real_print_calls(tmp_path):
    offender = tmp_path / "module.py"
    offender.write_text(
        'def run():\n'
        '    print("status")\n'
        '    log("ok")\n'
    )
    assert find_print_calls(offender) == [2]


def test_checker_ignores_docstrings_and_methods(tmp_path):
    clean = tmp_path / "module.py"
    clean.write_text(
        '"""Example::\n\n    print(x)\n"""\n'
        'def run(printer):\n'
        '    printer.print("not the builtin")\n'
    )
    assert find_print_calls(clean) == []
