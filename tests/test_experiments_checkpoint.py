"""Tests for experiment checkpoint/resume
(``repro.experiments.checkpoint`` and the registry's resilience flags).

The registry is monkeypatched with stub experiments throughout, so these
tests exercise the sweep machinery without paying for real experiments.
"""

from __future__ import annotations

import json

import pytest

import repro.experiments.registry as registry
from repro.errors import CheckpointError
from repro.experiments.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    ExperimentFailure,
)
from repro.experiments.common import ExperimentResult, active_scale
from repro.experiments.registry import main, run_many

RUNS: list[str] = []


def _stub(experiment_id):
    def run():
        RUNS.append(experiment_id)
        return ExperimentResult(
            experiment_id=experiment_id,
            title=f"stub {experiment_id}",
            paper_reference="n/a",
            rendered=f"rendering of {experiment_id}",
        )
    return run


def _failing_stub(experiment_id):
    def run():
        RUNS.append(experiment_id)
        raise ZeroDivisionError("synthetic failure")
    return run


@pytest.fixture()
def stub_registry(monkeypatch):
    RUNS.clear()
    monkeypatch.setattr(registry, "EXPERIMENTS", {
        "alpha": (_stub("alpha"), "stub experiment alpha"),
        "beta": (_stub("beta"), "stub experiment beta"),
        "gamma": (_stub("gamma"), "stub experiment gamma"),
        "broken": (_failing_stub("broken"), "always fails"),
    })


def result_for(experiment_id):
    return ExperimentResult(experiment_id=experiment_id, title="t",
                            paper_reference="p",
                            rendered=f"body {experiment_id}")


# -- CheckpointStore --------------------------------------------------------


def test_store_then_load_roundtrip(tmp_path):
    store = CheckpointStore(tmp_path, n_drives=300, seed=3)
    path = store.store(result_for("fig8"), wall_s=1.25)
    assert path == store.path_for("fig8")
    restored, wall_s = store.load("fig8")
    assert restored.rendered == "body fig8"
    assert restored.experiment_id == "fig8"
    assert wall_s == 1.25
    assert store.completed_ids() == {"fig8"}
    # The atomic write leaves no temp debris behind.
    assert [p.name for p in tmp_path.iterdir()] == ["fig8.checkpoint.json"]


def test_missing_and_corrupt_checkpoints_are_none(tmp_path):
    store = CheckpointStore(tmp_path, n_drives=300, seed=3)
    assert store.load("fig8") is None
    store.store(result_for("fig8"), wall_s=1.0)
    path = store.path_for("fig8")
    path.write_text(path.read_text()[:40])  # torn write
    assert store.load("fig8") is None
    path.write_text("[1, 2, 3]\n")  # valid JSON, wrong shape
    assert store.load("fig8") is None
    assert store.completed_ids() == set()


def test_schema_and_scale_mismatches_are_ignored(tmp_path):
    store = CheckpointStore(tmp_path, n_drives=300, seed=3)
    store.store(result_for("fig8"), wall_s=1.0)

    other_scale = CheckpointStore(tmp_path, n_drives=600, seed=3)
    assert other_scale.load("fig8") is None
    other_seed = CheckpointStore(tmp_path, n_drives=300, seed=4)
    assert other_seed.load("fig8") is None
    assert store.load("fig8") is not None

    payload = json.loads(store.path_for("fig8").read_text())
    payload["schema"] = CHECKPOINT_SCHEMA + 1
    store.path_for("fig8").write_text(json.dumps(payload))
    assert store.load("fig8") is None


def test_checkpoint_id_must_match_its_filename(tmp_path):
    """A checkpoint renamed to another experiment's slot is not trusted."""
    store = CheckpointStore(tmp_path, n_drives=300, seed=3)
    store.store(result_for("fig8"), wall_s=1.0)
    store.path_for("fig8").rename(store.path_for("table2"))
    assert store.load("table2") is None


def test_unwritable_directory_raises_checkpoint_error(tmp_path):
    blocker = tmp_path / "file"
    blocker.write_text("in the way")
    with pytest.raises(CheckpointError, match="checkpoint directory"):
        CheckpointStore(blocker / "nested", n_drives=1, seed=1)


def test_experiment_failure_renders_like_a_result_block():
    failure = ExperimentFailure("fig8", "ValueError", "boom")
    assert str(failure) == "== fig8: FAILED ==\nValueError: boom"


# -- run_many: checkpointing and resume -------------------------------------


def test_sweep_writes_one_checkpoint_per_success(tmp_path, stub_registry):
    pairs = run_many(["alpha", "beta"], checkpoint_dir=tmp_path)
    assert [outcome.experiment_id for outcome, _ in pairs] == \
        ["alpha", "beta"]
    n_drives, seed = active_scale()
    store = CheckpointStore(tmp_path, n_drives=n_drives, seed=seed)
    assert store.completed_ids() == {"alpha", "beta"}


def test_resume_reexecutes_only_missing_experiments(tmp_path, stub_registry):
    run_many(["alpha", "beta", "gamma"], checkpoint_dir=tmp_path)
    assert RUNS == ["alpha", "beta", "gamma"]

    n_drives, seed = active_scale()
    store = CheckpointStore(tmp_path, n_drives=n_drives, seed=seed)
    store.path_for("beta").unlink()

    RUNS.clear()
    pairs = run_many(["alpha", "beta", "gamma"], checkpoint_dir=tmp_path,
                     resume=True)
    assert RUNS == ["beta"]  # alpha and gamma restored, not re-run
    assert [outcome.experiment_id for outcome, _ in pairs] == \
        ["alpha", "beta", "gamma"]
    assert [outcome.rendered for outcome, _ in pairs] == \
        ["rendering of alpha", "rendering of beta", "rendering of gamma"]


def test_resume_requires_a_checkpoint_dir(stub_registry):
    with pytest.raises(CheckpointError, match="checkpoint directory"):
        run_many(["alpha"], resume=True)


def test_corrupt_checkpoint_is_reexecuted(tmp_path, stub_registry):
    run_many(["alpha"], checkpoint_dir=tmp_path)
    n_drives, seed = active_scale()
    store = CheckpointStore(tmp_path, n_drives=n_drives, seed=seed)
    store.path_for("alpha").write_text("{ torn")
    RUNS.clear()
    run_many(["alpha"], checkpoint_dir=tmp_path, resume=True)
    assert RUNS == ["alpha"]
    assert store.load("alpha") is not None  # repaired by the re-run


def test_keep_going_records_failures_without_checkpointing(tmp_path,
                                                           stub_registry):
    pairs = run_many(["alpha", "broken", "gamma"], checkpoint_dir=tmp_path,
                     keep_going=True)
    outcomes = [outcome for outcome, _ in pairs]
    assert isinstance(outcomes[1], ExperimentFailure)
    assert outcomes[1].error_type == "ZeroDivisionError"
    assert outcomes[0].rendered == "rendering of alpha"
    n_drives, seed = active_scale()
    store = CheckpointStore(tmp_path, n_drives=n_drives, seed=seed)
    # The failure left no checkpoint, so a resume retries it.
    assert store.completed_ids() == {"alpha", "gamma"}
    RUNS.clear()
    run_many(["alpha", "broken", "gamma"], checkpoint_dir=tmp_path,
             resume=True, keep_going=True)
    assert RUNS == ["broken"]


def test_failure_without_keep_going_aborts(stub_registry):
    with pytest.raises(ZeroDivisionError):
        run_many(["broken"])


def test_single_and_restored_selections_never_build_a_pool(
        tmp_path, stub_registry, monkeypatch):
    class NoPool:
        def __init__(self, *args, **kwargs):
            raise AssertionError("a worker pool was created")

    monkeypatch.setattr("repro.parallel.ProcessPoolExecutor", NoPool)
    # Single-experiment selection: --jobs N collapses to the inline path.
    pairs = run_many(["alpha"], jobs=4)
    assert pairs[0][0].experiment_id == "alpha"
    # Fully-restored selection: nothing to run at all.
    run_many(["beta"], checkpoint_dir=tmp_path)
    RUNS.clear()
    run_many(["beta"], jobs=4, checkpoint_dir=tmp_path, resume=True)
    assert RUNS == []


# -- the CLI ----------------------------------------------------------------


def test_main_empty_selection_exits_2(capsys, stub_registry):
    assert main([]) == 2
    assert "usage:" in capsys.readouterr().out


def test_main_resume_without_checkpoint_dir_is_a_usage_error(stub_registry):
    with pytest.raises(SystemExit) as excinfo:
        main(["--resume", "alpha"])
    assert excinfo.value.code == 2


def test_main_keep_going_reports_failures_and_exits_1(capsys, stub_registry):
    assert main(["alpha", "broken", "--keep-going"]) == 1
    captured = capsys.readouterr()
    assert "== broken: FAILED ==" in captured.out
    assert "ZeroDivisionError: synthetic failure" in captured.out
    assert "[broken] FAILED after" in captured.out
    assert "1 of 2 experiment(s) failed: broken" in captured.err


def test_main_checkpointed_run_then_resume(tmp_path, capsys, stub_registry):
    checkpoint_dir = tmp_path / "ck"
    assert main(["alpha", "beta",
                 "--checkpoint-dir", str(checkpoint_dir)]) == 0
    first = capsys.readouterr().out
    RUNS.clear()
    assert main(["alpha", "beta", "--checkpoint-dir", str(checkpoint_dir),
                 "--resume"]) == 0
    assert RUNS == []  # everything restored
    resumed = capsys.readouterr().out
    assert "rendering of alpha" in resumed
    assert "rendering of beta" in resumed
    assert resumed == first  # byte-identical stream, original wall times
