"""Live tests for the telemetry HTTP server on an ephemeral port."""

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.obs.export import PROMETHEUS_CONTENT_TYPE
from repro.obs.http import TelemetryHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder


def _get(url):
    """(status, content-type, body-text) for a GET, errors included."""
    try:
        with urlopen(url, timeout=5) as response:
            return (response.status, response.headers["Content-Type"],
                    response.read().decode("utf-8"))
    except HTTPError as error:
        return (error.code, error.headers["Content-Type"],
                error.read().decode("utf-8"))


@pytest.fixture()
def live_server():
    registry = MetricsRegistry()
    registry.counter("samples_scored").inc(17)
    recorder = FlightRecorder(capacity=8)
    recorder.record("alert", "watch", serial="D1")
    state = {"healthy": True}
    server = TelemetryHTTPServer(
        registry,
        health=lambda: {"status": "ok" if state["healthy"] else "degraded"},
        status=lambda: {"drives_tracked": 3},
        recorder=recorder,
    )
    with server:
        yield server, registry, recorder, state


def test_metrics_endpoint_serves_prometheus_text(live_server):
    server, _registry, _recorder, _state = live_server
    status, content_type, body = _get(server.url + "/metrics")
    assert status == 200
    assert content_type == PROMETHEUS_CONTENT_TYPE
    assert "repro_samples_scored_total 17" in body


def test_health_endpoint_is_200_then_503(live_server):
    server, _registry, _recorder, state = live_server
    status, _ctype, body = _get(server.url + "/health")
    assert status == 200
    assert json.loads(body) == {"status": "ok"}
    state["healthy"] = False
    status, _ctype, body = _get(server.url + "/health")
    assert status == 503
    assert json.loads(body) == {"status": "degraded"}


def test_status_endpoint_returns_caller_payload(live_server):
    server, _registry, _recorder, _state = live_server
    status, content_type, body = _get(server.url + "/status")
    assert status == 200
    assert content_type.startswith("application/json")
    assert json.loads(body) == {"drives_tracked": 3}


def test_recorder_endpoint_serves_ring_as_jsonl(live_server):
    server, _registry, recorder, _state = live_server
    status, content_type, body = _get(server.url + "/recorder")
    assert status == 200
    assert content_type.startswith("application/jsonl")
    events = [json.loads(line) for line in body.splitlines()]
    assert events == recorder.to_dicts()
    assert events[0]["context"] == {"serial": "D1"}


def test_recorder_endpoint_404_without_recorder():
    with TelemetryHTTPServer(MetricsRegistry()) as server:
        status, _ctype, body = _get(server.url + "/recorder")
    assert status == 404
    assert json.loads(body)["error"] == "no flight recorder"


def test_unknown_path_is_404(live_server):
    server, _registry, _recorder, _state = live_server
    status, _ctype, body = _get(server.url + "/nope")
    assert status == 404
    assert json.loads(body)["path"] == "/nope"


def test_every_request_increments_labeled_counter(live_server):
    server, registry, _recorder, _state = live_server
    for path in ("/metrics", "/metrics", "/health", "/nope"):
        _get(server.url + path)
    snapshot = registry.snapshot()
    assert snapshot['telemetry_requests{endpoint="metrics"}']["value"] >= 2
    assert snapshot['telemetry_requests{endpoint="health"}']["value"] >= 1
    assert snapshot['telemetry_requests{endpoint="other"}']["value"] >= 1


def test_defaults_without_callables():
    registry = MetricsRegistry()
    with TelemetryHTTPServer(registry) as server:
        assert server.port != 0
        assert server.url.startswith("http://127.0.0.1:")
        status, _ctype, body = _get(server.url + "/health")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}
        status, _ctype, body = _get(server.url + "/status")
        assert json.loads(body) == {}


def test_stop_releases_the_port():
    registry = MetricsRegistry()
    server = TelemetryHTTPServer(registry).start()
    host, port = server.host, server.port
    server.stop()
    rebound = TelemetryHTTPServer(registry, host=host, port=port)
    rebound.start()
    rebound.stop()
