"""Live tests for the telemetry HTTP server on an ephemeral port."""

import json
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro.obs.export import PROMETHEUS_CONTENT_TYPE
from repro.obs.http import HttpReply, ServerHandle, TelemetryHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder


def _get(url):
    """(status, content-type, body-text) for a GET, errors included."""
    try:
        with urlopen(url, timeout=5) as response:
            return (response.status, response.headers["Content-Type"],
                    response.read().decode("utf-8"))
    except HTTPError as error:
        return (error.code, error.headers["Content-Type"],
                error.read().decode("utf-8"))


def _post(url, body=b""):
    """(status, headers, body-text) for a POST, errors included."""
    request = Request(url, data=body, method="POST")
    try:
        with urlopen(request, timeout=5) as response:
            return (response.status, dict(response.headers),
                    response.read().decode("utf-8"))
    except HTTPError as error:
        return (error.code, dict(error.headers),
                error.read().decode("utf-8"))


@pytest.fixture()
def live_server():
    registry = MetricsRegistry()
    registry.counter("samples_scored").inc(17)
    recorder = FlightRecorder(capacity=8)
    recorder.record("alert", "watch", serial="D1")
    state = {"healthy": True}
    server = TelemetryHTTPServer(
        registry,
        health=lambda: {"status": "ok" if state["healthy"] else "degraded"},
        status=lambda: {"drives_tracked": 3},
        recorder=recorder,
    )
    with server:
        yield server, registry, recorder, state


def test_metrics_endpoint_serves_prometheus_text(live_server):
    server, _registry, _recorder, _state = live_server
    status, content_type, body = _get(server.url + "/metrics")
    assert status == 200
    assert content_type == PROMETHEUS_CONTENT_TYPE
    assert "repro_samples_scored_total 17" in body


def test_health_endpoint_is_200_then_503(live_server):
    server, _registry, _recorder, state = live_server
    status, _ctype, body = _get(server.url + "/health")
    assert status == 200
    assert json.loads(body) == {"status": "ok"}
    state["healthy"] = False
    status, _ctype, body = _get(server.url + "/health")
    assert status == 503
    assert json.loads(body) == {"status": "degraded"}


def test_status_endpoint_returns_caller_payload(live_server):
    server, _registry, _recorder, _state = live_server
    status, content_type, body = _get(server.url + "/status")
    assert status == 200
    assert content_type.startswith("application/json")
    assert json.loads(body) == {"drives_tracked": 3}


def test_recorder_endpoint_serves_ring_as_jsonl(live_server):
    server, _registry, recorder, _state = live_server
    status, content_type, body = _get(server.url + "/recorder")
    assert status == 200
    assert content_type.startswith("application/jsonl")
    events = [json.loads(line) for line in body.splitlines()]
    assert events == recorder.to_dicts()
    assert events[0]["context"] == {"serial": "D1"}


def test_recorder_endpoint_404_without_recorder():
    with TelemetryHTTPServer(MetricsRegistry()) as server:
        status, _ctype, body = _get(server.url + "/recorder")
    assert status == 404
    assert json.loads(body)["error"] == "no flight recorder"


def test_unknown_path_is_404(live_server):
    server, _registry, _recorder, _state = live_server
    status, _ctype, body = _get(server.url + "/nope")
    assert status == 404
    assert json.loads(body)["path"] == "/nope"


def test_every_request_increments_labeled_counter(live_server):
    server, registry, _recorder, _state = live_server
    for path in ("/metrics", "/metrics", "/health", "/nope"):
        _get(server.url + path)
    snapshot = registry.snapshot()
    assert snapshot['telemetry_requests{endpoint="metrics"}']["value"] >= 2
    assert snapshot['telemetry_requests{endpoint="health"}']["value"] >= 1
    assert snapshot['telemetry_requests{endpoint="other"}']["value"] >= 1


def test_defaults_without_callables():
    registry = MetricsRegistry()
    with TelemetryHTTPServer(registry) as server:
        assert server.port != 0
        assert server.url.startswith("http://127.0.0.1:")
        status, _ctype, body = _get(server.url + "/health")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}
        status, _ctype, body = _get(server.url + "/status")
        assert json.loads(body) == {}


def test_stop_releases_the_port():
    registry = MetricsRegistry()
    server = TelemetryHTTPServer(registry).start()
    host, port = server.host, server.port
    server.stop()
    rebound = TelemetryHTTPServer(registry, host=host, port=port)
    rebound.start()
    rebound.stop()


# -- server handle ----------------------------------------------------------

def test_handle_carries_the_bound_address(tmp_path):
    with TelemetryHTTPServer(MetricsRegistry()) as server:
        handle = server.handle
        assert isinstance(handle, ServerHandle)
        assert handle.host == server.host
        assert handle.port == server.port != 0
        assert handle.url == server.url == f"http://{handle.host}:{handle.port}"
        port_file = handle.write_port_file(tmp_path / "port.txt")
        assert port_file.read_text() == f"{handle.port}\n"
        assert int(port_file.read_text()) == handle.port


# -- POST routes ------------------------------------------------------------

@pytest.fixture()
def post_server():
    registry = MetricsRegistry()
    calls = []

    def echo(body, query):
        calls.append((body, query))
        return HttpReply.json(201, {"got": body.decode("utf-8"),
                                    "query": query},
                              headers=(("Retry-After", "2"),))

    def boom(body, query):
        raise RuntimeError("handler exploded")

    server = TelemetryHTTPServer(
        registry, post_routes={"/echo": echo, "/boom": boom})
    with server:
        yield server, registry, calls


def test_post_route_receives_body_and_query(post_server):
    server, _registry, calls = post_server
    status, headers, body = _post(server.url + "/echo?mode=fast&mode=slow",
                                  b"hello")
    assert status == 201
    assert headers["Retry-After"] == "2"  # extra headers pass through
    assert json.loads(body) == {"got": "hello",
                                "query": {"mode": "slow"}}  # last wins
    assert calls == [(b"hello", {"mode": "slow"})]


def test_unknown_post_path_is_404(post_server):
    server, _registry, _calls = post_server
    status, _headers, body = _post(server.url + "/nope", b"x")
    assert status == 404
    assert json.loads(body)["path"] == "/nope"


def test_post_handler_crash_is_500_not_a_dead_socket(post_server):
    server, _registry, _calls = post_server
    status, _headers, body = _post(server.url + "/boom", b"x")
    assert status == 500
    assert "RuntimeError" in json.loads(body)["error"]
    # The server survives the crash and keeps answering.
    assert _post(server.url + "/echo", b"alive")[0] == 201


def test_post_requests_count_under_their_own_label(post_server):
    server, registry, _calls = post_server
    _post(server.url + "/echo", b"x")
    _post(server.url + "/missing", b"x")
    snapshot = registry.snapshot()
    assert snapshot['telemetry_requests{endpoint="echo"}']["value"] == 1
    assert snapshot['telemetry_requests{endpoint="other"}']["value"] == 1
