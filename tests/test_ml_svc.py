"""Tests for Support Vector Clustering."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.kmeans import KMeans
from repro.ml.metrics import rand_index
from repro.ml.svc import SupportVectorClustering


def blobs(rng, centers, n_per=25, spread=0.15):
    points = []
    labels = []
    for index, center in enumerate(centers):
        points.append(rng.normal(center, spread, size=(n_per, len(center))))
        labels.extend([index] * n_per)
    return np.vstack(points), np.array(labels)


def test_separates_two_blobs(rng):
    data, truth = blobs(rng, [(0.0, 0.0), (4.0, 4.0)])
    model = SupportVectorClustering(gaussian_width=2.0).fit(data)
    assert model.n_clusters_ == 2
    assert rand_index(model.labels_, truth) == 1.0


def test_separates_three_blobs(rng):
    data, truth = blobs(rng, [(0.0, 0.0), (4.0, 4.0), (-4.0, 4.0)])
    model = SupportVectorClustering(gaussian_width=2.0).fit(data)
    assert model.n_clusters_ == 3
    assert rand_index(model.labels_, truth) == 1.0


def test_agrees_with_kmeans_on_separable_data(rng):
    data, _ = blobs(rng, [(0.0, 0.0), (5.0, 5.0), (-5.0, 5.0)])
    svc_labels = SupportVectorClustering(gaussian_width=1.5).fit(data).labels_
    kmeans_labels = KMeans(3, seed=0).fit(data).labels_
    assert rand_index(svc_labels, kmeans_labels) == 1.0


def test_single_blob_yields_single_cluster(rng):
    data, _ = blobs(rng, [(0.0, 0.0)], n_per=40)
    model = SupportVectorClustering().fit(data)
    assert model.n_clusters_ == 1


def test_auto_width_is_finite(rng):
    data, _ = blobs(rng, [(0.0, 0.0), (3.0, 3.0)])
    model = SupportVectorClustering().fit(data)
    assert model.q_ is not None and model.q_ > 0


def test_beta_satisfies_simplex_constraint(rng):
    data, _ = blobs(rng, [(0.0, 0.0), (4.0, 0.0)])
    model = SupportVectorClustering(gaussian_width=2.0).fit(data)
    assert model.beta_.sum() == pytest.approx(1.0)
    assert np.all(model.beta_ >= -1e-12)


def test_sphere_distance_smaller_inside_cluster(rng):
    data, _ = blobs(rng, [(0.0, 0.0)], n_per=50)
    model = SupportVectorClustering(gaussian_width=1.0).fit(data)
    inside = model.sphere_distance_sq(np.array([[0.0, 0.0]]))[0]
    outside = model.sphere_distance_sq(np.array([[30.0, 30.0]]))[0]
    assert inside < outside


def test_invalid_parameters_rejected():
    with pytest.raises(ModelError):
        SupportVectorClustering(gaussian_width=-1.0)
    with pytest.raises(ModelError):
        SupportVectorClustering(soft_margin=1.0)
    with pytest.raises(ModelError):
        SupportVectorClustering(segment_samples=0)


def test_needs_two_samples():
    with pytest.raises(ModelError):
        SupportVectorClustering().fit(np.zeros((1, 2)))
