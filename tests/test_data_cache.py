"""Tests for the on-disk dataset cache (``repro.data.cache``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import CharacterizationPipeline
from repro.core.records import (
    build_failure_records,
    failure_records_from_arrays,
    failure_records_to_arrays,
)
from repro.core.serialize import canonical_json_dumps, report_to_dict
from repro.data.cache import (
    CACHE_SCHEMA_VERSION,
    DatasetCache,
    default_cache_dir,
)
from repro.data.dataset import DiskDataset
from repro.errors import CacheError, DatasetError
from repro.obs.observer import TelemetryObserver
from repro.smart.normalization import MinMaxNormalizer


@pytest.fixture()
def cache(tmp_path):
    return DatasetCache(tmp_path / "cache")


def _prepared(dataset):
    normalized = dataset.normalize()
    return normalized, build_failure_records(normalized)


# -- keying -----------------------------------------------------------------


def test_key_is_stable_for_equal_content(cache, small_dataset):
    assert cache.key_for(small_dataset) == cache.key_for(small_dataset)


def test_key_changes_when_content_changes(cache, small_dataset):
    profiles = small_dataset.profiles
    mutated = profiles[0].with_matrix(profiles[0].matrix + 1.0)
    changed = DiskDataset([mutated] + profiles[1:])
    assert cache.key_for(changed) != cache.key_for(small_dataset)


def test_key_includes_normalization_params(cache, small_dataset):
    fitted = small_dataset.fit_normalizer()
    shifted = MinMaxNormalizer.from_extrema(fitted.minima - 1.0,
                                            fitted.maxima)
    assert cache.key_for(small_dataset, normalizer=fitted) != \
        cache.key_for(small_dataset)
    assert cache.key_for(small_dataset, normalizer=shifted) != \
        cache.key_for(small_dataset, normalizer=fitted)


# -- hit / miss / invalidation ----------------------------------------------


def test_miss_then_store_then_hit(cache, small_dataset):
    key = cache.key_for(small_dataset)
    assert cache.load(key) is None
    assert cache.misses == 1

    normalized, records = _prepared(small_dataset)
    cache.store(key, normalized, extras=failure_records_to_arrays(records))
    assert key in cache
    assert len(cache) == 1

    entry = cache.load(key)
    assert entry is not None
    assert cache.hits == 1

    # The restored dataset is bit-exact: same serials, flags, hours,
    # matrices and normalizer extrema.
    assert [p.serial for p in entry.dataset.profiles] == \
        [p.serial for p in normalized.profiles]
    for restored, original in zip(entry.dataset.profiles,
                                  normalized.profiles):
        assert restored.failed == original.failed
        assert np.array_equal(restored.hours, original.hours)
        assert np.array_equal(restored.matrix, original.matrix)
    assert entry.dataset.is_normalized
    assert np.array_equal(entry.dataset.normalizer.minima,
                          normalized.normalizer.minima)

    restored_records = failure_records_from_arrays(entry.extras)
    assert restored_records.serials == records.serials
    assert np.array_equal(restored_records.features, records.features)
    assert restored_records.feature_names == records.feature_names


def test_stale_key_is_never_served(cache, small_dataset):
    """Mutated content keys differently, so the old entry is unreachable."""
    normalized, records = _prepared(small_dataset)
    key = cache.key_for(small_dataset)
    cache.store(key, normalized, extras=failure_records_to_arrays(records))

    profiles = small_dataset.profiles
    mutated = profiles[0].with_matrix(profiles[0].matrix * 2.0)
    changed = DiskDataset([mutated] + profiles[1:])
    stale_lookup = cache.load(cache.key_for(changed))
    assert stale_lookup is None
    assert cache.misses == 1
    # ... while the original entry still hits.
    assert cache.load(key) is not None


def test_invalidate_and_clear(cache, small_dataset):
    normalized, records = _prepared(small_dataset)
    key = cache.key_for(small_dataset)
    cache.store(key, normalized, extras=failure_records_to_arrays(records))
    assert cache.invalidate(key) is True
    assert cache.invalidate(key) is False
    assert cache.load(key) is None

    cache.store(key, normalized, extras=failure_records_to_arrays(records))
    assert cache.clear() == 1
    assert len(cache) == 0


def test_corrupt_entry_is_a_miss_and_removed(cache, small_dataset):
    normalized, records = _prepared(small_dataset)
    key = cache.key_for(small_dataset)
    path = cache.store(key, normalized,
                       extras=failure_records_to_arrays(records))
    path.write_bytes(b"not an npz archive")
    assert cache.load(key) is None
    assert cache.misses == 1
    assert key not in cache  # the broken file is gone


def test_truncated_entry_is_a_miss_and_removed(cache, small_dataset):
    """A crash mid-read of a partially-synced file must degrade to a
    recompute, not a crash (np.load raises zipfile/zlib errors here)."""
    normalized, records = _prepared(small_dataset)
    key = cache.key_for(small_dataset)
    path = cache.store(key, normalized,
                       extras=failure_records_to_arrays(records))
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert cache.load(key) is None
    assert cache.misses == 1
    assert key not in cache


def test_bit_flipped_entry_is_a_miss_and_removed(cache, small_dataset):
    from repro.faults import corrupt_cache_entry

    normalized, records = _prepared(small_dataset)
    key = cache.key_for(small_dataset)
    path = cache.store(key, normalized,
                       extras=failure_records_to_arrays(records))
    assert corrupt_cache_entry(path, seed=7, n_flips=64) == 64
    assert cache.load(key) is None
    assert key not in cache
    # The slot is reusable after the corrupt entry was discarded.
    cache.store(key, normalized, extras=failure_records_to_arrays(records))
    assert cache.load(key) is not None


def test_successful_store_leaves_no_temp_files(cache, small_dataset):
    normalized, records = _prepared(small_dataset)
    cache.store(cache.key_for(small_dataset), normalized,
                extras=failure_records_to_arrays(records))
    assert not list(cache.directory.glob("*.tmp"))


def test_stale_temp_files_are_not_entries_and_get_swept(tmp_path,
                                                        small_dataset):
    directory = tmp_path / "cache"
    cache = DatasetCache(directory)
    normalized, records = _prepared(small_dataset)
    cache.store(cache.key_for(small_dataset), normalized,
                extras=failure_records_to_arrays(records))
    leftover = directory / "abc123.tmp"
    leftover.write_bytes(b"half a write from a killed process")
    # Temp debris is invisible to entry accounting ...
    assert len(cache) == 1
    assert cache.clear() == 1
    assert not leftover.exists()  # ... and clear sweeps it uncounted.
    leftover.write_bytes(b"again")
    DatasetCache(directory)  # a fresh instance sweeps on startup
    assert not leftover.exists()


def test_store_rejects_unnormalized_and_extras_of_objects(
        cache, small_dataset):
    with pytest.raises(CacheError, match="normalized"):
        cache.store("k", small_dataset)
    normalized, _ = _prepared(small_dataset)
    with pytest.raises(CacheError, match="plain array"):
        cache.store("k", normalized,
                    extras={"bad": np.asarray([object()], dtype=object)})
    bare = DiskDataset(normalized.profiles, normalized=True)
    with pytest.raises(CacheError, match="normalizer"):
        cache.store("k", bare)


def test_observer_sees_hits_and_misses(tmp_path, small_dataset):
    observer = TelemetryObserver()
    cache = DatasetCache(tmp_path / "cache", observer=observer)
    key = cache.key_for(small_dataset)
    cache.load(key)
    normalized, records = _prepared(small_dataset)
    cache.store(key, normalized, extras=failure_records_to_arrays(records))
    cache.load(key)
    snapshot = observer.metrics.snapshot()
    assert snapshot["cache_misses"]["value"] == 1
    assert snapshot["cache_hits"]["value"] == 1
    assert observer.tracer.find("cache-store") is not None


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir().name == "repro"


def test_schema_version_mismatch_is_a_miss(cache, small_dataset, monkeypatch):
    normalized, records = _prepared(small_dataset)
    key = cache.key_for(small_dataset)
    cache.store(key, normalized, extras=failure_records_to_arrays(records))
    monkeypatch.setattr("repro.data.cache.CACHE_SCHEMA_VERSION",
                        CACHE_SCHEMA_VERSION + 1)
    assert cache.load(key) is None


# -- record codec -----------------------------------------------------------


def test_failure_record_codec_roundtrip(small_normalized):
    records = build_failure_records(small_normalized)
    arrays = failure_records_to_arrays(records)
    restored = failure_records_from_arrays(arrays)
    assert restored.serials == records.serials
    assert np.array_equal(restored.attribute_values,
                          records.attribute_values)
    assert restored.attribute_names == records.attribute_names


def test_failure_record_codec_rejects_incomplete(small_normalized):
    records = build_failure_records(small_normalized)
    arrays = failure_records_to_arrays(records)
    arrays.pop("record_features")
    with pytest.raises(DatasetError, match="missing"):
        failure_records_from_arrays(arrays)


# -- pipeline integration ---------------------------------------------------


def test_pipeline_cached_run_is_byte_identical(tmp_path, small_dataset):
    cache = DatasetCache(tmp_path / "cache")
    cold = CharacterizationPipeline(seed=3, run_prediction=False,
                                    cache=cache).run(small_dataset)
    warm = CharacterizationPipeline(seed=3, run_prediction=False,
                                    cache=cache).run(small_dataset)
    plain = CharacterizationPipeline(seed=3,
                                     run_prediction=False).run(small_dataset)
    assert cache.misses == 1 and cache.hits == 1
    cold_json = canonical_json_dumps(report_to_dict(cold))
    assert cold_json == canonical_json_dumps(report_to_dict(warm))
    assert cold_json == canonical_json_dumps(report_to_dict(plain))


def test_pipeline_bypasses_cache_for_normalized_input(
        tmp_path, small_normalized):
    cache = DatasetCache(tmp_path / "cache")
    CharacterizationPipeline(seed=3, run_prediction=False,
                             cache=cache).run(small_normalized)
    assert cache.hits == 0 and cache.misses == 0
    assert len(cache) == 0
