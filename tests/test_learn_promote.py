"""Promotion-policy tests: every gate produces a named reason.

The decision object is where an operator reads *why* a challenger was
held back, so each threshold is exercised in isolation against
fabricated divergence reports over real bundle hashes — and the
all-gates-pass case promotes with an empty reason list.
"""

import pytest

from repro.errors import LearnError
from repro.learn.promote import PromotionPolicy
from repro.learn.shadow import DivergenceReport
from repro.serve.bundle import build_bundle, content_hash, stamp_lineage


@pytest.fixture(scope="module")
def champion(mid_report):
    return build_bundle(mid_report, seed=7)


@pytest.fixture(scope="module")
def challenger(champion):
    return stamp_lineage(champion, champion)


def _report(champion, challenger, *, n_samples=5000, n_agree=None,
            stage_delta_mean=0.0):
    if n_agree is None:
        n_agree = n_samples
    return DivergenceReport(
        champion_sha256=content_hash(champion.to_payload()),
        challenger_sha256=content_hash(challenger.to_payload()),
        champion_generation=champion.generation,
        challenger_generation=challenger.generation,
        n_samples=n_samples, n_agree=n_agree,
        confusion=((n_agree, n_samples - n_agree, 0),
                   (0, 0, 0), (0, 0, 0)),
        stage_delta_mean=stage_delta_mean,
        alert_deltas={},
    )


@pytest.mark.parametrize("kwargs", [
    {"min_samples": 0},
    {"min_agreement": 0.0},
    {"min_agreement": 1.5},
    {"max_stage_delta": -0.1},
])
def test_policy_rejects_bad_thresholds(kwargs):
    with pytest.raises(LearnError):
        PromotionPolicy(**kwargs)


def test_report_for_other_bundles_is_refused(champion, challenger):
    report = _report(challenger, challenger)  # champion sha is wrong
    with pytest.raises(LearnError, match="different bundles"):
        PromotionPolicy().evaluate(report, champion, challenger)


def test_all_gates_pass_promotes_with_no_reasons(champion, challenger):
    decision = PromotionPolicy().evaluate(
        _report(champion, challenger), champion, challenger)
    assert decision.promote is True
    assert decision.reasons == ()
    assert decision.challenger_sha256 \
        == content_hash(challenger.to_payload())
    assert decision.challenger_generation == 1


def test_short_shadow_run_is_a_named_reason(champion, challenger):
    decision = PromotionPolicy(min_samples=1024).evaluate(
        _report(champion, challenger, n_samples=100),
        champion, challenger)
    assert decision.promote is False
    assert any("too short" in reason for reason in decision.reasons)


def test_low_agreement_is_a_named_reason(champion, challenger):
    decision = PromotionPolicy(min_agreement=0.95).evaluate(
        _report(champion, challenger, n_samples=5000, n_agree=4000),
        champion, challenger)
    assert decision.promote is False
    assert any("agreement" in reason for reason in decision.reasons)


def test_large_stage_delta_is_a_named_reason(champion, challenger):
    decision = PromotionPolicy(max_stage_delta=0.25).evaluate(
        _report(champion, challenger, stage_delta_mean=0.5),
        champion, challenger)
    assert decision.promote is False
    assert any("stage delta" in reason for reason in decision.reasons)


def test_broken_lineage_is_two_named_reasons(champion):
    # The champion itself as challenger: no parent, same generation.
    report = _report(champion, champion)
    decision = PromotionPolicy().evaluate(report, champion, champion)
    assert decision.promote is False
    assert any("parent" in reason for reason in decision.reasons)
    assert any("generation" in reason for reason in decision.reasons)


def test_lineage_gate_can_be_disabled(champion):
    report = _report(champion, champion)
    decision = PromotionPolicy(require_lineage=False).evaluate(
        report, champion, champion)
    assert decision.promote is True


def test_every_failed_gate_is_reported_at_once(champion):
    report = _report(champion, champion, n_samples=10, n_agree=5,
                     stage_delta_mean=9.0)
    decision = PromotionPolicy().evaluate(report, champion, champion)
    assert decision.promote is False
    assert len(decision.reasons) == 5


def test_decision_payload_round_trips_plain_types(champion, challenger):
    decision = PromotionPolicy().evaluate(
        _report(champion, challenger), champion, challenger)
    payload = decision.to_payload()
    assert payload["promote"] is True
    assert payload["reasons"] == []
    assert payload["challenger_generation"] == 1
