"""Integration tests: the end-to-end characterization pipeline.

These are the reproduction's acceptance tests — they assert the paper's
published *shapes* on the simulated fleet: the group mix, the degradation
window magnitudes, the canonical signature orders and the prediction
ordering.
"""

import numpy as np
import pytest

from repro.core.pipeline import CharacterizationPipeline
from repro.core.taxonomy import FailureType
from repro.sim.failure_modes import FailureMode

MODE_BY_TYPE = {
    FailureType.LOGICAL: FailureMode.LOGICAL,
    FailureType.BAD_SECTOR: FailureMode.BAD_SECTOR,
    FailureType.HEAD: FailureMode.HEAD,
}


def test_report_carries_every_stage(mid_report):
    assert mid_report.dataset.is_normalized
    assert mid_report.records.n_records == len(
        mid_report.dataset.failed_profiles
    )
    assert mid_report.categorization.n_groups == 3
    assert len(mid_report.signatures) >= 0.9 * mid_report.records.n_records
    assert set(mid_report.group_summaries) == set(FailureType)
    assert set(mid_report.predictions) == set(FailureType)


def test_categorization_recovers_ground_truth(mid_report, mid_fleet):
    correct = total = 0
    for failure_type in FailureType:
        for serial in mid_report.categorization.serials_of_type(failure_type):
            total += 1
            correct += mid_fleet.true_modes[serial] is MODE_BY_TYPE[failure_type]
    assert correct / total >= 0.95


def test_group_mix_matches_paper(mid_report):
    summaries = mid_report.group_summaries
    total = sum(s.n_drives for s in summaries.values())
    logical_share = summaries[FailureType.LOGICAL].n_drives / total
    bad_share = summaries[FailureType.BAD_SECTOR].n_drives / total
    head_share = summaries[FailureType.HEAD].n_drives / total
    assert logical_share == pytest.approx(0.596, abs=0.08)
    assert bad_share == pytest.approx(0.076, abs=0.05)
    assert head_share == pytest.approx(0.328, abs=0.08)


def test_degradation_window_magnitudes(mid_report):
    summaries = mid_report.group_summaries
    assert summaries[FailureType.LOGICAL].median_window <= 14
    assert summaries[FailureType.BAD_SECTOR].median_window >= 100
    assert 8 <= summaries[FailureType.HEAD].median_window <= 30
    # Group 2's degradation is an order of magnitude longer.
    assert (summaries[FailureType.BAD_SECTOR].median_window
            > 5 * summaries[FailureType.HEAD].median_window)


def test_canonical_signature_orders(mid_report):
    summaries = mid_report.group_summaries
    assert summaries[FailureType.LOGICAL].consensus_order == 2
    assert summaries[FailureType.BAD_SECTOR].consensus_order == 1
    assert summaries[FailureType.HEAD].consensus_order == 3


def test_dominant_correlated_attributes(mid_report):
    summaries = mid_report.group_summaries
    assert set(summaries[FailureType.BAD_SECTOR].top_correlated) <= {
        "RUE", "R-RSC", "CPSC", "R-CPSC", "RSC"
    }
    assert "RRER" in summaries[FailureType.LOGICAL].top_correlated or \
           "HER" in summaries[FailureType.LOGICAL].top_correlated
    assert "R-RSC" in summaries[FailureType.HEAD].top_correlated or \
           "RSC" in summaries[FailureType.HEAD].top_correlated


def test_prediction_ordering_matches_table_three(mid_report):
    predictions = mid_report.predictions
    logical = predictions[FailureType.LOGICAL].error_rate
    assert logical >= predictions[FailureType.BAD_SECTOR].error_rate
    assert logical >= predictions[FailureType.HEAD].error_rate


def test_signature_lookup(mid_report):
    serial = next(iter(mid_report.signatures))
    signature = mid_report.signature_of(serial)
    assert signature.serial == serial
    group = mid_report.group_of(serial)
    assert group in FailureType


def test_pipeline_accepts_prenormalized_dataset(small_normalized):
    pipeline = CharacterizationPipeline(run_prediction=False, seed=1)
    report = pipeline.run(small_normalized)
    assert report.dataset is small_normalized


def test_pipeline_without_prediction(small_dataset):
    pipeline = CharacterizationPipeline(run_prediction=False, seed=1)
    report = pipeline.run(small_dataset)
    assert report.predictions == {}


def test_pipeline_is_deterministic(small_dataset):
    a = CharacterizationPipeline(run_prediction=False, seed=3).run(small_dataset)
    b = CharacterizationPipeline(run_prediction=False, seed=3).run(small_dataset)
    np.testing.assert_array_equal(a.categorization.labels,
                                  b.categorization.labels)
    assert {s: sig.window_size for s, sig in a.signatures.items()} == \
           {s: sig.window_size for s, sig in b.signatures.items()}
