"""Tests for failure-mode profiles and ramp machinery."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.config import FleetConfig
from repro.sim.failure_modes import (
    FailureMode,
    ModeProfile,
    RampSpec,
    cumulative_ramp_increments,
    mode_profile,
    ramp_progress,
)
from repro.sim.rng import child_rng

CONFIG = FleetConfig(n_drives=100)


class TestRampProgress:
    def test_zero_before_window_one_at_failure(self):
        t = np.array([100.0, 12.0, 6.0, 0.0])
        progress = ramp_progress(t, window=12, exponent=2.0)
        assert progress[0] == 0.0
        assert progress[1] == 0.0
        assert progress[3] == 1.0
        assert 0.0 < progress[2] < 1.0

    def test_exponent_shapes_displacement(self):
        t = np.array([6.0])
        quad = ramp_progress(t, 12, 2.0)[0]
        cubic = ramp_progress(t, 12, 3.0)[0]
        linear = ramp_progress(t, 12, 1.0)[0]
        # Displacement (1 - progress) = (t/d)^p shrinks with p at t<d.
        assert (1 - linear) > (1 - quad) > (1 - cubic)

    def test_monotone_in_time(self):
        t = np.arange(30.0, -1.0, -1.0)
        progress = ramp_progress(t, 12, 3.0)
        assert np.all(np.diff(progress) >= 0)

    def test_invalid_window_rejected(self):
        with pytest.raises(SimulationError):
            ramp_progress(np.array([1.0]), 0, 2.0)


class TestCumulativeRampIncrements:
    def test_increments_sum_to_total(self):
        t = np.arange(20.0, -1.0, -1.0)  # profile spans the whole window
        increments, pre_mass = cumulative_ramp_increments(t, 20, 3.0, 500.0)
        assert pre_mass == pytest.approx(0.0)
        assert increments.sum() == pytest.approx(500.0, rel=1e-9)

    def test_truncated_window_reports_pre_mass(self):
        # Profile starts mid-window: mass accrued before is reported.
        t = np.arange(10.0, -1.0, -1.0)
        increments, pre_mass = cumulative_ramp_increments(t, 20, 1.0, 400.0)
        assert pre_mass > 0.0
        assert pre_mass + increments.sum() == pytest.approx(400.0, rel=1e-9)

    def test_linear_ramp_has_constant_increments(self):
        t = np.arange(50.0, -1.0, -1.0)
        increments, _ = cumulative_ramp_increments(t, 50, 1.0, 100.0)
        inside = increments[1:]
        assert np.allclose(inside, inside[0])

    def test_increments_non_negative(self):
        t = np.arange(30.0, -1.0, -1.0)
        increments, _ = cumulative_ramp_increments(t, 15, 3.0, 100.0)
        assert np.all(increments >= 0)


class TestModeProfiles:
    def test_every_mode_has_a_profile(self):
        for mode in FailureMode:
            profile = mode_profile(mode, CONFIG)
            assert profile.mode is mode

    def test_logical_runs_hottest(self):
        logical = mode_profile(FailureMode.LOGICAL, CONFIG)
        bad = mode_profile(FailureMode.BAD_SECTOR, CONFIG)
        head = mode_profile(FailureMode.HEAD, CONFIG)
        assert logical.temp_offset_c > bad.temp_offset_c
        assert logical.temp_offset_c > head.temp_offset_c

    def test_head_failures_hit_old_drives(self):
        head = mode_profile(FailureMode.HEAD, CONFIG)
        others = [mode_profile(m, CONFIG) for m in
                  (FailureMode.LOGICAL, FailureMode.BAD_SECTOR)]
        assert all(head.age_bias > other.age_bias for other in others)

    def test_window_sampling_respects_range(self):
        profile = mode_profile(FailureMode.HEAD, CONFIG)
        rng = child_rng(1, "w")
        windows = [profile.sample_window(rng) for _ in range(100)]
        low, high = CONFIG.head_window
        assert all(low <= w <= high for w in windows)

    def test_exponents_match_config(self):
        assert mode_profile(FailureMode.LOGICAL, CONFIG).exponent == 2.0
        assert mode_profile(FailureMode.BAD_SECTOR, CONFIG).exponent == 1.0
        assert mode_profile(FailureMode.HEAD, CONFIG).exponent == 3.0

    def test_chronic_sampling_within_bounds(self):
        profile = mode_profile(FailureMode.BAD_SECTOR, CONFIG)
        rng = child_rng(2, "c")
        for _ in range(50):
            multipliers = profile.sample_chronic(rng)
            for channel, (low, high) in profile.chronic.items():
                assert low <= multipliers[channel] <= high

    def test_initial_reallocated_within_bounds(self):
        profile = mode_profile(FailureMode.BAD_SECTOR, CONFIG)
        rng = child_rng(3, "i")
        values = [profile.sample_initial_reallocated(rng) for _ in range(50)]
        low, high = profile.initial_reallocated
        assert all(low <= v <= high for v in values)

    def test_unknown_channel_rejected(self):
        with pytest.raises(SimulationError):
            RampSpec("warp_drive", 1.0, 2.0)
        bad_profile = ModeProfile(
            mode=FailureMode.LOGICAL, window_range=(1, 2), exponent=1.0,
            temp_offset_c=0.0, age_bias=1.0,
            chronic={"warp_drive": (1.0, 2.0)},
        )
        with pytest.raises(SimulationError):
            bad_profile.sample_chronic(child_rng(0, "x"))
