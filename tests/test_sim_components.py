"""Tests for the drive component models."""

import numpy as np

from repro.sim.components import HeadAssembly, MediaSurface, SpindleMotor
from repro.sim.rng import child_rng


def test_media_error_rate_scales_with_ops_and_stress():
    media = MediaSurface(read_error_prob=1.0e-6, ecc_recovery_fraction=0.95)
    ops = np.array([1.0e6, 2.0e6])
    base = media.read_error_rate(ops, np.ones(2))
    np.testing.assert_allclose(base, [1.0, 2.0])
    stressed = media.read_error_rate(ops, np.full(2, 10.0))
    np.testing.assert_allclose(stressed, base * 10.0)


def test_ecc_recovers_configured_fraction():
    media = MediaSurface(read_error_prob=1.0e-6, ecc_recovery_fraction=0.9)
    rate = np.array([100.0])
    np.testing.assert_allclose(media.ecc_recovered_rate(rate), [90.0])


def test_head_rates_scale_linearly():
    heads = HeadAssembly(seek_error_prob=1e-8, high_fly_prob=1e-8,
                         write_error_prob=1e-9)
    ops = np.array([1.0e8])
    assert heads.seek_error_rate(ops, np.ones(1))[0] == 1.0
    assert heads.high_fly_rate(ops, np.full(1, 3.0))[0] == 3.0
    assert heads.write_error_rate(ops, np.full(1, 2.0))[0] == 0.2


def test_spindle_wear_and_heat_slow_spin_up():
    motor = SpindleMotor(base_spin_up_ms=4000.0, wear_ms_per_khour=20.0,
                         thermal_ms_per_c=20.0, jitter_ms=0.0)
    rng = child_rng(0, "x")
    young_cool = motor.spin_up_series(np.array([0.0]), np.array([24.0]),
                                      np.ones(1), rng)
    old_hot = motor.spin_up_series(np.array([50000.0]), np.array([44.0]),
                                   np.ones(1), rng)
    assert old_hot[0] > young_cool[0] + 1000.0


def test_component_sampling_gives_unit_variation():
    rngs = [child_rng(9, f"drive-{i}", "components") for i in range(50)]
    probs = [MediaSurface.sample(rng).read_error_prob for rng in rngs]
    assert min(probs) < max(probs)
    assert all(p > 0 for p in probs)


def test_sampling_is_deterministic():
    a = MediaSurface.sample(child_rng(1, "d", "c"))
    b = MediaSurface.sample(child_rng(1, "d", "c"))
    assert a == b
