"""Tests for the resilient ingest path (``repro.data.sanitize`` and
``load_csv_resilient``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import load_csv, load_csv_resilient, save_csv
from repro.data.sanitize import (
    RawProfile,
    SanitizePolicy,
    sanitize_profiles,
)
from repro.errors import QuarantineError
from repro.obs.observer import TelemetryObserver
from repro.smart.quarantine import QuarantineReason

ATTRS = ("A", "B", "C")


def raw(serial, hours, matrix, *, failed=False, attributes=ATTRS):
    return RawProfile(serial=serial,
                      hours=np.asarray(hours, dtype=np.int64),
                      matrix=np.asarray(matrix, dtype=np.float64),
                      failed=failed, attributes=attributes)


def good(serial, n=6, offset=0.0):
    rows = np.linspace(0.1, 0.9, n)[:, None] + np.arange(3) * 0.01 + offset
    return raw(serial, np.arange(n), rows)


def drive_reasons(result):
    return {record.serial: record.reason for record in result.drives}


def sample_reasons(result):
    return {(record.serial, record.hour): record.reason
            for record in result.samples}


# -- clean passthrough ------------------------------------------------------


def test_clean_dataset_passes_through_bit_identical(small_dataset):
    result = sanitize_profiles(small_dataset.profiles)
    assert result.clean
    assert result.n_input_drives == result.n_clean_drives
    for out, original in zip(result.dataset.profiles,
                             small_dataset.profiles):
        assert out.serial == original.serial
        assert out.failed == original.failed
        assert out.hours.tobytes() == original.hours.tobytes()
        assert out.matrix.tobytes() == original.matrix.tobytes()


def test_clean_result_has_empty_quality_section():
    result = sanitize_profiles([good("d1"), good("d2", offset=0.2)])
    section = result.data_quality_section()
    assert section["drives_quarantined"] == {}
    assert section["samples_quarantined"] == {}
    assert section["repairs"] == {}
    assert section["quarantined_serials"] == []


# -- repairs and per-sample quarantine --------------------------------------


def test_out_of_order_samples_are_reordered_not_dropped():
    shuffled = good("d1")
    order = np.array([3, 0, 4, 1, 5, 2])
    shuffled.hours = shuffled.hours[order]
    shuffled.matrix = shuffled.matrix[order]
    result = sanitize_profiles([shuffled, good("d2")])
    assert result.repairs == {"reordered_profiles": 1}
    restored = result.dataset.profiles[0]
    assert np.array_equal(restored.hours, np.arange(6))
    assert not result.drives and not result.samples


def test_duplicate_timestamps_are_quarantined_per_sample():
    dup = good("d1")
    dup.hours = np.array([0, 1, 1, 2, 3, 4])
    result = sanitize_profiles([dup, good("d2")])
    assert sample_reasons(result) == {
        ("d1", 1): QuarantineReason.DUPLICATE_TIMESTAMP}
    assert len(result.dataset.profiles[0]) == 5


def test_non_finite_samples_are_quarantined():
    dirty = good("d1")
    dirty.matrix[2, 1] = np.nan
    dirty.matrix[4, 0] = np.inf
    result = sanitize_profiles([dirty, good("d2")])
    reasons = sample_reasons(result)
    assert reasons == {
        ("d1", 2): QuarantineReason.NON_FINITE_VALUES,
        ("d1", 4): QuarantineReason.NON_FINITE_VALUES,
    }
    assert np.isfinite(result.dataset.profiles[0].matrix).all()


def test_wild_outliers_are_quarantined():
    # Long profiles keep the single outlier out of the p99 robust spread
    # (the screen is calibrated for fleets, not five-sample toys).
    dirty = good("d1", n=60)
    dirty.matrix[3, 2] = 1.0e6
    result = sanitize_profiles([dirty, good("d2", n=60),
                                good("d3", n=60, offset=0.1)])
    assert sample_reasons(result) == {
        ("d1", 3): QuarantineReason.OUTLIER_VALUE}


def test_outlier_screen_never_trips_on_clean_spread():
    """Values inside the absolute backstop are not outliers, however
    far from the median relative to the (tiny) robust spread."""
    profiles = [good(f"d{i}", offset=0.001 * i) for i in range(5)]
    profiles[0].matrix[0, 0] = 900.0  # large, but under the 1e4 backstop
    result = sanitize_profiles(profiles)
    assert not result.samples


def test_outlier_screen_can_be_disabled():
    dirty = good("d1")
    dirty.matrix[3, 2] = 1.0e6
    result = sanitize_profiles(
        [dirty, good("d2")],
        policy=SanitizePolicy(screen_outliers=False))
    assert not result.samples


# -- per-drive quarantine ---------------------------------------------------


def test_empty_profile_is_quarantined():
    empty = raw("d1", [], np.empty((0, 3)))
    result = sanitize_profiles([empty, good("d2")])
    assert drive_reasons(result) == {"d1": QuarantineReason.EMPTY_PROFILE}


def test_too_few_usable_records_quarantines_the_drive():
    tiny = raw("d1", [0], [[0.1, 0.2, 0.3]])
    mostly_nan = good("d2")
    mostly_nan.matrix[1:, :] = np.nan  # one usable sample survives
    result = sanitize_profiles([tiny, mostly_nan, good("d3")])
    reasons = drive_reasons(result)
    assert reasons["d1"] == QuarantineReason.TOO_FEW_RECORDS
    assert reasons["d2"] == QuarantineReason.TOO_FEW_RECORDS
    assert [p.serial for p in result.dataset.profiles] == ["d3"]


def test_duplicate_serial_is_quarantined():
    result = sanitize_profiles([good("d1"), good("d1", offset=0.3),
                                good("d2")])
    assert drive_reasons(result) == {"d1": QuarantineReason.DUPLICATE_SERIAL}
    assert result.n_clean_drives == 2


def test_mismatched_attributes_are_quarantined():
    alien = good("d1")
    alien.attributes = ("X", "Y", "Z")
    result = sanitize_profiles([good("d0"), alien])
    assert drive_reasons(result) == {
        "d1": QuarantineReason.MISMATCHED_ATTRIBUTES}


def test_zero_survivors_raises_quarantine_error():
    with pytest.raises(QuarantineError, match="every drive"):
        sanitize_profiles([raw("d1", [], np.empty((0, 3))),
                           raw("d2", [0], [[0.1, 0.2, 0.3]])])


def test_counters_flow_through_the_observer():
    observer = TelemetryObserver()
    dup = good("d1")
    dup.hours = np.array([0, 1, 1, 2, 3, 4])
    shuffled = good("d2")
    shuffled.hours = shuffled.hours[::-1].copy()
    shuffled.matrix = shuffled.matrix[::-1].copy()
    sanitize_profiles([dup, shuffled, raw("d3", [], np.empty((0, 3)))],
                      observer=observer)
    snapshot = observer.metrics.snapshot()
    assert snapshot["drives_quarantined"]["value"] == 1
    assert snapshot["samples_quarantined"]["value"] == 1
    assert snapshot["repairs_reordered_profiles"]["value"] == 1


# -- resilient CSV loading --------------------------------------------------


def test_resilient_load_matches_strict_on_clean_file(tmp_path,
                                                     small_dataset):
    path = tmp_path / "fleet.csv"
    save_csv(small_dataset, path)
    strict = load_csv(path)
    dataset, result = load_csv_resilient(path)
    assert result.clean
    assert [p.serial for p in dataset.profiles] == \
        [p.serial for p in strict.profiles]
    for resilient, reference in zip(dataset.profiles, strict.profiles):
        assert resilient.hours.tobytes() == reference.hours.tobytes()
        assert resilient.matrix.tobytes() == reference.matrix.tobytes()


def test_resilient_load_quarantines_malformed_rows(tmp_path):
    path = tmp_path / "dirty.csv"
    path.write_text(
        "serial,hour,failed,A,B,C\n"
        "d1,0,0,0.1,0.2,0.3\n"
        "d1,1,0,0.2,0.3,0.4\n"
        "d1,2,0,not-a-number,0.3,0.4\n"   # bad float
        "d1,3,0,0.1,0.2\n"                # short row
        "d1,4,0,0.3,0.4,0.5\n"
    )
    dataset, result = load_csv_resilient(path)
    assert [(s.serial, s.hour, s.reason) for s in result.samples] == [
        ("d1", 2, QuarantineReason.MALFORMED_ROW),
        ("d1", 3, QuarantineReason.MALFORMED_ROW),
    ]
    assert np.array_equal(dataset.profiles[0].hours, [0, 1, 4])


def test_resilient_load_quarantines_inconsistent_labels(tmp_path):
    path = tmp_path / "mixed.csv"
    path.write_text(
        "serial,hour,failed,A,B,C\n"
        "d1,0,0,0.1,0.2,0.3\n"
        "d1,1,1,0.2,0.3,0.4\n"            # contradicts the row above
        "d2,0,0,0.1,0.2,0.3\n"
        "d2,1,0,0.2,0.3,0.4\n"
    )
    dataset, result = load_csv_resilient(path)
    assert drive_reasons(result) == {
        "d1": QuarantineReason.INCONSISTENT_LABEL}
    assert [p.serial for p in dataset.profiles] == ["d2"]
