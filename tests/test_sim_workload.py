"""Tests for the workload generator."""

import numpy as np

from repro.sim.config import FleetConfig
from repro.sim.rng import child_rng
from repro.sim.workload import WorkloadGenerator


def generate(hours=None, seed_key="d1"):
    config = FleetConfig(n_drives=100)
    hours = hours if hours is not None else np.arange(0, 168)
    rng = child_rng(3, seed_key, "workload")
    return WorkloadGenerator(config).generate(hours, rng)


def test_series_align_with_hours():
    workload = generate()
    assert workload.read_ops.shape == (168,)
    assert workload.write_ops.shape == (168,)
    assert workload.utilization.shape == (168,)


def test_ops_are_positive():
    workload = generate()
    assert np.all(workload.read_ops > 0)
    assert np.all(workload.write_ops > 0)


def test_utilization_bounded():
    workload = generate()
    assert np.all(workload.utilization >= 0.0)
    assert np.all(workload.utilization <= 1.0)


def test_reads_exceed_writes_on_average():
    workload = generate()
    assert workload.read_ops.mean() > workload.write_ops.mean()


def test_diurnal_pattern_present():
    """Hour-of-day averages should swing around the mean."""
    hours = np.arange(0, 24 * 14)
    workload = generate(hours=hours)
    by_hour = workload.read_ops.reshape(14, 24).mean(axis=0)
    swing = (by_hour.max() - by_hour.min()) / by_hour.mean()
    assert swing > 0.15


def test_deterministic_given_stream():
    a = generate(seed_key="dX")
    b = generate(seed_key="dX")
    np.testing.assert_array_equal(a.read_ops, b.read_ops)


def test_drives_have_distinct_demand_levels():
    a = generate(seed_key="dA")
    b = generate(seed_key="dB")
    assert abs(a.read_ops.mean() - b.read_ops.mean()) > 1.0
