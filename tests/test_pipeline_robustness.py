"""Failure-injection tests: the pipeline degrades loudly, not silently."""

import numpy as np
import pytest

from repro.core.categorize import FailureCategorizer
from repro.core.pipeline import CharacterizationPipeline
from repro.core.records import build_failure_records
from repro.data.dataset import DiskDataset
from repro.errors import DatasetError, ModelError, ReproError
from repro.smart.profile import HealthProfile


def make_profile(serial, failed, n=48, scale=1.0, seed=0):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.0, 100.0, size=(n, 12)) * scale
    return HealthProfile(serial, np.arange(n), matrix, failed=failed)


def test_dataset_with_no_failures_fails_fast():
    dataset = DiskDataset([make_profile(f"g{i}", False, seed=i)
                           for i in range(5)])
    with pytest.raises(DatasetError, match="no failed drives"):
        build_failure_records(dataset.normalize())


def test_too_few_failures_for_three_clusters():
    profiles = [make_profile("f1", True), make_profile("f2", True, seed=1),
                make_profile("g1", False, seed=2)]
    records = build_failure_records(DiskDataset(profiles).normalize())
    with pytest.raises(ModelError):
        FailureCategorizer(n_clusters=3).categorize(records)


def test_two_sample_profiles_survive_the_pipeline():
    """Drives with minimal histories are categorized but unsigned."""
    rng = np.random.default_rng(3)
    profiles = []
    for i in range(12):
        n = 2 if i < 3 else 48
        matrix = rng.uniform(0.0, 100.0, size=(n, 12))
        profiles.append(HealthProfile(f"f{i}", np.arange(n), matrix,
                                      failed=True))
    profiles.append(make_profile("g", False, seed=9))
    pipeline = CharacterizationPipeline(run_prediction=False, seed=1)
    report = pipeline.run(DiskDataset(profiles))
    assert report.categorization.n_groups == 3
    # Signatures exist for the drives whose windows could be extracted.
    assert len(report.signatures) >= 1


def test_identical_failure_records_rejected_by_svc_sweep():
    matrix = np.full((48, 12), 42.0)
    profiles = [
        HealthProfile(f"f{i}", np.arange(48), matrix.copy(), failed=True)
        for i in range(6)
    ]
    dataset = DiskDataset(profiles)
    records = build_failure_records(dataset)
    with pytest.raises(ModelError, match="identical"):
        FailureCategorizer(n_clusters=3, method="svc").categorize(records)


def test_non_finite_values_rejected_at_normalization():
    matrix = np.full((10, 12), 1.0)
    matrix[3, 4] = np.inf
    dataset = DiskDataset([
        HealthProfile("bad", np.arange(10), matrix, failed=True)
    ])
    from repro.errors import NormalizationError
    with pytest.raises(NormalizationError):
        dataset.normalize()


def test_monitor_survives_unseen_attribute_scales(mid_fleet, mid_report):
    """Raw records far outside the fitted range are clipped, not crashed."""
    from repro.core.monitor import DegradationMonitor
    from repro.core.prediction import DegradationPredictor
    predictor = DegradationPredictor(seed=7)
    predictor.evaluate_all(mid_report.dataset, mid_report.categorization)
    monitor = DegradationMonitor(predictor,
                                 mid_fleet.dataset.fit_normalizer())
    wild = np.full(12, 1.0e9)
    alert = monitor.observe("alien", 0, wild)
    assert np.isfinite(alert.stage)


def test_validate_rejects_foreign_serials(mid_fleet, mid_report):
    from repro.core.validate import validate_categorization
    from repro.sim.config import FleetConfig
    from repro.sim.fleet import simulate_fleet
    other = simulate_fleet(FleetConfig(n_drives=300, seed=1234))
    with pytest.raises(ReproError):
        validate_categorization(other, mid_report.categorization)
