"""Tests for ground-truth validation."""

import pytest

from repro.core.categorize import FailureCategorizer
from repro.core.records import build_failure_records
from repro.core.taxonomy import FailureType
from repro.core.validate import validate_categorization


@pytest.fixture(scope="module")
def validated(mid_fleet, mid_report):
    report = validate_categorization(mid_fleet, mid_report.categorization)
    return report


def test_counts_cover_all_failed_drives(validated, mid_fleet):
    assert validated.n_drives == len(mid_fleet.dataset.failed_profiles)
    assert validated.n_correct <= validated.n_drives


def test_accuracy_high_on_simulated_fleet(validated):
    assert validated.accuracy >= 0.95


def test_confusion_rows_sum_to_type_populations(validated, mid_fleet):
    from repro.core.validate import TYPE_BY_MODE
    for failure_type in FailureType:
        row_total = sum(validated.confusion[failure_type].values())
        true_total = sum(
            1 for mode in mid_fleet.true_modes.values()
            if mode.is_failure and TYPE_BY_MODE[mode] is failure_type
        )
        assert row_total == true_total


def test_recall_and_precision_bounds(validated):
    for failure_type in FailureType:
        assert 0.0 <= validated.recall(failure_type) <= 1.0
        assert 0.0 <= validated.precision(failure_type) <= 1.0


def test_misassigned_listed(validated):
    misassigned = validated.misassigned_serials()
    assert len(misassigned) == validated.n_drives - validated.n_correct


def test_mismatched_fleet_rejected(mid_report, small_fleet):
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        validate_categorization(small_fleet, mid_report.categorization)


def test_robustness_experiment_runs():
    from repro.experiments import robustness
    result = robustness.run(n_drives=1200, seeds=(3, 42))
    assert result.data["mean_accuracy"] >= 0.9
    assert len(result.data["accuracies"]) == 2
