"""Drift-drill acceptance tests: the whole loop, pinned byte-identical.

One module-scoped :class:`~repro.learn.drill.DriftDrill` pays the two
fleet simulations and two pipeline runs once; everything else asserts
against it — the core document is byte-identical across repeated
prepares, the served verdict stream matches offline scoring for shard
counts 1, 2 and 4 with a live mid-stream promotion, and the challenger
carries the champion's lineage.
"""

import pytest

from repro.core.serialize import canonical_json_dumps
from repro.errors import LearnError
from repro.learn.drill import DriftDrill, blocked_stream
from repro.serve.bundle import content_hash

#: Drill sizing for the test tier: ~4 failed drives, ~5 s to prepare.
DRILL_KWARGS = dict(seed=11, n_drives=240, block_size=256)


@pytest.fixture(scope="module")
def drill():
    return DriftDrill(**DRILL_KWARGS).prepare()


# -- blocked_stream ---------------------------------------------------------

def test_blocked_stream_orders_by_hour_then_serial(small_dataset):
    blocks = blocked_stream(small_dataset, 512)
    seen = [(hour, serial) for serials, hours, _matrix in blocks
            for serial, hour in zip(serials, hours)]
    assert seen == sorted(seen)
    assert all(len(serials) <= 512 for serials, _h, _m in blocks)


def test_blocked_stream_rejects_bad_block_size(small_dataset):
    with pytest.raises(LearnError):
        blocked_stream(small_dataset, 0)


# -- guard rails ------------------------------------------------------------

def test_drill_refuses_tiny_fleets():
    with pytest.raises(LearnError, match="100 drives"):
        DriftDrill(n_drives=50)


def test_core_payload_and_run_require_prepare():
    unprepared = DriftDrill(**DRILL_KWARGS)
    with pytest.raises(LearnError, match="prepare"):
        unprepared.core_payload()
    with pytest.raises(LearnError, match="prepare"):
        unprepared.run(1)


# -- the prepared loop ------------------------------------------------------

def test_drift_alarms_fired_on_the_injected_shift(drill):
    assert drill.alarms
    attributes = {alarm.attribute for alarm in drill.alarms}
    assert "TC" in attributes  # the temperature attribute must trip


def test_challenger_lineage_chains_to_the_champion(drill):
    champion_sha = content_hash(drill.champion.to_payload())
    assert drill.challenger.generation == drill.champion.generation + 1
    assert drill.challenger.parent_sha256 == champion_sha
    assert content_hash(drill.challenger.to_payload()) != champion_sha


def test_drill_decision_promotes(drill):
    assert drill.decision.promote is True
    assert drill.decision.reasons == ()


def test_core_payload_is_byte_identical_across_prepares(drill):
    again = DriftDrill(**DRILL_KWARGS).prepare()
    assert canonical_json_dumps(again.core_payload()) \
        == canonical_json_dumps(drill.core_payload())


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_served_stream_matches_offline_for_any_shard_count(drill, n_shards):
    result = drill.run(n_shards)
    assert result["matches_offline"] is True
    assert result["verdict_sha256"] == drill.core_payload()["verdict_sha256"]
    assert len(result["promotion_receipts"]) == n_shards


def test_run_survives_a_wal_and_still_matches(drill, tmp_path):
    result = drill.run(2, wal_dir=tmp_path / "wal")
    assert result["matches_offline"] is True
