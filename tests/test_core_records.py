"""Tests for failure-record feature construction."""

import numpy as np
import pytest

from repro.core.records import build_failure_records
from repro.data.dataset import DiskDataset
from repro.errors import DatasetError
from repro.smart.attributes import READ_WRITE_ATTRIBUTES
from repro.smart.profile import HealthProfile


def test_thirty_features_per_failed_drive(small_normalized):
    records = build_failure_records(small_normalized)
    n_failed = len(small_normalized.failed_profiles)
    assert records.features.shape == (n_failed, 30)
    assert len(records.feature_names) == 30
    assert records.n_records == n_failed


def test_feature_names_follow_rw_attributes(small_normalized):
    records = build_failure_records(small_normalized)
    expected = []
    for symbol in READ_WRITE_ATTRIBUTES:
        expected.extend([symbol, f"{symbol}_std24", f"{symbol}_rate"])
    assert records.feature_names == tuple(expected)


def test_value_features_equal_failure_record(small_normalized):
    records = build_failure_records(small_normalized)
    for row, serial in zip(records.features, records.serials):
        profile = small_normalized.get(serial)
        failure_record = profile.failure_record()
        for position, symbol in enumerate(READ_WRITE_ATTRIBUTES):
            column = small_normalized.column_index(symbol)
            assert row[position * 3] == failure_record[column]


def test_attribute_values_carry_all_twelve(small_normalized):
    records = build_failure_records(small_normalized)
    assert records.attribute_values.shape[1] == 12
    np.testing.assert_array_equal(
        records.attribute_column("TC"),
        records.attribute_values[:, 11],
    )


def test_feature_column_lookup(small_normalized):
    records = build_failure_records(small_normalized)
    np.testing.assert_array_equal(records.feature_column("RRER"),
                                  records.features[:, 0])
    with pytest.raises(DatasetError):
        records.feature_column("NOPE")
    with pytest.raises(DatasetError):
        records.attribute_column("NOPE")


def test_derived_stats_zero_for_frozen_attribute():
    matrix = np.full((48, 12), 0.25)
    profiles = [
        HealthProfile("f", np.arange(48), matrix, failed=True),
        HealthProfile("g", np.arange(48), matrix.copy(), failed=False),
    ]
    records = build_failure_records(DiskDataset(profiles))
    # All std/rate features are zero for constant series.
    std_and_rate = [i for i, n in enumerate(records.feature_names)
                    if "_" in n]
    np.testing.assert_allclose(records.features[0, std_and_rate], 0.0)


def test_dataset_without_failures_rejected():
    matrix = np.zeros((10, 12))
    good_only = DiskDataset([
        HealthProfile("g", np.arange(10), matrix, failed=False)
    ])
    with pytest.raises(DatasetError):
        build_failure_records(good_only)
