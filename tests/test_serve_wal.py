"""Tests for the per-shard write-ahead log: framing, recovery, pruning.

The durability contracts pinned here: record payloads round-trip
``float64`` exactly (``repr`` floats, not the canonical 12-digit JSON);
a torn tail in the *last* segment is truncated silently while damage
with later data present refuses to replay; recovery returns exactly
the suffix past the newest snapshot; rotation and pruning keep the
directory bounded to the newest snapshot plus its live suffix; and a
WAL written under a different model bundle refuses to open.
"""

import json

import numpy as np
import pytest

from repro.errors import WalError
from repro.serve.wal import (
    WAL_SCHEMA,
    ShardWal,
    WalRecovery,
    decode_block,
    encode_block,
)


def _payload(index):
    """A small distinguishable block payload."""
    return encode_block(f"block-{index}", [f"d{index}"], [index],
                        np.full((1, 2), float(index) + 0.5))


def _segments(directory):
    return sorted(directory.glob("segment-*.wal"))


def _snapshots(directory):
    return sorted(directory.glob("snapshot-*.json"))


# -- payload codec ----------------------------------------------------------

def test_encode_decode_round_trips_float64_exactly():
    # Values chosen to break any rounding: repr needs 17 digits here.
    matrix = np.array([[0.1 + 0.2, 1e-308, np.pi],
                       [-2.2250738585072014e-308, 1.0000000000000002, 0.0]])
    payload = encode_block("b1", ["s1", "s2"], [3, 4], matrix)
    # The WAL writes plain json.dumps — the round trip must survive it.
    wire = json.loads(json.dumps(payload))
    block_id, serials, hours, decoded = decode_block(wire)
    assert block_id == "b1"
    assert serials == ["s1", "s2"]
    assert hours == [3, 4]
    assert decoded.dtype == np.float64
    assert np.array_equal(decoded, matrix)


def test_decode_block_malformed_payload_is_wal_error():
    with pytest.raises(WalError, match="malformed WAL block"):
        decode_block({"serials": ["x"]})
    with pytest.raises(WalError, match="malformed WAL block"):
        decode_block({"block_id": "b", "serials": ["x"], "hours": [0],
                      "values": "not-a-matrix"})


def test_decode_block_empty_matrix_keeps_row_count():
    payload = encode_block("b", ["a", "b"], [1, 2], np.zeros((2, 0)))
    _, serials, _, matrix = decode_block(json.loads(json.dumps(payload)))
    assert matrix.shape == (2, 0)
    assert len(serials) == 2


# -- framing and recovery ---------------------------------------------------

def test_fresh_wal_recovers_empty(tmp_path):
    with ShardWal(tmp_path / "wal") as wal:
        recovery = wal.open()
    assert isinstance(recovery, WalRecovery)
    assert recovery.snapshot is None
    assert recovery.snapshot_seq == 0
    assert recovery.records == []
    assert recovery.replayed_blocks == 0
    meta = json.loads((tmp_path / "wal" / "wal.json").read_text())
    assert meta["schema"] == WAL_SCHEMA


def test_appended_records_replay_in_order(tmp_path):
    with ShardWal(tmp_path / "wal", fsync_every=1) as wal:
        wal.open()
        for index in range(5):
            assert wal.append(_payload(index)) == index + 1
        assert wal.last_seq == 5
    with ShardWal(tmp_path / "wal") as wal:
        recovery = wal.open()
    assert [record.seq for record in recovery.records] == [1, 2, 3, 4, 5]
    assert [record.payload["block_id"] for record in recovery.records] == [
        f"block-{index}" for index in range(5)]


def test_append_before_open_is_wal_error(tmp_path):
    wal = ShardWal(tmp_path / "wal")
    with pytest.raises(WalError, match="opened before appending"):
        wal.append(_payload(0))


def test_double_open_is_wal_error(tmp_path):
    with ShardWal(tmp_path / "wal") as wal:
        wal.open()
        with pytest.raises(WalError, match="already open"):
            wal.open()


def test_torn_tail_in_last_segment_is_truncated(tmp_path):
    with ShardWal(tmp_path / "wal", fsync_every=1) as wal:
        wal.open()
        for index in range(3):
            wal.append(_payload(index))
    segment = _segments(tmp_path / "wal")[-1]
    intact = segment.read_bytes()
    # Simulate a crash mid-write: chop the final record in half.
    segment.write_bytes(intact[:len(intact) - 10])
    with ShardWal(tmp_path / "wal") as wal:
        recovery = wal.open()
    assert [record.seq for record in recovery.records] == [1, 2]
    # The torn bytes are gone from disk, not just skipped.
    assert len(segment.read_bytes()) < len(intact) - 10
    # Appending continues from the surviving prefix.
    with ShardWal(tmp_path / "wal", fsync_every=1) as wal:
        wal.open()
        assert wal.append(_payload(9)) == 3


def test_corrupt_body_with_later_data_refuses_to_replay(tmp_path):
    with ShardWal(tmp_path / "wal", fsync_every=1) as wal:
        wal.open()
        for index in range(3):
            wal.append(_payload(index))
    segment = _segments(tmp_path / "wal")[-1]
    raw = bytearray(segment.read_bytes())
    # Flip one byte inside the FIRST record's body: the checksum breaks
    # but records 2 and 3 still follow, so this is corruption, not a
    # torn tail...
    first_body_at = raw.index(b"\n") + 2
    raw[first_body_at] ^= 0xFF
    segment.write_bytes(bytes(raw))
    wal = ShardWal(tmp_path / "wal")
    recovery = wal.open()
    # ...except in a single segment the scan can't see past the damage,
    # so everything after it is treated as torn and truncated.  Multi-
    # segment damage (below) is the hole case that must refuse.
    assert recovery.records == []
    wal.close()


def test_damage_in_non_last_segment_is_wal_error(tmp_path):
    # Tiny segments force one record per file.
    with ShardWal(tmp_path / "wal", segment_max_bytes=1,
                  fsync_every=1) as wal:
        wal.open()
        for index in range(3):
            wal.append(_payload(index))
    first, second, third = _segments(tmp_path / "wal")
    raw = bytearray(second.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    second.write_bytes(bytes(raw))
    with pytest.raises(WalError, match="refusing to replay past a hole"):
        ShardWal(tmp_path / "wal").open()


def test_sequence_gap_across_segments_is_wal_error(tmp_path):
    with ShardWal(tmp_path / "wal", segment_max_bytes=1,
                  fsync_every=1) as wal:
        wal.open()
        for index in range(3):
            wal.append(_payload(index))
    _segments(tmp_path / "wal")[1].unlink()  # drop record 2 entirely
    with pytest.raises(WalError, match="sequence jumped"):
        ShardWal(tmp_path / "wal").open()


# -- snapshots --------------------------------------------------------------

def test_recovery_replays_only_the_suffix_past_the_snapshot(tmp_path):
    with ShardWal(tmp_path / "wal", fsync_every=1) as wal:
        wal.open()
        for index in range(4):
            wal.append(_payload(index))
        wal.write_snapshot({"marker": "at-4"})
        for index in range(4, 7):
            wal.append(_payload(index))
    recovery = ShardWal(tmp_path / "wal").open()
    assert recovery.snapshot == {"marker": "at-4"}
    assert recovery.snapshot_seq == 4
    assert [record.seq for record in recovery.records] == [5, 6, 7]
    assert recovery.replayed_blocks == 3


def test_snapshot_state_round_trips_exact_floats(tmp_path):
    state = {"value": 0.1 + 0.2, "tiny": 5e-324}
    with ShardWal(tmp_path / "wal") as wal:
        wal.open()
        wal.append(_payload(0))
        wal.write_snapshot(state)
    recovery = ShardWal(tmp_path / "wal").open()
    assert recovery.snapshot["value"] == 0.1 + 0.2
    assert recovery.snapshot["tiny"] == 5e-324


def test_unreadable_newest_snapshot_falls_back_to_previous(tmp_path):
    with ShardWal(tmp_path / "wal", fsync_every=1) as wal:
        wal.open()
        wal.append(_payload(0))
        wal.write_snapshot({"marker": "old"})
        wal.append(_payload(1))
        newest = wal.write_snapshot({"marker": "new"})
        wal.append(_payload(2))
    # Recreate the pruned older snapshot, then damage the newest one.
    older = newest.with_name("snapshot-000000000001.json")
    older.write_text(json.dumps({
        "schema": WAL_SCHEMA, "seq": 1, "bundle_sha256": None,
        "state": {"marker": "old"}}) + "\n")
    newest.write_text("{torn")
    recovery = ShardWal(tmp_path / "wal").open()
    assert recovery.snapshot == {"marker": "old"}
    assert recovery.snapshot_seq == 1
    assert [record.seq for record in recovery.records] == [2, 3]


def test_snapshot_prunes_covered_segments_and_old_snapshots(tmp_path):
    with ShardWal(tmp_path / "wal", segment_max_bytes=1,
                  fsync_every=1) as wal:
        wal.open()
        for index in range(5):
            wal.append(_payload(index))
        wal.write_snapshot({"marker": "a"})
        wal.append(_payload(5))
        wal.write_snapshot({"marker": "b"})
        directory = wal.directory
        assert len(_snapshots(directory)) == 1  # only the newest survives
        # Segments wholly covered by the snapshot are gone; the live
        # one (holding record 6) survives.
        remaining = _segments(directory)
        assert len(remaining) < 6
        assert remaining[-1].name == "segment-000000000006.wal"
    recovery = ShardWal(directory).open()
    assert recovery.snapshot == {"marker": "b"}
    assert recovery.records == []


# -- rotation ---------------------------------------------------------------

def test_segments_rotate_at_size_threshold(tmp_path):
    with ShardWal(tmp_path / "wal", segment_max_bytes=1,
                  fsync_every=1) as wal:
        wal.open()
        for index in range(4):
            wal.append(_payload(index))
        names = [path.name for path in _segments(wal.directory)]
    assert names == [f"segment-{seq:012d}.wal" for seq in (1, 2, 3, 4)]


def test_reopen_appends_into_existing_stream(tmp_path):
    for start in (0, 3, 6):
        with ShardWal(tmp_path / "wal", fsync_every=1) as wal:
            wal.open()
            for index in range(start, start + 3):
                wal.append(_payload(index))
    recovery = ShardWal(tmp_path / "wal").open()
    assert [record.seq for record in recovery.records] == list(range(1, 10))


# -- identity and validation ------------------------------------------------

def test_bundle_mismatch_refuses_to_open(tmp_path):
    with ShardWal(tmp_path / "wal", bundle_sha256="a" * 64) as wal:
        wal.open()
        wal.append(_payload(0))
    with pytest.raises(WalError, match="refusing to replay"):
        ShardWal(tmp_path / "wal", bundle_sha256="b" * 64).open()
    # The original bundle still opens its own WAL.
    recovery = ShardWal(tmp_path / "wal", bundle_sha256="a" * 64).open()
    assert recovery.replayed_blocks == 1


def test_schema_mismatch_is_wal_error(tmp_path):
    directory = tmp_path / "wal"
    with ShardWal(directory) as wal:
        wal.open()
    meta = directory / "wal.json"
    meta.write_text(json.dumps({"schema": 99, "bundle_sha256": None}))
    with pytest.raises(WalError, match="schema 99"):
        ShardWal(directory).open()


def test_constructor_validation():
    with pytest.raises(WalError, match="segment_max_bytes"):
        ShardWal("x", segment_max_bytes=0)
    with pytest.raises(WalError, match="fsync_every"):
        ShardWal("x", fsync_every=0)
