"""Tests for report JSON serialization."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.serialize import (
    SCHEMA_VERSION,
    canonical_json_dumps,
    load_report_summary,
    report_to_dict,
    save_report_json,
)
from repro.errors import ReproError

GOLDEN_DIR = Path(__file__).parent / "data"


def test_round_trip(tmp_path, mid_report):
    path = tmp_path / "report.json"
    save_report_json(mid_report, path)
    summary = load_report_summary(path)
    assert summary["schema_version"] == SCHEMA_VERSION
    assert summary["n_failed_drives"] == mid_report.records.n_records
    assert len(summary["drive_types"]) == mid_report.records.n_records


def test_dict_contains_all_sections(mid_report):
    payload = report_to_dict(mid_report)
    assert set(payload["groups"]) == {"0", "1", "2"}
    assert set(payload["group_summaries"]) == {
        "LOGICAL", "BAD_SECTOR", "HEAD"
    }
    assert set(payload["predictions"]) == {"LOGICAL", "BAD_SECTOR", "HEAD"}
    # Signature entries are keyed by serial and carry the window/order.
    serial, signature = next(iter(payload["signatures"].items()))
    assert signature["window_hours"] >= 1
    assert signature["best_canonical_order"] in (1, 2, 3)
    assert serial in payload["drive_types"]


def test_payload_is_json_serializable(mid_report):
    text = json.dumps(report_to_dict(mid_report))
    assert "LOGICAL" in text


def test_group_fractions_sum_to_one(mid_report):
    payload = report_to_dict(mid_report)
    total = sum(group["population_fraction"]
                for group in payload["groups"].values())
    assert total == pytest.approx(1.0)


def test_load_rejects_bad_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ReproError, match="not valid JSON"):
        load_report_summary(path)


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"schema_version": 0}))
    with pytest.raises(ReproError, match="schema version"):
        load_report_summary(path)


def test_load_rejects_missing_sections(tmp_path):
    path = tmp_path / "partial.json"
    path.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
    with pytest.raises(ReproError, match="missing key"):
        load_report_summary(path)


def test_save_is_deterministic(tmp_path, mid_report):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    save_report_json(mid_report, first)
    save_report_json(mid_report, second)
    assert first.read_bytes() == second.read_bytes()


def test_telemetry_section_embedded_and_optional(tmp_path, mid_report):
    path = tmp_path / "report.json"
    telemetry = {"stage_timings": {"cluster": 0.25},
                 "metrics": {"drives_processed":
                             {"kind": "counter", "value": 40.0}}}
    save_report_json(mid_report, path, telemetry=telemetry)
    payload = load_report_summary(path)  # still validates with telemetry
    assert payload["telemetry"] == telemetry
    save_report_json(mid_report, path)
    assert "telemetry" not in json.loads(path.read_text())


def test_canonical_dumps_matches_golden_file():
    """Pin the canonical rendering so formatting drift is an explicit diff."""
    payload = {
        "zulu": np.float64(0.1) + np.float64(0.2),  # 0.30000000000000004
        "alpha": {"nested": [1, 2.5, np.int64(3)]},
        "flags": [True, False, None],
        "count": np.int32(433),
        "tuple_becomes_list": (1.0, 2.0),
        "array": np.array([0.5, 1.5]),
        "non_finite": [float("nan"), float("inf")],
        "text": "ST4000DM000",
    }
    golden = (GOLDEN_DIR / "golden_canonical.json").read_text()
    assert canonical_json_dumps(payload) == golden


def test_canonical_dumps_normalizes_float_noise():
    text = canonical_json_dumps({"x": 0.1 + 0.2})
    assert json.loads(text)["x"] == 0.3


def test_canonical_dumps_rejects_unserializable_values():
    with pytest.raises(ReproError, match="cannot serialize"):
        canonical_json_dumps({"bad": object()})


def test_load_rejects_unknown_types(tmp_path):
    path = tmp_path / "odd.json"
    path.write_text(json.dumps({
        "schema_version": SCHEMA_VERSION,
        "groups": {}, "signatures": {}, "group_summaries": {},
        "drive_types": {"d1": "QUANTUM_FOAM"},
    }))
    with pytest.raises(ReproError, match="unknown failure types"):
        load_report_summary(path)
