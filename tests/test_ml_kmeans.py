"""Tests for K-means and the elbow analysis."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.kmeans import KMeans, elbow_analysis
from repro.ml.metrics import cluster_purity


def blobs(rng, centers, n_per=50, spread=0.3):
    points = []
    labels = []
    for index, center in enumerate(centers):
        points.append(rng.normal(center, spread, size=(n_per, len(center))))
        labels.extend([index] * n_per)
    return np.vstack(points), np.array(labels)


def test_recovers_well_separated_blobs(rng):
    data, truth = blobs(rng, [(0, 0), (10, 10), (-10, 10)])
    model = KMeans(3, seed=0).fit(data)
    assert cluster_purity(model.labels_, truth) == 1.0


def test_predict_assigns_nearest_center(rng):
    data, _ = blobs(rng, [(0, 0), (10, 10)])
    model = KMeans(2, seed=0).fit(data)
    prediction = model.predict(np.array([[9.5, 10.2]]))
    center = model.centers_[prediction[0]]
    np.testing.assert_allclose(center, [10, 10], atol=0.5)


def test_inertia_decreases_with_k(rng):
    data, _ = blobs(rng, [(0, 0), (8, 8), (-8, 8), (0, -8)])
    inertias = []
    for k in (1, 2, 4):
        inertias.append(KMeans(k, seed=0).fit(data).inertia_)
    assert inertias[0] > inertias[1] > inertias[2]


def test_average_within_cluster_distance(rng):
    data, _ = blobs(rng, [(0, 0), (10, 10)], spread=0.2)
    model = KMeans(2, seed=0).fit(data)
    assert model.average_within_cluster_distance(data) < 1.0


def test_single_cluster_center_is_mean(rng):
    data = rng.normal(size=(40, 3))
    model = KMeans(1, seed=0).fit(data)
    np.testing.assert_allclose(model.centers_[0], data.mean(axis=0),
                               atol=1e-9)


def test_more_clusters_than_samples_rejected():
    with pytest.raises(ModelError):
        KMeans(5).fit(np.zeros((3, 2)))


def test_use_before_fit_raises():
    with pytest.raises(ModelError):
        KMeans(2).predict(np.zeros((2, 2)))


def test_deterministic_given_seed(rng):
    data, _ = blobs(rng, [(0, 0), (5, 5)])
    a = KMeans(2, seed=3).fit(data)
    b = KMeans(2, seed=3).fit(data)
    np.testing.assert_array_equal(a.labels_, b.labels_)


def test_duplicate_points_survive(rng):
    data = np.ones((10, 2))
    model = KMeans(2, seed=0).fit(data)
    assert model.inertia_ == pytest.approx(0.0)


def test_elbow_detects_true_cluster_count(rng):
    data, _ = blobs(rng, [(0, 0), (12, 12), (-12, 12)], n_per=60)
    analysis = elbow_analysis(data, max_clusters=8, seed=0)
    assert analysis.best_k == 3
    # The curve is non-increasing overall.
    curve = np.array(analysis.average_distances)
    assert curve[0] > curve[-1]


def test_elbow_requires_reasonable_range(rng):
    with pytest.raises(ModelError):
        elbow_analysis(rng.normal(size=(30, 2)), max_clusters=2)
