"""Tests for correlation measures."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.stats.correlation import pearson, pearson_matrix, spearman


def test_perfect_positive_and_negative():
    t = np.arange(10.0)
    assert pearson(t, 2 * t + 1) == pytest.approx(1.0)
    assert pearson(t, -t) == pytest.approx(-1.0)


def test_constant_series_yield_zero():
    t = np.arange(10.0)
    assert pearson(np.full(10, 3.0), t) == 0.0
    assert spearman(t, np.full(10, 3.0)) == 0.0


def test_spearman_captures_monotone_nonlinear():
    t = np.arange(1.0, 20.0)
    y = np.exp(t)  # monotone but very nonlinear
    assert spearman(t, y) == pytest.approx(1.0)
    assert pearson(t, y) < 1.0


def test_independent_noise_weakly_correlated(rng):
    a = rng.normal(size=2000)
    b = rng.normal(size=2000)
    assert abs(pearson(a, b)) < 0.1


def test_pearson_matrix_columnwise():
    reference = np.arange(20.0)
    matrix = np.column_stack([reference, -reference, np.ones(20)])
    correlations = pearson_matrix(matrix, reference)
    np.testing.assert_allclose(correlations, [1.0, -1.0, 0.0], atol=1e-12)


def test_length_mismatch_rejected():
    with pytest.raises(ReproError):
        pearson(np.arange(3.0), np.arange(4.0))
    with pytest.raises(ReproError):
        pearson_matrix(np.zeros((5, 2)), np.zeros(4))


def test_too_short_series_rejected():
    with pytest.raises(ReproError):
        pearson(np.array([1.0]), np.array([2.0]))
