"""Tests for FleetConfig and ModeMixture validation."""

import pytest

from repro.errors import SimulationError
from repro.sim.config import (
    PAPER_FAILURE_RATE,
    PAPER_FLEET_SIZE,
    FleetConfig,
    ModeMixture,
)


def test_default_mixture_is_papers_split():
    mixture = ModeMixture()
    assert mixture.as_tuple() == (0.596, 0.076, 0.328)


def test_mixture_must_sum_to_one():
    with pytest.raises(SimulationError):
        ModeMixture(logical=0.5, bad_sector=0.1, head=0.1)


def test_mixture_rejects_negative_fraction():
    with pytest.raises(SimulationError):
        ModeMixture(logical=1.2, bad_sector=-0.4, head=0.2)


def test_paper_scale_constants():
    assert PAPER_FLEET_SIZE == 23395
    assert PAPER_FAILURE_RATE == pytest.approx(433 / 23395)
    assert FleetConfig.paper_scale().n_drives == PAPER_FLEET_SIZE


def test_n_failed_matches_rate():
    config = FleetConfig(n_drives=1000)
    assert config.n_failed == round(1000 * PAPER_FAILURE_RATE)
    assert config.n_failed + config.n_good == 1000


def test_n_failed_at_least_one():
    config = FleetConfig(n_drives=10)
    assert config.n_failed == 1


@pytest.mark.parametrize("kwargs", [
    {"n_drives": 0},
    {"failure_rate": 0.0},
    {"failure_rate": 1.0},
    {"period_hours": 24},
    {"failed_observation_hours": 0},
    {"spare_sectors": 0},
    {"logical_window": (0, 5)},
    {"head_window": (30, 10)},
])
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(SimulationError):
        FleetConfig(**kwargs)


def test_config_is_hashable_and_frozen():
    config = FleetConfig()
    with pytest.raises(AttributeError):
        config.n_drives = 5
