"""Tests for the silhouette score."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.metrics import silhouette_score


def blobs(rng, centers, n_per=30, spread=0.2):
    points, labels = [], []
    for index, center in enumerate(centers):
        points.append(rng.normal(center, spread, size=(n_per, len(center))))
        labels.extend([index] * n_per)
    return np.vstack(points), np.array(labels)


def test_well_separated_clusters_score_high(rng):
    data, labels = blobs(rng, [(0, 0), (20, 20)])
    assert silhouette_score(data, labels) > 0.9


def test_overlapping_clusters_score_low(rng):
    data, labels = blobs(rng, [(0, 0), (0.1, 0.1)], spread=1.0)
    assert silhouette_score(data, labels) < 0.2


def test_wrong_assignment_scores_below_right_one(rng):
    data, truth = blobs(rng, [(0, 0), (10, 10)])
    wrong = truth.copy()
    wrong[:10] = 1 - wrong[:10]  # misassign ten points
    assert silhouette_score(data, wrong) < silhouette_score(data, truth)


def test_true_k_scores_best(rng):
    from repro.ml.kmeans import KMeans
    data, _ = blobs(rng, [(0, 0), (12, 0), (0, 12)])
    scores = {}
    for k in (2, 3, 4, 5):
        labels = KMeans(k, seed=0).fit(data).labels_
        scores[k] = silhouette_score(data, labels)
    assert max(scores, key=lambda k: scores[k]) == 3


def test_small_distinct_cluster_still_counts(rng):
    """A 7% cluster shifts the silhouette even though the population-mean
    distance barely notices it — the reason elbow selection uses it."""
    data_big, labels_big = blobs(rng, [(0, 0), (30, 30)], n_per=100)
    small = rng.normal((0, 30), 0.2, size=(15, 2))
    data = np.vstack([data_big, small])
    merged = np.concatenate([labels_big, np.ones(15, dtype=int)])
    split = np.concatenate([labels_big, np.full(15, 2)])
    assert silhouette_score(data, split) > silhouette_score(data, merged)


def test_singleton_cluster_scores_zero():
    data = np.array([[0.0, 0.0], [10.0, 10.0], [10.1, 10.0]])
    labels = np.array([0, 1, 1])
    score = silhouette_score(data, labels)
    # The singleton contributes 0; the pair contributes ~1.
    assert 0.5 < score < 0.75


def test_validation():
    with pytest.raises(ModelError):
        silhouette_score(np.zeros((3, 2)), np.zeros(3))  # one cluster
    with pytest.raises(ModelError):
        silhouette_score(np.zeros((3, 2)), np.zeros(4))
