"""Tests for the observation-window policy."""

import numpy as np

from repro.data.windows import truncate_to_policy
from repro.smart.profile import HealthProfile


def make_profile(n, failed):
    return HealthProfile(
        serial="x", hours=np.arange(n),
        matrix=np.arange(n * 12, dtype=np.float64).reshape(n, 12),
        failed=failed,
    )


def test_failed_profiles_keep_480_final_samples():
    profile = make_profile(700, failed=True)
    truncated = truncate_to_policy(profile)
    assert len(truncated) == 480
    np.testing.assert_array_equal(truncated.failure_record(),
                                  profile.failure_record())


def test_good_profiles_keep_168_final_samples():
    profile = make_profile(700, failed=False)
    assert len(truncate_to_policy(profile)) == 168


def test_short_profiles_untouched():
    profile = make_profile(100, failed=True)
    assert truncate_to_policy(profile) is profile


def test_custom_limits():
    profile = make_profile(100, failed=True)
    truncated = truncate_to_policy(profile, failed_hours=10)
    assert len(truncated) == 10
