"""Tests for the Table I attribute registry."""

import pytest

from repro.errors import UnknownAttributeError
from repro.smart.attributes import (
    ATTRIBUTE_REGISTRY,
    CHARACTERIZATION_ATTRIBUTES,
    ENVIRONMENTAL_ATTRIBUTES,
    READ_WRITE_ATTRIBUTES,
    AttributeKind,
    ValueForm,
    attribute_index,
    get_attribute,
)


def test_registry_has_twelve_attributes():
    assert len(ATTRIBUTE_REGISTRY) == 12
    assert len(CHARACTERIZATION_ATTRIBUTES) == 12


def test_ten_read_write_and_two_environmental():
    assert len(READ_WRITE_ATTRIBUTES) == 10
    assert ENVIRONMENTAL_ATTRIBUTES == ("POH", "TC")


def test_first_ten_are_read_write_last_two_environmental():
    kinds = [spec.kind for spec in ATTRIBUTE_REGISTRY]
    assert kinds[:10] == [AttributeKind.READ_WRITE] * 10
    assert kinds[10:] == [AttributeKind.ENVIRONMENTAL] * 2


def test_table_one_symbols_in_published_order():
    assert CHARACTERIZATION_ATTRIBUTES == (
        "RRER", "RSC", "SER", "RUE", "HFW", "HER", "CPSC", "SUT",
        "R-RSC", "R-CPSC", "POH", "TC",
    )


def test_raw_attributes_pair_with_health_counterparts():
    assert get_attribute("R-RSC").smart_id == get_attribute("RSC").smart_id
    assert get_attribute("R-CPSC").smart_id == get_attribute("CPSC").smart_id
    assert get_attribute("R-RSC").form is ValueForm.RAW
    assert get_attribute("RSC").form is ValueForm.HEALTH


def test_symbols_are_unique():
    symbols = [spec.symbol for spec in ATTRIBUTE_REGISTRY]
    assert len(symbols) == len(set(symbols))


def test_attribute_index_matches_registry_order():
    for index, spec in enumerate(ATTRIBUTE_REGISTRY):
        assert attribute_index(spec.symbol) == index


def test_get_attribute_unknown_symbol_raises():
    with pytest.raises(UnknownAttributeError):
        get_attribute("BOGUS")
    with pytest.raises(UnknownAttributeError):
        attribute_index("BOGUS")


def test_raw_ranges_are_sane():
    for spec in ATTRIBUTE_REGISTRY:
        assert spec.raw_min < spec.raw_max


def test_is_read_write_property():
    assert get_attribute("RRER").is_read_write
    assert not get_attribute("TC").is_read_write
    assert get_attribute("TC").is_environmental
