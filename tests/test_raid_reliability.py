"""Tests for fleet-level RAID reliability analysis."""

import pytest

from repro.errors import ReproError
from repro.raid.array import DriveState, RaidLevel
from repro.raid.reliability import (
    RaidReliabilityAnalysis,
    drive_states_from_fleet,
)


def synthetic_drives(n_good=500, n_failing=20, n_latent=100, lead=48.0):
    drives = [DriveState(serial=f"g{i}") for i in range(n_good)]
    drives += [DriveState(serial=f"l{i}", has_latent_errors=True)
               for i in range(n_latent)]
    drives += [
        DriveState(serial=f"f{i}", failure_hour=100 + 40 * i,
                   warning_lead_hours=lead)
        for i in range(n_failing)
    ]
    return drives


def test_raid6_never_worse_than_raid5():
    analysis = RaidReliabilityAnalysis(synthetic_drives(), n_groups=3000,
                                       seed=1)
    raid5 = analysis.evaluate(RaidLevel.RAID5)
    raid6 = analysis.evaluate(RaidLevel.RAID6)
    assert raid6.loss_rate <= raid5.loss_rate
    assert raid5.loss_rate > 0  # failures + latent drives guarantee losses


def test_proactive_reduces_losses():
    analysis = RaidReliabilityAnalysis(synthetic_drives(), n_groups=3000,
                                       seed=1)
    reactive = analysis.evaluate(RaidLevel.RAID5, proactive=False)
    proactive = analysis.evaluate(RaidLevel.RAID5, proactive=True)
    assert proactive.n_losses < reactive.n_losses
    assert proactive.n_proactive_migrations > 0


def test_unwarned_failures_unprotected():
    drives = synthetic_drives(lead=None)
    analysis = RaidReliabilityAnalysis(drives, n_groups=2000, seed=2)
    reactive = analysis.evaluate(RaidLevel.RAID5, proactive=False)
    proactive = analysis.evaluate(RaidLevel.RAID5, proactive=True)
    assert proactive.n_losses == reactive.n_losses
    assert proactive.n_proactive_migrations == 0


def test_deterministic_given_seed():
    drives = synthetic_drives()
    a = RaidReliabilityAnalysis(drives, n_groups=1000, seed=3).evaluate(
        RaidLevel.RAID5
    )
    b = RaidReliabilityAnalysis(drives, n_groups=1000, seed=3).evaluate(
        RaidLevel.RAID5
    )
    assert a.n_losses == b.n_losses


def test_loss_rate_property():
    analysis = RaidReliabilityAnalysis(synthetic_drives(), n_groups=500,
                                       seed=4)
    result = analysis.evaluate(RaidLevel.RAID5)
    assert result.loss_rate == pytest.approx(result.n_losses / 500)
    assert (result.n_double_failure_losses + result.n_latent_error_losses
            == result.n_losses)


def test_validation():
    drives = synthetic_drives(n_good=5, n_failing=0, n_latent=0)
    with pytest.raises(ReproError):
        RaidReliabilityAnalysis(drives, group_size=2)
    with pytest.raises(ReproError):
        RaidReliabilityAnalysis(drives, group_size=10)
    with pytest.raises(ReproError):
        RaidReliabilityAnalysis(drives, group_size=4, n_groups=0)


def test_drive_states_from_fleet(small_fleet):
    states = drive_states_from_fleet(small_fleet)
    assert len(states) == len(small_fleet.dataset)
    failing = [s for s in states if s.fails]
    assert len(failing) == len(small_fleet.dataset.failed_profiles)
    # Bad-sector failures always carry latent errors at the end.
    from repro.sim.failure_modes import FailureMode
    bad_serials = set(small_fleet.failed_serials(FailureMode.BAD_SECTOR))
    for state in states:
        if state.serial in bad_serials:
            assert state.has_latent_errors


def test_drive_states_carry_warning_leads(small_fleet):
    serial = small_fleet.dataset.failed_profiles[0].serial
    states = drive_states_from_fleet(small_fleet,
                                     warning_leads={serial: 72.0})
    state = next(s for s in states if s.serial == serial)
    assert state.warning_lead_hours == 72.0
