"""Tests for the CLI's robustness flags (``--lenient``,
``--inject-faults``, ``--retries`` / ``--chunk-timeout``)."""

from __future__ import annotations

import json

from repro.cli import main
from repro.data.loader import save_csv

CHAOS = "drop=0.05,nan=0.02,outlier=0.01,duplicate=0.02,disorder=0.1,seed=9"


def test_resilience_flags_are_byte_identical_on_clean_data(tmp_path,
                                                           small_dataset,
                                                           capsys):
    """The acceptance scenario: quarantine + retries enabled on clean
    data must not change one byte of the report, and must not emit a
    data_quality section."""
    csv_path = tmp_path / "fleet.csv"
    save_csv(small_dataset, csv_path)
    plain_json = tmp_path / "plain.json"
    guarded_json = tmp_path / "guarded.json"
    assert main(["--csv", str(csv_path), "--no-prediction", "--no-cache",
                 "--json", str(plain_json)]) == 0
    assert main(["--csv", str(csv_path), "--no-prediction", "--no-cache",
                 "--lenient", "--retries", "2", "--jobs", "2",
                 "--json", str(guarded_json)]) == 0
    assert plain_json.read_bytes() == guarded_json.read_bytes()
    assert "data_quality" not in json.loads(guarded_json.read_text())


def test_chaos_runs_are_deterministic(tmp_path, capsys):
    """Equal --inject-faults specs produce byte-identical reports."""
    first_json = tmp_path / "first.json"
    second_json = tmp_path / "second.json"
    args = ["--simulate", "1200", "--seed", "7", "--no-prediction",
            "--no-cache", "--inject-faults", CHAOS]
    assert main([*args, "--json", str(first_json)]) == 0
    first_out = capsys.readouterr().out
    assert main([*args, "--json", str(second_json)]) == 0
    assert first_json.read_bytes() == second_json.read_bytes()
    assert "data quality:" in first_out

    payload = json.loads(first_json.read_text())
    quality = payload["data_quality"]
    injection = quality["fault_injection"]
    assert injection["seed"] == 9
    assert injection["total_faults"] > 0
    assert set(injection["counts"]) == {"drop", "nan", "outlier",
                                        "duplicate", "disorder"}
    # The corruption was actually repaired/quarantined, not analyzed.
    assert quality["n_input_drives"] == 1200
    assert quality["samples_quarantined"]


def test_chaos_without_json_still_prints_quality_line(capsys):
    assert main(["--simulate", "1200", "--seed", "7", "--no-prediction",
                 "--no-cache", "--inject-faults", "drop=0.05,seed=3"]) == 0
    assert "data quality:" in capsys.readouterr().out


def test_bad_chaos_spec_exits_2(capsys):
    assert main(["--simulate", "1200", "--no-cache",
                 "--inject-faults", "gremlins=1"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "unknown fault class" in err


def test_lenient_csv_quarantines_and_reports(tmp_path, small_dataset,
                                             capsys):
    csv_path = tmp_path / "dirty.csv"
    save_csv(small_dataset, csv_path)
    with csv_path.open("a") as handle:
        handle.write("mangled,row,without,enough,fields\n")
    json_path = tmp_path / "report.json"
    assert main(["--csv", str(csv_path), "--no-prediction", "--no-cache",
                 "--lenient", "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "data quality:" in out
    quality = json.loads(json_path.read_text())["data_quality"]
    assert quality["samples_quarantined"] == {"MALFORMED_ROW": 1}


def test_strict_csv_still_fails_fast(tmp_path, small_dataset, capsys):
    """Without --lenient the historical contract holds: corruption is
    an error, not a repair."""
    csv_path = tmp_path / "dirty.csv"
    save_csv(small_dataset, csv_path)
    with csv_path.open("a") as handle:
        handle.write("mangled,row,without,enough,fields\n")
    assert main(["--csv", str(csv_path), "--no-cache"]) == 2
    assert "error:" in capsys.readouterr().err
