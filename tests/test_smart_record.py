"""Tests for SmartRecord."""

import numpy as np
import pytest

from repro.errors import DatasetError, UnknownAttributeError
from repro.smart.attributes import CHARACTERIZATION_ATTRIBUTES
from repro.smart.record import SmartRecord


def _values():
    return tuple(float(i) for i in range(12))


def test_record_round_trip_through_dict():
    record = SmartRecord("drive-1", 7, _values())
    rebuilt = SmartRecord.from_mapping("drive-1", 7, record.as_dict())
    assert rebuilt == record


def test_getitem_by_symbol():
    record = SmartRecord("drive-1", 0, _values())
    assert record["RRER"] == 0.0
    assert record["TC"] == 11.0


def test_getitem_unknown_symbol_raises():
    record = SmartRecord("drive-1", 0, _values())
    with pytest.raises(UnknownAttributeError):
        record["NOPE"]


def test_as_array_matches_values():
    record = SmartRecord("drive-1", 0, _values())
    np.testing.assert_array_equal(record.as_array(), np.arange(12.0))


def test_mismatched_value_count_rejected():
    with pytest.raises(DatasetError):
        SmartRecord("drive-1", 0, (1.0, 2.0))


def test_from_mapping_requires_every_attribute():
    partial = {s: 1.0 for s in CHARACTERIZATION_ATTRIBUTES[:-1]}
    with pytest.raises(DatasetError, match="missing"):
        SmartRecord.from_mapping("drive-1", 0, partial)


def test_from_mapping_rejects_unknown_keys():
    full = {s: 1.0 for s in CHARACTERIZATION_ATTRIBUTES}
    full["EXTRA"] = 2.0
    with pytest.raises(UnknownAttributeError):
        SmartRecord.from_mapping("drive-1", 0, full)


def test_from_mapping_orders_values_by_table_one():
    values = {s: float(i * 10) for i, s in enumerate(CHARACTERIZATION_ATTRIBUTES)}
    record = SmartRecord.from_mapping("d", 3, values)
    assert record.values == tuple(float(i * 10) for i in range(12))
