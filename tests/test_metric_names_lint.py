"""Regression gate: every emitted metric name is snake_case and listed
in the ``docs/observability.md`` reference table.

Runs ``scripts/check_metric_names.py`` the way CI would, and unit-tests
the collector so a silently broken lint cannot pass the gate.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_metric_names.py"

sys.path.insert(0, str(SCRIPT.parent))
from check_metric_names import (  # noqa: E402
    documented_names,
    find_metric_names,
    violations,
)


def test_every_emitted_metric_name_is_documented():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"metric name violations:\n{result.stderr}"
    )


def test_finder_sees_literal_names_only(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "def f(registry, obs, name):\n"
        "    registry.counter('samples_scored').inc()\n"
        "    registry.histogram('verdict_stage', labels={'a': 'b'})\n"
        "    obs.observe('push_latency', 0.1)\n"
        "    obs.count(name)\n"            # dynamic: skipped
        "    registry.gauge(name)\n"       # dynamic: skipped
        "    unrelated.method('not_a_metric')\n"
    )
    assert find_metric_names(source) == [
        (2, "samples_scored"),
        (3, "verdict_stage"),
        (4, "push_latency"),
    ]


def test_documented_names_reads_backticked_identifiers(tmp_path):
    doc = tmp_path / "obs.md"
    doc.write_text("| `samples_scored` | counter |\nAnd `push_latency`.\n")
    names = documented_names(doc)
    assert names == frozenset({"samples_scored", "push_latency"})
    assert documented_names(tmp_path / "absent.md") == frozenset()


def test_violations_flag_bad_case_and_undocumented(tmp_path):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "mod.py").write_text(
        "def f(registry):\n"
        "    registry.counter('BadName').inc()\n"
        "    registry.counter('undocumented_thing').inc()\n"
        "    registry.counter('fine_metric').inc()\n"
    )
    doc = tmp_path / "obs.md"
    doc.write_text("`fine_metric`\n")
    problems = violations(src, doc)
    assert len(problems) == 2
    assert "'BadName' (not snake_case)" in problems[0]
    assert "'undocumented_thing' (not documented" in problems[1]


def test_repo_lint_is_exercising_real_files():
    problems = violations()
    assert problems == []
    names = {name for path in (REPO_ROOT / "src" / "repro").rglob("*.py")
             for _line, name in find_metric_names(path)}
    assert "samples_scored" in names
    assert "telemetry_requests" in names
