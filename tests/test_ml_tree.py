"""Tests for the CART regression tree."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.tree import RegressionTree


def step_data(rng, n=400):
    """Piecewise-constant target: ideal for a depth-2 tree."""
    x = rng.uniform(0, 1, size=(n, 2))
    y = np.where(x[:, 0] < 0.5,
                 np.where(x[:, 1] < 0.5, 0.0, 1.0),
                 np.where(x[:, 1] < 0.5, 2.0, 3.0))
    return x, y


def test_learns_piecewise_constant_function(rng):
    x, y = step_data(rng)
    tree = RegressionTree(max_depth=3, min_samples_leaf=5).fit(x, y)
    predictions = tree.predict(x)
    assert np.mean((predictions - y) ** 2) < 1e-6


def test_generalizes_to_unseen_points(rng):
    x, y = step_data(rng)
    tree = RegressionTree(max_depth=3, min_samples_leaf=5).fit(x, y)
    assert tree.predict(np.array([[0.1, 0.9]]))[0] == pytest.approx(1.0)
    assert tree.predict(np.array([[0.9, 0.9]]))[0] == pytest.approx(3.0)


def test_max_depth_limits_growth(rng):
    x, y = step_data(rng)
    tree = RegressionTree(max_depth=1, min_samples_leaf=5).fit(x, y)
    assert tree.depth() <= 1
    assert tree.n_leaves() <= 2


def test_min_samples_leaf_respected(rng):
    x = rng.uniform(size=(50, 1))
    y = rng.normal(size=50)
    tree = RegressionTree(max_depth=10, min_samples_leaf=20).fit(x, y)

    def check(node):
        if node.is_leaf:
            assert node.n_samples >= 20
        else:
            check(node.left)
            check(node.right)

    check(tree.root_)


def test_constant_target_yields_single_leaf(rng):
    x = rng.uniform(size=(100, 3))
    y = np.full(100, 5.0)
    tree = RegressionTree().fit(x, y)
    assert tree.n_leaves() == 1
    assert tree.predict(x)[0] == 5.0


def test_feature_importances_identify_relevant_feature(rng):
    x = rng.uniform(size=(500, 3))
    y = np.where(x[:, 1] < 0.5, 0.0, 1.0)  # only feature 1 matters
    tree = RegressionTree(max_depth=4).fit(x, y)
    importances = tree.feature_importances()
    assert importances[1] > 0.9
    assert importances.sum() == pytest.approx(1.0)


def test_export_text_names_features(rng):
    x, y = step_data(rng)
    tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(
        x, y, feature_names=("alpha", "beta")
    )
    text = tree.export_text()
    assert "alpha" in text or "beta" in text
    assert "%" in text


def test_predict_validates_feature_count(rng):
    x, y = step_data(rng)
    tree = RegressionTree(max_depth=2).fit(x, y)
    with pytest.raises(ModelError):
        tree.predict(np.zeros((1, 5)))


def test_use_before_fit_raises():
    with pytest.raises(ModelError):
        RegressionTree().predict(np.zeros((1, 2)))
    with pytest.raises(ModelError):
        RegressionTree().export_text()


def test_fit_validates_shapes(rng):
    with pytest.raises(ModelError):
        RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))
    with pytest.raises(ModelError):
        RegressionTree().fit(np.zeros((5, 2)), np.zeros(5),
                             feature_names=("only-one",))


def test_predictions_within_target_range(rng):
    x = rng.uniform(size=(300, 2))
    y = rng.uniform(-1.0, 1.0, size=300)
    tree = RegressionTree(max_depth=6).fit(x, y)
    predictions = tree.predict(rng.uniform(size=(100, 2)))
    assert predictions.min() >= y.min()
    assert predictions.max() <= y.max()
