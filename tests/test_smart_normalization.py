"""Tests for vendor curves and the Eq. (1) min-max normalizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import NormalizationError
from repro.smart.attributes import get_attribute
from repro.smart.normalization import (
    MinMaxNormalizer,
    VendorCurve,
    vendor_curve_for,
)


class TestVendorCurve:
    def test_health_at_zero_raw_is_best(self):
        curve = VendorCurve(best=100.0, worst=1.0, raw_scale=500.0)
        assert curve.health_value(0.0) == pytest.approx(100.0)

    def test_health_saturates_at_worst(self):
        curve = VendorCurve(best=100.0, worst=1.0, raw_scale=500.0)
        assert curve.health_value(500.0) == pytest.approx(1.0)
        assert curve.health_value(5000.0) == pytest.approx(1.0)

    def test_health_is_monotone_decreasing(self):
        curve = VendorCurve(raw_scale=100.0, shape=1.5)
        raws = np.linspace(0.0, 150.0, 40)
        healths = curve.health_value(raws)
        assert np.all(np.diff(healths) <= 0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(NormalizationError):
            VendorCurve(raw_scale=0.0)
        with pytest.raises(NormalizationError):
            VendorCurve(shape=-1.0)
        with pytest.raises(NormalizationError):
            VendorCurve(best=1.0, worst=10.0)

    def test_vendor_curve_for_registry_attributes(self):
        for symbol in ("RRER", "R-RSC", "TC"):
            curve = vendor_curve_for(get_attribute(symbol))
            assert curve.health_value(0.0) > curve.health_value(1.0e12)


class TestMinMaxNormalizer:
    def test_eq1_maps_extremes_to_unit_interval(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        scaled = MinMaxNormalizer().fit_transform(data)
        np.testing.assert_allclose(scaled[:, 0], [-1.0, 0.0, 1.0])
        np.testing.assert_allclose(scaled[:, 1], [-1.0, 0.0, 1.0])

    def test_constant_column_maps_to_zero_and_is_reported(self):
        data = np.array([[1.0, 7.0], [2.0, 7.0]])
        normalizer = MinMaxNormalizer().fit(data)
        scaled = normalizer.transform(data)
        np.testing.assert_allclose(scaled[:, 1], [0.0, 0.0])
        np.testing.assert_array_equal(normalizer.constant_columns,
                                      [False, True])

    def test_transform_clips_out_of_range_values(self):
        normalizer = MinMaxNormalizer().fit(np.array([[0.0], [10.0]]))
        scaled = normalizer.transform(np.array([[-5.0], [15.0]]))
        np.testing.assert_allclose(scaled.ravel(), [-1.0, 1.0])

    def test_use_before_fit_raises(self):
        with pytest.raises(NormalizationError):
            MinMaxNormalizer().transform(np.zeros((2, 2)))

    def test_fit_rejects_non_finite(self):
        with pytest.raises(NormalizationError):
            MinMaxNormalizer().fit(np.array([[np.nan, 1.0]]))

    def test_fit_rejects_empty(self):
        with pytest.raises(NormalizationError):
            MinMaxNormalizer().fit(np.empty((0, 3)))

    def test_column_count_mismatch_raises(self):
        normalizer = MinMaxNormalizer().fit(np.zeros((2, 3)))
        with pytest.raises(NormalizationError):
            normalizer.transform(np.zeros((2, 2)))

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.float64, (7, 4),
                      elements=st.floats(-1e6, 1e6, allow_nan=False)))
    def test_output_always_within_unit_interval(self, data):
        scaled = MinMaxNormalizer().fit_transform(data)
        assert np.all(scaled >= -1.0) and np.all(scaled <= 1.0)

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.float64, (6, 3),
                      elements=st.floats(-1e6, 1e6, allow_nan=False)))
    def test_inverse_transform_round_trips(self, data):
        normalizer = MinMaxNormalizer().fit(data)
        restored = normalizer.inverse_transform(normalizer.transform(data))
        # Constant columns are restored to their single fitted value.
        np.testing.assert_allclose(restored, data, atol=1e-6, rtol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.float64, (5, 2),
                      elements=st.floats(-100, 100, allow_nan=False)))
    def test_scaling_is_weakly_monotone(self, data):
        scaled = MinMaxNormalizer().fit_transform(data)
        for column in range(data.shape[1]):
            original = data[:, column]
            rescaled = scaled[:, column]
            for i in range(original.shape[0]):
                for j in range(original.shape[0]):
                    if original[i] < original[j]:
                        assert rescaled[i] <= rescaled[j]
