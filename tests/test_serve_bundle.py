"""Tests for the versioned model bundle (save/load round trip + gates)."""

import json

import numpy as np
import pytest

from repro.core.taxonomy import FailureType
from repro.errors import BundleError, ReproError, ServeError
from repro.serve.bundle import (
    BUNDLE_SCHEMA_VERSION,
    ModelBundle,
    build_bundle,
    content_hash,
    load_bundle,
    save_bundle,
)


@pytest.fixture(scope="module")
def bundle(mid_report):
    return build_bundle(mid_report, seed=7)


@pytest.fixture(scope="module")
def bundle_path(bundle, tmp_path_factory):
    path = tmp_path_factory.mktemp("bundle") / "fleet.bundle.json"
    save_bundle(bundle, path)
    return path


def test_bundle_captures_every_model_piece(bundle, mid_report):
    assert bundle.attributes == tuple(mid_report.dataset.attributes)
    assert set(bundle.trees) == set(FailureType)
    assert set(bundle.groups) == set(FailureType)
    for artifact in bundle.groups.values():
        assert len(artifact.centroid) > 0
        assert artifact.prediction_window >= 1
    assert bundle.trained_on["n_failed"] == \
        len(mid_report.dataset.failed_profiles)


def test_round_trip_is_exact(bundle, bundle_path, rng):
    loaded = load_bundle(bundle_path)
    assert loaded.to_payload() == bundle.to_payload()
    assert loaded.minima == bundle.minima
    assert loaded.maxima == bundle.maxima
    # the restored trees route arbitrary points identically, bit for bit
    matrix = rng.uniform(0.0, 1.0, size=(64, bundle.n_attributes))
    for failure_type in FailureType:
        original = bundle.trees[failure_type].predict(matrix)
        restored = loaded.trees[failure_type].predict(matrix)
        np.testing.assert_array_equal(original, restored)


def test_save_is_deterministic(bundle, tmp_path):
    first = save_bundle(bundle, tmp_path / "a.json").read_text()
    second = save_bundle(bundle, tmp_path / "b.json").read_text()
    assert first == second


def test_stored_hash_matches_content(bundle_path):
    payload = json.loads(bundle_path.read_text())
    assert payload["content_sha256"] == content_hash(payload)
    assert payload["schema_version"] == BUNDLE_SCHEMA_VERSION


def test_truncated_bundle_refused(bundle_path, tmp_path):
    stub = tmp_path / "truncated.json"
    stub.write_text(bundle_path.read_text()[:200])
    with pytest.raises(BundleError, match="corrupt"):
        load_bundle(stub)


def test_foreign_json_refused(tmp_path):
    stub = tmp_path / "foreign.json"
    stub.write_text('{"hello": "world"}\n')
    with pytest.raises(BundleError, match="stale|schema"):
        load_bundle(stub)
    stub.write_text('[1, 2, 3]\n')
    with pytest.raises(BundleError, match="JSON object"):
        load_bundle(stub)


def test_missing_file_refused(tmp_path):
    with pytest.raises(BundleError, match="cannot read"):
        load_bundle(tmp_path / "nope.json")


def test_stale_schema_version_refused(bundle_path, tmp_path):
    payload = json.loads(bundle_path.read_text())
    payload["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
    payload["content_sha256"] = content_hash(payload)
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps(payload))
    with pytest.raises(BundleError, match="stale"):
        load_bundle(stale)


def test_tampered_content_refused(bundle_path, tmp_path):
    payload = json.loads(bundle_path.read_text())
    payload["monitor"]["watch_threshold"] = -0.2   # edit, keep old hash
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(payload))
    with pytest.raises(BundleError, match="hash mismatch"):
        load_bundle(tampered)


def test_structurally_broken_payload_refused(bundle_path, tmp_path):
    payload = json.loads(bundle_path.read_text())
    del payload["trees"]
    payload["content_sha256"] = content_hash(payload)
    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps(payload))
    with pytest.raises(BundleError, match="malformed"):
        load_bundle(broken)


def test_bundle_errors_are_typed(tmp_path):
    assert issubclass(BundleError, ServeError)
    assert issubclass(BundleError, ReproError)
    try:
        load_bundle(tmp_path / "nope.json")
    except ReproError:
        pass   # callers on the generic contract still catch it


def test_constructor_validates_shape(bundle):
    with pytest.raises(BundleError, match="extrema"):
        ModelBundle(attributes=bundle.attributes,
                    minima=bundle.minima[:-1], maxima=bundle.maxima,
                    groups=bundle.groups, trees=bundle.trees)
    with pytest.raises(BundleError, match="no tree"):
        ModelBundle(attributes=bundle.attributes,
                    minima=bundle.minima, maxima=bundle.maxima,
                    groups=bundle.groups,
                    trees={FailureType.HEAD: bundle.trees[FailureType.HEAD]})
    with pytest.raises(BundleError, match="watch_threshold"):
        ModelBundle(attributes=bundle.attributes,
                    minima=bundle.minima, maxima=bundle.maxima,
                    groups=bundle.groups, trees=bundle.trees,
                    watch_threshold=-0.5, critical_threshold=-0.1)


def test_build_bundle_needs_a_fitted_normalizer(mid_report):
    from dataclasses import replace

    from repro.data.dataset import DiskDataset

    scalerless = replace(
        mid_report, dataset=DiskDataset(list(mid_report.dataset.profiles))
    )
    with pytest.raises(ServeError, match="normalizer"):
        build_bundle(scalerless, seed=7)
