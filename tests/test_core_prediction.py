"""Tests for the degradation predictor (Table III protocol)."""

import numpy as np
import pytest

from repro.core.prediction import (
    GOOD_SAMPLE_MULTIPLIER,
    TARGET_RANGE,
    DegradationPredictor,
)
from repro.core.taxonomy import FailureType
from repro.errors import ReproError


@pytest.fixture(scope="module")
def predictor_and_reports(mid_report):
    predictor = DegradationPredictor(seed=7)
    reports = predictor.evaluate_all(mid_report.dataset,
                                     mid_report.categorization)
    return predictor, reports


def test_training_set_mixes_good_samples(mid_report):
    predictor = DegradationPredictor(seed=7)
    training_set = predictor.build_training_set(
        mid_report.dataset, mid_report.categorization, FailureType.LOGICAL
    )
    failed_samples = sum(
        len(mid_report.dataset.get(serial))
        for serial in mid_report.categorization.serials_of_type(
            FailureType.LOGICAL
        )
    )
    assert training_set.features.shape[0] == failed_samples * (
        1 + GOOD_SAMPLE_MULTIPLIER
    )
    # Good samples carry the healthy target 1.0.
    assert np.sum(training_set.targets == 1.0) >= (
        failed_samples * GOOD_SAMPLE_MULTIPLIER
    )


def test_targets_span_degradation_scale(mid_report):
    predictor = DegradationPredictor(seed=7)
    training_set = predictor.build_training_set(
        mid_report.dataset, mid_report.categorization, FailureType.HEAD
    )
    assert training_set.targets.min() == pytest.approx(-1.0, abs=0.01)
    assert training_set.targets.max() == 1.0


def test_reports_cover_all_groups(predictor_and_reports):
    _, reports = predictor_and_reports
    assert set(reports) == set(FailureType)
    for report in reports.values():
        assert report.rmse >= 0.0
        assert report.error_rate == pytest.approx(report.rmse / TARGET_RANGE)
        assert report.n_train > report.n_test


def test_prediction_quality_beats_trivial_baseline(predictor_and_reports):
    """The tree must clearly beat predicting the constant mean target."""
    _, reports = predictor_and_reports
    for report in reports.values():
        assert report.error_rate < 0.15


def test_logical_group_is_hardest(predictor_and_reports):
    _, reports = predictor_and_reports
    logical = reports[FailureType.LOGICAL].error_rate
    assert logical >= reports[FailureType.BAD_SECTOR].error_rate
    assert logical >= reports[FailureType.HEAD].error_rate


def test_paper_window_sizes_used(predictor_and_reports):
    _, reports = predictor_and_reports
    assert reports[FailureType.LOGICAL].window == 12
    assert reports[FailureType.BAD_SECTOR].window == 380
    assert reports[FailureType.HEAD].window == 24


def test_head_tree_relies_on_reallocated_sectors(predictor_and_reports):
    """Paper: Group 3's degradation is described by R-RSC alone."""
    _, reports = predictor_and_reports
    importances = reports[FailureType.HEAD].feature_importances
    top_feature = max(importances, key=lambda k: importances[k])
    assert top_feature in ("R-RSC", "RSC")


def test_tree_for_requires_evaluation(mid_report):
    predictor = DegradationPredictor(seed=7)
    with pytest.raises(ReproError):
        predictor.tree_for(FailureType.LOGICAL)


def test_trees_exposed_after_evaluation(predictor_and_reports):
    predictor, _ = predictor_and_reports
    tree = predictor.tree_for(FailureType.HEAD)
    assert tree.n_leaves() >= 2
