"""Tests for the failure categorizer."""

import numpy as np
import pytest

from repro.core.categorize import FailureCategorizer
from repro.core.records import build_failure_records
from repro.core.taxonomy import FailureType
from repro.errors import ModelError, ReproError
from repro.sim.failure_modes import FailureMode

MODE_BY_TYPE = {
    FailureType.LOGICAL: FailureMode.LOGICAL,
    FailureType.BAD_SECTOR: FailureMode.BAD_SECTOR,
    FailureType.HEAD: FailureMode.HEAD,
}


@pytest.fixture(scope="module")
def categorization(mid_fleet):
    records = build_failure_records(mid_fleet.dataset.normalize())
    return FailureCategorizer(n_clusters=3, seed=7).categorize(records)


def test_three_groups_found(categorization):
    assert categorization.n_groups == 3
    assert set(np.unique(categorization.labels)) == {0, 1, 2}


def test_groups_recover_ground_truth(categorization, mid_fleet):
    correct = 0
    total = 0
    for failure_type in FailureType:
        for serial in categorization.serials_of_type(failure_type):
            total += 1
            if mid_fleet.true_modes[serial] is MODE_BY_TYPE[failure_type]:
                correct += 1
    assert correct / total >= 0.95


def test_population_ordering_matches_mixture(categorization):
    counts = {
        failure_type: len(categorization.serials_of_type(failure_type))
        for failure_type in FailureType
    }
    assert counts[FailureType.LOGICAL] > counts[FailureType.HEAD]
    assert counts[FailureType.HEAD] > counts[FailureType.BAD_SECTOR]


def test_centroid_serials_belong_to_their_groups(categorization):
    for failure_type in FailureType:
        centroid = categorization.centroid_of_type(failure_type)
        assert centroid in categorization.serials_of_type(failure_type)


def test_type_of_serial_round_trip(categorization):
    serial = categorization.serials_of_type(FailureType.HEAD)[0]
    assert categorization.type_of_serial(serial) is FailureType.HEAD
    with pytest.raises(ReproError):
        categorization.type_of_serial("not-a-drive")


def test_elbow_selection_picks_three(mid_fleet):
    records = build_failure_records(mid_fleet.dataset.normalize())
    result = FailureCategorizer(n_clusters=None, seed=7).categorize(records)
    assert result.elbow is not None
    assert result.elbow.best_k == 3
    assert result.n_groups == 3


def test_svc_method_agrees_with_kmeans(mid_fleet):
    records = build_failure_records(mid_fleet.dataset.normalize())
    kmeans_result = FailureCategorizer(n_clusters=3, seed=7,
                                       method="kmeans").categorize(records)
    svc_result = FailureCategorizer(n_clusters=3, seed=7,
                                    method="svc").categorize(records)
    # "We employed both K-means and SVC, which generate the same results."
    for failure_type in FailureType:
        assert set(svc_result.serials_of_type(failure_type)) == set(
            kmeans_result.serials_of_type(failure_type)
        )


def test_invalid_method_rejected():
    with pytest.raises(ModelError):
        FailureCategorizer(method="spectral")
    with pytest.raises(ModelError):
        FailureCategorizer(n_clusters=1)
