"""Tests for DiskDataset."""

import numpy as np
import pytest

from repro.data.dataset import DiskDataset
from repro.errors import DatasetError
from repro.smart.profile import HealthProfile


def make_profile(serial, failed, n=6, fill=None):
    matrix = np.full((n, 12), 50.0) if fill is None else fill
    return HealthProfile(serial=serial, hours=np.arange(n), matrix=matrix,
                         failed=failed)


def varied_matrix(n=6, offset=0.0):
    return np.arange(n * 12, dtype=np.float64).reshape(n, 12) + offset


@pytest.fixture()
def dataset():
    return DiskDataset([
        make_profile("f1", True, fill=varied_matrix()),
        make_profile("f2", True, fill=varied_matrix(offset=5.0)),
        make_profile("g1", False, fill=varied_matrix(offset=-3.0)),
    ])


def test_split_by_outcome(dataset):
    assert [p.serial for p in dataset.failed_profiles] == ["f1", "f2"]
    assert [p.serial for p in dataset.good_profiles] == ["g1"]


def test_summary(dataset):
    summary = dataset.summary()
    assert summary.n_drives == 3
    assert summary.n_failed == 2
    assert summary.failed_samples == 12
    assert summary.failure_rate == pytest.approx(2 / 3)


def test_get_and_contains(dataset):
    assert dataset.get("f1").serial == "f1"
    assert "g1" in dataset
    assert "nope" not in dataset
    with pytest.raises(DatasetError):
        dataset.get("nope")


def test_duplicate_serials_rejected():
    with pytest.raises(DatasetError):
        DiskDataset([make_profile("x", True), make_profile("x", False)])


def test_empty_dataset_rejected():
    with pytest.raises(DatasetError):
        DiskDataset([])


def test_stacked_records_mask(dataset):
    matrix, failed_mask = dataset.stacked_records()
    assert matrix.shape == (18, 12)
    assert failed_mask.sum() == 12


def test_failure_records_align_with_serials(dataset):
    matrix, serials = dataset.failure_records()
    assert serials == ["f1", "f2"]
    np.testing.assert_array_equal(matrix[0],
                                  dataset.get("f1").failure_record())


def test_failure_records_without_failures_raises():
    good_only = DiskDataset([make_profile("g", False, fill=varied_matrix())])
    with pytest.raises(DatasetError):
        good_only.failure_records()


def test_normalize_bounds_and_flag(dataset):
    normalized = dataset.normalize()
    assert normalized.is_normalized
    matrix, _ = normalized.stacked_records()
    assert matrix.min() >= -1.0 and matrix.max() <= 1.0
    assert normalized.normalizer is not None


def test_normalize_twice_rejected(dataset):
    with pytest.raises(DatasetError):
        dataset.normalize().normalize()


def test_normalize_with_external_scaler(dataset):
    scaler = dataset.fit_normalizer()
    other = DiskDataset([make_profile("z", True, fill=varied_matrix())])
    normalized = other.normalize(scaler)
    assert normalized.is_normalized


def test_constant_attributes_detected():
    constant = DiskDataset([make_profile("a", True), make_profile("b", False)])
    assert len(constant.constant_attributes()) == 12


def test_drop_attributes(dataset):
    smaller = dataset.drop_attributes(["TC", "POH"])
    assert len(smaller.attributes) == 10
    assert "TC" not in smaller.attributes
    with pytest.raises(DatasetError):
        dataset.drop_attributes(["NOPE"])


def test_drop_all_attributes_rejected(dataset):
    with pytest.raises(DatasetError):
        dataset.drop_attributes(list(dataset.attributes))


def test_column_index(dataset):
    assert dataset.column_index("RRER") == 0
    with pytest.raises(DatasetError):
        dataset.column_index("NOPE")
