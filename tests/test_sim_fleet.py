"""Tests for fleet orchestration."""

import numpy as np
import pytest

from repro.sim.config import FleetConfig
from repro.sim.failure_modes import FailureMode
from repro.sim.fleet import FleetSimulator, simulate_fleet


def test_population_counts(small_fleet):
    summary = small_fleet.dataset.summary()
    config = small_fleet.config
    assert summary.n_drives == config.n_drives
    assert summary.n_failed == config.n_failed
    assert summary.n_good == config.n_good


def test_mode_mixture_respected(small_fleet):
    modes = [m for m in small_fleet.true_modes.values() if m.is_failure]
    counts = {mode: modes.count(mode) for mode in set(modes)}
    # Largest-remainder allocation: logical most common, bad-sector least.
    assert counts[FailureMode.LOGICAL] > counts[FailureMode.HEAD]
    assert counts[FailureMode.HEAD] > counts.get(FailureMode.BAD_SECTOR, 0)


def test_every_failed_drive_labeled(small_fleet):
    for profile in small_fleet.dataset.failed_profiles:
        assert small_fleet.true_modes[profile.serial].is_failure
    for profile in small_fleet.dataset.good_profiles:
        assert small_fleet.true_modes[profile.serial] is FailureMode.GOOD


def test_observation_policy(small_fleet):
    config = small_fleet.config
    for profile in small_fleet.dataset.failed_profiles:
        assert len(profile) <= config.failed_observation_hours
    for profile in small_fleet.dataset.good_profiles:
        assert len(profile) <= config.good_observation_hours
        assert len(profile) >= 24


def test_failure_hours_within_period(small_fleet):
    period = small_fleet.config.period_hours
    for profile in small_fleet.dataset.failed_profiles:
        assert 24 <= profile.failure_hour < period


def test_failed_serials_filter(small_fleet):
    all_failed = small_fleet.failed_serials()
    logical = small_fleet.failed_serials(FailureMode.LOGICAL)
    assert set(logical) <= set(all_failed)
    assert 0 < len(logical) < len(all_failed)


def test_simulation_is_reproducible():
    config = FleetConfig(n_drives=60, seed=5)
    a = simulate_fleet(config)
    b = simulate_fleet(config)
    assert a.true_modes == b.true_modes
    for profile_a, profile_b in zip(a.dataset.profiles, b.dataset.profiles):
        np.testing.assert_array_equal(profile_a.matrix, profile_b.matrix)


def test_different_seeds_differ():
    a = simulate_fleet(FleetConfig(n_drives=60, seed=5))
    b = simulate_fleet(FleetConfig(n_drives=60, seed=6))
    assert a.true_modes != b.true_modes or not np.array_equal(
        a.dataset.profiles[0].matrix, b.dataset.profiles[0].matrix
    )


def test_build_specs_without_simulation():
    simulator = FleetSimulator(FleetConfig(n_drives=60, seed=5))
    specs = simulator.build_specs()
    assert len(specs) == 60
    serials = {spec.serial for spec in specs}
    assert len(serials) == 60


def test_profile_duration_mix_matches_figure_one():
    """At scale, most failed profiles exceed 10 days, ~half reach 20."""
    fleet = simulate_fleet(FleetConfig(n_drives=6000, seed=3))
    durations = np.array([len(p) for p in fleet.dataset.failed_profiles])
    over_10_days = np.mean(durations > 240)
    full_20_days = np.mean(durations >= 480)
    assert 0.6 < over_10_days < 0.95      # paper: 78.5%
    assert 0.35 < full_20_days < 0.7      # paper: 51.3%


@pytest.mark.parametrize("n_drives", [50, 137])
def test_arbitrary_fleet_sizes(n_drives):
    fleet = simulate_fleet(FleetConfig(n_drives=n_drives, seed=2))
    assert len(fleet.dataset) == n_drives
