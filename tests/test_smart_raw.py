"""Tests for the SMART raw-value codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.smart.raw import (
    RAW48_MAX,
    decode_power_on_hours,
    decode_raw48,
    decode_seagate_error_rate,
    decode_temperature,
    encode_raw48,
    encode_seagate_error_rate,
    encode_temperature,
)


class TestRaw48:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, RAW48_MAX))
    def test_round_trip(self, value):
        assert decode_raw48(encode_raw48(value)) == value

    def test_little_endian_layout(self):
        assert encode_raw48(0x0102) == bytes([0x02, 0x01, 0, 0, 0, 0])

    def test_range_validation(self):
        with pytest.raises(ReproError):
            encode_raw48(-1)
        with pytest.raises(ReproError):
            encode_raw48(RAW48_MAX + 1)
        with pytest.raises(ReproError):
            decode_raw48(b"\x00" * 5)


class TestTemperature:
    def test_decode_packed_extremes(self):
        raw = 38 | (21 << 16) | (52 << 32)
        reading = decode_temperature(raw)
        assert reading.current_c == 38
        assert reading.lifetime_min_c == 21
        assert reading.lifetime_max_c == 52

    def test_plain_firmware_reports_current_only(self):
        reading = decode_temperature(34)
        assert reading.current_c == 34
        assert reading.lifetime_min_c == 34
        assert reading.lifetime_max_c == 34

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 90), st.integers(0, 30), st.integers(0, 70))
    def test_round_trip(self, current, below, above):
        minimum = max(0, current - below)
        maximum = min(255, current + above)
        raw = encode_temperature(current, minimum, maximum)
        reading = decode_temperature(raw)
        assert (reading.current_c, reading.lifetime_min_c,
                reading.lifetime_max_c) == (current, minimum, maximum)

    def test_extremes_must_bracket_current(self):
        with pytest.raises(ReproError):
            encode_temperature(30, lifetime_min_c=40, lifetime_max_c=50)
        with pytest.raises(ReproError):
            encode_temperature(300)


class TestSeagateErrorRate:
    def test_fresh_counter_decodes_to_zero_errors(self):
        decoded = decode_seagate_error_rate(123_456_789)
        assert decoded.errors == 0
        assert decoded.operations == 123_456_789

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFFFFFF))
    def test_round_trip(self, errors, operations):
        raw = encode_seagate_error_rate(errors, operations)
        decoded = decode_seagate_error_rate(raw)
        assert (decoded.errors, decoded.operations) == (errors, operations)

    def test_errors_per_million(self):
        raw = encode_seagate_error_rate(5, 1_000_000)
        assert decode_seagate_error_rate(raw).errors_per_million == 5.0
        assert decode_seagate_error_rate(0).errors_per_million == 0.0

    def test_range_validation(self):
        with pytest.raises(ReproError):
            encode_seagate_error_rate(0x10000, 0)
        with pytest.raises(ReproError):
            encode_seagate_error_rate(0, 0x1_0000_0000)


class TestPowerOnHours:
    def test_hours_passthrough(self):
        assert decode_power_on_hours(17_520) == 17_520.0

    def test_minutes_and_seconds_firmware(self):
        assert decode_power_on_hours(120, unit="minutes") == 2.0
        assert decode_power_on_hours(7200, unit="seconds") == 2.0

    def test_high_word_remainder_ignored(self):
        raw = 100 | (999 << 32)
        assert decode_power_on_hours(raw) == 100.0

    def test_unknown_unit_rejected(self):
        with pytest.raises(ReproError):
            decode_power_on_hours(1, unit="fortnights")
