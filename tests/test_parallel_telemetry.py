"""Worker telemetry capture: metric deltas cross the pool boundary and
merge so serial and parallel runs report identical totals.

The end-to-end pin lives at the bottom: a ``CharacterizationPipeline``
run with ``n_jobs=4`` reports the same ``signatures_skipped`` and
``cache_hits`` counters as a serial run — the regression the worker
telemetry seam exists to prevent.
"""

import threading

import pytest

from repro.core.pipeline import CharacterizationPipeline
from repro.data.cache import DatasetCache
from repro.obs.observer import NULL_OBSERVER, TelemetryObserver
from repro.parallel import (
    ParallelConfig,
    RetryPolicy,
    get_worker_observer,
    map_drives,
)


def _instrumented(x: int) -> int:
    """Module-level so the process backend can pickle it."""
    obs = get_worker_observer()
    obs.count("items_seen")
    obs.observe("item_value", float(x))
    obs.gauge("last_item", float(x))
    return x * x


def _fails_in_worker_threads(x: int) -> int:
    """Fails in pool threads, succeeds in the main-thread fallback."""
    if threading.current_thread() is not threading.main_thread():
        raise RuntimeError("worker refused")
    get_worker_observer().count("items_seen")
    return x


def _counter_values(observer):
    snapshot = observer.metrics.snapshot()
    return {name: body["value"] for name, body in snapshot.items()
            if body["kind"] == "counter"}


def test_worker_observer_is_null_outside_map_drives():
    assert get_worker_observer() is NULL_OBSERVER


def test_serial_path_installs_callers_observer():
    observer = TelemetryObserver()
    results = map_drives(_instrumented, range(10),
                         ParallelConfig(n_jobs=1), observer=observer)
    assert results == [x * x for x in range(10)]
    assert observer.metrics.counter("items_seen").value == 10
    assert observer.metrics.histogram("item_value").count == 10
    assert get_worker_observer() is NULL_OBSERVER  # uninstalled after


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_totals_equal_serial(backend):
    serial = TelemetryObserver()
    map_drives(_instrumented, range(37), ParallelConfig(n_jobs=1),
               observer=serial)
    parallel = TelemetryObserver()
    map_drives(_instrumented, range(37),
               ParallelConfig(n_jobs=4, backend=backend, chunk_size=5),
               observer=parallel)

    assert (parallel.metrics.counter("items_seen").value
            == serial.metrics.counter("items_seen").value == 37)
    a = parallel.metrics.histogram("item_value")
    b = serial.metrics.histogram("item_value")
    assert a.count == b.count
    assert a.sum == b.sum
    assert a.bucket_counts() == b.bucket_counts()
    # gauges merge in chunk-index order: the last chunk's write wins,
    # which is exactly the value the serial loop ends on
    assert (parallel.metrics.gauge("last_item").value
            == serial.metrics.gauge("last_item").value == 36.0)


def test_null_observer_parallel_path_skips_capture():
    results = map_drives(_instrumented, range(8),
                         ParallelConfig(n_jobs=2, backend="thread"))
    assert results == [x * x for x in range(8)]


def test_serial_fallback_still_reports_telemetry():
    observer = TelemetryObserver()
    config = ParallelConfig(
        n_jobs=2, backend="thread", chunk_size=2,
        retry=RetryPolicy(max_retries=0, timeout_s=None,
                          serial_fallback=True),
    )
    results = map_drives(_fails_in_worker_threads, range(6), config,
                         observer=observer)
    assert results == list(range(6))
    assert observer.metrics.counter("items_seen").value == 6


# -- the end-to-end pipeline pin -------------------------------------------


def _pipeline_counters(dataset, cache_dir, n_jobs):
    observer = TelemetryObserver()
    cache = DatasetCache(cache_dir, observer=observer)
    pipeline = CharacterizationPipeline(
        seed=1, n_jobs=n_jobs, parallel_backend="thread", cache=cache,
        observer=observer,
    )
    pipeline.run(dataset)
    return _counter_values(observer)


def test_pipeline_jobs4_reports_same_counters_as_serial(
        small_fleet, tmp_path):
    """`--jobs 4` must report the same `signatures_skipped` and
    `cache_hits` as a serial run — telemetry is part of the n_jobs-is-
    a-pure-performance-knob contract."""
    cache_dir = tmp_path / "cache"
    warm = _pipeline_counters(small_fleet.dataset, cache_dir, n_jobs=1)
    assert warm.get("cache_hits", 0.0) == 0.0  # cold cache on first run

    serial = _pipeline_counters(small_fleet.dataset, cache_dir, n_jobs=1)
    parallel = _pipeline_counters(small_fleet.dataset, cache_dir, n_jobs=4)

    assert serial["cache_hits"] == parallel["cache_hits"] == 1.0
    assert (serial.get("signatures_skipped", 0.0)
            == parallel.get("signatures_skipped", 0.0))
    assert (serial["signatures_derived"]
            == parallel["signatures_derived"] > 0)
    # every counter except the fan-out bookkeeping matches exactly
    fanout = {"parallel_chunks"}
    assert ({k: v for k, v in serial.items() if k not in fanout}
            == {k: v for k, v in parallel.items() if k not in fanout})
