"""Tests for the Backblaze drive-stats loader."""

import numpy as np
import pytest

from repro.data.backblaze import BACKBLAZE_COLUMN_MAP, load_backblaze_csv
from repro.errors import DatasetError
from repro.smart.attributes import CHARACTERIZATION_ATTRIBUTES

HEADER = ("date,serial_number,model,capacity_bytes,failure,"
          + ",".join(BACKBLAZE_COLUMN_MAP[s] for s in CHARACTERIZATION_ATTRIBUTES))


def _row(day, serial, model="ST4000", failure=0, base=50.0):
    values = ",".join(str(base + i) for i in range(12))
    return f"2015-01-{day:02d},{serial},{model},4000,{failure},{values}"


def write_days(tmp_path, rows_by_day):
    paths = []
    for day, rows in rows_by_day.items():
        path = tmp_path / f"2015-01-{day:02d}.csv"
        path.write_text("\n".join([HEADER, *rows]) + "\n")
        paths.append(path)
    return paths


def test_profiles_assembled_across_days(tmp_path):
    paths = write_days(tmp_path, {
        1: [_row(1, "A"), _row(1, "B")],
        2: [_row(2, "A"), _row(2, "B", failure=1)],
    })
    dataset = load_backblaze_csv(paths)
    assert len(dataset) == 2
    assert not dataset.get("A").failed
    assert dataset.get("B").failed
    # Daily samples timestamped in hours (24h apart).
    np.testing.assert_array_equal(dataset.get("A").hours, [0, 24])


def test_attribute_column_mapping(tmp_path):
    paths = write_days(tmp_path, {1: [_row(1, "A", base=10.0)]})
    dataset = load_backblaze_csv(paths)
    profile = dataset.get("A")
    # Columns follow CHARACTERIZATION_ATTRIBUTES order: base + position.
    assert profile.column("RRER")[0] == 10.0
    assert profile.column("TC")[0] == 21.0


def test_model_filter(tmp_path):
    paths = write_days(tmp_path, {
        1: [_row(1, "A", model="ST4000"), _row(1, "B", model="WD40")],
    })
    dataset = load_backblaze_csv(paths, model="ST4000")
    assert "A" in dataset
    assert "B" not in dataset


def test_no_matching_rows_raises(tmp_path):
    paths = write_days(tmp_path, {1: [_row(1, "A")]})
    with pytest.raises(DatasetError):
        load_backblaze_csv(paths, model="NOPE")


def test_missing_columns_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("date,model\n2015-01-01,X\n")
    with pytest.raises(DatasetError, match="missing Backblaze columns"):
        load_backblaze_csv([path])


def test_policy_truncation(tmp_path):
    rows_by_day = {
        day: [_row(day, "A")] for day in range(1, 31)
    }
    paths = write_days(tmp_path, rows_by_day)
    truncated = load_backblaze_csv(paths)
    untruncated = load_backblaze_csv(paths, apply_policy=False)
    assert len(untruncated.get("A")) == 30
    assert len(truncated.get("A")) < 30  # 7-day good-drive policy


def test_blank_smart_cells_become_zero(tmp_path):
    path = tmp_path / "2015-01-01.csv"
    values = ",".join([""] + [str(float(i)) for i in range(1, 12)])
    path.write_text(
        "\n".join([HEADER, f"2015-01-01,A,M,1,0,{values}"]) + "\n"
    )
    dataset = load_backblaze_csv([path])
    assert dataset.get("A").column("RRER")[0] == 0.0
