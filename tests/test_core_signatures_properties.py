"""Property-based tests of the degradation-window extractor.

The extractor must recover planted windows across the paper's whole
range of shapes (linear through cubic) and sizes (hours through weeks),
under bounded noise — these properties pin the tool's behaviour far more
broadly than the example-based tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signatures import extract_degradation_window


def planted_series(window, exponent, plateau, level, noise, seed):
    rng = np.random.default_rng(seed)
    flat = level + rng.normal(0.0, noise, plateau)
    t = np.arange(window, -1, -1, dtype=np.float64)
    ramp = level * (t / window) ** exponent
    return np.concatenate([flat, ramp[1:]])


@settings(max_examples=60, deadline=None)
@given(
    window=st.integers(3, 80),
    exponent=st.sampled_from([1.0, 2.0, 3.0]),
    plateau=st.integers(20, 150),
    level=st.floats(0.5, 4.0),
    seed=st.integers(0, 10_000),
)
def test_recovers_planted_window_with_mild_noise(window, exponent, plateau,
                                                 level, seed):
    distances = planted_series(window, exponent, plateau, level,
                               noise=0.01 * level, seed=seed)
    extracted = extract_degradation_window(distances)
    assert abs(extracted.size - window) <= max(3, round(0.2 * window))


@settings(max_examples=40, deadline=None)
@given(
    window=st.integers(3, 60),
    exponent=st.sampled_from([1.0, 2.0, 3.0]),
    seed=st.integers(0, 10_000),
)
def test_window_never_exceeds_profile(window, exponent, seed):
    distances = planted_series(window, exponent, plateau=10, level=2.0,
                               noise=0.05, seed=seed)
    extracted = extract_degradation_window(distances)
    assert 1 <= extracted.size <= distances.shape[0] - 1
    assert extracted.distances.shape == (extracted.size + 1,)
    assert extracted.distances[-1] == 0.0


@settings(max_examples=40, deadline=None)
@given(
    window=st.integers(5, 60),
    seed=st.integers(0, 10_000),
)
def test_degradation_values_normalized(window, seed):
    distances = planted_series(window, 2.0, plateau=40, level=1.5,
                               noise=0.02, seed=seed)
    extracted = extract_degradation_window(distances)
    t, s = extracted.degradation_values()
    assert s[-1] == pytest.approx(-1.0)
    assert s.max() == pytest.approx(0.0)
    assert np.all(s >= -1.0 - 1e-12)
    assert t[0] == extracted.size and t[-1] == 0.0


@settings(max_examples=30, deadline=None)
@given(scale=st.floats(0.1, 100.0), window=st.integers(5, 50),
       seed=st.integers(0, 1000))
def test_extraction_is_scale_invariant(scale, window, seed):
    base = planted_series(window, 2.0, plateau=60, level=2.0, noise=0.02,
                          seed=seed)
    small = extract_degradation_window(base)
    # Tolerances are absolute, so pure scaling should not change the
    # window materially once the series dwarfs them.
    scaled = extract_degradation_window(base * max(scale, 1.0))
    assert abs(scaled.size - small.size) <= max(3, round(0.3 * window))
