"""Shared fixtures: small seed-pinned fleets and pipeline reports.

Simulation and the full pipeline are the expensive parts of the suite,
so they are session-scoped: one small fleet for unit-level consumers and
one mid-size fleet whose failure groups are large enough for the
integration assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import CharacterizationPipeline
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


@pytest.fixture(scope="session")
def small_fleet():
    """~600 drives, 11 failed — enough for every unit-level consumer."""
    return simulate_fleet(FleetConfig(n_drives=600, seed=1))


@pytest.fixture(scope="session")
def small_dataset(small_fleet):
    return small_fleet.dataset


@pytest.fixture(scope="session")
def small_normalized(small_fleet):
    return small_fleet.dataset.normalize()


@pytest.fixture(scope="session")
def mid_fleet():
    """~2,000 drives, 37 failed — all three groups well populated."""
    return simulate_fleet(FleetConfig(n_drives=2000, seed=7))


@pytest.fixture(scope="session")
def mid_report(mid_fleet):
    pipeline = CharacterizationPipeline(seed=7)
    return pipeline.run(mid_fleet.dataset)


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Keep CLI runs from touching the user's real ~/.cache/repro."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
