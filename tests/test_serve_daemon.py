"""End-to-end tests for the serving daemon: HTTP in, verdicts out.

The daemon's acceptance criteria live here: HTTP-ingested verdicts are
byte-identical to offline ``repro-serve score`` output for shard counts
1, 2 and 4; a saturated shard answers 429 with a ``Retry-After`` header
and never partially scores the rejected batch; ``POST /drain`` (and the
CLI's signal path) drains in-flight work and writes the final snapshot;
and alert sinks receive exactly the alerting verdicts.
"""

import csv
import json
import threading

import pytest

from repro.errors import ServeError
from repro.obs.observer import NULL_OBSERVER
from repro.serve.bundle import build_bundle, save_bundle
from repro.serve.cli import main as serve_main
from repro.serve.daemon import ServingDaemon
from repro.serve.sinks import CallbackAlertSink, JsonlAlertSink

from tests.test_obs_http import _get, _post


@pytest.fixture(scope="module")
def bundle(mid_report):
    return build_bundle(mid_report, seed=7)


@pytest.fixture(scope="module")
def bundle_path(bundle, tmp_path_factory):
    path = tmp_path_factory.mktemp("daemon") / "fleet.bundle.json"
    save_bundle(bundle, path)
    return path


@pytest.fixture(scope="module")
def samples(mid_fleet):
    """(serial, hour, values) rows mixing failed and good drives."""
    dataset = mid_fleet.dataset
    profiles = dataset.failed_profiles[:4] + dataset.good_profiles[:8]
    rows = []
    for profile in profiles:
        keep = None if profile.failed else 6
        for hour, row in zip(profile.hours[:keep], profile.matrix[:keep]):
            rows.append((profile.serial, int(hour),
                         [float(v) for v in row]))
    return rows


@pytest.fixture(scope="module")
def score_reference(bundle, bundle_path, samples, tmp_path_factory):
    """Offline ``repro-serve score`` output bytes for the sample stream."""
    root = tmp_path_factory.mktemp("daemon-golden")
    stream = root / "stream.csv"
    with open(stream, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["serial", "hour", *bundle.attributes])
        for serial, hour, values in samples:
            writer.writerow([serial, hour, *(repr(v) for v in values)])
    output = root / "score.jsonl"
    assert serve_main(["score", "--bundle", str(bundle_path),
                       "--input", str(stream),
                       "--output", str(output)]) == 0
    return output.read_bytes()


def _json_doc(batch):
    """The JSON-document ingest body for a slice of sample rows."""
    return json.dumps(
        {"samples": [[serial, hour, values]
                     for serial, hour, values in batch]}).encode("utf-8")


def _batches(rows, size=64):
    return [rows[i:i + size] for i in range(0, len(rows), size)]


# -- byte identity over HTTP ------------------------------------------------

@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_http_verdicts_byte_identical_to_score_cli(bundle, samples,
                                                   score_reference,
                                                   n_shards):
    """The golden contract: POST /ingest?verdicts=all replies, batch by
    batch, concatenate to exactly the offline score output."""
    collected = b""
    with ServingDaemon(bundle, n_shards=n_shards) as daemon:
        for batch in _batches(samples):
            status, headers, body = _post(
                daemon.url + "/ingest?verdicts=all", _json_doc(batch))
            assert status == 200
            assert headers["Content-Type"].startswith("application/jsonl")
            collected += body.encode("utf-8")
        assert daemon.samples_accepted == len(samples)
    assert collected == score_reference


def test_verdicts_alerts_filter_returns_only_alerting(bundle, samples):
    with ServingDaemon(bundle) as daemon:
        lines = []
        for batch in _batches(samples):
            status, _headers, body = _post(
                daemon.url + "/ingest?verdicts=alerts", _json_doc(batch))
            assert status == 200
            lines.extend(body.splitlines())
        assert daemon.alerts_emitted > 0
        assert len(lines) == daemon.alerts_emitted
    assert all(json.loads(line)["level"] != "HEALTHY" for line in lines)


def test_jsonl_ingest_form(bundle, samples):
    batch = samples[:32]
    body = "".join(
        json.dumps({"serial": serial, "hour": hour, "values": values}) + "\n"
        for serial, hour, values in batch).encode("utf-8")
    with ServingDaemon(bundle) as daemon:
        # Explicit ?format=jsonl and the auto-detect fallback both work.
        for url in (daemon.url + "/ingest?format=jsonl",
                    daemon.url + "/ingest"):
            status, _headers, reply = _post(url, body)
            assert status == 200
            assert json.loads(reply)["accepted"] == len(batch)
        assert daemon.samples_accepted == 2 * len(batch)


def test_malformed_bodies_are_400(bundle):
    cases = (
        b"not json at all",
        b'{"rows": []}',                       # wrong document shape
        b'{"serial": "X"}\n',                  # JSONL missing keys
        b'{"samples": [["X", 1, [1.0, 2.0]]]}',  # wrong attribute count
    )
    with ServingDaemon(bundle) as daemon:
        for body in cases:
            status, _headers, reply = _post(daemon.url + "/ingest", body)
            assert status == 400, body
            assert "error" in json.loads(reply)
        status, _headers, reply = _post(daemon.url + "/ingest",
                                        b'{"samples": []}')
        assert status == 200
        assert json.loads(reply) == {"accepted": 0, "alerts": 0}
        metrics = _get(daemon.url + "/metrics")[2]
        assert ('repro_ingest_requests_total{outcome="bad_request"} 4'
                in metrics)


# -- backpressure -----------------------------------------------------------

def test_saturated_shard_answers_429_with_retry_after(bundle, samples):
    """Concurrent posts against capacity 1: the loser gets 429 + a
    Retry-After hint, and its samples are never scored."""
    daemon = ServingDaemon(bundle, n_shards=1, queue_capacity=1,
                           throttle_s=0.4, retry_after_s=2.5).start()
    barrier = threading.Barrier(3)
    replies = []

    def poster(batch):
        barrier.wait()
        replies.append((_post(daemon.url + "/ingest", _json_doc(batch)),
                        len(batch)))

    threads = [threading.Thread(target=poster, args=(samples[:200],))
               for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)

    accepted = [n for (status, _h, _b), n in replies if status == 200]
    rejected = [(headers, body) for (status, headers, body), _n in replies
                if status == 429]
    assert accepted and rejected
    headers, body = rejected[0]
    assert headers["Retry-After"] == "2.5"
    payload = json.loads(body)
    assert payload["retry_after_s"] == 2.5
    assert payload["shard"] == 0
    metrics = _get(daemon.url + "/metrics")[2]
    assert 'repro_ingest_requests_total{outcome="backpressure"}' in metrics
    snapshots = daemon.stop()
    # All-or-nothing: exactly the accepted posts' samples were scored.
    assert sum(s["samples_scored"] for s in snapshots) == sum(accepted)
    assert daemon.samples_accepted == sum(accepted)


# -- drain and shutdown -----------------------------------------------------

def test_drain_endpoint_stops_serve_forever(bundle, samples, tmp_path):
    snapshot_path = tmp_path / "final.json"
    daemon = ServingDaemon(bundle, n_shards=2,
                           final_snapshot=snapshot_path).start()
    loop = threading.Thread(target=daemon.serve_forever)
    loop.start()
    for batch in _batches(samples[:300]):
        assert _post(daemon.url + "/ingest", _json_doc(batch))[0] == 200
    status, _headers, body = _post(daemon.url + "/drain", b"")
    assert status == 202
    assert json.loads(body) == {"status": "draining"}
    loop.join(timeout=30)
    assert not loop.is_alive()

    document = json.loads(snapshot_path.read_text())
    assert document["samples_accepted"] == 300
    assert document["n_shards"] == 2
    assert document["bundle_sha256"] == daemon.health_payload()["bundle_sha256"]
    assert sum(s["samples_scored"] for s in document["shards"]) == 300
    assert daemon.final_snapshots == document["shards"]


def test_health_reports_draining_after_stop_request(bundle):
    daemon = ServingDaemon(bundle).start()
    try:
        status, _ctype, body = _get(daemon.url + "/health")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        daemon.request_stop()
        status, _ctype, body = _get(daemon.url + "/health")
        assert status == 503  # load balancers stop routing to a drainer
        assert json.loads(body)["status"] == "draining"
    finally:
        daemon.stop()


def test_status_payload_describes_the_shard_plane(bundle, samples, tmp_path):
    sink = JsonlAlertSink(tmp_path / "alerts.jsonl")
    with ServingDaemon(bundle, n_shards=2, sinks=[sink]) as daemon:
        _post(daemon.url + "/ingest", _json_doc(samples[:100]))
        payload = json.loads(_get(daemon.url + "/status")[2])
    assert payload["n_shards"] == 2
    assert payload["backend"] == "thread"
    assert payload["samples_accepted"] == 100
    assert payload["sinks"] == [f"jsonl:{tmp_path / 'alerts.jsonl'}"]
    assert payload["draining"] is False
    assert payload["inflight"] == [0, 0]


# -- sinks ------------------------------------------------------------------

def test_alerting_verdicts_fan_out_to_sinks(bundle, samples, tmp_path):
    path = tmp_path / "alerts.jsonl"
    seen = []
    daemon = ServingDaemon(
        bundle, sinks=[JsonlAlertSink(path), CallbackAlertSink(seen.append)])
    verdicts = daemon.ingest(*_columnar(samples))
    daemon.stop()
    alerting = [v for v in verdicts if v.alerting]
    assert alerting
    assert path.read_text().splitlines() \
        == [v.to_json_line() for v in alerting]
    assert seen == alerting
    assert (daemon.registry.counter("alert_sink_emits").value
            == 2 * len(alerting))
    assert daemon.recorder.events_of("alert")


def test_sink_failures_are_counted_never_raised(bundle, samples):
    def explode(_verdict):
        raise RuntimeError("pager down")

    daemon = ServingDaemon(bundle, sinks=[CallbackAlertSink(explode)])
    verdicts = daemon.ingest(*_columnar(samples))
    daemon.stop()
    assert [v for v in verdicts if v.alerting]  # scoring was unaffected
    assert (daemon.registry.counter("alert_sink_errors").value
            == daemon.alerts_emitted > 0)
    errors = daemon.recorder.events_of("sink-error")
    assert errors and errors[0].context["sink"] == "callback:explode"


def _columnar(rows):
    serials = [serial for serial, _hour, _values in rows]
    hours = [hour for _serial, hour, _values in rows]
    matrix = [values for _serial, _hour, values in rows]
    return serials, hours, matrix


# -- configuration ----------------------------------------------------------

def test_daemon_requires_metrics_observer(bundle):
    with pytest.raises(ServeError, match="metrics registry"):
        ServingDaemon(bundle, observer=NULL_OBSERVER)


def test_stop_is_idempotent(bundle, samples):
    daemon = ServingDaemon(bundle).start()
    daemon.ingest(*_columnar(samples[:50]))
    assert daemon.stop() == daemon.stop()


# -- CLI --------------------------------------------------------------------

def test_daemon_cli_end_to_end(bundle_path, samples, tmp_path, capsys):
    """The operator path: launch, discover the port, ingest, drain."""
    import time

    port_file = tmp_path / "port.txt"
    alerts = tmp_path / "alerts.jsonl"
    snapshot = tmp_path / "final.json"
    result = {}

    def run():
        result["status"] = serve_main(
            ["daemon", "--bundle", str(bundle_path),
             "--shards", "2",
             "--port-file", str(port_file),
             "--alert-sink", f"jsonl:{alerts}",
             "--final-snapshot", str(snapshot)])

    thread = threading.Thread(target=run)
    thread.start()
    deadline = time.monotonic() + 30
    while not port_file.exists() and time.monotonic() < deadline:
        time.sleep(0.02)
    url = f"http://127.0.0.1:{int(port_file.read_text())}"

    status, _headers, body = _post(url + "/ingest", _json_doc(samples[:200]))
    assert status == 200
    accepted = json.loads(body)
    assert accepted["accepted"] == 200
    assert _post(url + "/drain", b"")[0] == 202
    thread.join(timeout=30)
    assert result["status"] == 0

    document = json.loads(snapshot.read_text())
    assert document["samples_accepted"] == 200
    assert document["n_shards"] == 2
    if accepted["alerts"]:
        assert len(alerts.read_text().splitlines()) == accepted["alerts"]
    err = capsys.readouterr().err
    assert "serving daemon on" in err
    assert "daemon drained: 200 samples accepted" in err
