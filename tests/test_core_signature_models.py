"""Tests for the canonical signature models (Equations 2-6)."""

import numpy as np
import pytest

from repro.core.signature_models import (
    CANONICAL_ORDER_BY_TYPE,
    PREDICTION_WINDOW_BY_TYPE,
    canonical_signature,
    compare_signature_models,
    paper_equation_2,
    paper_equation_5,
    prediction_target,
    signature_for_type,
)
from repro.core.taxonomy import FailureType
from repro.errors import SignatureError


def test_canonical_boundary_conditions():
    for order in (1, 2, 3):
        signature = canonical_signature(order, window=12)
        assert signature(np.array([0.0]))[0] == pytest.approx(-1.0)
        assert signature(np.array([12.0]))[0] == pytest.approx(0.0)


def test_canonical_orders_match_paper():
    assert CANONICAL_ORDER_BY_TYPE[FailureType.LOGICAL] == 2
    assert CANONICAL_ORDER_BY_TYPE[FailureType.BAD_SECTOR] == 1
    assert CANONICAL_ORDER_BY_TYPE[FailureType.HEAD] == 3


def test_prediction_windows_match_paper():
    assert PREDICTION_WINDOW_BY_TYPE == {
        FailureType.LOGICAL: 12,
        FailureType.BAD_SECTOR: 380,
        FailureType.HEAD: 24,
    }


def test_equation_2_has_the_papers_boundary_defect():
    """Eq. (2) evaluates to -1/3 at t=d instead of 0 — the reason the
    paper revises it."""
    equation = paper_equation_2(window=3)
    assert equation(np.array([3.0]))[0] == pytest.approx(-1.0 / 3.0)


def test_equation_5_with_unit_coefficient():
    equation = paper_equation_5(window=12, a=1.0)
    assert equation(np.array([0.0]))[0] == pytest.approx(-1.0)
    # At t=d: 1 - 1/a - 1 = -1 for a=1.
    assert equation(np.array([12.0]))[0] == pytest.approx(-1.0)


def test_revised_form_beats_equation_2_on_quadratic_truth():
    window = 3
    t = np.arange(window + 1, dtype=np.float64)
    s = (t / window) ** 2 - 1.0
    rmse = compare_signature_models(t, s, window, FailureType.LOGICAL)
    assert rmse["revised_second_order"] < rmse["equation_2"]
    assert rmse["revised_second_order"] < rmse["first_order"]


def test_third_order_wins_on_cubic_truth():
    window = 12
    t = np.arange(window + 1, dtype=np.float64)
    s = (t / window) ** 3 - 1.0
    rmse = compare_signature_models(t, s, window, FailureType.HEAD)
    assert min(rmse, key=lambda k: rmse[k]) == "simplified_third_order"


def test_first_order_wins_on_linear_truth():
    window = 377
    t = np.arange(window + 1, dtype=np.float64)
    s = t / window - 1.0
    rmse = compare_signature_models(t, s, window, FailureType.BAD_SECTOR)
    assert min(rmse, key=lambda k: rmse[k]) == "first_order"


def test_signature_for_type_dispatches():
    signature = signature_for_type(FailureType.HEAD, window=24)
    assert signature(np.array([12.0]))[0] == pytest.approx(
        (12.0 / 24.0) ** 3 - 1.0
    )


class TestPredictionTarget:
    def test_failure_instant_is_minus_one(self):
        target = prediction_target(FailureType.LOGICAL, np.array([0.0]))
        assert target[0] == pytest.approx(-1.0)

    def test_saturates_at_good_state(self):
        target = prediction_target(FailureType.LOGICAL,
                                   np.array([0.0, 12.0, 100.0, 480.0]))
        assert target[1] == pytest.approx(0.0)
        assert target[2] == 1.0
        assert target[3] == 1.0

    def test_custom_window(self):
        target = prediction_target(FailureType.BAD_SECTOR, np.array([50.0]),
                                   window=100)
        assert target[0] == pytest.approx(-0.5)


def test_invalid_parameters():
    with pytest.raises(SignatureError):
        canonical_signature(0, 10)
    with pytest.raises(SignatureError):
        canonical_signature(2, 0)
    with pytest.raises(SignatureError):
        paper_equation_5(10, a=0.0)
    with pytest.raises(SignatureError):
        compare_signature_models(np.arange(3.0), np.arange(4.0), 2,
                                 FailureType.LOGICAL)
