"""Tests for the Gaussian HMM and the two-model detector."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.hmm import GaussianHMM, HMMDetector


def two_state_sequences(rng, n_sequences=20, length=60,
                        means=(0.0, 5.0), stay=0.95):
    """Sequences from a known two-state switching process."""
    sequences = []
    for _ in range(n_sequences):
        state = rng.integers(0, 2)
        values = []
        for _ in range(length):
            if rng.random() > stay:
                state = 1 - state
            values.append(rng.normal(means[state], 0.5))
        sequences.append(np.array(values).reshape(-1, 1))
    return sequences


class TestGaussianHMM:
    def test_recovers_state_means(self, rng):
        model = GaussianHMM(n_states=2, seed=1).fit(
            two_state_sequences(rng)
        )
        recovered = sorted(float(m) for m in model.means_[:, 0])
        assert recovered[0] == pytest.approx(0.0, abs=0.3)
        assert recovered[1] == pytest.approx(5.0, abs=0.3)

    def test_learns_sticky_transitions(self, rng):
        model = GaussianHMM(n_states=2, seed=1).fit(
            two_state_sequences(rng, stay=0.97)
        )
        transition = np.exp(model.transition_log_)
        assert transition[0, 0] > 0.8
        assert transition[1, 1] > 0.8

    def test_likelihood_increases_with_training(self, rng):
        sequences = two_state_sequences(rng, n_sequences=10)
        barely = GaussianHMM(n_states=2, n_iter=1, seed=1).fit(sequences)
        trained = GaussianHMM(n_states=2, n_iter=40, seed=1).fit(sequences)
        barely_score = sum(barely.score(s) for s in sequences)
        trained_score = sum(trained.score(s) for s in sequences)
        assert trained_score >= barely_score - 1e-6

    def test_score_prefers_matching_data(self, rng):
        model = GaussianHMM(n_states=2, seed=1).fit(
            two_state_sequences(rng)
        )
        matching = two_state_sequences(rng, n_sequences=1)[0]
        alien = rng.normal(50.0, 0.5, size=(60, 1))
        assert model.score_per_observation(matching) > \
            model.score_per_observation(alien)

    def test_multivariate_sequences(self, rng):
        sequences = [rng.normal(size=(40, 4)) for _ in range(5)]
        model = GaussianHMM(n_states=3, seed=2).fit(sequences)
        assert model.means_.shape == (3, 4)
        assert np.isfinite(model.score(sequences[0]))

    def test_single_state_degenerates_to_gaussian(self, rng):
        data = [rng.normal(2.0, 1.0, size=(100, 1)) for _ in range(3)]
        model = GaussianHMM(n_states=1, seed=0).fit(data)
        assert model.means_[0, 0] == pytest.approx(2.0, abs=0.2)

    def test_validation(self, rng):
        with pytest.raises(ModelError):
            GaussianHMM(n_states=0)
        with pytest.raises(ModelError):
            GaussianHMM().fit([])
        with pytest.raises(ModelError):
            GaussianHMM().fit([np.zeros((5, 2)), np.zeros((5, 3))])
        with pytest.raises(ModelError):
            GaussianHMM().score(np.zeros((5, 1)))


class TestHMMDetector:
    def test_separates_regimes(self, rng):
        good = [rng.normal(0.0, 1.0, size=(48, 2)) for _ in range(15)]
        failed = [rng.normal(3.0, 1.0, size=(48, 2)) for _ in range(15)]
        detector = HMMDetector(n_states=2, seed=3).fit(good, failed)
        assert detector.flag(rng.normal(3.0, 1.0, size=(48, 2)))
        assert not detector.flag(rng.normal(0.0, 1.0, size=(48, 2)))

    def test_flag_many(self, rng):
        good = [rng.normal(0.0, 1.0, size=(48, 1)) for _ in range(10)]
        failed = [rng.normal(4.0, 1.0, size=(48, 1)) for _ in range(10)]
        detector = HMMDetector(n_states=2, seed=3).fit(good, failed)
        flags = detector.flag_many([
            rng.normal(0.0, 1.0, size=(48, 1)),
            rng.normal(4.0, 1.0, size=(48, 1)),
        ])
        assert flags.tolist() == [False, True]

    def test_margin_raises_the_bar(self, rng):
        good = [rng.normal(0.0, 1.0, size=(48, 1)) for _ in range(10)]
        failed = [rng.normal(1.0, 1.0, size=(48, 1)) for _ in range(10)]
        lax = HMMDetector(n_states=2, margin=-5.0, seed=3).fit(good, failed)
        strict = HMMDetector(n_states=2, margin=5.0, seed=3).fit(good, failed)
        probe = rng.normal(0.5, 1.0, size=(48, 1))
        assert lax.flag(probe)
        assert not strict.flag(probe)

    def test_needs_both_classes(self, rng):
        with pytest.raises(ModelError):
            HMMDetector().fit([], [np.zeros((5, 1))])
        with pytest.raises(ModelError):
            HMMDetector().flag(np.zeros((5, 1)))
