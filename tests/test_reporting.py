"""Tests for ASCII table/figure rendering."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.reporting.figures import (
    ascii_histogram,
    ascii_scatter,
    ascii_series,
    render_box_rows,
)
from repro.reporting.tables import ascii_table, format_float
from repro.stats.summary import box_summary


class TestTables:
    def test_table_contains_headers_and_cells(self):
        text = ascii_table(("name", "value"), [("alpha", 1.25), ("beta", 2)])
        assert "name" in text and "alpha" in text
        assert "+1.250" in text

    def test_title_rendered(self):
        text = ascii_table(("a",), [(1,)], title="My Table")
        assert text.startswith("My Table")

    def test_row_width_validated(self):
        with pytest.raises(ReproError):
            ascii_table(("a", "b"), [(1,)])
        with pytest.raises(ReproError):
            ascii_table((), [])

    def test_rows_align(self):
        text = ascii_table(("col",), [("x",), ("longer",)])
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1

    def test_format_float(self):
        assert format_float(0.5) == "+0.500"
        assert format_float(-12.3456) == "-12.346"
        assert format_float(float("nan")) == "nan"


class TestFigures:
    def test_histogram_bars_reflect_counts(self):
        values = np.concatenate([np.zeros(30), np.ones(10)])
        text = ascii_histogram(values, n_bins=2, width=30)
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert "30" in lines[0] and "10" in lines[1]

    def test_histogram_requires_data(self):
        with pytest.raises(ReproError):
            ascii_histogram(np.array([]))

    def test_series_renders_grid_and_legend(self):
        x = np.arange(10.0)
        text = ascii_series(x, {"up": x, "down": -x}, height=8, width=40)
        assert "legend:" in text
        assert "U=up" in text and "D=down" in text

    def test_series_skips_nan(self):
        x = np.arange(5.0)
        y = np.array([0.0, np.nan, 2.0, np.nan, 4.0])
        text = ascii_series(x, {"y": y})
        assert "Y" in text

    def test_series_validates_alignment(self):
        with pytest.raises(ReproError):
            ascii_series(np.arange(3.0), {"y": np.arange(4.0)})
        with pytest.raises(ReproError):
            ascii_series(np.arange(3.0), {})

    def test_scatter_places_all_groups(self):
        text = ascii_scatter({
            "alpha": (np.array([0.0]), np.array([0.0])),
            "beta": (np.array([1.0]), np.array([1.0])),
        })
        assert "A=alpha" in text and "B=beta" in text

    def test_scatter_duplicate_initials_get_distinct_markers(self):
        text = ascii_scatter({
            "group1": (np.array([0.0]), np.array([0.0])),
            "group2": (np.array([1.0]), np.array([1.0])),
        })
        legend = text.splitlines()[-1]
        markers = [part.split("=")[0].strip() for part in legend
                   .removeprefix("legend: ").split(", ")]
        assert len(set(markers)) == 2

    def test_box_rows_render_each_attribute(self):
        summaries = {
            "RRER": box_summary(np.array([-1.0, 0.0, 1.0])),
            "TC": box_summary(np.array([-0.5, 0.0, 0.5])),
        }
        text = render_box_rows(summaries)
        assert "RRER" in text and "TC" in text
        assert "=" in text and "|" in text

    def test_box_rows_need_input(self):
        with pytest.raises(ReproError):
            render_box_rows({})
