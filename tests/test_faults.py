"""Tests for the fault-injection harness (``repro.faults``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    ChaosConfig,
    corrupt_cache_entry,
    inject_dataset,
    parse_chaos_spec,
)
from repro.faults.injectors import OUTLIER_SCALE, corrupt_cache_entries
from repro.obs.observer import TelemetryObserver

EVERYTHING = ChaosConfig(seed=11, drop_rate=0.05, duplicate_rate=0.05,
                         disorder_rate=0.3, truncate_rate=0.2,
                         blackout_rate=0.2, nan_rate=0.03, outlier_rate=0.02)


# -- spec parsing -----------------------------------------------------------


def test_parse_chaos_spec_roundtrip():
    config = parse_chaos_spec("drop=0.1, nan=0.05, seed=7")
    assert config == ChaosConfig(seed=7, drop_rate=0.1, nan_rate=0.05)
    assert config.active


def test_parse_chaos_spec_rejects_unknown_key():
    with pytest.raises(FaultInjectionError, match="unknown fault class"):
        parse_chaos_spec("drop=0.1,gremlins=0.5")


def test_parse_chaos_spec_rejects_malformed_token():
    with pytest.raises(FaultInjectionError, match="key=value"):
        parse_chaos_spec("drop")


def test_parse_chaos_spec_rejects_duplicate_key():
    with pytest.raises(FaultInjectionError, match="duplicate"):
        parse_chaos_spec("drop=0.1,drop=0.2")


def test_parse_chaos_spec_rejects_unparsable_value():
    with pytest.raises(FaultInjectionError, match="cannot parse"):
        parse_chaos_spec("drop=lots")


def test_parse_chaos_spec_requires_a_fault_class():
    with pytest.raises(FaultInjectionError, match="names no fault class"):
        parse_chaos_spec("seed=7")


def test_chaos_config_validates_rates():
    with pytest.raises(FaultInjectionError, match=r"\[0, 1\]"):
        ChaosConfig(drop_rate=1.5)
    with pytest.raises(FaultInjectionError, match=r"\[0, 1\]"):
        ChaosConfig(nan_rate=-0.1)


def test_inactive_config_injects_nothing(small_dataset):
    raw, log = inject_dataset(small_dataset, ChaosConfig(seed=3))
    assert log.total == 0
    assert len(raw) == len(small_dataset.profiles)
    for corrupted, original in zip(raw, small_dataset.profiles):
        assert np.array_equal(corrupted.hours, original.hours)
        assert np.array_equal(corrupted.matrix, original.matrix)


# -- determinism ------------------------------------------------------------


def test_equal_configs_corrupt_byte_identically(small_dataset):
    first, first_log = inject_dataset(small_dataset, EVERYTHING)
    second, second_log = inject_dataset(small_dataset, EVERYTHING)
    assert first_log.to_dict() == second_log.to_dict()
    for a, b in zip(first, second):
        assert a.serial == b.serial
        assert a.hours.tobytes() == b.hours.tobytes()
        assert a.matrix.tobytes() == b.matrix.tobytes()


def test_different_seeds_corrupt_differently(small_dataset):
    base = inject_dataset(small_dataset, EVERYTHING)[0]
    other = inject_dataset(
        small_dataset,
        ChaosConfig(**{**{f: getattr(EVERYTHING, f)
                          for f in ("drop_rate", "duplicate_rate",
                                    "disorder_rate", "truncate_rate",
                                    "blackout_rate", "nan_rate",
                                    "outlier_rate")}, "seed": 12}),
    )[0]
    assert any(a.hours.tobytes() != b.hours.tobytes()
               or a.matrix.tobytes() != b.matrix.tobytes()
               for a, b in zip(base, other))


def test_fault_classes_use_independent_streams(small_dataset):
    """Enabling a second fault class must not move the first one's
    decisions — each class draws from its own child stream."""
    drop_only = ChaosConfig(seed=5, drop_rate=0.1)
    drop_and_nan = ChaosConfig(seed=5, drop_rate=0.1, nan_rate=0.2)
    _, log_a = inject_dataset(small_dataset, drop_only)
    _, log_b = inject_dataset(small_dataset, drop_and_nan)
    assert log_a.counts["drop"] == log_b.counts["drop"]


def test_input_dataset_is_never_mutated(small_dataset):
    before = [(p.hours.copy(), p.matrix.copy())
              for p in small_dataset.profiles]
    inject_dataset(small_dataset, EVERYTHING)
    for profile, (hours, matrix) in zip(small_dataset.profiles, before):
        assert np.array_equal(profile.hours, hours)
        assert np.array_equal(profile.matrix, matrix)


# -- injected shapes --------------------------------------------------------


def test_outliers_land_at_the_documented_scale(small_dataset):
    raw, log = inject_dataset(small_dataset,
                              ChaosConfig(seed=2, outlier_rate=0.05))
    assert log.counts["outlier"] > 0
    extremes = np.concatenate([np.abs(p.matrix).max(axis=None, keepdims=True)
                               for p in raw])
    assert extremes.max() >= OUTLIER_SCALE


def test_log_counts_cover_every_active_class(small_dataset):
    observer = TelemetryObserver()
    _, log = inject_dataset(small_dataset, EVERYTHING, observer=observer)
    assert set(log.counts) == {"drop", "duplicate", "disorder", "truncate",
                               "blackout", "nan", "outlier"}
    assert log.to_dict()["total_faults"] == log.total > 0
    snapshot = observer.metrics.snapshot()
    assert snapshot["faults_injected"]["value"] == log.total
    assert snapshot["faults_injected_drop"]["value"] == log.counts["drop"]


# -- cache corruption -------------------------------------------------------


def test_corrupt_cache_entry_is_deterministic(tmp_path):
    payload = bytes(range(256)) * 8
    first = tmp_path / "a.npz"
    first.write_bytes(payload)
    assert corrupt_cache_entry(first, seed=4) == 8
    assert first.read_bytes() != payload
    # Equal seed and file name flip the same bits, wherever the file lives.
    twin = tmp_path / "elsewhere" / "a.npz"
    twin.parent.mkdir()
    twin.write_bytes(payload)
    corrupt_cache_entry(twin, seed=4)
    assert first.read_bytes() == twin.read_bytes()


def test_corrupt_cache_entry_edge_cases(tmp_path):
    empty = tmp_path / "empty.npz"
    empty.write_bytes(b"")
    assert corrupt_cache_entry(empty) == 0
    target = tmp_path / "t.npz"
    target.write_bytes(b"xy")
    with pytest.raises(FaultInjectionError, match="n_flips"):
        corrupt_cache_entry(target, n_flips=0)
    # More flips requested than bytes available: clamped, not an error.
    assert corrupt_cache_entry(target, n_flips=64) == 2


def test_corrupt_cache_entries_respects_the_rate(tmp_path):
    for name in ("one", "two", "three"):
        (tmp_path / f"{name}.npz").write_bytes(b"payload-" + name.encode())
    untouched = corrupt_cache_entries(tmp_path, ChaosConfig(seed=1))
    assert untouched == []
    hit = corrupt_cache_entries(tmp_path,
                                ChaosConfig(seed=1, bitflip_rate=1.0))
    assert [p.name for p in hit] == ["one.npz", "three.npz", "two.npz"]
