"""Tests for the metrics registry: kinds, quantiles, snapshots."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import Histogram, MetricsRegistry


def test_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("drives_processed")
    counter.inc()
    counter.inc(41)
    assert registry.counter("drives_processed").value == 42


def test_counter_rejects_negative_increment():
    with pytest.raises(ObservabilityError, match="cannot decrease"):
        MetricsRegistry().counter("c").inc(-1)


def test_gauge_is_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("clusters_found").set(5)
    registry.gauge("clusters_found").set(3)
    assert registry.gauge("clusters_found").value == 3.0


def test_same_name_returns_same_instance():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")


def test_kind_clash_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ObservabilityError, match="already registered"):
        registry.gauge("x")


def test_histogram_quantiles_exact_on_known_data():
    histogram = Histogram("window_length")
    for value in range(1, 101):  # 1..100
        histogram.observe(float(value))
    assert histogram.count == 100
    assert histogram.mean == pytest.approx(50.5)
    assert histogram.quantile(0.0) == 1.0
    assert histogram.quantile(1.0) == 100.0
    assert histogram.quantile(0.5) == pytest.approx(50.5)
    assert histogram.quantile(0.9) == pytest.approx(90.1)


def test_histogram_single_value():
    histogram = Histogram("h")
    histogram.observe(7.0)
    assert histogram.quantile(0.5) == 7.0
    snap = histogram.snapshot()
    assert snap["min"] == snap["max"] == snap["p99"] == 7.0


def test_histogram_rejects_non_finite():
    with pytest.raises(ObservabilityError, match="non-finite"):
        Histogram("h").observe(float("nan"))


def test_histogram_rejects_quantile_out_of_range():
    with pytest.raises(ObservabilityError, match="outside"):
        Histogram("h").quantile(1.5)


def test_empty_histogram_snapshot_has_count_only():
    assert Histogram("h").snapshot() == {"kind": "histogram", "count": 0}


def test_snapshot_is_sorted_and_json_serializable():
    registry = MetricsRegistry()
    registry.counter("zeta").inc()
    registry.gauge("alpha").set(1.5)
    registry.histogram("mid").observe(2.0)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["alpha", "mid", "zeta"]
    assert snapshot["alpha"] == {"kind": "gauge", "value": 1.5}
    parsed = json.loads(registry.to_json())
    assert parsed["mid"]["count"] == 1


def test_render_text_lists_every_metric():
    registry = MetricsRegistry()
    registry.counter("drives_processed").inc(500)
    registry.histogram("window_length").observe(12.0)
    registry.histogram("empty")
    text = registry.render_text()
    lines = text.splitlines()
    assert len(lines) == 3
    assert "drives_processed" in text
    assert "count=1" in text
    assert "count=0" in text


def test_registry_len_and_contains():
    registry = MetricsRegistry()
    assert "x" not in registry
    registry.counter("x")
    assert "x" in registry
    assert len(registry) == 1
    assert registry.names() == ("x",)
