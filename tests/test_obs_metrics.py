"""Tests for the metrics registry: kinds, quantiles, snapshots,
bounded streaming state, labels and cross-process merging."""

import json
import sys

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    DEFAULT_HISTOGRAM_RETENTION,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("drives_processed")
    counter.inc()
    counter.inc(41)
    assert registry.counter("drives_processed").value == 42


def test_counter_rejects_negative_increment():
    with pytest.raises(ObservabilityError, match="cannot decrease"):
        MetricsRegistry().counter("c").inc(-1)


def test_gauge_is_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("clusters_found").set(5)
    registry.gauge("clusters_found").set(3)
    assert registry.gauge("clusters_found").value == 3.0


def test_same_name_returns_same_instance():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")


def test_kind_clash_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ObservabilityError, match="already registered"):
        registry.gauge("x")


def test_histogram_quantiles_exact_on_known_data():
    histogram = Histogram("window_length")
    for value in range(1, 101):  # 1..100
        histogram.observe(float(value))
    assert histogram.count == 100
    assert histogram.mean == pytest.approx(50.5)
    assert histogram.quantile(0.0) == 1.0
    assert histogram.quantile(1.0) == 100.0
    assert histogram.quantile(0.5) == pytest.approx(50.5)
    assert histogram.quantile(0.9) == pytest.approx(90.1)


def test_histogram_single_value():
    histogram = Histogram("h")
    histogram.observe(7.0)
    assert histogram.quantile(0.5) == 7.0
    snap = histogram.snapshot()
    assert snap["min"] == snap["max"] == snap["p99"] == 7.0


def test_histogram_rejects_non_finite():
    with pytest.raises(ObservabilityError, match="non-finite"):
        Histogram("h").observe(float("nan"))


def test_histogram_rejects_quantile_out_of_range():
    with pytest.raises(ObservabilityError, match="outside"):
        Histogram("h").quantile(1.5)


def test_empty_histogram_snapshot_has_count_only():
    assert Histogram("h").snapshot() == {"kind": "histogram", "count": 0}


def test_snapshot_is_sorted_and_json_serializable():
    registry = MetricsRegistry()
    registry.counter("zeta").inc()
    registry.gauge("alpha").set(1.5)
    registry.histogram("mid").observe(2.0)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["alpha", "mid", "zeta"]
    assert snapshot["alpha"] == {"kind": "gauge", "value": 1.5}
    parsed = json.loads(registry.to_json())
    assert parsed["mid"]["count"] == 1


def test_render_text_lists_every_metric():
    registry = MetricsRegistry()
    registry.counter("drives_processed").inc(500)
    registry.histogram("window_length").observe(12.0)
    registry.histogram("empty")
    text = registry.render_text()
    lines = text.splitlines()
    assert len(lines) == 3
    assert "drives_processed" in text
    assert "count=1" in text
    assert "count=0" in text


def test_registry_len_and_contains():
    registry = MetricsRegistry()
    assert "x" not in registry
    registry.counter("x")
    assert "x" in registry
    assert len(registry) == 1
    assert registry.names() == ("x",)

# -- bounded streaming state ----------------------------------------------


def test_histogram_streaming_state_is_bounded_over_a_million_samples():
    """The regression the streaming upgrade exists for: histogram memory
    must stay O(retention) no matter how long the stream runs."""
    histogram = Histogram("verdict_stage")
    for i in range(1_000_000):
        histogram.observe((i % 1000) / 1000.0)
    assert histogram.count == 1_000_000
    assert histogram.retained <= DEFAULT_HISTOGRAM_RETENTION
    assert sys.getsizeof(histogram._values) < 10 * DEFAULT_HISTOGRAM_RETENTION
    # exact aggregates survive compaction untouched
    assert histogram.min == 0.0
    assert histogram.max == 0.999
    assert histogram.mean == pytest.approx(0.4995)
    # quantiles stay close even from the compacted reservoir
    assert histogram.quantile(0.5) == pytest.approx(0.5, abs=0.02)
    assert sum(histogram.bucket_counts()) == 1_000_000


def test_histogram_quantiles_exact_below_retention_cap():
    bounded = Histogram("h", retention=DEFAULT_HISTOGRAM_RETENTION)
    exact = Histogram("h", retention=None)
    for value in range(1, 1001):
        bounded.observe(float(value))
        exact.observe(float(value))
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert bounded.quantile(q) == exact.quantile(q)


def test_histogram_unbounded_retention_keeps_everything():
    histogram = Histogram("h", retention=None)
    for i in range(20_000):
        histogram.observe(float(i))
    assert histogram.retained == 20_000


def test_histogram_compaction_is_deterministic():
    a = Histogram("h")
    b = Histogram("h")
    for i in range(50_000):
        a.observe(float(i % 977))
        b.observe(float(i % 977))
    assert a._values == b._values
    assert a.quantile(0.5) == b.quantile(0.5)


def test_histogram_cumulative_buckets_end_at_inf():
    histogram = Histogram("h")
    histogram.observe(-2.0)
    histogram.observe(0.3)
    histogram.observe(1e9)  # beyond the largest finite bound
    pairs = histogram.cumulative_buckets()
    assert len(pairs) == len(BUCKET_BOUNDS) + 1
    assert pairs[-1][0] == float("inf")
    assert pairs[-1][1] == 3
    cumulative = [count for _bound, count in pairs]
    assert cumulative == sorted(cumulative)


def test_histogram_retention_must_be_positive():
    with pytest.raises(ObservabilityError, match="retention"):
        Histogram("h", retention=0)


# -- labels ----------------------------------------------------------------


def test_labeled_metrics_are_distinct_series():
    registry = MetricsRegistry()
    registry.counter("telemetry_requests", labels={"endpoint": "metrics"}).inc(2)
    registry.counter("telemetry_requests", labels={"endpoint": "health"}).inc()
    snapshot = registry.snapshot()
    assert snapshot['telemetry_requests{endpoint="metrics"}']["value"] == 2.0
    assert snapshot['telemetry_requests{endpoint="health"}']["value"] == 1.0


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    a = registry.counter("c", labels={"x": "1", "y": "2"})
    b = registry.counter("c", labels={"y": "2", "x": "1"})
    assert a is b


def test_kind_clash_enforced_across_label_sets():
    registry = MetricsRegistry()
    registry.counter("x", labels={"a": "1"})
    with pytest.raises(ObservabilityError, match="already registered"):
        registry.gauge("x", labels={"b": "2"})


def test_metric_names_must_be_snake_case():
    with pytest.raises(ObservabilityError, match="snake_case"):
        MetricsRegistry().counter("Bad-Name")


# -- cross-process state merging ------------------------------------------


def test_merge_state_adds_counters_and_merges_histograms():
    worker = MetricsRegistry()
    worker.counter("samples_scored").inc(10)
    worker.gauge("drives_tracked").set(4)
    for value in (1.0, 2.0, 3.0):
        worker.histogram("verdict_stage").observe(value)

    parent = MetricsRegistry()
    parent.counter("samples_scored").inc(5)
    parent.merge_state(worker.dump_state())
    parent.merge_state(worker.dump_state())

    assert parent.counter("samples_scored").value == 25.0
    assert parent.gauge("drives_tracked").value == 4.0
    merged = parent.histogram("verdict_stage")
    assert merged.count == 6
    assert merged.sum == pytest.approx(12.0)
    assert merged.min == 1.0 and merged.max == 3.0


def test_merge_preserves_labels():
    worker = MetricsRegistry()
    worker.counter("telemetry_requests", labels={"endpoint": "metrics"}).inc(3)
    parent = MetricsRegistry()
    parent.merge_state(worker.dump_state())
    key = 'telemetry_requests{endpoint="metrics"}'
    assert parent.snapshot()[key]["value"] == 3.0


def test_merged_equals_single_stream():
    """Splitting a stream across registries and merging equals one
    registry that saw everything — the serial==parallel contract."""
    whole = MetricsRegistry()
    parts = [MetricsRegistry() for _ in range(4)]
    for i in range(4000):
        whole.histogram("h").observe(float(i))
        parts[i % 4].histogram("h").observe(float(i))
    merged = MetricsRegistry()
    for part in parts:
        merged.merge_state(part.dump_state())
    a, b = merged.histogram("h"), whole.histogram("h")
    assert a.count == b.count
    assert a.sum == b.sum
    assert a.bucket_counts() == b.bucket_counts()
