"""Golden equivalence tests for the vectorized ML kernels.

The batched rewrites in ``repro.ml`` (SVC connectivity, presort CART,
length-grouped HMM forward/backward, expanded-form k-means distances)
claim bit-level compatibility with the loop-based implementations they
replaced.  These tests hold them to it against the frozen references in
``repro.ml._reference``: identical labels, identical tree structure,
identical log-likelihoods — not merely "close".
"""

import numpy as np
import pytest

from repro.ml._reference import (
    ReferenceGaussianHMM,
    ReferenceRegressionTree,
    reference_connectivity_labels,
    reference_kmeans_plus_plus,
    reference_pairwise_sq_distances,
)
from repro.ml.hmm import GaussianHMM
from repro.ml.kmeans import KMeans, _pairwise_sq_distances
from repro.ml.svc import SupportVectorClustering
from repro.ml.tree import RegressionTree


def make_blobs(rng, centers, n_per, scale=0.35):
    points = [center + rng.normal(0.0, scale, size=(n_per, len(center)))
              for center in centers]
    return np.vstack(points)


class TestSVCConnectivityGolden:
    @pytest.mark.parametrize("seed,centers,q", [
        (0, [(0.0, 0.0), (4.0, 4.0)], 1.0),
        (1, [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)], None),
        (2, [(0.0, 0.0), (3.0, 3.0), (6.0, 0.0), (3.0, -3.0)], 0.8),
    ])
    def test_labels_match_pairwise_reference(self, seed, centers, q):
        rng = np.random.default_rng(seed)
        data = make_blobs(rng, centers, 18)
        model = SupportVectorClustering(gaussian_width=q).fit(data)
        expected = reference_connectivity_labels(model, data)
        assert model.labels_ is not None
        assert np.array_equal(model.labels_, expected)
        assert model.labels_.shape == (data.shape[0],)

    def test_soft_margin_outliers(self):
        rng = np.random.default_rng(7)
        data = make_blobs(rng, [(0.0, 0.0), (4.5, 4.5)], 20)
        data[0] = (2.2, 2.3)  # a stray point between the blobs
        model = SupportVectorClustering(gaussian_width=1.2, soft_margin=0.2).fit(data)
        expected = reference_connectivity_labels(model, data)
        assert np.array_equal(model.labels_, expected)


class TestTreeGolden:
    def assert_same_structure(self, a, b):
        assert a.value == b.value
        assert a.n_samples == b.n_samples
        assert a.sse == b.sse
        assert a.feature_index == b.feature_index
        assert a.threshold == b.threshold
        assert (a.left is None) == (b.left is None)
        if a.left is not None:
            self.assert_same_structure(a.left, b.left)
            self.assert_same_structure(a.right, b.right)

    @pytest.mark.parametrize("seed,quantize", [(0, False), (1, True),
                                               (2, False)])
    def test_structure_matches_resorting_reference(self, seed, quantize):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(600, 6))
        if quantize:  # heavy ties exercise the stable-partition argument
            features = np.round(features * 2.0) / 2.0
        targets = (features[:, 0] * 1.5 - np.abs(features[:, 1])
                   + rng.normal(0.0, 0.2, size=600))
        fast = RegressionTree(max_depth=6).fit(features, targets)
        slow = ReferenceRegressionTree(max_depth=6).fit(features, targets)
        self.assert_same_structure(fast.root_, slow.root_)
        assert fast.n_leaves() == slow.n_leaves()
        probe = rng.normal(size=(200, 6))
        assert np.array_equal(fast.predict(probe), slow.predict(probe))


class TestHMMGolden:
    def make_windows(self, rng, n, lengths, shift):
        return [rng.normal(shift, 1.0, size=(lengths[i % len(lengths)], 3))
                for i in range(n)]

    def test_fit_and_scores_match_sequential_reference(self):
        rng = np.random.default_rng(3)
        windows = self.make_windows(rng, 30, [10, 16, 16, 5], 0.0)
        held_out = self.make_windows(rng, 8, [12, 9], 1.0)

        fast = GaussianHMM(3, seed=5).fit(windows)
        slow = ReferenceGaussianHMM(3, seed=5).fit(windows)
        for attribute in ("start_log_", "transition_log_", "means_",
                          "variances_"):
            assert np.array_equal(getattr(fast, attribute),
                                  getattr(slow, attribute)), attribute
        for window in held_out:
            assert fast.score(window) == slow.score(window)
        batched = fast.score_many(held_out)
        assert np.array_equal(
            batched, np.array([slow.score(w) for w in held_out]))


class TestKMeansEquivalence:
    """The expanded-form distances are a (documented) fp reformulation,
    so distances are compared to tolerance — but cluster assignments on
    separable data must not move."""

    def test_pairwise_distances_close_and_nonnegative(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(300, 30))
        centers = rng.normal(size=(5, 30))
        fast = _pairwise_sq_distances(data, centers)
        slow = reference_pairwise_sq_distances(data, centers)
        assert np.allclose(fast, slow, rtol=1.0e-9, atol=1.0e-9)
        assert np.all(fast >= 0.0)

    def test_seeding_and_labels_match_reference(self):
        rng = np.random.default_rng(4)
        data = make_blobs(rng, [(0.0,) * 8, (6.0,) * 8, (-6.0, 6.0) * 4], 40)
        model = KMeans(3, seed=9).fit(data)
        seeded_fast = model._kmeans_plus_plus(data,
                                              np.random.default_rng(21))
        seeded_slow = reference_kmeans_plus_plus(3, data,
                                                 np.random.default_rng(21))
        assert np.array_equal(seeded_fast, seeded_slow)
        # Ground-truth partition: each blob of 40 lands in one cluster.
        labels = model.labels_.reshape(3, 40)
        assert all(len(set(row.tolist())) == 1 for row in labels)
