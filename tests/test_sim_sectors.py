"""Tests for the sector-pool dynamics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SimulationError
from repro.sim.sectors import SectorPool


def test_reallocations_accumulate_write_errors():
    pool = SectorPool(spare_sectors=100)
    history = pool.simulate(np.array([1.0, 2.0, 0.0, 3.0]), np.zeros(4))
    np.testing.assert_allclose(history.reallocated, [1.0, 3.0, 3.0, 6.0])


def test_reallocations_cap_at_spare_pool():
    pool = SectorPool(spare_sectors=5)
    history = pool.simulate(np.full(10, 2.0), np.zeros(10))
    assert history.reallocated[-1] == 5.0
    assert np.all(np.diff(history.reallocated) >= 0)


def test_initial_reallocated_offsets_the_counter():
    pool = SectorPool(spare_sectors=100)
    history = pool.simulate(np.array([1.0, 1.0]), np.zeros(2),
                            initial_reallocated=10.0)
    np.testing.assert_allclose(history.reallocated, [11.0, 12.0])


def test_pending_reaches_steady_state_under_constant_arrivals():
    pool = SectorPool(spare_sectors=100, recover_prob=0.02,
                      uncorrectable_prob=0.015)
    arrivals = np.full(2000, 1.0)
    history = pool.simulate(np.zeros(2000), arrivals)
    steady = 1.0 / (pool.recover_prob + pool.uncorrectable_prob)
    assert history.pending[-1] == pytest.approx(steady, rel=0.01)


def test_uncorrectable_grows_linearly_in_steady_state():
    pool = SectorPool(spare_sectors=100)
    arrivals = np.full(2000, 1.0)
    history = pool.simulate(np.zeros(2000), arrivals)
    late = history.uncorrectable[-500:]
    slopes = np.diff(late)
    assert np.allclose(slopes, slopes[0], rtol=0.01)


def test_initial_pending_decays_without_arrivals():
    pool = SectorPool(spare_sectors=100, recover_prob=0.2,
                      uncorrectable_prob=0.1)
    history = pool.simulate(np.zeros(50), np.zeros(50),
                            initial_pending=100.0)
    assert history.pending[0] == pytest.approx(70.0)
    assert history.pending[-1] < 1.0
    # The decayed sectors escalate at the configured fraction.
    assert history.uncorrectable[-1] == pytest.approx(
        100.0 * pool.uncorrectable_prob
        / (pool.uncorrectable_prob + pool.recover_prob),
        rel=0.01,
    )


def test_initial_uncorrectable_offsets_the_counter():
    pool = SectorPool(spare_sectors=10)
    history = pool.simulate(np.zeros(3), np.zeros(3),
                            initial_uncorrectable=7.0)
    np.testing.assert_allclose(history.uncorrectable, [7.0, 7.0, 7.0])


def test_mismatched_series_rejected():
    pool = SectorPool(spare_sectors=10)
    with pytest.raises(SimulationError):
        pool.simulate(np.zeros(3), np.zeros(4))


def test_negative_counts_rejected():
    pool = SectorPool(spare_sectors=10)
    with pytest.raises(SimulationError):
        pool.simulate(np.array([-1.0]), np.array([0.0]))


def test_invalid_probabilities_rejected():
    with pytest.raises(SimulationError):
        SectorPool(spare_sectors=10, recover_prob=0.8, uncorrectable_prob=0.5)
    with pytest.raises(SimulationError):
        SectorPool(spare_sectors=0)
    with pytest.raises(SimulationError):
        SectorPool(spare_sectors=10, recover_prob=-0.1)


@settings(max_examples=50, deadline=None)
@given(
    write_errors=hnp.arrays(np.float64, 30, elements=st.floats(0, 10)),
    scans=hnp.arrays(np.float64, 30, elements=st.floats(0, 10)),
)
def test_invariants_under_arbitrary_event_streams(write_errors, scans):
    pool = SectorPool(spare_sectors=50)
    history = pool.simulate(write_errors, scans)
    assert np.all(history.pending >= -1e-9)
    assert np.all(np.diff(history.reallocated) >= -1e-9)
    assert np.all(np.diff(history.uncorrectable) >= -1e-9)
    assert np.all(history.reallocated <= 50.0 + 1e-9)
    # Escalated errors can never exceed what ever arrived.
    assert history.uncorrectable[-1] <= scans.sum() + 1e-9
