"""Tests for the repro-serve CLI (and the --export-model training flow)."""

import csv
import json

import pytest

from repro.cli import main as characterize_main
from repro.serve.bundle import build_bundle, load_bundle, save_bundle
from repro.serve.cli import main as serve_main
from repro.serve.scorer import StreamScorer


@pytest.fixture(scope="module")
def bundle_path(mid_report, tmp_path_factory):
    bundle = build_bundle(mid_report, seed=7)
    path = tmp_path_factory.mktemp("serve-cli") / "fleet.bundle.json"
    save_bundle(bundle, path)
    return path


@pytest.fixture(scope="module")
def stream_csv(mid_fleet, bundle_path, tmp_path_factory):
    """A raw sample stream covering two failed and two good drives."""
    bundle = load_bundle(bundle_path)
    dataset = mid_fleet.dataset
    profiles = dataset.failed_profiles[:2] + dataset.good_profiles[:2]
    path = tmp_path_factory.mktemp("stream") / "stream.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["serial", "hour", *bundle.attributes])
        for profile in profiles:
            for hour, row in zip(profile.hours, profile.matrix):
                writer.writerow([profile.serial, int(hour),
                                 *(repr(float(v)) for v in row)])
    return path, profiles


def test_export_model_flow(tmp_path, capsys):
    out = tmp_path / "exported.bundle.json"
    assert characterize_main(["--simulate", "1200", "--seed", "7",
                              "--export-model", str(out)]) == 0
    assert "model bundle written" in capsys.readouterr().out
    bundle = load_bundle(out)
    assert bundle.trained_on["n_drives"] == 1200


def test_export_model_requires_prediction(tmp_path, capsys):
    out = tmp_path / "exported.bundle.json"
    assert characterize_main(["--simulate", "1200", "--seed", "7",
                              "--no-prediction",
                              "--export-model", str(out)]) == 2
    assert "--no-prediction" in capsys.readouterr().err
    assert not out.exists()


def test_score_stream_to_jsonl(bundle_path, stream_csv, tmp_path, capsys):
    path, profiles = stream_csv
    out = tmp_path / "verdicts.jsonl"
    assert serve_main(["score", "--bundle", str(bundle_path),
                       "--input", str(path), "--output", str(out)]) == 0
    err = capsys.readouterr().err
    n_samples = sum(len(profile.hours) for profile in profiles)
    assert f"scored {n_samples} samples" in err
    lines = out.read_text().splitlines()
    assert len(lines) == n_samples

    # byte-identical to scoring the same stream through the library
    scorer = StreamScorer(load_bundle(bundle_path))
    expected = [
        verdict.to_json_line()
        for profile in profiles
        for verdict in scorer.replay_profile(profile)
    ]
    assert sorted(lines) == sorted(expected)
    first = json.loads(lines[0])
    assert {"serial", "hour", "level", "stage", "likely_type",
            "stages"} <= set(first)


def test_score_alerts_only_filters(bundle_path, stream_csv, tmp_path):
    path, _ = stream_csv
    out = tmp_path / "alerts.jsonl"
    assert serve_main(["score", "--bundle", str(bundle_path),
                       "--input", str(path), "--output", str(out),
                       "--alerts-only"]) == 0
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines   # the stream includes failed drives
    assert all(line["level"] != "HEALTHY" for line in lines)


def test_score_rejects_foreign_header(bundle_path, tmp_path, capsys):
    bad = tmp_path / "bad.csv"
    bad.write_text("serial,hour,wrong_column\nD1,0,1.0\n")
    assert serve_main(["score", "--bundle", str(bundle_path),
                       "--input", str(bad)]) == 2
    assert "does not match" in capsys.readouterr().err


def test_score_missing_bundle_exits_2(tmp_path, capsys):
    assert serve_main(["score", "--bundle", str(tmp_path / "nope.json"),
                       "--input", str(tmp_path / "nope.csv")]) == 2
    assert "error:" in capsys.readouterr().err


def test_replay_with_jobs(bundle_path, tmp_path, capsys):
    out = tmp_path / "replay.jsonl"
    assert serve_main(["replay", "--bundle", str(bundle_path),
                       "--simulate", "80", "--seed", "7",
                       "--jobs", "2", "--output", str(out)]) == 0
    console = capsys.readouterr().out
    assert "replayed" in console and "samples/s" in console
    assert out.read_text().count("\n") > 0


def test_bench_reports_throughput(bundle_path, capsys):
    assert serve_main(["bench", "--bundle", str(bundle_path),
                       "--simulate", "20", "--seed", "3",
                       "--rounds", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["throughput"]["push_many_samples_per_s"] > 0
    assert payload["throughput"]["speedup"] > 0
    assert payload["bundle_load"]["best_s"] > 0


def test_serve_telemetry_artifacts(bundle_path, stream_csv, tmp_path):
    path, _ = stream_csv
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert serve_main(["score", "--bundle", str(bundle_path),
                       "--input", str(path),
                       "--output", str(tmp_path / "v.jsonl"),
                       "--trace", str(trace),
                       "--metrics", str(metrics)]) == 0
    spans = json.loads(trace.read_text())
    names = json.dumps(spans)
    assert "bundle-load" in names and "score-stream" in names
    snapshot = json.loads(metrics.read_text())
    assert snapshot["samples_scored"]["value"] > 0
