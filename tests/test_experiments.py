"""Tests for the experiment harness.

Each experiment runs on the shared mid-size fleet/report fixtures and is
checked against its paper shape target.  The registry and CLI are
exercised at the end.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ablation_distance,
    ablation_features,
    baselines_prediction,
    fig01_profile_durations,
    fig02_attribute_boxes,
    fig03_elbow,
    fig04_pca_groups,
    fig05_centroids,
    fig06_deciles,
    fig07_distance_series,
    fig08_poly_fits,
    fig09_rw_correlation,
    fig10_env_correlation,
    fig11_tc_zscores,
    fig12_poh_zscores,
    fig13_regression_tree,
    sig_model_selection,
    table1_attributes,
    table2_taxonomy,
    table3_prediction,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment


def test_table1_lists_the_twelve_attributes():
    result = table1_attributes.run()
    assert result.data["n_attributes"] == 12
    assert "RRER" in result.rendered


def test_fig1_profile_duration_fractions(mid_fleet):
    result = fig01_profile_durations.run(mid_fleet)
    assert 0.5 < result.data["fraction_over_10_days"] <= 1.0
    assert 0.3 < result.data["fraction_full_20_days"] < 0.75
    assert "paper: 78.5%" in result.rendered


def test_fig2_variation_split(mid_report):
    result = fig02_attribute_boxes.run(mid_report)
    spread = result.data["central_90_spread"]
    # The paper's "small variation" attributes vary less than the
    # "medium to large" ones, on average.
    small = np.mean([spread[s] for s in
                     ("CPSC", "R-CPSC", "SER", "HFW", "HER")])
    large = np.mean([spread[s] for s in
                     ("TC", "SUT", "POH", "RSC", "R-RSC")])
    assert small < large


def test_fig3_elbow_at_three(mid_report):
    result = fig03_elbow.run(mid_report)
    assert result.data["best_k"] == 3
    curve = np.array(result.data["average_distances"])
    assert curve[0] > curve[-1]


def test_fig4_group_counts(mid_report):
    result = fig04_pca_groups.run(mid_report)
    counts = result.data["counts"]
    assert counts["group1"] > counts["group3"] > counts["group2"]
    assert sum(counts.values()) == mid_report.records.n_records


def test_fig5_centroid_manifestations(mid_report):
    result = fig05_centroids.run(mid_report)
    from repro.core.taxonomy import FailureType
    values = result.data["centroid_values"]
    # G2 centroid: most uncorrectable errors (lowest RUE).
    assert values[FailureType.BAD_SECTOR]["RUE"] == min(
        v["RUE"] for v in values.values()
    )
    # G3 centroid: most reallocated sectors.
    assert values[FailureType.HEAD]["R-RSC"] == max(
        v["R-RSC"] for v in values.values()
    )


def test_fig6_decile_contrasts(mid_report):
    result = fig06_deciles.run(mid_report)
    deciles = result.data["deciles"]
    # G2 has the lowest RUE deciles.
    assert deciles["RUE"]["group2"][0] < deciles["RUE"]["group1"][0]
    assert deciles["RUE"]["group2"][0] < deciles["RUE"]["group3"][0]
    # G3's R-RSC deciles all sit near the top of the scale.
    assert np.all(deciles["R-RSC"]["group3"] > 0.8)


def test_table2_population_mix(mid_report):
    result = table2_taxonomy.run(mid_report)
    fractions = result.data["fractions"]
    assert fractions["LOGICAL"] == pytest.approx(0.596, abs=0.08)
    assert fractions["BAD_SECTOR"] == pytest.approx(0.076, abs=0.05)
    assert fractions["HEAD"] == pytest.approx(0.328, abs=0.08)


def test_fig7_group2_monotone_descent(mid_report):
    result = fig07_distance_series.run(mid_report)
    trend = result.data["descent_trend"]
    # G2 decreases essentially monotonically over the whole profile;
    # G1/G3 fluctuate around a plateau before the short final descent.
    assert trend["group2"] < -0.9
    assert trend["group2"] < trend["group1"]
    assert trend["group2"] < trend["group3"]


def test_fig8_windows_and_orders(mid_report):
    result = fig08_poly_fits.run(mid_report)
    assert result.data["group1"]["window"] <= 20
    assert result.data["group2"]["window"] >= 100
    assert 8 <= result.data["group3"]["window"] <= 40
    # Free order-3 fit is never worse than order-1 (nested models).
    for group in ("group1", "group2", "group3"):
        r2 = result.data[group]["r_squared"]
        assert r2[3] >= r2[1] - 1e-9


def test_sig_models_winners(mid_report):
    result = sig_model_selection.run(mid_report)
    assert result.data["group2"]["winner"] == "first_order"
    # The revised forms always beat the paper's rejected Eq. (2)/(5).
    group1 = result.data["group1"]["rmse"]
    assert group1["revised_second_order"] <= group1["equation_2"]


def test_fig9_dominant_attributes(mid_report):
    result = fig09_rw_correlation.run(mid_report)
    assert set(result.data["group2"]["top"]) <= {
        "RUE", "R-RSC", "CPSC", "R-CPSC", "RSC", "RRER", "HER", "SER"
    }
    g1_correlations = result.data["group1"]["correlations"]
    assert max(abs(g1_correlations["RRER"]), abs(g1_correlations["HER"])) > 0.5


def test_fig10_tc_uncorrelated(mid_report):
    result = fig10_env_correlation.run(mid_report)
    for group in ("group1", "group2", "group3"):
        for cell in result.data[group]["cells"]:
            if cell.environmental == "TC":
                assert abs(cell.correlation) < 0.75


def test_fig11_group1_hottest(mid_report):
    result = fig11_tc_zscores.run(mid_report)
    assert result.data["most_negative"] == "group1"
    assert all(value < 0 for value in result.data["means"].values())


def test_fig12_group3_oldest(mid_report):
    result = fig12_poh_zscores.run(mid_report)
    assert result.data["most_negative"] == "group3"


def test_fig13_group3_tree_uses_reallocations(mid_report):
    result = fig13_regression_tree.run(mid_report)
    assert result.data["g3_dominant_feature"] in ("R-RSC", "RSC")
    assert result.data["tree_text"].strip()


def test_table3_group1_hardest(mid_report):
    result = table3_prediction.run(mid_report)
    assert result.data["hardest"] == "group1"
    for group in ("group1", "group2", "group3"):
        assert result.data[group]["error_rate"] < 0.15


def test_baselines_ordering(mid_fleet):
    result = baselines_prediction.run(mid_fleet)
    assert result.data["ordering_holds"]
    assert result.data["vendor_threshold"]["far"] < 0.05


def test_ablation_distance_euclidean_wins(mid_report):
    result = ablation_distance.run(mid_report)
    assert result.data["euclidean_wins"]


def test_ablation_features_high_purity(mid_fleet):
    result = ablation_features.run(mid_fleet)
    purity = result.data["purity"]
    assert all(value > 0.9 for value in purity.values())


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 27

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table1")
        assert result.experiment_id == "table1"

    def test_cli_list(self, capsys):
        from repro.experiments.registry import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table3" in out

    def test_cli_no_arguments_shows_help(self, capsys):
        from repro.experiments.registry import main
        assert main([]) == 2

    def test_cli_unknown_id_errors(self, capsys):
        from repro.experiments.registry import main
        assert main(["bogus"]) == 1

    def test_result_str_contains_reference(self):
        result = run_experiment("table1")
        text = str(result)
        assert "table1" in text and "paper:" in text

    def test_cli_prints_duration_line_per_experiment(self, capsys):
        from repro.experiments.registry import main
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "[table1] finished in" in out

    def test_package_is_runnable_as_module(self):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--list"],
            capture_output=True, text=True,
        )
        assert result.returncode == 0
        assert "fig8" in result.stdout


class TestParallelRunner:
    """`run_many` / `--jobs`: deterministic fan-out of experiments."""

    @pytest.fixture()
    def small_scale(self):
        from repro.experiments import common
        saved = dict(common._active_scale)
        common.configure_default_fleet(n_drives=1500, seed=11)
        yield
        common._active_scale.update(saved)

    def test_run_many_matches_serial(self, small_scale):
        from repro.experiments.registry import run_many
        ids = ["table1", "fig3"]
        serial = run_many(ids, jobs=1)
        parallel = run_many(ids, jobs=2)
        assert [result.experiment_id for result, _ in parallel] == ids
        assert ([str(result) for result, _ in serial]
                == [str(result) for result, _ in parallel])
        assert all(wall_s >= 0.0 for _, wall_s in parallel)

    def test_run_many_unknown_id_fails_fast(self):
        from repro.experiments.registry import run_many
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_many(["table1", "fig99"], jobs=2)

    def test_run_many_emits_duration_and_jobs_telemetry(self, small_scale):
        from repro.experiments.common import set_pipeline_observer
        from repro.experiments.registry import run_many
        from repro.obs.observer import TelemetryObserver
        observer = TelemetryObserver()
        set_pipeline_observer(observer)
        try:
            run_many(["table1", "fig3"], jobs=1)
        finally:
            set_pipeline_observer(None)
        snapshot = observer.metrics.snapshot()
        assert snapshot["experiment_duration_s"]["count"] == 2
        assert snapshot["parallel_jobs"]["value"] == 1.0

    def test_cli_jobs_flag_renders_identically(self, small_scale, capsys):
        from repro.experiments.registry import main
        assert main(["table1", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(["table1"]) == 0
        serial_out = capsys.readouterr().out
        strip = lambda text: [line for line in text.splitlines()
                              if "finished in" not in line]
        assert strip(parallel_out) == strip(serial_out)
        assert "[table1] finished in" in parallel_out
