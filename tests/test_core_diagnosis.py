"""Tests for z-score diagnosis over failure groups."""

import numpy as np
import pytest

from repro.core.diagnosis import (
    distinguishing_attribute,
    group_attribute_z,
    temporal_group_z_scores,
)
from repro.core.taxonomy import FailureType


@pytest.fixture(scope="module")
def diagnosis_inputs(mid_report):
    return mid_report.dataset, mid_report.categorization


def test_tc_zscores_negative_for_all_groups(diagnosis_inputs):
    dataset, categorization = diagnosis_inputs
    z_by_group = group_attribute_z(dataset, categorization, "TC")
    assert set(z_by_group) == set(FailureType)
    for value in z_by_group.values():
        assert value < 0  # failed drives run hotter -> lower TC health


def test_logical_group_is_hottest(diagnosis_inputs):
    dataset, categorization = diagnosis_inputs
    z_by_group = group_attribute_z(dataset, categorization, "TC")
    assert z_by_group[FailureType.LOGICAL] == min(z_by_group.values())


def test_head_group_is_oldest(diagnosis_inputs):
    dataset, categorization = diagnosis_inputs
    z_by_group = group_attribute_z(dataset, categorization, "POH")
    assert z_by_group[FailureType.HEAD] == min(z_by_group.values())


def test_temporal_scores_cover_the_timeline(diagnosis_inputs):
    dataset, categorization = diagnosis_inputs
    by_group = temporal_group_z_scores(dataset, categorization, "TC",
                                       max_lag_hours=480, step_hours=24)
    for scores in by_group.values():
        assert scores.lags_hours[0] == 0
        assert scores.lags_hours[-1] == 480
        finite = scores.z_scores[np.isfinite(scores.z_scores)]
        assert finite.shape[0] >= 10


def test_temporal_mean_matches_pooled_sign(diagnosis_inputs):
    dataset, categorization = diagnosis_inputs
    by_group = temporal_group_z_scores(dataset, categorization, "TC",
                                       max_lag_hours=240, step_hours=24)
    assert by_group[FailureType.LOGICAL].mean_z() < 0


def test_distinguishing_attribute_finds_temperature(diagnosis_inputs):
    """The paper: TC is the attribute that singles out Group 1."""
    dataset, categorization = diagnosis_inputs
    best = distinguishing_attribute(
        dataset, categorization, FailureType.LOGICAL,
        candidates=("TC", "SER", "HFW"),
    )
    assert best == "TC"
