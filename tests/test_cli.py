"""Tests for the repro-characterize CLI."""

import json

import pytest

from repro.cli import main
from repro.data.loader import save_csv


def test_simulate_path(capsys):
    assert main(["--simulate", "1200", "--seed", "7",
                 "--no-prediction"]) == 0
    out = capsys.readouterr().out
    assert "loaded 1200 drives" in out
    assert "Failure taxonomy" in out
    assert "logical failures" in out


def test_csv_path_with_json_output(tmp_path, small_dataset, capsys):
    csv_path = tmp_path / "fleet.csv"
    save_csv(small_dataset, csv_path)
    json_path = tmp_path / "report.json"
    assert main(["--csv", str(csv_path), "--no-prediction",
                 "--json", str(json_path)]) == 0
    payload = json.loads(json_path.read_text())
    assert payload["n_failed_drives"] == len(small_dataset.failed_profiles)
    out = capsys.readouterr().out
    assert "report written" in out


def test_prediction_table_included(capsys):
    assert main(["--simulate", "1200", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "Degradation prediction quality" in out
    assert "error rate" in out


def test_missing_csv_errors(tmp_path, capsys):
    assert main(["--csv", str(tmp_path / "nope.csv")]) == 1
    assert "error:" in capsys.readouterr().err


def test_backblaze_glob_without_matches_errors(tmp_path, capsys):
    assert main(["--backblaze", str(tmp_path / "*.csv")]) == 1
    assert "no files match" in capsys.readouterr().err


def test_backblaze_path(tmp_path, small_dataset, capsys):
    from repro.data.backblaze import save_backblaze_csv
    save_backblaze_csv(small_dataset, tmp_path, model="M1")
    assert main(["--backblaze", str(tmp_path / "*.csv"),
                 "--model", "M1", "--no-prediction"]) == 0
    assert "Failure taxonomy" in capsys.readouterr().out


def test_too_few_failures_rejected(tmp_path, capsys):
    import numpy as np
    from repro.data.dataset import DiskDataset
    from repro.smart.profile import HealthProfile
    rng = np.random.default_rng(0)
    profiles = [
        HealthProfile(f"g{i}", np.arange(30),
                      rng.uniform(size=(30, 12)), failed=(i == 0))
        for i in range(10)
    ]
    path = tmp_path / "tiny.csv"
    save_csv(DiskDataset(profiles), path)
    assert main(["--csv", str(path)]) == 1
    assert "at least 3 failed drives" in capsys.readouterr().err


def test_requires_a_source():
    with pytest.raises(SystemExit):
        main([])
