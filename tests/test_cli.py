"""Tests for the repro-characterize CLI."""

import json

import pytest

from repro.cli import main
from repro.data.loader import save_csv


def test_simulate_path(capsys):
    assert main(["--simulate", "1200", "--seed", "7",
                 "--no-prediction"]) == 0
    out = capsys.readouterr().out
    assert "loaded 1200 drives" in out
    assert "Failure taxonomy" in out
    assert "logical failures" in out


def test_csv_path_with_json_output(tmp_path, small_dataset, capsys):
    csv_path = tmp_path / "fleet.csv"
    save_csv(small_dataset, csv_path)
    json_path = tmp_path / "report.json"
    assert main(["--csv", str(csv_path), "--no-prediction",
                 "--json", str(json_path)]) == 0
    payload = json.loads(json_path.read_text())
    assert payload["n_failed_drives"] == len(small_dataset.failed_profiles)
    out = capsys.readouterr().out
    assert "report written" in out


def test_prediction_table_included(capsys):
    assert main(["--simulate", "1200", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "Degradation prediction quality" in out
    assert "error rate" in out


def test_missing_csv_errors(tmp_path, capsys):
    assert main(["--csv", str(tmp_path / "nope.csv")]) == 2
    assert "error:" in capsys.readouterr().err


def test_backblaze_glob_without_matches_errors(tmp_path, capsys):
    assert main(["--backblaze", str(tmp_path / "*.csv")]) == 2
    assert "no files match" in capsys.readouterr().err


def test_repro_error_exits_2_without_traceback(tmp_path, capsys, monkeypatch):
    """Any ReproError from the pipeline surfaces as a clean one-liner."""
    from repro.errors import ReproError

    def exploding_run(self, dataset):
        raise ReproError("synthetic pipeline failure")

    monkeypatch.setattr(
        "repro.core.pipeline.CharacterizationPipeline.run", exploding_run
    )
    assert main(["--simulate", "1200", "--seed", "7"]) == 2
    err = capsys.readouterr().err
    assert "error: synthetic pipeline failure" in err
    assert "Traceback" not in err


def test_backblaze_path(tmp_path, small_dataset, capsys):
    from repro.data.backblaze import save_backblaze_csv
    save_backblaze_csv(small_dataset, tmp_path, model="M1")
    assert main(["--backblaze", str(tmp_path / "*.csv"),
                 "--model", "M1", "--no-prediction"]) == 0
    assert "Failure taxonomy" in capsys.readouterr().out


def test_too_few_failures_rejected(tmp_path, capsys):
    import numpy as np
    from repro.data.dataset import DiskDataset
    from repro.smart.profile import HealthProfile
    rng = np.random.default_rng(0)
    profiles = [
        HealthProfile(f"g{i}", np.arange(30),
                      rng.uniform(size=(30, 12)), failed=(i == 0))
        for i in range(10)
    ]
    path = tmp_path / "tiny.csv"
    save_csv(DiskDataset(profiles), path)
    assert main(["--csv", str(path)]) == 2
    assert "at least 3 failed drives" in capsys.readouterr().err


def test_requires_a_source():
    with pytest.raises(SystemExit):
        main([])


def test_trace_and_metrics_flags_write_telemetry(tmp_path, capsys):
    """The acceptance scenario: ≥6 named stages, ≥8 distinct metrics."""
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    assert main(["--simulate", "500", "--trace", str(trace_path),
                 "--metrics", str(metrics_path), "-v"]) == 0

    trace = json.loads(trace_path.read_text())
    names: set[str] = set()

    def collect(spans):
        for span in spans:
            names.add(span["name"])
            assert span["wall_s"] > 0
            collect(span.get("children", []))

    collect(trace["spans"])
    assert {"normalize", "failure-records", "cluster", "signatures",
            "influence", "predict"} <= names

    metrics = json.loads(metrics_path.read_text())
    assert len(metrics) >= 8


def test_obs_flags_do_not_change_the_report(tmp_path, capsys):
    """Same seed with and without telemetry: identical analytic output."""
    plain_json = tmp_path / "plain.json"
    traced_json = tmp_path / "traced.json"
    assert main(["--simulate", "500", "--no-prediction",
                 "--json", str(plain_json)]) == 0
    plain_out = capsys.readouterr().out
    assert main(["--simulate", "500", "--no-prediction",
                 "--json", str(traced_json),
                 "--trace", str(tmp_path / "t.json"),
                 "--metrics", str(tmp_path / "m.json"), "-v"]) == 0
    traced_out = capsys.readouterr().out

    def report_table(text):
        return text[text.index("Failure taxonomy"):text.index("report written")]

    assert report_table(plain_out) == report_table(traced_out)
    plain = json.loads(plain_json.read_text())
    traced = json.loads(traced_json.read_text())
    telemetry = traced.pop("telemetry")
    assert plain == traced  # telemetry section is purely additive
    assert telemetry["stage_timings"]["cluster"] > 0


def test_default_run_embeds_no_telemetry(tmp_path, capsys):
    json_path = tmp_path / "report.json"
    assert main(["--simulate", "500", "--no-prediction",
                 "--json", str(json_path)]) == 0
    assert "telemetry" not in json.loads(json_path.read_text())


def test_jobs_flag_produces_byte_identical_report(tmp_path, small_dataset,
                                                  capsys):
    csv_path = tmp_path / "fleet.csv"
    save_csv(small_dataset, csv_path)
    serial_json = tmp_path / "serial.json"
    parallel_json = tmp_path / "parallel.json"
    assert main(["--csv", str(csv_path), "--no-prediction", "--no-cache",
                 "--json", str(serial_json)]) == 0
    assert main(["--csv", str(csv_path), "--no-prediction", "--no-cache",
                 "--jobs", "4", "--json", str(parallel_json)]) == 0
    assert serial_json.read_bytes() == parallel_json.read_bytes()


def test_cache_dir_flag_populates_and_reuses_cache(tmp_path, small_dataset,
                                                   capsys):
    csv_path = tmp_path / "fleet.csv"
    save_csv(small_dataset, csv_path)
    cache_dir = tmp_path / "cache"
    cold_json = tmp_path / "cold.json"
    warm_json = tmp_path / "warm.json"
    args = ["--csv", str(csv_path), "--no-prediction",
            "--cache-dir", str(cache_dir)]
    assert main([*args, "--json", str(cold_json)]) == 0
    entries = list(cache_dir.glob("*.npz"))
    assert len(entries) == 1
    mtime = entries[0].stat().st_mtime_ns
    assert main([*args, "--json", str(warm_json)]) == 0
    assert cold_json.read_bytes() == warm_json.read_bytes()
    # The warm run reused the entry instead of rewriting it.
    assert entries[0].stat().st_mtime_ns == mtime


def test_no_cache_flag_leaves_no_entries(tmp_path, small_dataset, capsys,
                                         monkeypatch):
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    csv_path = tmp_path / "fleet.csv"
    save_csv(small_dataset, csv_path)
    assert main(["--csv", str(csv_path), "--no-prediction",
                 "--no-cache"]) == 0
    assert not cache_dir.exists() or not list(cache_dir.glob("*.npz"))


def test_degenerate_telemetry_exits_2_with_clear_message(tmp_path, capsys):
    """Flat-lined failed drives have no degradation window; the CLI must
    fail with exit code 2 and a one-line explanation, not a traceback."""
    import numpy as np
    from repro.data.dataset import DiskDataset
    from repro.smart.profile import HealthProfile
    rng = np.random.default_rng(5)
    profiles = [
        HealthProfile(f"dead-{i}", np.arange(30),
                      np.tile(np.full(12, 0.2 + 0.1 * i), (30, 1)),
                      failed=True)
        for i in range(5)
    ]
    profiles += [
        HealthProfile(f"good-{i}", np.arange(30),
                      rng.uniform(size=(30, 12)), failed=False)
        for i in range(12)
    ]
    path = tmp_path / "flat.csv"
    save_csv(DiskDataset(profiles), path)
    assert main(["--csv", str(path)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "degradation window" in err
    assert "Traceback" not in err
