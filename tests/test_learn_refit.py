"""SlidingWindow unit tests: reassembly, trimming, determinism.

The window is the inverse of the daemon's columnar flattening: streamed
``(serials, hours, matrix)`` blocks go in, a per-drive
:class:`~repro.data.dataset.DiskDataset` comes out — sorted, deduped
and independent of how blocks interleaved across drives, because the
refit challenger's content hash hangs off exactly that.  The expensive
end-to-end refit (full pipeline run + lineage stamp) is covered by the
drill suite (``tests/test_learn_drill.py``).
"""

import numpy as np
import pytest

from repro.errors import LearnError
from repro.learn.refit import SlidingWindow, refit_challenger

ATTRS = ("alpha", "beta")


def _block(rows):
    """Build one block from ``(serial, hour, value)`` triples."""
    serials = [serial for serial, _hour, _value in rows]
    hours = [hour for _serial, hour, _value in rows]
    matrix = np.array([[value, value * 10.0]
                       for _serial, _hour, value in rows])
    return serials, hours, matrix


# -- construction and validation --------------------------------------------

def test_window_rejects_bad_construction():
    with pytest.raises(LearnError):
        SlidingWindow(())
    with pytest.raises(LearnError):
        SlidingWindow(ATTRS, max_hours=0)


def test_add_block_validates_shapes():
    window = SlidingWindow(ATTRS)
    with pytest.raises(LearnError, match="records"):
        window.add_block(["a"], [1], np.zeros((1, 3)))
    with pytest.raises(LearnError, match="disagree"):
        window.add_block(["a", "b"], [1], np.zeros((2, 2)))


# -- accumulation -----------------------------------------------------------

def test_window_counts_drives_and_samples():
    window = SlidingWindow(ATTRS)
    window.add_block(*_block([("a", 0, 1.0), ("b", 0, 2.0)]))
    window.add_block(*_block([("a", 1, 1.5)]))
    assert window.n_drives == 2
    assert window.n_samples == 3


def test_mark_failed_is_cumulative_and_sorted():
    window = SlidingWindow(ATTRS)
    window.mark_failed(["zz", "aa"])
    window.mark_failed(["mm", "aa"])
    assert window.failed_serials == ("aa", "mm", "zz")


# -- trimming ---------------------------------------------------------------

def test_max_hours_trims_on_every_add():
    window = SlidingWindow(ATTRS, max_hours=10)
    window.add_block(*_block([("a", 0, 1.0), ("a", 5, 1.1)]))
    window.add_block(*_block([("a", 20, 1.2)]))
    assert window.n_samples == 1  # hours 0 and 5 fell off the horizon


def test_trim_drops_emptied_drives():
    window = SlidingWindow(ATTRS)
    window.add_block(*_block([("old", 0, 1.0), ("new", 100, 2.0)]))
    dropped = window.trim(before_hour=50)
    assert dropped == 1
    assert window.n_drives == 1
    assert window.n_samples == 1


def test_trim_without_horizon_or_cutoff_is_a_noop():
    window = SlidingWindow(ATTRS)
    window.add_block(*_block([("a", 0, 1.0)]))
    assert window.trim() == 0
    assert window.n_samples == 1


# -- dataset materialization ------------------------------------------------

def test_to_dataset_sorts_hours_and_keeps_last_duplicate():
    window = SlidingWindow(ATTRS)
    window.add_block(*_block([("a", 5, 5.0), ("a", 1, 1.0)]))
    window.add_block(*_block([("a", 5, 7.0)]))  # a retried block
    dataset = window.to_dataset()
    profile = dataset.profiles[0]
    assert list(profile.hours) == [1, 5]
    assert profile.matrix[1, 0] == 7.0  # the retry won


def test_to_dataset_iterates_serials_sorted_and_skips_thin_drives():
    window = SlidingWindow(ATTRS)
    window.add_block(*_block([("zeta", 0, 1.0), ("zeta", 1, 1.1),
                              ("alef", 0, 2.0), ("alef", 1, 2.1),
                              ("thin", 0, 3.0)]))
    dataset = window.to_dataset(min_samples=2)
    assert [p.serial for p in dataset.profiles] == ["alef", "zeta"]


def test_to_dataset_is_independent_of_block_interleaving():
    rows = [("a", h, float(h)) for h in range(4)] \
        + [("b", h, float(h) + 0.5) for h in range(4)]
    one = SlidingWindow(ATTRS)
    one.add_block(*_block(rows))
    other = SlidingWindow(ATTRS)
    for row in reversed(rows):
        other.add_block(*_block([row]))
    for left, right in zip(one.to_dataset().profiles,
                           other.to_dataset().profiles):
        assert left.serial == right.serial
        assert np.array_equal(left.hours, right.hours)
        assert np.array_equal(left.matrix, right.matrix)


def test_to_dataset_carries_failure_labels():
    window = SlidingWindow(ATTRS)
    window.add_block(*_block([("a", 0, 1.0), ("a", 1, 1.1),
                              ("b", 0, 2.0), ("b", 1, 2.1)]))
    window.mark_failed(["a"])
    flags = {p.serial: p.failed for p in window.to_dataset().profiles}
    assert flags == {"a": True, "b": False}


def test_empty_window_refuses_to_build_a_dataset():
    window = SlidingWindow(ATTRS)
    with pytest.raises(LearnError, match="no drive"):
        window.to_dataset()
    window.add_block(*_block([("a", 0, 1.0)]))
    with pytest.raises(LearnError):
        window.to_dataset(min_samples=2)


# -- the refit gate ---------------------------------------------------------

def test_refit_refuses_a_window_without_enough_failures(mid_report):
    from repro.serve.bundle import build_bundle

    champion = build_bundle(mid_report, seed=7)
    window = SlidingWindow(ATTRS)
    window.add_block(*_block([("a", h, float(h)) for h in range(6)]))
    with pytest.raises(LearnError, match="failed drives"):
        refit_challenger(window.to_dataset(), champion, seed=7)
