"""Regression gate: library errors are typed, never swallowed blind.

Runs ``scripts/check_error_contracts.py`` the way CI would, and
unit-tests the checker itself so a silently broken lint cannot pass the
gate.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_error_contracts.py"

sys.path.insert(0, str(SCRIPT.parent))
from check_error_contracts import find_violations  # noqa: E402


def test_src_repro_upholds_error_contracts():
    result = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"error-contract violations crept into src/repro:\n{result.stderr}"
    )


def test_checker_flags_bare_except(tmp_path):
    offender = tmp_path / "module.py"
    offender.write_text(
        "try:\n"
        "    work()\n"
        "except:\n"
        "    recover()\n"
    )
    violations = find_violations(offender)
    assert len(violations) == 1
    assert violations[0][0] == 3
    assert "bare" in violations[0][1]


def test_checker_flags_silent_broad_handler(tmp_path):
    offender = tmp_path / "module.py"
    offender.write_text(
        "try:\n"
        "    work()\n"
        "except Exception:\n"
        "    pass\n"
    )
    violations = find_violations(offender)
    assert len(violations) == 1
    assert "swallows" in violations[0][1]


def test_checker_allows_broad_handler_that_acts(tmp_path):
    clean = tmp_path / "module.py"
    clean.write_text(
        "try:\n"
        "    work()\n"
        "except Exception as error:\n"
        "    record(error)\n"
        "    raise WrappedError(error) from error\n"
        "except OSError:\n"
        "    pass\n"
    )
    assert find_violations(clean) == []


def test_checker_flags_builtin_raise(tmp_path):
    offender = tmp_path / "module.py"
    offender.write_text(
        "def f(x):\n"
        "    if x < 0:\n"
        "        raise ValueError('no')\n"
        "    raise RuntimeError\n"
    )
    reasons = [reason for _, reason in find_violations(offender)]
    assert len(reasons) == 2
    assert "ValueError" in reasons[0]
    assert "RuntimeError" in reasons[1]


def test_checker_allows_typed_raises_and_reraise(tmp_path):
    clean = tmp_path / "module.py"
    clean.write_text(
        "from repro.errors import DatasetError\n"
        "def f(x):\n"
        "    try:\n"
        "        g(x)\n"
        "    except DatasetError:\n"
        "        raise\n"
        "    raise DatasetError('typed')\n"
        "if __name__ == '__main__':\n"
        "    raise SystemExit(0)\n"
    )
    assert find_violations(clean) == []
