"""Tests for the extension experiments (prediction methods, generalization)."""

import pytest

from repro.experiments import generalization, prediction_methods
from repro.sim.config import FleetConfig


def test_prediction_methods_comparison(mid_report):
    result = prediction_methods.run(mid_report)
    errors = result.data["errors"]
    assert set(errors) == {"group1", "group2", "group3"}
    for group, methods in errors.items():
        assert set(methods) == {"regression_tree", "knn_5", "ridge_linear"}
        # Every method at least beats random guessing on a [-1, 1] target.
        assert all(error < 0.5 for error in methods.values())
    # Nonlinear methods beat the linear baseline on at least two groups:
    # degradation targets are polynomial in time, not linear in attributes.
    nonlinear_wins = sum(
        min(m["regression_tree"], m["knn_5"]) <= m["ridge_linear"]
        for m in errors.values()
    )
    assert nonlinear_wins >= 2


def test_generalization_on_backup_fleet():
    result = generalization.run(n_drives=1500, seed=11)
    fractions = result.data["fractions"]
    # The backup system flips the mix: bad-sector failures dominate.
    assert fractions["BAD_SECTOR"] > 0.5
    assert fractions["BAD_SECTOR"] > fractions["LOGICAL"]
    assert fractions["BAD_SECTOR"] > fractions["HEAD"]
    assert result.data["accuracy"] >= 0.9


def test_backup_system_config_preset():
    config = FleetConfig.backup_system(n_drives=100, seed=1)
    assert config.mode_mixture.bad_sector == pytest.approx(0.60)
    # Backup load is write-heavy.
    assert config.mean_write_ops_per_hour > config.mean_read_ops_per_hour
    assert config.failure_rate > 0.02
