"""Tests for the observer seam: no-op default, telemetry routing,
the @instrumented decorator, and pipeline integration."""

import time

import pytest

from repro.core.pipeline import CharacterizationPipeline
from repro.obs import (
    NULL_OBSERVER,
    MetricsRegistry,
    NoopObserver,
    PipelineObserver,
    TelemetryObserver,
    Tracer,
    instrumented,
)
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


def test_noop_observer_accepts_everything():
    obs = NULL_OBSERVER
    with obs.span("anything", k=3):
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 2.0)
        obs.event("message", detail="x")


def test_noop_span_is_shared_and_reentrant():
    obs = NoopObserver()
    first = obs.span("a")
    second = obs.span("b", attr=1)
    assert first is second  # one reusable null context manager
    with first:
        with second:
            pass


def test_noop_overhead_is_small():
    """The no-op path must be cheap enough for per-drive call sites."""
    obs = NULL_OBSERVER
    start = time.perf_counter()
    for _ in range(10_000):
        with obs.span("x"):
            obs.count("c")
    elapsed = time.perf_counter() - start
    assert elapsed < 0.5  # generous bound: ~50 µs per iteration


def test_telemetry_observer_routes_to_tracer_and_metrics():
    obs = TelemetryObserver()
    with obs.span("stage", k=3):
        obs.count("events", 2)
        obs.gauge("level", 7.5)
        obs.observe("sizes", 10.0)
    assert obs.tracer.find("stage").attributes == {"k": 3}
    assert obs.metrics.counter("events").value == 2
    assert obs.metrics.gauge("level").value == 7.5
    assert obs.metrics.histogram("sizes").count == 1


def test_telemetry_observer_accepts_injected_backends():
    tracer, metrics = Tracer(), MetricsRegistry()
    obs = TelemetryObserver(tracer=tracer, metrics=metrics)
    with obs.span("s"):
        obs.count("c")
    assert tracer.find("s") is not None
    assert metrics.counter("c").value == 1


def test_telemetry_section_shape():
    obs = TelemetryObserver()
    with obs.span("stage"):
        obs.count("c")
    section = obs.telemetry_section()
    assert set(section) == {"stage_timings", "metrics"}
    assert section["stage_timings"]["stage"] > 0
    assert section["metrics"]["c"] == {"kind": "counter", "value": 1.0}


def test_observers_satisfy_the_protocol():
    assert isinstance(NULL_OBSERVER, PipelineObserver)
    assert isinstance(TelemetryObserver(), PipelineObserver)


def test_instrumented_uses_observer_kwarg():
    obs = TelemetryObserver()

    @instrumented("my-stage")
    def work(x, observer=None):
        return x * 2

    assert work(21, observer=obs) == 42
    assert obs.tracer.find("my-stage") is not None


def test_instrumented_uses_instance_attribute():
    obs = TelemetryObserver()

    class Worker:
        def __init__(self, observer):
            self._observer = observer

        @instrumented()
        def crunch(self):
            return "done"

    assert Worker(obs).crunch() == "done"
    assert obs.tracer.find("crunch") is not None


def test_instrumented_defaults_to_noop():
    @instrumented()
    def bare():
        return 1

    assert bare() == 1  # no observer anywhere: still works


def test_pipeline_emits_all_stages_and_metrics():
    obs = TelemetryObserver()
    fleet = simulate_fleet(FleetConfig(n_drives=600, seed=11), observer=obs)
    CharacterizationPipeline(seed=11, observer=obs).run(fleet.dataset)

    span_names = {span.name for span in obs.tracer.walk()}
    assert {"simulate-fleet", "pipeline", "normalize", "failure-records",
            "cluster", "signatures", "influence", "predict"} <= span_names
    for name in ("normalize", "failure-records", "cluster", "signatures",
                 "influence", "predict"):
        assert obs.tracer.find(name).wall_s > 0
    assert len(obs.metrics.names()) >= 8
    assert obs.metrics.counter("drives_processed").value == 600
    assert obs.metrics.histogram("window_length").count > 0


def test_uninstrumented_pipeline_matches_instrumented_results():
    fleet = simulate_fleet(FleetConfig(n_drives=600, seed=11))
    plain = CharacterizationPipeline(seed=11).run(fleet.dataset)
    observed = CharacterizationPipeline(
        seed=11, observer=TelemetryObserver()
    ).run(fleet.dataset)
    assert plain.records.serials == observed.records.serials
    assert (plain.categorization.labels == observed.categorization.labels).all()
    assert set(plain.signatures) == set(observed.signatures)
    for failure_type, prediction in plain.predictions.items():
        assert observed.predictions[failure_type].rmse == pytest.approx(
            prediction.rmse
        )
