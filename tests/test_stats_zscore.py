"""Tests for the Eq. (7) z-score and its temporal extension."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.smart.profile import HealthProfile
from repro.stats.zscore import temporal_z_scores, two_population_z


def test_identical_populations_score_zero(rng):
    sample = rng.normal(size=500)
    assert abs(two_population_z(sample, sample)) < 1e-9


def test_sign_follows_mean_difference(rng):
    low = rng.normal(0.0, 1.0, 500)
    high = rng.normal(5.0, 1.0, 500)
    assert two_population_z(high, low) > 0
    assert two_population_z(low, high) < 0


def test_magnitude_grows_with_sample_size(rng):
    small_failed = rng.normal(1.0, 1.0, 20)
    large_failed = rng.normal(1.0, 1.0, 2000)
    good = rng.normal(0.0, 1.0, 5000)
    assert abs(two_population_z(large_failed, good)) > abs(
        two_population_z(small_failed, good)
    )


def test_degenerate_variance():
    same = np.full(10, 2.0)
    assert two_population_z(same, np.full(20, 2.0)) == 0.0
    assert two_population_z(np.full(10, 3.0), same) == np.inf


def test_needs_two_values():
    with pytest.raises(ReproError):
        two_population_z(np.array([1.0]), np.array([1.0, 2.0]))


def make_failed_profile(serial, n, tc_value):
    matrix = np.full((n, 12), 50.0)
    matrix[:, 11] = tc_value  # TC column
    return HealthProfile(serial=serial, hours=np.arange(n), matrix=matrix,
                         failed=True)


def test_temporal_z_scores_detect_hot_group(rng):
    hot = [make_failed_profile(f"h{i}", 100, 60.0) for i in range(5)]
    good_values = rng.normal(75.0, 2.0, 5000)
    lags, z_scores = temporal_z_scores(hot, good_values, "TC",
                                       max_lag_hours=96, step_hours=8)
    finite = z_scores[np.isfinite(z_scores)]
    assert finite.shape[0] > 5
    assert np.all(finite < 0)  # hot drives have lower TC health value


def test_temporal_lags_beyond_profiles_are_nan(rng):
    short = [make_failed_profile("s", 10, 60.0)]
    good_values = rng.normal(75.0, 2.0, 1000)
    lags, z_scores = temporal_z_scores(short, good_values, "TC",
                                       max_lag_hours=480, step_hours=8)
    assert np.isnan(z_scores[-1])


def test_temporal_requires_profiles(rng):
    with pytest.raises(ReproError):
        temporal_z_scores([], rng.normal(size=100), "TC")
