"""``repro-learn`` CLI tests: the drill document and the push plane.

The drill subcommand is exercised once at test-tier sizing (one
prepare is two fleet simulations plus two pipeline runs); push is
exercised against a real in-process daemon so the CLI's HTTP paths —
promote, force, rollback, and every refusal — run over the wire.
"""

import json

import pytest

from repro.learn.cli import main as learn_main
from repro.serve.bundle import (build_bundle, content_hash, save_bundle,
                                stamp_lineage)
from repro.serve.daemon import ServingDaemon


@pytest.fixture(scope="module")
def champion(mid_report):
    return build_bundle(mid_report, seed=7)


@pytest.fixture(scope="module")
def challenger_path(champion, tmp_path_factory):
    path = tmp_path_factory.mktemp("learn-cli") / "challenger.bundle.json"
    save_bundle(stamp_lineage(champion, champion), path)
    return path


# -- drill ------------------------------------------------------------------

def test_drill_writes_a_self_consistent_document(tmp_path, capsys):
    out = tmp_path / "drill.json"
    assert learn_main(["drill", "--drives", "240", "--shards", "1",
                       "--output", str(out)]) == 0
    err = capsys.readouterr().err
    assert "drill complete" in err
    assert "promote=True" in err
    document = json.loads(out.read_text())
    core = document["core"]
    assert core["alarms"]
    assert core["decision"]["promote"] is True
    assert len(document["runs"]) == 1
    run = document["runs"][0]
    assert run["matches_offline"] is True
    assert run["verdict_sha256"] == core["verdict_sha256"]


def test_drill_rejects_a_tiny_fleet(capsys):
    assert learn_main(["drill", "--drives", "50"]) == 2
    assert "100 drives" in capsys.readouterr().err


def test_drill_reports_an_unwritable_output(capsys):
    assert learn_main(["drill", "--drives", "240", "--shards", "1",
                       "--output", "/nonexistent/dir/drill.json"]) == 2
    assert "error:" in capsys.readouterr().err


# -- push -------------------------------------------------------------------

def test_push_promotes_then_rolls_back(champion, challenger_path, capsys):
    champion_sha = content_hash(champion.to_payload())
    with ServingDaemon(champion) as daemon:
        assert learn_main(["push", "--url", daemon.url,
                           "--bundle", str(challenger_path)]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["status"] == "promoted"
        assert reply["generation"] == 1

        assert learn_main(["push", "--url", daemon.url,
                           "--rollback"]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["status"] == "rolled_back"
        assert reply["bundle_sha256"] == champion_sha


def test_push_surfaces_a_daemon_refusal(champion, challenger_path,
                                        capsys):
    with ServingDaemon(champion) as daemon:
        assert learn_main(["push", "--url", daemon.url,
                           "--bundle", str(challenger_path)]) == 0
        capsys.readouterr()
        # Promoting the serving bundle again is a 409 → exit 2.
        assert learn_main(["push", "--url", daemon.url,
                           "--bundle", str(challenger_path)]) == 2
        err = capsys.readouterr().err
        assert "409" in err
        assert "identical" in err


def test_push_force_overrides_a_lineage_break(champion, tmp_path,
                                              capsys):
    orphan = stamp_lineage(champion,
                           stamp_lineage(champion, champion))
    orphan_path = tmp_path / "orphan.bundle.json"
    save_bundle(orphan, orphan_path)
    with ServingDaemon(champion) as daemon:
        assert learn_main(["push", "--url", daemon.url,
                           "--bundle", str(orphan_path)]) == 2
        assert "409" in capsys.readouterr().err
        assert learn_main(["push", "--url", daemon.url, "--force",
                           "--bundle", str(orphan_path)]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "promoted"


def test_push_argument_contract(capsys):
    assert learn_main(["push", "--url", "http://127.0.0.1:1"]) == 2
    assert "--bundle" in capsys.readouterr().err
    assert learn_main(["push", "--url", "http://127.0.0.1:1",
                       "--rollback", "--bundle", "x.json"]) == 2
    assert "--rollback takes no --bundle" in capsys.readouterr().err


def test_push_reports_an_unreachable_daemon(challenger_path, capsys):
    assert learn_main(["push", "--url", "http://127.0.0.1:1",
                       "--bundle", str(challenger_path)]) == 2
    assert "cannot reach daemon" in capsys.readouterr().err
