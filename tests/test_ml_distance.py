"""Tests for distance measures."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.distance import (
    MahalanobisDistance,
    euclidean_distance,
    euclidean_to_reference,
)


def test_euclidean_distance_basic():
    assert euclidean_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)
    assert euclidean_distance([1.0, 2.0], [1.0, 2.0]) == 0.0


def test_euclidean_shape_mismatch():
    with pytest.raises(ModelError):
        euclidean_distance([1.0], [1.0, 2.0])


def test_euclidean_to_reference_rowwise():
    matrix = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
    distances = euclidean_to_reference(matrix, np.zeros(2))
    np.testing.assert_allclose(distances, [0.0, 5.0, 10.0])


def test_euclidean_to_reference_validates_shapes():
    with pytest.raises(ModelError):
        euclidean_to_reference(np.zeros((2, 3)), np.zeros(2))
    with pytest.raises(ModelError):
        euclidean_to_reference(np.zeros(3), np.zeros(3))


class TestMahalanobis:
    def test_whitens_anisotropic_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(5000, 2)) * np.array([10.0, 0.1])
        metric = MahalanobisDistance().fit(data)
        # Equal Mahalanobis distance despite wildly different raw scales.
        d_wide = metric.distance([10.0, 0.0], [0.0, 0.0])
        d_narrow = metric.distance([0.0, 0.1], [0.0, 0.0])
        assert d_wide == pytest.approx(d_narrow, rel=0.1)

    def test_matches_euclidean_for_identity_covariance(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(20000, 2))
        metric = MahalanobisDistance().fit(data)
        assert metric.distance([1.0, 1.0], [0.0, 0.0]) == pytest.approx(
            np.sqrt(2.0), rel=0.05
        )

    def test_to_reference_matches_pairwise(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(200, 3))
        metric = MahalanobisDistance().fit(data)
        reference = data[0]
        series = metric.to_reference(data[:5], reference)
        singles = [metric.distance(row, reference) for row in data[:5]]
        np.testing.assert_allclose(series, singles, rtol=1e-9)

    def test_use_before_fit_raises(self):
        with pytest.raises(ModelError):
            MahalanobisDistance().distance([1.0], [2.0])

    def test_singular_covariance_survives_via_ridge(self):
        data = np.column_stack([np.arange(10.0), np.arange(10.0)])
        metric = MahalanobisDistance(ridge=1e-6).fit(data)
        assert np.isfinite(metric.distance(data[0], data[1]))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ModelError):
            MahalanobisDistance().fit(np.zeros((1, 3)))
