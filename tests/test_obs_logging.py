"""Tests for the structured logging setup."""

import io
import json
import logging

import pytest

from repro.obs import logging as obs_logging


@pytest.fixture(autouse=True)
def _restore_logging():
    yield
    # Leave the library logger as other tests expect it: no handlers.
    logger = logging.getLogger(obs_logging.ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


def test_text_mode_writes_formatted_lines():
    stream = io.StringIO()
    obs_logging.configure(level="INFO", stream=stream)
    obs_logging.get_logger("pipeline").info("fleet simulated",
                                            extra={"fields": {"drives": 42}})
    line = stream.getvalue().strip()
    assert "repro.pipeline" in line
    assert "fleet simulated" in line
    assert "[drives=42]" in line


def test_json_mode_emits_one_object_per_line():
    stream = io.StringIO()
    obs_logging.configure(level="DEBUG", json_mode=True, stream=stream)
    obs_logging.get_logger("data").info("dataset loaded",
                                        extra={"fields": {"profiles": 3}})
    payload = json.loads(stream.getvalue())
    assert payload["level"] == "INFO"
    assert payload["logger"] == "repro.data"
    assert payload["message"] == "dataset loaded"
    assert payload["fields"] == {"profiles": 3}
    assert isinstance(payload["ts"], float)


def test_configure_replaces_previous_handler():
    first, second = io.StringIO(), io.StringIO()
    obs_logging.configure(level="INFO", stream=first)
    obs_logging.configure(level="INFO", stream=second)
    obs_logging.get_logger("x").info("hello")
    assert first.getvalue() == ""
    assert "hello" in second.getvalue()
    logger = logging.getLogger(obs_logging.ROOT_LOGGER_NAME)
    ours = [h for h in logger.handlers
            if getattr(h, "_repro_obs_handler", False)]
    assert len(ours) == 1


def test_level_filters_records():
    stream = io.StringIO()
    obs_logging.configure(level="WARNING", stream=stream)
    log = obs_logging.get_logger("quiet")
    log.info("not shown")
    log.warning("shown")
    output = stream.getvalue()
    assert "not shown" not in output
    assert "shown" in output


def test_get_logger_namespaces_under_repro():
    assert obs_logging.get_logger("sim.fleet").name == "repro.sim.fleet"
    assert obs_logging.get_logger("repro.core").name == "repro.core"
    assert obs_logging.get_logger("repro").name == "repro"


def test_verbosity_to_level():
    assert obs_logging.verbosity_to_level(0) == logging.WARNING
    assert obs_logging.verbosity_to_level(1) == logging.INFO
    assert obs_logging.verbosity_to_level(2) == logging.DEBUG
    assert obs_logging.verbosity_to_level(5) == logging.DEBUG
