"""RAID planning: size redundancy against the fleet's measured risk.

The paper's Section I motivates the work with the RAID-5 + latent-
sector-error data-loss channel.  This example turns the repository's
RAID reliability analysis into a planning tool: given a fleet (and the
warning leads the degradation signatures provide), sweep group sizes and
redundancy levels, and report which configurations meet a data-loss
budget — with and without signature-driven proactive migration.

Usage::

   python examples/raid_planner.py
"""

from __future__ import annotations

from repro import CharacterizationPipeline, FleetConfig, simulate_fleet
from repro.experiments.raid_protection import compute_warning_leads
from repro.raid import (
    RaidLevel,
    RaidReliabilityAnalysis,
    drive_states_from_fleet,
)

#: Acceptable fraction of groups losing data over the period.
LOSS_BUDGET = 0.005


def main() -> None:
    print("Characterizing the fleet and computing warning leads...")
    fleet = simulate_fleet(FleetConfig(n_drives=2500, seed=77))
    report = CharacterizationPipeline(run_prediction=False, seed=77).run(
        fleet.dataset
    )
    leads = compute_warning_leads(fleet, report, seed=77)
    drives = drive_states_from_fleet(fleet, warning_leads=leads)

    print(f"\nLoss budget: {LOSS_BUDGET:.2%} of groups per period\n")
    header = (f"{'group size':>10s} {'level':>6s} {'policy':>10s} "
              f"{'loss rate':>10s}  verdict")
    print(header)
    print("-" * len(header))
    meeting_budget = []
    for group_size in (6, 8, 12):
        analysis = RaidReliabilityAnalysis(drives, group_size=group_size,
                                           n_groups=8000, seed=7)
        for level in (RaidLevel.RAID5, RaidLevel.RAID6):
            for proactive in (False, True):
                result = analysis.evaluate(level, proactive=proactive)
                policy = "proactive" if proactive else "reactive"
                ok = result.loss_rate <= LOSS_BUDGET
                verdict = "meets budget" if ok else "over budget"
                if ok:
                    meeting_budget.append(
                        (group_size, level.name, policy, result.loss_rate)
                    )
                print(f"{group_size:10d} {level.name:>6s} {policy:>10s} "
                      f"{result.loss_rate:10.3%}  {verdict}")

    if meeting_budget:
        # Prefer the cheapest redundancy (RAID-5 over RAID-6), then the
        # largest groups (fewest parity drives per data drive).
        best = sorted(
            meeting_budget,
            key=lambda row: (row[1] != "RAID5", -row[0], row[3]),
        )[0]
        print(f"\nrecommended: {best[0]}-drive {best[1]} with {best[2]} "
              f"protection ({best[3]:.3%} loss rate)")
    else:
        print("\nno swept configuration meets the budget; shrink groups "
              "or add redundancy")


if __name__ == "__main__":
    main()
