"""Fleet triage: estimate rescue time for degrading drives.

The paper motivates degradation signatures with data rescue: "Modeling
the degradation process of disk failures will enable us to track the
evolvement of disk errors to failures and accurately estimate the
available time for data rescue."

This example plays that scenario end to end:

1. characterize a fleet and train the per-group degradation predictors;
2. take each failed drive's profile *truncated 24 hours before the
   failure* — the operator's view of a drive that has not died yet;
3. predict its current degradation stage with the group's regression
   tree and invert the canonical signature to estimate the hours left;
4. print a triage table sorted by urgency, with the per-type handling
   action the taxonomy suggests.

Usage::

   python examples/fleet_triage.py
"""

from __future__ import annotations

import numpy as np

from repro import CharacterizationPipeline, FleetConfig, simulate_fleet
from repro.core.prediction import DegradationPredictor
from repro.core.rescue import estimate_remaining_hours
from repro.core.taxonomy import FailureType

#: How many hours before the (unknown) failure the operator looks.
LOOKAHEAD_HOURS = 24

#: Handling guidance per failure type, following Section V-A.
ACTIONS = {
    FailureType.LOGICAL: "check file-system integrity; cool the drive bay",
    FailureType.BAD_SECTOR: "schedule full backup; sector errors accumulating",
    FailureType.HEAD: "replace immediately; spare sectors nearly exhausted",
}


def main() -> None:
    print("Simulating and characterizing the fleet...")
    fleet = simulate_fleet(FleetConfig(n_drives=2000, seed=21))
    report = CharacterizationPipeline(run_prediction=False, seed=21).run(
        fleet.dataset
    )
    predictor = DegradationPredictor(seed=21)
    predictor.evaluate_all(report.dataset, report.categorization)

    print(f"\nTriage view, {LOOKAHEAD_HOURS} h before each (future) failure:")
    rows = []
    for failure_type in FailureType:
        tree = predictor.tree_for(failure_type)
        for serial in report.categorization.serials_of_type(failure_type):
            profile = report.dataset.get(serial)
            if len(profile) <= LOOKAHEAD_HOURS + 1:
                continue
            # The operator's view: drop the final 24 hours.
            current_record = profile.matrix[-(LOOKAHEAD_HOURS + 1)]
            stage = float(tree.predict(current_record.reshape(1, -1))[0])
            hours_left = estimate_remaining_hours(stage, failure_type)
            rows.append((hours_left, serial, failure_type, stage))

    rows.sort(key=lambda row: row[0])
    print(f"{'drive':26s} {'type':10s} {'stage':>7s} {'est. h left':>12s}  action")
    for hours_left, serial, failure_type, stage in rows[:15]:
        hours_text = (f"{hours_left:12.0f}" if np.isfinite(hours_left)
                      else f"{'quiet':>12s}")
        print(f"{serial:26s} {failure_type.name:10s} {stage:7.2f} "
              f"{hours_text}  {ACTIONS[failure_type]}")
    urgent = sum(1 for row in rows if row[0] < 72)
    quiet = sum(1 for row in rows if not np.isfinite(row[0]))
    print(f"\n{len(rows)} pre-failure drives assessed; {urgent} estimated "
          f"within 72 h of failure; {quiet} still SMART-quiet (typical for "
          f"logical failures, whose windows are shorter than the "
          f"{LOOKAHEAD_HOURS} h lookahead).")


if __name__ == "__main__":
    main()
