"""Online monitoring: stream SMART records through the middleware.

The paper's future work plans "a middleware software that will enhance
storage reliability" on top of the degradation signatures.  This example
runs that middleware (:class:`repro.core.DegradationMonitor`):

1. characterize a training fleet and train the per-group predictors;
2. simulate a *second* month of operation (a fresh fleet with the same
   configuration but a different seed — drives the models never saw);
3. stream every drive's hourly records through the monitor and report
   when each failing drive first reached WATCH and CRITICAL, i.e. how
   much warning the operator would have had.

Usage::

   python examples/online_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro import CharacterizationPipeline, FleetConfig, simulate_fleet
from repro.core.monitor import AlertLevel, DegradationMonitor
from repro.core.prediction import DegradationPredictor


def main() -> None:
    print("Training the degradation models on a characterization fleet...")
    training_fleet = simulate_fleet(FleetConfig(n_drives=2000, seed=71))
    report = CharacterizationPipeline(run_prediction=False, seed=71).run(
        training_fleet.dataset
    )
    predictor = DegradationPredictor(seed=71)
    predictor.evaluate_all(report.dataset, report.categorization)
    monitor = DegradationMonitor(
        predictor, training_fleet.dataset.fit_normalizer()
    )

    print("Streaming a fresh month of telemetry through the monitor...")
    live_fleet = simulate_fleet(FleetConfig(n_drives=1000, seed=72))

    warnings = []
    false_alarms = 0
    for profile in live_fleet.dataset.profiles:
        first_watch = None
        first_critical = None
        for alert in monitor.observe_profile(profile):
            if first_watch is None and alert.level >= AlertLevel.WATCH:
                first_watch = alert.hour
            if first_critical is None and alert.level is AlertLevel.CRITICAL:
                first_critical = alert.hour
        if profile.failed:
            failure_hour = profile.failure_hour
            watch_lead = (failure_hour - first_watch
                          if first_watch is not None else None)
            critical_lead = (failure_hour - first_critical
                             if first_critical is not None else None)
            warnings.append((profile.serial, watch_lead, critical_lead))
        elif first_watch is not None:
            false_alarms += 1

    n_good = len(live_fleet.dataset.good_profiles)
    print(f"\n{len(warnings)} failing drives, {n_good} good drives, "
          f"{false_alarms} good drives ever raised WATCH "
          f"({false_alarms / n_good:.2%} false-alarm rate)")

    detected = [w for w in warnings if w[1] is not None]
    print(f"{len(detected)}/{len(warnings)} failing drives raised WATCH "
          f"before failing")
    leads = np.array([w[1] for w in detected], dtype=np.float64)
    if leads.shape[0]:
        print(f"warning lead time: median {np.median(leads):.0f} h, "
              f"p10 {np.percentile(leads, 10):.0f} h, "
              f"p90 {np.percentile(leads, 90):.0f} h")

    print("\nFirst alerts per drive (sample):")
    for serial, watch_lead, critical_lead in warnings[:10]:
        watch_text = f"{watch_lead:.0f} h" if watch_lead is not None else "-"
        critical_text = (f"{critical_lead:.0f} h"
                         if critical_lead is not None else "-")
        print(f"  {serial:26s} WATCH {watch_text:>8s} before failure, "
              f"CRITICAL {critical_text:>8s} before failure")


if __name__ == "__main__":
    main()
