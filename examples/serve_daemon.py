"""Run the serving daemon and talk to it over HTTP, end to end.

The fleet-scale serving loop of :mod:`repro.serve.daemon`:

1. characterize a training fleet and freeze the models into a bundle;
2. start a :class:`repro.serve.ServingDaemon` — per-drive state sharded
   by consistent hash across workers, a JSONL alert sink attached, HTTP
   ingestion and the full telemetry plane on an ephemeral port;
3. POST live telemetry to ``/ingest`` exactly as a collector would,
   read back canonical verdict lines, and scrape ``/metrics`` and
   ``/status`` while scoring;
4. drain gracefully and inspect the final per-shard state snapshot and
   the alerts the sink captured.

The same daemon ships as ``repro-serve daemon``; the operations story
(signals, backpressure, sink specs, scrape config) is in
``docs/operations.md``.

Usage::

   python examples/serve_daemon.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

from repro import (
    CharacterizationPipeline,
    FleetConfig,
    build_bundle,
    load_bundle,
    save_bundle,
    simulate_fleet,
)
from repro.serve import JsonlAlertSink, ServingDaemon


def main() -> None:
    print("Training the characterization models...")
    training_fleet = simulate_fleet(FleetConfig(n_drives=2000, seed=71))
    report = CharacterizationPipeline(seed=71).run(training_fleet.dataset)

    workdir = Path(tempfile.mkdtemp())
    bundle_path = workdir / "fleet.bundle.json"
    save_bundle(build_bundle(report, seed=71), bundle_path)
    bundle = load_bundle(bundle_path)

    alerts_path = workdir / "alerts.jsonl"
    snapshot_path = workdir / "final-snapshot.json"
    daemon = ServingDaemon(
        bundle,
        n_shards=4,
        sinks=[JsonlAlertSink(alerts_path)],
        final_snapshot=snapshot_path,
    )

    with daemon:
        print(f"Daemon serving on {daemon.url} "
              "(POST /ingest /drain; GET /metrics /health /status)")

        # A collector POSTs batches of raw samples; the daemon spreads
        # them to shards by drive serial and answers verdict lines.
        live_fleet = simulate_fleet(FleetConfig(n_drives=200, seed=72))
        profiles = (live_fleet.dataset.failed_profiles[:10]
                    + live_fleet.dataset.good_profiles[:50])
        batch = {
            "samples": [
                [profile.serial, int(hour), [float(v) for v in row]]
                for profile in profiles
                for hour, row in zip(profile.hours, profile.matrix)
            ]
        }
        request = urllib.request.Request(
            daemon.url + "/ingest?verdicts=alerts",
            data=json.dumps(batch).encode("utf-8"), method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as reply:
            alert_lines = reply.read().decode("utf-8").splitlines()
        print(f"Ingested {len(batch['samples'])} samples over HTTP; "
              f"{len(alert_lines)} alerting verdicts came back")
        if alert_lines:
            worst = json.loads(alert_lines[-1])
            print(f"  latest alert: drive {worst['serial']} "
                  f"{worst['level']} at hour {worst['hour']} "
                  f"(likely {worst['likely_type']})")

        # The telemetry plane answers while scoring continues.
        with urllib.request.urlopen(daemon.url + "/status",
                                    timeout=5) as reply:
            status = json.loads(reply.read())
        print(f"  /status: {status['samples_accepted']} samples on "
              f"{status['n_shards']} shards, "
              f"{status['drives_tracked']} drives tracked, "
              f"alert rate {status['alert_rate']:.3f}")
        with urllib.request.urlopen(daemon.url + "/metrics",
                                    timeout=5) as reply:
            metrics = reply.read().decode("utf-8")
        ingest_lines = [line for line in metrics.splitlines()
                        if line.startswith("repro_ingest_")]
        print("  /metrics ingest counters:")
        for line in ingest_lines:
            print(f"    {line}")

    # Leaving the context drains the shards: every admitted batch has
    # finished scoring and each shard wrote its keyed state snapshot.
    snapshot = json.loads(snapshot_path.read_text())
    per_shard = {s["shard"]: s["drives_tracked"] for s in snapshot["shards"]}
    print(f"Drained. Final snapshot: {snapshot['samples_accepted']} samples, "
          f"{snapshot['alerts_emitted']} alerts; drives per shard "
          f"{per_shard}")
    print(f"Alert sink captured "
          f"{len(alerts_path.read_text().splitlines())} JSONL alerts "
          f"at {alerts_path}")


if __name__ == "__main__":
    main()
