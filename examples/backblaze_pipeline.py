"""Run the pipeline on Backblaze-format drive-stats CSV files.

The paper's dataset is proprietary; the public Backblaze drive-stats
release is the standard substitute (daily CSVs, one row per drive per
day).  This example demonstrates the full real-data path:

1. export a simulated fleet *into* the Backblaze CSV format (stands in
   for downloading a quarter of drive-stats data — this script works
   offline);
2. load it back with :func:`repro.data.load_backblaze_csv`, exactly as
   you would load real Backblaze files;
3. run failure categorization on the result.

To use real data, skip step 1 and point ``load_backblaze_csv`` at the
extracted daily CSVs, e.g.::

   dataset = load_backblaze_csv(sorted(glob("data_Q1_2015/*.csv")),
                                model="ST4000DM000")

Note the time axis: Backblaze samples are daily, so degradation windows
come out in days.

Usage::

   python examples/backblaze_pipeline.py
"""

from __future__ import annotations

import tempfile

from repro import FleetConfig, simulate_fleet
from repro.core.categorize import FailureCategorizer
from repro.core.records import build_failure_records
from repro.data.backblaze import load_backblaze_csv, save_backblaze_csv


def main() -> None:
    print("Simulating a fleet and exporting it in Backblaze format...")
    fleet = simulate_fleet(FleetConfig(n_drives=800, seed=33))
    with tempfile.TemporaryDirectory() as tmp:
        paths = save_backblaze_csv(fleet.dataset, tmp,
                                   model=fleet.config.drive_model)
        print(f"  wrote {len(paths)} daily CSV files")

        print("Loading with load_backblaze_csv (the real-data entry point)...")
        dataset = load_backblaze_csv(paths, model=fleet.config.drive_model)
        summary = dataset.summary()
        print(f"  {summary.n_drives} drives loaded, "
              f"{summary.n_failed} failed")

        print("Categorizing failures...")
        records = build_failure_records(dataset.normalize())
        result = FailureCategorizer(n_clusters=3, seed=33).categorize(records)
        for group in result.groups.values():
            print(f"  Group {group.paper_group_number} "
                  f"({group.failure_type.value}): "
                  f"{group.n_records} drives "
                  f"({group.population_fraction:.1%})")


if __name__ == "__main__":
    main()
