"""Explore degradation signatures drive by drive.

Derives the degradation signature of every failed drive in a simulated
fleet (Section IV-C of the paper), prints per-group window and
polynomial-order distributions, and renders one drive's degradation
curve against its canonical model as ASCII art.

Usage::

   python examples/signature_explorer.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import CharacterizationPipeline, FleetConfig, simulate_fleet
from repro.core.signature_models import canonical_signature
from repro.core.taxonomy import FailureType
from repro.reporting.figures import ascii_series


def main() -> None:
    fleet = simulate_fleet(FleetConfig(n_drives=2000, seed=5))
    report = CharacterizationPipeline(run_prediction=False, seed=5).run(
        fleet.dataset
    )

    print("Degradation signatures per failure group:")
    for failure_type in FailureType:
        serials = report.categorization.serials_of_type(failure_type)
        windows = []
        orders: Counter[int] = Counter()
        for serial in serials:
            signature = report.signatures.get(serial)
            if signature is None:
                continue
            windows.append(signature.window_size)
            orders[signature.best_canonical_order] += 1
        windows_array = np.array(windows)
        print(f"\nGroup {failure_type.paper_group_number} "
              f"({failure_type.value}), {len(windows)} drives:")
        print(f"  window d: median {np.median(windows_array):.0f} h, "
              f"IQR [{np.percentile(windows_array, 25):.0f}, "
              f"{np.percentile(windows_array, 75):.0f}]")
        print("  best canonical order votes: "
              + ", ".join(f"order {o}: {c}" for o, c in sorted(orders.items())))

    # Render the centroid of the head-failure group against its model.
    serial = report.categorization.centroid_of_type(FailureType.HEAD)
    signature = report.signature_of(serial)
    t, s = signature.window.degradation_values()
    model = canonical_signature(signature.best_canonical_order,
                                signature.window_size)
    print(f"\nCentroid {serial}: measured degradation vs "
          f"s(t) = (t/{signature.window_size})^"
          f"{signature.best_canonical_order} - 1")
    print(ascii_series(t, {"measured": s, "canonical": model(t)},
                       height=12, width=64))
    print("\nFree-fit quality (R^2): "
          + ", ".join(f"order {fit.order}: {fit.r_squared:.3f}"
                      for fit in signature.polynomial_fits))


if __name__ == "__main__":
    main()
