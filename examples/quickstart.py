"""Quickstart: simulate a fleet and characterize its disk failures.

Runs the full pipeline of the paper on a small simulated fleet and prints
the headline results: the failure taxonomy (Table II), the degradation
signature of each group (Section IV-C) and the prediction quality
(Table III).

Usage::

   python examples/quickstart.py
"""

from repro import CharacterizationPipeline, FleetConfig, simulate_fleet


def main() -> None:
    print("Simulating a 2,000-drive fleet (eight weeks of hourly SMART)...")
    fleet = simulate_fleet(FleetConfig(n_drives=2000, seed=7))
    summary = fleet.dataset.summary()
    print(f"  {summary.n_drives} drives, {summary.n_failed} failed "
          f"({summary.failure_rate:.2%}), "
          f"{summary.failed_samples + summary.good_samples:,} health records")

    print("\nRunning the characterization pipeline...")
    report = CharacterizationPipeline(seed=7).run(fleet.dataset)

    print("\nFailure taxonomy (paper Table II):")
    for failure_type, summary in report.group_summaries.items():
        group = f"Group {failure_type.paper_group_number}"
        print(f"  {group} ({failure_type.value}): {summary.n_drives} drives, "
              f"median degradation window {summary.median_window:.0f} h, "
              f"signature s(t) = (t/d)^{summary.consensus_order} - 1, "
              f"dominant attributes {'/'.join(summary.top_correlated)}")

    print("\nDegradation prediction (paper Table III):")
    for failure_type, prediction in report.predictions.items():
        print(f"  Group {failure_type.paper_group_number}: "
              f"RMSE {prediction.rmse:.3f}, "
              f"error rate {prediction.error_rate:.1%} "
              f"(d = {prediction.window} h)")


if __name__ == "__main__":
    main()
