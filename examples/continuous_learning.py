"""The continuous-learning loop, end to end, on a drifting fleet.

The serving stack freezes the paper's models into an immutable bundle;
this example shows what happens when the fleet drifts away from that
bundle's training data (``docs/learning.md``).  It plays every stage of
the loop by hand so the moving parts are visible:

1. simulate a *baseline* fleet and train a champion bundle on it;
2. simulate a *drifted* fleet — same population, raised inlet
   temperature — and stream it block by block;
3. watch :class:`repro.learn.DriftDetector` raise alarms as the stream
   walks away from the baseline;
4. rebuild the stream into a :class:`repro.learn.SlidingWindow` and
   refit a lineage-stamped challenger bundle;
5. shadow-score champion vs challenger and print the divergence
   report;
6. evaluate the promotion policy and, if it says go, replay the stream
   through a live sharded daemon with a mid-stream promotion —
   verifying the served verdicts are byte-identical to offline scoring.

``repro-learn drill`` wraps the same walk as a one-command, seed-pinned
acceptance gate.

Usage::

   python examples/continuous_learning.py
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro import FleetConfig, simulate_fleet
from repro.core.pipeline import CharacterizationPipeline
from repro.learn import (DriftDetector, DriftPolicy, PromotionPolicy,
                         ShadowScorer, SlidingWindow, blocked_stream,
                         refit_challenger)
from repro.serve import ShardSet, StreamScorer, build_bundle, content_hash

N_DRIVES = 240
BLOCK_SIZE = 256
SEED = 11
DRIFT_DELTA_C = 8.0


def main() -> None:
    # -- 1. champion: train on the baseline fleet -------------------------
    print(f"Simulating a baseline fleet ({N_DRIVES} drives)...")
    baseline_config = FleetConfig(n_drives=N_DRIVES, seed=SEED)
    baseline = simulate_fleet(baseline_config)
    report = CharacterizationPipeline(seed=SEED).run(baseline.dataset)
    champion = build_bundle(report, seed=SEED)
    champion_sha = content_hash(champion.to_payload())
    print(f"  champion bundle {champion_sha[:12]}... "
          f"(generation {champion.generation})")

    # -- 2. the fleet drifts ----------------------------------------------
    print(f"\nSimulating a drifted fleet (inlet +{DRIFT_DELTA_C:.0f} C)...")
    drifted = simulate_fleet(replace(
        baseline_config, seed=SEED + 1,
        inlet_temperature_c=baseline_config.inlet_temperature_c
        + DRIFT_DELTA_C))
    baseline_blocks = blocked_stream(baseline.dataset, BLOCK_SIZE)
    drifted_blocks = blocked_stream(drifted.dataset, BLOCK_SIZE)
    print(f"  {len(drifted_blocks)} blocks of {BLOCK_SIZE} samples")

    # -- 3. drift detection ------------------------------------------------
    # Warm the baselines over the entire baseline stream so alarming
    # starts exactly when the drifted fleet does.
    n_baseline = sum(len(serials) for serials, _h, _m in baseline_blocks)
    detector = DriftDetector(champion.attributes,
                             policy=DriftPolicy(warmup_samples=n_baseline))
    for _serials, _hours, matrix in baseline_blocks:
        detector.update(matrix)
    alarms = []
    for _serials, _hours, matrix in drifted_blocks:
        alarms.extend(detector.update(matrix))
    print(f"\n{len(alarms)} drift alarm(s); first three:")
    for alarm in alarms[:3]:
        print(f"  {alarm.describe()}")

    # -- 4. refit a challenger from the stream -----------------------------
    window = SlidingWindow(champion.attributes)
    for serials, hours, matrix in drifted_blocks:
        window.add_block(serials, hours, matrix)
    window.mark_failed(drifted.failed_serials())
    print(f"\nRefitting on the window ({window.n_drives} drives, "
          f"{window.n_samples} samples, "
          f"{len(window.failed_serials)} failed)...")
    challenger = refit_challenger(window.to_dataset(), champion, seed=SEED)
    print(f"  challenger {content_hash(challenger.to_payload())[:12]}... "
          f"(generation {challenger.generation}, "
          f"parent {challenger.parent_sha256[:12]}...)")

    # -- 5. shadow-score both bundles over the same stream -----------------
    shadow = ShadowScorer(champion, challenger)
    for serials, hours, matrix in drifted_blocks:
        shadow.score_block(serials, hours, matrix)
    divergence = shadow.report()
    print(f"\nShadow run: {divergence.n_samples} samples, "
          f"agreement {divergence.agreement_rate:.4f}, "
          f"mean stage delta {divergence.stage_delta_mean:.4f}")
    print(f"  drives the bundles disagree about: "
          f"{len(divergence.alert_deltas)}")

    # -- 6. promotion decision + the live swap -----------------------------
    policy = PromotionPolicy(min_samples=1024, min_agreement=0.5,
                             max_stage_delta=1e6)
    decision = policy.evaluate(divergence, champion, challenger)
    print(f"\nPromotion decision: promote={decision.promote}")
    for reason in decision.reasons:
        print(f"  - {reason}")
    if not decision.promote:
        return

    # Offline reference: champion scores the first half, swap_bundle at
    # the fence, challenger scores the rest.
    promote_at = len(drifted_blocks) // 2
    scorer = StreamScorer(champion)
    offline = hashlib.sha256()
    for index, (serials, hours, matrix) in enumerate(drifted_blocks):
        if index == promote_at:
            scorer.swap_bundle(challenger)
        for line in scorer.score_block(serials, hours, matrix) \
                .to_json_lines():
            offline.update(line.encode() + b"\n")

    # Live: same stream through a sharded scorer with a real promotion
    # fence between the same two blocks.
    served = hashlib.sha256()
    with ShardSet(champion, n_shards=2) as shards:
        for index, (serials, hours, matrix) in enumerate(drifted_blocks):
            if index == promote_at:
                receipts = shards.promote(challenger)
                print(f"\nPromoted on {len(receipts)} shard(s) at "
                      f"block {promote_at}")
            block = shards.submit_block(serials, hours, matrix)
            for line in block.to_json_lines():
                served.update(line.encode() + b"\n")
    match = served.hexdigest() == offline.hexdigest()
    print(f"served verdict stream == offline swap at same block: {match}")
    assert match


if __name__ == "__main__":
    main()
