"""Streaming scoring: train once, export a bundle, score a live stream.

The serving loop of :mod:`repro.serve` end to end:

1. characterize a training fleet and freeze its models — normalization
   extrema, taxonomy + centroids, fitted regression trees, monitor
   thresholds — into a versioned, hashed bundle file;
2. reload the bundle (as a scoring host would: the training process is
   gone) and stream a fresh fleet's telemetry through a
   :class:`repro.serve.StreamScorer`, drive by drive, hour by hour;
3. verify the contract that makes serving trustworthy: the streamed
   verdicts are byte-identical to an offline
   :meth:`DegradationMonitor.replay` with the never-serialized models.

Usage::

   python examples/streaming_scoring.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import (
    CharacterizationPipeline,
    FleetConfig,
    StreamScorer,
    build_bundle,
    load_bundle,
    save_bundle,
    simulate_fleet,
)
from repro.core.monitor import AlertLevel, DegradationMonitor
from repro.core.prediction import DegradationPredictor
from repro.serve.scorer import MonitorVerdict


def main() -> None:
    print("Training the characterization models...")
    training_fleet = simulate_fleet(FleetConfig(n_drives=2000, seed=71))
    report = CharacterizationPipeline(seed=71).run(training_fleet.dataset)

    bundle_path = Path(tempfile.mkdtemp()) / "fleet.bundle.json"
    save_bundle(build_bundle(report, seed=71), bundle_path)
    size_kib = bundle_path.stat().st_size / 1024
    print(f"Exported the model bundle ({size_kib:.0f} KiB) "
          f"to {bundle_path}")

    # A scoring host loads the artifact; corrupt or stale bundles would
    # raise a typed BundleError here instead of scoring garbage.
    bundle = load_bundle(bundle_path)
    scorer = StreamScorer(bundle)

    print("Scoring a fresh month of telemetry from the bundle...")
    live_fleet = simulate_fleet(FleetConfig(n_drives=500, seed=72))
    levels: Counter[str] = Counter()
    for profile in live_fleet.dataset.profiles:
        for verdict in scorer.replay_profile(profile):
            levels[verdict.level] += 1
    print(f"  {scorer.samples_scored} samples from "
          f"{scorer.drives_tracked} drives: "
          f"{levels[AlertLevel.WATCH.name]} WATCH and "
          f"{levels[AlertLevel.CRITICAL.name]} CRITICAL verdicts")
    critical = scorer.drives_at(AlertLevel.CRITICAL)
    if critical:
        print(f"  drives ending CRITICAL: {', '.join(critical[:5])}"
              + (" ..." if len(critical) > 5 else ""))

    print("Checking byte-identity against offline replay...")
    predictor = DegradationPredictor(seed=71)
    predictor.evaluate_all(report.dataset, report.categorization)
    monitor = DegradationMonitor(predictor, report.dataset.normalizer)
    fresh_scorer = StreamScorer(bundle)
    checked = 0
    for profile in live_fleet.dataset.profiles[:40]:
        offline = [MonitorVerdict.from_alert(alert).to_json_line()
                   for alert in monitor.replay(profile)]
        streamed = [verdict.to_json_line()
                    for verdict in fresh_scorer.replay_profile(profile)]
        assert streamed == offline, f"divergence on {profile.serial}"
        checked += len(offline)
    print(f"  {checked} verdicts byte-identical across "
          "save -> load -> stream")


if __name__ == "__main__":
    main()
