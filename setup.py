"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works on
environments whose setuptools predates PEP 660 editable installs (pip
falls back to the legacy ``setup.py develop`` path with
``--no-use-pep517``).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
