"""Ground-truth validation of categorization results.

The studied data center had no failure-type labels — that is why the
paper clusters.  The simulator, however, knows every drive's true mode,
so simulation studies can score the pipeline exactly.  This module is
the public API for that: a per-type confusion matrix between a
:class:`CategorizationResult` and a :class:`FleetResult`'s ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.categorize import CategorizationResult
from repro.core.taxonomy import FailureType
from repro.errors import ReproError
from repro.sim.failure_modes import FailureMode
from repro.sim.fleet import FleetResult

#: Correspondence between taxonomy types and simulator modes.
MODE_BY_TYPE: dict[FailureType, FailureMode] = {
    FailureType.LOGICAL: FailureMode.LOGICAL,
    FailureType.BAD_SECTOR: FailureMode.BAD_SECTOR,
    FailureType.HEAD: FailureMode.HEAD,
}

TYPE_BY_MODE: dict[FailureMode, FailureType] = {
    mode: failure_type for failure_type, mode in MODE_BY_TYPE.items()
}


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """Agreement between a categorization and the simulator ground truth.

    ``confusion[true_type][assigned_type]`` counts drives of the true
    type that the pipeline placed in the assigned type's group.
    """

    n_drives: int
    n_correct: int
    confusion: dict[FailureType, dict[FailureType, int]]

    @property
    def accuracy(self) -> float:
        return self.n_correct / self.n_drives if self.n_drives else 0.0

    def recall(self, failure_type: FailureType) -> float:
        """Fraction of the true type's drives assigned to its group."""
        row = self.confusion[failure_type]
        total = sum(row.values())
        return row[failure_type] / total if total else 0.0

    def precision(self, failure_type: FailureType) -> float:
        """Fraction of the assigned group that truly is the type."""
        assigned = sum(row[failure_type] for row in self.confusion.values())
        return (self.confusion[failure_type][failure_type] / assigned
                if assigned else 0.0)

    def misassigned_serials(self) -> list[str]:
        return list(self._misassigned)

    # Stored outside the dataclass fields to keep the frozen API tidy.
    _misassigned: tuple[str, ...] = ()


def validate_categorization(fleet: FleetResult,
                            categorization: CategorizationResult,
                            ) -> ValidationReport:
    """Score ``categorization`` against the fleet's true failure modes."""
    confusion = {
        true_type: {assigned: 0 for assigned in FailureType}
        for true_type in FailureType
    }
    n_drives = 0
    n_correct = 0
    misassigned: list[str] = []
    for assigned_type in FailureType:
        for serial in categorization.serials_of_type(assigned_type):
            true_mode = fleet.true_modes.get(serial)
            if true_mode is None or not true_mode.is_failure:
                raise ReproError(
                    f"categorized drive {serial!r} is not a failed drive "
                    f"of this fleet"
                )
            true_type = TYPE_BY_MODE[true_mode]
            confusion[true_type][assigned_type] += 1
            n_drives += 1
            if true_type is assigned_type:
                n_correct += 1
            else:
                misassigned.append(serial)
    return ValidationReport(
        n_drives=n_drives,
        n_correct=n_correct,
        confusion=confusion,
        _misassigned=tuple(misassigned),
    )
