"""Failure-record feature construction (Section IV-B).

For every failed drive the paper extracts its *failure record* — the last
recorded health state — and augments each of the ten read/write
attributes with two statistics, "standard deviation of the values in the
last 24 hours and change rate of the values", yielding "a set of 433
failure records with 30 features each".  :func:`build_failure_records`
reproduces that construction on any dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import DiskDataset
from repro.errors import DatasetError
from repro.smart.attributes import READ_WRITE_ATTRIBUTES
from repro.stats.features import FEATURE_WINDOW_HOURS, change_rate, rolling_std

#: Suffixes of the two derived statistics per attribute.
_STD_SUFFIX = "_std24"
_RATE_SUFFIX = "_rate"


@dataclass(frozen=True, slots=True)
class FailureRecordSet:
    """The clustering input: one 30-feature row per failed drive.

    Attributes
    ----------
    features:
        ``(n_failed, 3 * n_rw_attributes)`` matrix.
    serials:
        Drive serials aligned with the rows.
    feature_names:
        Column names: the attribute symbol, then ``<symbol>_std24`` and
        ``<symbol>_rate`` for each read/write attribute.
    attribute_values:
        The plain failure records (last health state, all dataset
        attributes) aligned with ``serials`` — used by the taxonomy rules
        and the Table II summaries.
    attribute_names:
        Column symbols of ``attribute_values``.
    """

    features: np.ndarray
    serials: tuple[str, ...]
    feature_names: tuple[str, ...]
    attribute_values: np.ndarray
    attribute_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.features.shape[0] != len(self.serials):
            raise DatasetError("features and serials misaligned")
        if self.features.shape[1] != len(self.feature_names):
            raise DatasetError("features and feature names misaligned")
        if self.attribute_values.shape[0] != len(self.serials):
            raise DatasetError("attribute values and serials misaligned")

    @property
    def n_records(self) -> int:
        return self.features.shape[0]

    def feature_column(self, name: str) -> np.ndarray:
        try:
            index = self.feature_names.index(name)
        except ValueError:
            raise DatasetError(f"no feature named {name!r}") from None
        return self.features[:, index].copy()

    def attribute_column(self, symbol: str) -> np.ndarray:
        try:
            index = self.attribute_names.index(symbol)
        except ValueError:
            raise DatasetError(f"no attribute named {symbol!r}") from None
        return self.attribute_values[:, index].copy()


def build_failure_records(dataset: DiskDataset, *,
                          window_hours: int = FEATURE_WINDOW_HOURS,
                          rw_attributes: tuple[str, ...] = READ_WRITE_ATTRIBUTES,
                          ) -> FailureRecordSet:
    """Extract the 30-feature failure records from a (normalized) dataset.

    The dataset should already be Eq. (1)-normalized so that features of
    different attributes are commensurate in the clustering metric.  Raw
    datasets are accepted without complaint (useful for ablations); the
    caller owns that choice.
    """
    failed = dataset.failed_profiles
    if not failed:
        raise DatasetError("dataset has no failed drives")
    for symbol in rw_attributes:
        dataset.column_index(symbol)  # validate early

    feature_names: list[str] = []
    for symbol in rw_attributes:
        feature_names.extend(
            (symbol, f"{symbol}{_STD_SUFFIX}", f"{symbol}{_RATE_SUFFIX}")
        )

    rows = []
    attribute_rows = []
    serials = []
    for profile in failed:
        row = []
        for symbol in rw_attributes:
            series = profile.column(symbol)
            row.append(series[-1])
            row.append(rolling_std(series, window_hours))
            row.append(change_rate(series, window_hours))
        rows.append(row)
        attribute_rows.append(profile.failure_record())
        serials.append(profile.serial)

    return FailureRecordSet(
        features=np.asarray(rows, dtype=np.float64),
        serials=tuple(serials),
        feature_names=tuple(feature_names),
        attribute_values=np.vstack(attribute_rows),
        attribute_names=dataset.attributes,
    )


#: Array names used by the cache codec below (and expected back).
_RECORD_ARRAY_KEYS = ("record_features", "record_serials",
                      "record_feature_names", "record_attribute_values",
                      "record_attribute_names")


def failure_records_to_arrays(records: FailureRecordSet
                              ) -> dict[str, np.ndarray]:
    """Flatten a record set into named plain arrays.

    The codec the pipeline uses to memoize failure records through the
    :class:`repro.data.cache.DatasetCache` ``extras`` channel (the cache
    lives in the data layer and cannot know this core-layer type).
    """
    return {
        "record_features": records.features,
        "record_serials": np.asarray(records.serials),
        "record_feature_names": np.asarray(records.feature_names),
        "record_attribute_values": records.attribute_values,
        "record_attribute_names": np.asarray(records.attribute_names),
    }


def failure_records_from_arrays(arrays: dict[str, np.ndarray]
                                ) -> FailureRecordSet:
    """Rebuild a record set from :func:`failure_records_to_arrays` output."""
    missing = [key for key in _RECORD_ARRAY_KEYS if key not in arrays]
    if missing:
        raise DatasetError(f"record arrays incomplete, missing {missing}")
    return FailureRecordSet(
        features=np.asarray(arrays["record_features"], dtype=np.float64),
        serials=tuple(str(s) for s in arrays["record_serials"]),
        feature_names=tuple(str(s) for s in arrays["record_feature_names"]),
        attribute_values=np.asarray(arrays["record_attribute_values"],
                                    dtype=np.float64),
        attribute_names=tuple(
            str(s) for s in arrays["record_attribute_names"]
        ),
    )
