"""Attribute influence on failure degradation (Section IV-D).

Two analyses:

* :func:`rw_attribute_correlations` — Pearson correlation of each
  non-constant read/write attribute with the degradation value inside a
  drive's degradation window (Figure 9);
* :func:`environmental_correlations` — correlation of the environmental
  attributes (POH, TC) with designated read/write attributes over three
  horizons: the degradation window, a 24-hour window and the full
  profile (Figure 10).  POH is smoothed first, exactly as the paper does,
  because the raw health value is a step function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.signatures import DegradationWindow
from repro.errors import ReproError
from repro.smart.attributes import READ_WRITE_ATTRIBUTES
from repro.stats.correlation import pearson
from repro.stats.features import smooth_poh
from repro.smart.profile import HealthProfile


@dataclass(frozen=True, slots=True)
class EnvironmentalCorrelation:
    """One cell of the Figure 10 tables."""

    environmental: str
    target: str
    horizon: str
    correlation: float


def rw_attribute_correlations(profile: HealthProfile,
                              window: DegradationWindow,
                              attributes: tuple[str, ...] = READ_WRITE_ATTRIBUTES,
                              ) -> dict[str, float]:
    """Correlation of read/write attributes with the degradation value.

    The degradation value over the window is the normalized dissimilarity
    ``s``; attributes whose values are constant inside the window get a
    correlation of 0 (they contribute nothing to the degradation).
    """
    _, s = window.degradation_values()
    n_records = window.n_records
    correlations: dict[str, float] = {}
    for symbol in attributes:
        series = profile.column(symbol)[-n_records:]
        correlations[symbol] = pearson(series, s)
    return correlations


def environmental_correlations(profile: HealthProfile,
                               window: DegradationWindow,
                               targets: tuple[str, ...],
                               environmental: tuple[str, ...] = ("POH", "TC"),
                               day_window_hours: int = 24,
                               ) -> list[EnvironmentalCorrelation]:
    """Correlate environmental attributes with read/write targets.

    Horizons follow Figure 10: the degradation window, the trailing
    ``day_window_hours`` and the entire recorded profile ("20-day
    window" for fully observed failed drives).
    """
    if not targets:
        raise ReproError("need at least one target attribute")
    horizons = {
        "degradation_window": window.n_records,
        "24_hour_window": min(day_window_hours, len(profile)),
        "full_profile": len(profile),
    }
    results: list[EnvironmentalCorrelation] = []
    for horizon_name, n_records in horizons.items():
        for env_symbol in environmental:
            env_series = profile.column(env_symbol)[-n_records:]
            if env_symbol == "POH":
                hours = profile.hours[-n_records:]
                env_series = smooth_poh(env_series, hours)
            for target in targets:
                target_series = profile.column(target)[-n_records:]
                results.append(
                    EnvironmentalCorrelation(
                        environmental=env_symbol,
                        target=target,
                        horizon=horizon_name,
                        correlation=(
                            pearson(env_series, target_series)
                            if n_records >= 2 else 0.0
                        ),
                    )
                )
    return results


def top_correlated_attributes(correlations: dict[str, float],
                              count: int = 2) -> list[str]:
    """Attributes most correlated (by magnitude) with the degradation."""
    if count < 1:
        raise ReproError("count must be positive")
    ranked = sorted(correlations, key=lambda k: -abs(correlations[k]))
    return ranked[:count]
