"""Canonical degradation-signature models (Equations 2-6).

Section IV-C derives, per failure group, a closed-form signature mapping
time-before-failure ``t`` (hours) and the degradation-window size ``d``
to the degradation value ``s`` in ``[-1, 0]``:

* Group 1 (logical), Eq. (3):      ``s = t^2 / d^2 - 1``
* Group 2 (bad sector), Eq. (4):   ``s = t / d - 1``
* Group 3 (head), Eq. (6):         ``s = t^3 / d^3 - 1``

The paper also evaluates the unconstrained intermediate forms it rejects
— Eq. (2) ``s = t^2/d^2 - t/(3d) - 1`` and Eq. (5)
``s = t^2/d^2 - t/(a d) - 1`` — by RMSE;
:func:`compare_signature_models` reproduces those comparisons.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.taxonomy import FailureType
from repro.errors import SignatureError

#: Canonical polynomial order per failure type (the paper's final models).
CANONICAL_ORDER_BY_TYPE: dict[FailureType, int] = {
    FailureType.LOGICAL: 2,
    FailureType.BAD_SECTOR: 1,
    FailureType.HEAD: 3,
}

#: Degradation-window sizes the paper fixes when building prediction
#: targets (Section V-B): d = 12, 380, 24 for Groups 1-3.
PREDICTION_WINDOW_BY_TYPE: dict[FailureType, int] = {
    FailureType.LOGICAL: 12,
    FailureType.BAD_SECTOR: 380,
    FailureType.HEAD: 24,
}

SignatureFunction = Callable[[np.ndarray], np.ndarray]


def canonical_signature(order: int, window: int) -> SignatureFunction:
    """Return the revised canonical signature ``s(t) = (t/d)^order - 1``.

    ``s(0) = -1`` (the failure event) and ``s(d) = 0`` (the start of the
    degradation window), fixing the boundary problem the paper identifies
    in Eq. (2)/(5).
    """
    _check_window(window)
    if order < 1:
        raise SignatureError("signature order must be at least 1")

    def signature(t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return (t / float(window)) ** order - 1.0

    return signature


def signature_for_type(failure_type: FailureType,
                       window: int) -> SignatureFunction:
    """Canonical signature of a failure type at window size ``window``."""
    return canonical_signature(CANONICAL_ORDER_BY_TYPE[failure_type], window)


def paper_equation_2(window: int) -> SignatureFunction:
    """Eq. (2): the unconstrained second-order form the paper rejects."""
    _check_window(window)

    def signature(t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return t ** 2 / window ** 2 - t / (3.0 * window) - 1.0

    return signature


def paper_equation_5(window: int, a: float = 1.0) -> SignatureFunction:
    """Eq. (5): the unconstrained third-group form the paper rejects."""
    _check_window(window)
    if a == 0:
        raise SignatureError("coefficient a must be non-zero")

    def signature(t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return t ** 2 / window ** 2 - t / (a * window) - 1.0

    return signature


def compare_signature_models(t: np.ndarray, s: np.ndarray, window: int,
                             failure_type: FailureType) -> dict[str, float]:
    """RMSE of every candidate signature model on one degradation curve.

    Reproduces the Section IV-C comparisons: for Group 1 the paper
    compares Eq. (2), the first-order form and the revised second-order
    form (RMSEs 0.24 / 0.14 / 0.06); for Group 3 it adds the simplified
    third-order form (0.45 / 0.35 / 0.22 / 0.16).
    """
    t = np.asarray(t, dtype=np.float64)
    s = np.asarray(s, dtype=np.float64)
    if t.shape != s.shape:
        raise SignatureError("t and s must align")
    candidates: dict[str, SignatureFunction] = {
        "first_order": canonical_signature(1, window),
        "revised_second_order": canonical_signature(2, window),
    }
    if failure_type is FailureType.LOGICAL:
        candidates["equation_2"] = paper_equation_2(window)
    if failure_type is FailureType.HEAD:
        candidates["equation_5"] = paper_equation_5(window)
        candidates["simplified_third_order"] = canonical_signature(3, window)
    if failure_type is FailureType.BAD_SECTOR:
        candidates["simplified_third_order"] = canonical_signature(3, window)
    return {
        name: float(np.sqrt(np.mean((s - model(t)) ** 2)))
        for name, model in candidates.items()
    }


def prediction_target(failure_type: FailureType,
                      hours_before_failure: np.ndarray,
                      window: int | None = None) -> np.ndarray:
    """Target degradation values for prediction training (Section V-B).

    Failed-drive samples get the canonical signature value at their lag,
    saturated at 1.0 (the good-state target) once the lag leaves the
    degradation regime; good-drive samples are assigned 1.0 by the caller.
    """
    if window is None:
        window = PREDICTION_WINDOW_BY_TYPE[failure_type]
    signature = signature_for_type(failure_type, window)
    values = signature(np.asarray(hours_before_failure, dtype=np.float64))
    return np.minimum(values, 1.0)


def _check_window(window: int) -> None:
    if window < 1:
        raise SignatureError("degradation window must be at least 1 hour")
