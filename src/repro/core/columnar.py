"""Struct-of-arrays drive state and block verdicts for the hot path.

The streaming monitor's original :class:`~repro.core.monitor.DriveStateStore`
keeps one Python deque of per-record numpy arrays per drive — clear, but
every observed sample allocates an array object and every batch walks a
Python loop.  At fleet scale (ROADMAP item 2: millions of drives, hourly
ticks) the per-drive objects *are* the cost.

This module is the columnar replacement:

* :class:`ColumnStateStore` — one preallocated 3-D ring buffer for the
  whole store (``drives x history_hours x attributes``) plus flat
  per-row cursor/count/level/last-hour arrays and a serial→row map.
  Rows are recycled when drives are evicted and the arrays grow by
  doubling, so a churning million-drive fleet has bounded memory and no
  per-drive allocation on the healthy path.
* :class:`AlertBlock` — the struct-of-arrays result of scoring one tick
  of samples: per-type stage and remaining-hour matrices, likely-type
  indices and level codes.  Materializing
  :class:`~repro.core.monitor.DegradationAlert` objects is deferred to
  :meth:`AlertBlock.alerts` / :meth:`AlertBlock.alert_at`, so callers
  that only need counts (or only the rare alerting rows) never pay for
  per-sample Python objects.

Both classes are byte-identity preserving: a
:class:`~repro.core.monitor.DegradationMonitor` running on a
:class:`ColumnStateStore` emits exactly the verdicts the deque-backed
store produced, and ``AlertBlock.alerts()`` equals the scalar
``observe`` loop bit for bit (pinned by ``tests/test_core_columnar.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.monitor import AlertLevel, DegradationAlert

#: Rows allocated on a store's first write; growth doubles from here.
DEFAULT_INITIAL_ROWS = 256


class ColumnStateStore:
    """Keyed per-drive monitoring state in struct-of-arrays layout.

    A drop-in replacement for
    :class:`~repro.core.monitor.DriveStateStore`: the scalar surface
    (``record`` / ``level_of`` / ``drives_at`` / ``serials`` /
    ``history_of`` / ``snapshot``) matches exactly, so the monitor's
    per-sample path runs unchanged on either store.  On top of it sits
    the columnar surface the batched kernel uses:
    :meth:`record_block` updates every ring touched by a tick with
    fancy-indexed writes, and :meth:`evict_idle` recycles the rows of
    drives not seen since a cutoff hour.

    Layout
    ------
    ``rings`` is one ``(capacity, history_hours, n_attributes)`` float64
    array; row ``r`` is drive ``r``'s ring buffer, written circularly at
    cursor ``pos[r]``.  ``counts[r]`` is how many records the ring
    retains, ``levels[r]`` the last severity code, ``last_hours[r]`` the
    maximum hour observed (the eviction clock).  ``serial -> row`` lives
    in one dict; evicted rows go to a free list and are handed to new
    drives before the arrays grow (by doubling).

    The store is a passive container — it never computes a verdict — so
    any partitioning of drives across stores leaves every verdict
    byte-identical to a single-store run.
    """

    def __init__(self, history_hours: int, *,
                 initial_rows: int = DEFAULT_INITIAL_ROWS) -> None:
        if history_hours < 1:
            raise ReproError("history_hours must be positive")
        if initial_rows < 1:
            raise ReproError("initial_rows must be positive")
        self._history_hours = int(history_hours)
        self._initial_rows = int(initial_rows)
        self._n_attributes: int | None = None
        self._rings: np.ndarray | None = None
        self._pos: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._levels: np.ndarray | None = None
        self._last_hours: np.ndarray | None = None
        self._rows: dict[str, int] = {}
        self._row_serials: list[str | None] = []
        self._free: list[int] = []
        self._drives_evicted = 0

    # -- scalar surface (DriveStateStore-compatible) ----------------------

    @property
    def history_hours(self) -> int:
        """Ring-buffer capacity retained per drive."""
        return self._history_hours

    @property
    def n_tracked(self) -> int:
        """Drives with live ring-buffer state (O(1))."""
        return len(self._rows)

    @property
    def drives_evicted(self) -> int:
        """Total drives recycled by :meth:`evict_idle` since creation."""
        return self._drives_evicted

    @property
    def capacity(self) -> int:
        """Allocated ring rows (grows by doubling, never shrinks)."""
        return len(self._row_serials)

    def record(self, serial: str, normalized: np.ndarray,
               level: "AlertLevel", hour: int | None = None) -> None:
        """Append one normalized record and set the drive's level."""
        normalized = np.asarray(normalized, dtype=np.float64).ravel()
        self._ensure_layout(normalized.shape[0])
        row = self._row_for(serial, normalized.shape[0])
        assert (self._rings is not None and self._pos is not None
                and self._counts is not None and self._levels is not None
                and self._last_hours is not None)
        position = self._pos[row]
        self._rings[row, position] = normalized
        self._pos[row] = (position + 1) % self._history_hours
        if self._counts[row] < self._history_hours:
            self._counts[row] += 1
        self._levels[row] = level.value
        if hour is not None and hour > self._last_hours[row]:
            self._last_hours[row] = hour

    def level_of(self, serial: str) -> "AlertLevel":
        """Last recorded level for a drive (HEALTHY if never seen)."""
        from repro.core.monitor import AlertLevel
        row = self._rows.get(serial)
        if row is None:
            return AlertLevel.HEALTHY
        assert self._levels is not None
        return AlertLevel(int(self._levels[row]))

    def drives_at(self, level: "AlertLevel") -> list[str]:
        """Serials currently at exactly ``level``."""
        assert self._levels is not None or not self._rows
        return sorted(serial for serial, row in self._rows.items()
                      if int(self._levels[row]) == level.value)

    def serials(self) -> list[str]:
        """All tracked serials, sorted."""
        return sorted(self._rows)

    def history_of(self, serial: str) -> np.ndarray:
        """Rolling window of normalized records for one drive.

        Rows come back oldest-first, exactly as the deque-backed store
        stacked them; the returned array is a fresh copy.
        """
        row = self._rows.get(serial)
        if row is None:
            raise ReproError(f"no observations for drive {serial!r}")
        assert (self._rings is not None and self._pos is not None
                and self._counts is not None)
        count = int(self._counts[row])
        position = int(self._pos[row])
        if count < self._history_hours:
            return self._rings[row, :count].copy()
        return np.concatenate([self._rings[row, position:],
                               self._rings[row, :position]])

    def snapshot(self) -> dict:
        """JSON-clean summary of every tracked drive, sorted by serial.

        Field-compatible with the deque-backed store's snapshot, plus
        the store's ``drives_evicted`` counter.
        """
        from repro.core.monitor import AlertLevel
        drives = {}
        for serial in sorted(self._rows):
            row = self._rows[serial]
            assert self._levels is not None and self._counts is not None
            drives[serial] = {
                "level": AlertLevel(int(self._levels[row])).name,
                "retained": int(self._counts[row]),
            }
        return {
            "history_hours": self._history_hours,
            "n_tracked": self.n_tracked,
            "drives_evicted": self._drives_evicted,
            "drives": drives,
        }

    def dump_state(self) -> dict:
        """Full, JSON-clean state for crash recovery (exact round-trip).

        Everything :meth:`restore` needs to rebuild an *operationally
        identical* store: layout, the serial→row map, the free-list
        order, eviction counter, and per live drive its retained
        window (oldest-first), level code and last-seen hour.  Floats
        go through ``tolist()`` → ``repr``, which round-trips float64
        exactly — unlike the canonical JSON helpers, which round.

        Ring slots beyond a drive's retained count are scratch (never
        read), so the dump stores the *window*, not raw ring rows, and
        the cursor is normalized on restore: dumps of a store and of
        its restored twin are identical, as is every subsequent verdict
        and state transition.
        """
        drives = {}
        for serial in sorted(self._rows):
            row = self._rows[serial]
            assert (self._levels is not None and self._counts is not None
                    and self._last_hours is not None)
            drives[serial] = {
                "row": row,
                "level": int(self._levels[row]),
                "last_hour": int(self._last_hours[row]),
                "window": self.history_of(serial).tolist(),
            }
        return {
            "schema": 1,
            "kind": "columnar",
            "history_hours": self._history_hours,
            "initial_rows": self._initial_rows,
            "n_attributes": self._n_attributes,
            "capacity": self.capacity,
            "drives_evicted": self._drives_evicted,
            "free": list(self._free),
            "drives": drives,
        }

    def restore(self, payload: dict) -> None:
        """Rebuild this store in place from a :meth:`dump_state` payload.

        Discards all current state.  Restores the exact serial→row
        mapping, free-list order and eviction counter, and rewrites
        each drive's window at a normalized cursor position — the
        restored store is indistinguishable from the dumped one through
        every public method, including duplicate-serial
        :meth:`record_block` behavior and future :meth:`evict_idle` /
        row-recycling decisions.
        """
        try:
            if payload.get("kind") != "columnar":
                raise ReproError(
                    f"cannot restore a ColumnStateStore from a "
                    f"{payload.get('kind')!r} state dump")
            if int(payload["history_hours"]) != self._history_hours:
                raise ReproError(
                    f"state dump retains {payload['history_hours']} hours, "
                    f"store was built for {self._history_hours}")
            capacity = int(payload["capacity"])
            n_attributes = payload["n_attributes"]
            free = [int(row) for row in payload["free"]]
            drives = payload["drives"]
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(
                f"malformed state dump for ColumnStateStore: {error}"
            ) from error
        self._initial_rows = int(payload.get("initial_rows",
                                             self._initial_rows))
        self._drives_evicted = int(payload.get("drives_evicted", 0))
        self._rows = {}
        self._free = free
        self._n_attributes = None
        self._rings = self._pos = self._counts = None
        self._levels = self._last_hours = None
        self._row_serials = []
        if n_attributes is None:
            return
        self._n_attributes = int(n_attributes)
        history = self._history_hours
        self._rings = np.zeros((capacity, history, self._n_attributes),
                               dtype=np.float64)
        self._pos = np.zeros(capacity, dtype=np.int64)
        self._counts = np.zeros(capacity, dtype=np.int64)
        self._levels = np.zeros(capacity, dtype=np.int8)
        self._last_hours = np.full(capacity, np.iinfo(np.int64).min,
                                   dtype=np.int64)
        self._row_serials = [None] * capacity
        for serial, entry in drives.items():
            row = int(entry["row"])
            window = np.asarray(entry["window"], dtype=np.float64)
            count = window.shape[0]
            if not 0 <= row < capacity or count > history:
                raise ReproError(
                    f"state dump drive {serial!r} has row {row} / "
                    f"window {count} outside the dumped layout")
            self._rows[serial] = row
            self._row_serials[row] = serial
            if count:
                self._rings[row, :count] = window
            self._counts[row] = count
            self._pos[row] = count % history
            self._levels[row] = int(entry["level"])
            self._last_hours[row] = int(entry["last_hour"])

    @classmethod
    def from_snapshot(cls, payload: dict, *,
                      initial_rows: int = DEFAULT_INITIAL_ROWS,
                      ) -> "ColumnStateStore":
        """Build a fresh store from a :meth:`dump_state` payload."""
        try:
            history_hours = int(payload["history_hours"])
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(
                f"malformed state dump for ColumnStateStore: {error}"
            ) from error
        store = cls(history_hours, initial_rows=initial_rows)
        store.restore(payload)
        return store

    # -- columnar surface -------------------------------------------------

    def record_block(self, serials: Sequence[str], normalized: np.ndarray,
                     level_codes: np.ndarray,
                     hours: np.ndarray | Sequence[int]) -> None:
        """Apply one tick of records to every touched ring at once.

        Row ``i`` of ``normalized`` is appended to ``serials[i]``'s ring
        and that drive's level/last-hour state updated — semantically
        identical to calling :meth:`record` once per row, in order,
        including when a serial repeats within the block (later rows
        overwrite earlier ring slots exactly as sequential appends
        would).  The healthy fast path allocates nothing per drive: one
        row-index gather, one fancy-indexed ring write, flat cursor
        arithmetic.
        """
        normalized = np.asarray(normalized, dtype=np.float64)
        n = normalized.shape[0]
        if n == 0:
            return
        rows = self._rows_for_block(serials, normalized.shape[1])
        assert (self._rings is not None and self._pos is not None
                and self._counts is not None and self._levels is not None
                and self._last_hours is not None)
        hours = np.asarray(hours, dtype=np.int64)
        level_codes = np.asarray(level_codes)
        history = self._history_hours

        # Occurrence index of each row within the block (stable order):
        # the k-th sample of a drive lands k slots past its cursor.
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = sorted_rows[1:] != sorted_rows[:-1]
        group_start = np.maximum.accumulate(
            np.where(starts, np.arange(n), 0))
        occurrence = np.empty(n, dtype=np.int64)
        occurrence[order] = np.arange(n) - group_start

        group_ends = np.flatnonzero(
            np.concatenate([starts[1:], np.ones(1, dtype=bool)]))
        last_of_group = order[group_ends]          # last sample per drive
        unique_rows = sorted_rows[group_ends]
        per_row_total = occurrence[last_of_group] + 1

        # Only the last ``history`` occurrences per drive survive a
        # sequential append loop; dropping the overwritten ones keeps
        # every (row, slot) write target unique, so the fancy write is
        # order-independent.
        slots = (self._pos[rows] + occurrence) % history
        keep = occurrence >= (per_row_total[
            np.searchsorted(unique_rows, rows)] - history)
        self._rings[rows[keep], slots[keep]] = normalized[keep]

        self._pos[unique_rows] = (
            self._pos[unique_rows] + per_row_total) % history
        self._counts[unique_rows] = np.minimum(
            self._counts[unique_rows] + per_row_total, history)
        self._levels[unique_rows] = level_codes[last_of_group]
        np.maximum.at(self._last_hours, rows, hours)

    def evict_idle(self, before_hour: int) -> int:
        """Recycle every drive last observed strictly before ``before_hour``.

        Evicted drives vanish from the tracked set (``level_of`` returns
        HEALTHY again, ``history_of`` raises) and their rows go to the
        free list for the next new serial — columnar row recycling makes
        a churning fleet's memory proportional to the *live* drive
        count, not the all-time serial count.  Returns how many drives
        were evicted; the running total is :attr:`drives_evicted`.
        """
        if not self._rows:
            return 0
        assert self._last_hours is not None and self._counts is not None
        evicted = [serial for serial, row in self._rows.items()
                   if self._last_hours[row] < before_hour]
        for serial in evicted:
            row = self._rows.pop(serial)
            self._row_serials[row] = None
            self._counts[row] = 0
            assert self._pos is not None and self._levels is not None
            self._pos[row] = 0
            self._levels[row] = 0
            self._last_hours[row] = np.iinfo(np.int64).min
            self._free.append(row)
        self._drives_evicted += len(evicted)
        return len(evicted)

    def rows_of(self, serials: Sequence[str]) -> np.ndarray:
        """Ring-row indices for ``serials`` (rows are assigned on demand).

        Exposed for tests and diagnostics; :meth:`record_block` resolves
        rows internally.
        """
        if self._n_attributes is None:
            raise ReproError("store has no recorded attributes yet")
        return self._rows_for_block(serials, self._n_attributes)

    # -- internals --------------------------------------------------------

    def _ensure_layout(self, n_attributes: int) -> None:
        """Allocate (or validate) the column arrays for a record width."""
        if self._n_attributes is None:
            self._n_attributes = int(n_attributes)
            capacity = self._initial_rows
            self._rings = np.zeros(
                (capacity, self._history_hours, n_attributes),
                dtype=np.float64)
            self._pos = np.zeros(capacity, dtype=np.int64)
            self._counts = np.zeros(capacity, dtype=np.int64)
            self._levels = np.zeros(capacity, dtype=np.int8)
            self._last_hours = np.full(capacity, np.iinfo(np.int64).min,
                                       dtype=np.int64)
            self._row_serials = [None] * capacity
            self._free = list(range(capacity - 1, -1, -1))
            return
        if n_attributes != self._n_attributes:
            raise ReproError(
                f"record has {n_attributes} attributes, store was laid "
                f"out for {self._n_attributes}")

    def _grow(self) -> None:
        """Double every column array, pushing new rows onto the free list."""
        assert (self._rings is not None and self._pos is not None
                and self._counts is not None and self._levels is not None
                and self._last_hours is not None)
        old = len(self._row_serials)
        new = old * 2
        rings = np.zeros((new,) + self._rings.shape[1:], dtype=np.float64)
        rings[:old] = self._rings
        self._rings = rings
        self._pos = np.concatenate(
            [self._pos, np.zeros(old, dtype=np.int64)])
        self._counts = np.concatenate(
            [self._counts, np.zeros(old, dtype=np.int64)])
        self._levels = np.concatenate(
            [self._levels, np.zeros(old, dtype=np.int8)])
        self._last_hours = np.concatenate(
            [self._last_hours,
             np.full(old, np.iinfo(np.int64).min, dtype=np.int64)])
        self._row_serials.extend([None] * old)
        self._free.extend(range(new - 1, old - 1, -1))

    def _row_for(self, serial: str, n_attributes: int) -> int:
        """The (possibly new) ring row owning ``serial``."""
        row = self._rows.get(serial)
        if row is not None:
            return row
        self._ensure_layout(n_attributes)
        if not self._free:
            self._grow()
        row = self._free.pop()
        self._rows[serial] = row
        self._row_serials[row] = serial
        return row

    def _rows_for_block(self, serials: Sequence[str],
                        n_attributes: int) -> np.ndarray:
        """Row index per sample, assigning rows to unseen serials."""
        self._ensure_layout(n_attributes)
        rows = np.empty(len(serials), dtype=np.int64)
        lookup = self._rows
        for index, serial in enumerate(serials):
            row = lookup.get(serial)
            if row is None:
                row = self._row_for(serial, n_attributes)
            rows[index] = row
        return rows


class AlertBlock:
    """Struct-of-arrays verdicts for one scored block of samples.

    Holds the vectorized kernel's raw outputs — a per-failure-type stage
    matrix plus the argmin type index and the severity code per sample —
    without materializing any per-sample Python object.  :meth:`alerts`
    (all rows) and :meth:`alert_at` (one row, used for the rare alerting
    drives) rebuild :class:`~repro.core.monitor.DegradationAlert` values
    bit-identical to the scalar ``observe`` path: the rescue-clock
    inversion deliberately runs per materialized row through the scalar
    :func:`~repro.core.rescue.rescue_estimate` (numpy's vectorized
    ``pow`` is allowed to differ from libm by an ulp, so a precomputed
    remaining-hours matrix could not honor byte-identity).
    """

    __slots__ = ("serials", "hours", "stages",
                 "likely_indices", "level_codes", "types")

    def __init__(self, serials: Sequence[str], hours: np.ndarray,
                 stages: np.ndarray,
                 likely_indices: np.ndarray, level_codes: np.ndarray,
                 types: tuple) -> None:
        self.serials = list(serials)
        self.hours = hours
        self.stages = stages            # (n_types, n_samples)
        self.likely_indices = likely_indices
        self.level_codes = level_codes
        self.types = types

    def __len__(self) -> int:
        return len(self.serials)

    @property
    def n_alerting(self) -> int:
        """Samples whose severity sits above HEALTHY."""
        return int(np.count_nonzero(self.level_codes))

    def alerting_rows(self) -> np.ndarray:
        """Indices of the samples above HEALTHY (usually few)."""
        return np.flatnonzero(self.level_codes)

    def finite_stages(self) -> np.ndarray:
        """The likely-type stage per sample, finite entries only."""
        picked = self.stages[self.likely_indices,
                             np.arange(self.stages.shape[1])]
        return picked[np.isfinite(picked)]

    def level_counts(self, n_levels: int = 3) -> np.ndarray:
        """Samples per severity code, as a length-``n_levels`` vector.

        One ``bincount`` over the severity column — the shadow-scoring
        plane builds its champion/challenger confusion matrices from
        these codes without materializing a single verdict object.
        """
        return np.bincount(self.level_codes.astype(np.int64),
                           minlength=n_levels)

    def alert_at(self, row: int) -> "DegradationAlert":
        """Materialize one row as a scalar-path-identical alert."""
        from repro.core.monitor import AlertLevel, DegradationAlert
        from repro.core.rescue import rescue_estimate
        estimates = {
            failure_type: rescue_estimate(
                float(self.stages[type_index, row]), failure_type)
            for type_index, failure_type in enumerate(self.types)
        }
        likely_type = self.types[int(self.likely_indices[row])]
        return DegradationAlert(
            serial=self.serials[row],
            hour=int(self.hours[row]),
            level=AlertLevel(int(self.level_codes[row])),
            stage=estimates[likely_type].stage,
            likely_type=likely_type,
            estimates=estimates,
        )

    def alerts(self) -> list["DegradationAlert"]:
        """Materialize every row (the compatibility slow path).

        Same alerts as ``alert_at`` over every row, but with the array
        reads hoisted to whole-column ``tolist()`` conversions — the
        per-element numpy scalar overhead dominates when a caller
        really does want all N objects.
        """
        from repro.core.monitor import AlertLevel, DegradationAlert
        from repro.core.rescue import rescue_estimate
        levels = {level.value: level for level in AlertLevel}
        stage_columns = [column.tolist() for column in self.stages]
        hours = self.hours.tolist()
        likely = self.likely_indices.tolist()
        codes = self.level_codes.tolist()
        types = self.types
        out = []
        for row, serial in enumerate(self.serials):
            estimates = {
                failure_type: rescue_estimate(stage_columns[type_index][row],
                                              failure_type)
                for type_index, failure_type in enumerate(types)
            }
            likely_type = types[likely[row]]
            out.append(DegradationAlert(
                serial=serial,
                hour=hours[row],
                level=levels[codes[row]],
                stage=estimates[likely_type].stage,
                likely_type=likely_type,
                estimates=estimates,
            ))
        return out
