"""The paper's primary contribution.

Failure-record feature construction, failure categorization (clustering +
taxonomy), quantified degradation signatures, attribute-influence
analysis, z-score diagnosis and degradation prediction — assembled
end-to-end by :class:`repro.core.pipeline.CharacterizationPipeline`.
"""

from repro.core.categorize import CategorizationResult, FailureCategorizer
from repro.core.monitor import AlertLevel, DegradationAlert, DegradationMonitor
from repro.core.pipeline import CharacterizationPipeline, CharacterizationReport
from repro.core.prediction import DegradationPredictor, PredictionReport
from repro.core.rescue import (
    RescueEstimate,
    estimate_remaining_hours,
    rescue_estimate,
)
from repro.core.serialize import (
    load_report_summary,
    report_to_dict,
    save_report_json,
)
from repro.core.records import FailureRecordSet, build_failure_records
from repro.core.signature_models import (
    CANONICAL_ORDER_BY_TYPE,
    canonical_signature,
    compare_signature_models,
)
from repro.core.signatures import (
    DegradationSignature,
    DegradationWindow,
    WindowParams,
    derive_signature,
    distance_to_failure,
    extract_degradation_window,
)
from repro.core.taxonomy import FailureType, GroupProperties, classify_groups
from repro.core.validate import ValidationReport, validate_categorization

__all__ = [
    "CategorizationResult",
    "FailureCategorizer",
    "AlertLevel",
    "DegradationAlert",
    "DegradationMonitor",
    "RescueEstimate",
    "estimate_remaining_hours",
    "rescue_estimate",
    "load_report_summary",
    "report_to_dict",
    "save_report_json",
    "CharacterizationPipeline",
    "CharacterizationReport",
    "DegradationPredictor",
    "PredictionReport",
    "FailureRecordSet",
    "build_failure_records",
    "CANONICAL_ORDER_BY_TYPE",
    "canonical_signature",
    "compare_signature_models",
    "DegradationSignature",
    "DegradationWindow",
    "WindowParams",
    "derive_signature",
    "distance_to_failure",
    "extract_degradation_window",
    "FailureType",
    "GroupProperties",
    "classify_groups",
    "ValidationReport",
    "validate_categorization",
]
