"""Rescue-time estimation from degradation stages.

The paper's motivation (Section I): "Modeling the degradation process of
disk failures will enable us to track the evolvement of disk errors to
failures and accurately estimate the available time for data rescue."

Given a predicted degradation stage ``s`` (from the Table III regression
trees) and a failure type, the canonical signature ``s = (t/d)^p - 1``
inverts to the remaining time

``t = d * (s + 1)^(1/p)``.

Stages at or above zero sit outside the degradation window: the drive
shows no degradation yet and at least the full window remains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.signature_models import (
    CANONICAL_ORDER_BY_TYPE,
    PREDICTION_WINDOW_BY_TYPE,
)
from repro.core.taxonomy import FailureType
from repro.errors import SignatureError


@dataclass(frozen=True, slots=True)
class RescueEstimate:
    """Remaining-time estimate for one drive.

    ``hours_remaining`` is ``inf`` while the drive shows no degradation
    (stage >= 0); ``urgent`` flags estimates at or under the caller's
    deadline.
    """

    failure_type: FailureType
    stage: float
    hours_remaining: float
    window: int

    @property
    def degrading(self) -> bool:
        return np.isfinite(self.hours_remaining)

    def urgent(self, deadline_hours: float) -> bool:
        return self.hours_remaining <= deadline_hours


def estimate_remaining_hours(stage: float, failure_type: FailureType, *,
                             window: int | None = None) -> float:
    """Invert the canonical signature to hours before failure.

    Parameters
    ----------
    stage:
        Predicted degradation value; ``-1`` is the failure event, ``0``
        the window boundary, values above 0 the healthy regime.
    failure_type:
        Selects the signature order (2 / 1 / 3 for Groups 1-3).
    window:
        Degradation-window size ``d`` in hours; defaults to the paper's
        per-group prediction windows (12 / 380 / 24).
    """
    stage = float(stage)
    if not math.isfinite(stage):
        raise SignatureError("degradation stage must be finite")
    if stage >= 0.0:
        return float("inf")
    if window is None:
        window = PREDICTION_WINDOW_BY_TYPE[failure_type]
    if window < 1:
        raise SignatureError("window must be at least 1 hour")
    order = CANONICAL_ORDER_BY_TYPE[failure_type]
    # stage is known negative here, so clipping to [-1, 0] reduces to a
    # floor at -1 (plain float ops; the ``**`` inversion itself must
    # stay Python pow — see the AlertBlock docstring on numpy's pow).
    clipped = stage if stage >= -1.0 else -1.0
    return window * (clipped + 1.0) ** (1.0 / order)


def rescue_estimate(stage: float, failure_type: FailureType, *,
                    window: int | None = None) -> RescueEstimate:
    """Bundle a stage with its inverted remaining time."""
    resolved_window = (window if window is not None
                       else PREDICTION_WINDOW_BY_TYPE[failure_type])
    return RescueEstimate(
        failure_type=failure_type,
        stage=float(stage),
        hours_remaining=estimate_remaining_hours(stage, failure_type,
                                                 window=window),
        window=resolved_window,
    )
