"""Degradation-window extraction and signature derivation (Section IV-C).

The paper's software tool "processes health records of each failed drive,
starting from the failure record backward to extract the degradation
record set where distance to the failure record changes monotonically",
sets ``d`` to the size of that set, then "tests a set of polynomial
regression models up to order n ... compares their RMSEs and selects the
one with the smallest RMSE as the failure degradation signature".

:func:`extract_degradation_window` implements the backward extraction
robustly against measurement noise:

1. the dissimilarity series (Euclidean by default, Mahalanobis optional)
   is walked backward from the failure record under a ratchet that allows
   dips up to ``dip_tolerance`` below the running maximum — single-sample
   flickers are removed with a width-3 median filter first;
2. the accepted stretch is median-filtered (width 5) and the window
   boundary is the earliest sample (closest to failure) whose filtered
   dissimilarity reaches the stretch's plateau, i.e. comes within
   ``flat_tolerance`` of its maximum.  This trims the noisy plateau that
   precedes the monotone run, which is what the paper's "last (rightmost)
   decreasing curve" selection does by eye in Figure 7(a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import medfilt

from repro.core.signature_models import compare_signature_models
from repro.core.taxonomy import FailureType
from repro.errors import SignatureError
from repro.ml.distance import MahalanobisDistance, euclidean_to_reference
from repro.ml.polyfit import PolynomialFit, fit_polynomial_family
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.smart.profile import HealthProfile


@dataclass(frozen=True, slots=True)
class WindowParams:
    """Tunables of the degradation-window extraction."""

    dip_tolerance: float = 0.15
    flat_tolerance_floor: float = 0.06
    flat_tolerance_fraction: float = 0.05
    min_window: int = 1

    def __post_init__(self) -> None:
        if self.dip_tolerance <= 0:
            raise SignatureError("dip_tolerance must be positive")
        if self.flat_tolerance_floor < 0 or self.flat_tolerance_fraction < 0:
            raise SignatureError("flat tolerances must be non-negative")
        if self.min_window < 1:
            raise SignatureError("min_window must be at least 1")


@dataclass(frozen=True, slots=True)
class DegradationWindow:
    """The extracted final monotone stretch of one drive's dissimilarity.

    ``size`` is the paper's ``d_i`` — the number of hours between the
    window's first record and the failure event.  ``distances`` holds the
    raw dissimilarities of the window records, oldest first (the last
    entry is the failure record's zero).

    For gapless hourly telemetry the records are one per hour and
    ``size + 1 == len(distances)``.  Telemetry with gaps (lost samples,
    or daily sampling) supplies ``hours_before_failure`` — the lag of
    each window record — and ``size`` is the first record's lag.
    """

    size: int
    distances: np.ndarray
    hours_before_failure: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.hours_before_failure is None:
            if self.distances.shape[0] != self.size + 1:
                raise SignatureError(
                    "window distances must hold size+1 records"
                )
            return
        lags = np.asarray(self.hours_before_failure, dtype=np.float64)
        if lags.shape != self.distances.shape:
            raise SignatureError("window lags must align with distances")
        if lags[-1] != 0.0:
            raise SignatureError("the final window record must be at lag 0")
        if np.any(np.diff(lags) >= 0):
            raise SignatureError("window lags must strictly decrease")
        if int(lags[0]) != self.size:
            raise SignatureError("window size must equal the first lag")

    @property
    def n_records(self) -> int:
        """Number of records inside the window (including the failure)."""
        return int(self.distances.shape[0])

    def degradation_values(self) -> tuple[np.ndarray, np.ndarray]:
        """Normalize to the paper's ``[-1, 0]`` degradation scale.

        Returns ``(t, s)`` where ``t`` is hours before failure (0 at the
        failure event) and ``s = distance / max_distance - 1`` — the
        normalization of Figure 8 with -1 at the failure event and 0 at
        the window's largest dissimilarity.
        """
        maximum = float(self.distances.max())
        if maximum <= 0.0:
            raise SignatureError(
                "degenerate window: all records equal the failure record"
            )
        if self.hours_before_failure is not None:
            t = np.asarray(self.hours_before_failure, dtype=np.float64)
        else:
            t = np.arange(self.size, -1, -1, dtype=np.float64)
        s = self.distances / maximum - 1.0
        return t, s


@dataclass(frozen=True, slots=True)
class DegradationSignature:
    """Full signature analysis of one failed drive."""

    serial: str
    window: DegradationWindow
    polynomial_fits: tuple[PolynomialFit, ...]
    best_fit: PolynomialFit
    canonical_rmse: dict[int, float]
    best_canonical_order: int

    @property
    def window_size(self) -> int:
        return self.window.size


def distance_to_failure(profile: HealthProfile, *,
                        metric: str = "euclidean",
                        mahalanobis: MahalanobisDistance | None = None,
                        ) -> np.ndarray:
    """Dissimilarity of every health record to the failure record.

    The series of the paper's Figure 7.  ``metric`` selects Euclidean
    (the paper's choice) or Mahalanobis (its rejected alternative); the
    Mahalanobis variant requires a pre-fitted :class:`MahalanobisDistance`
    so the covariance reflects the population, not a single drive.
    """
    failure_record = profile.failure_record()
    if metric == "euclidean":
        return euclidean_to_reference(profile.matrix, failure_record)
    if metric == "mahalanobis":
        if mahalanobis is None or not mahalanobis.is_fitted:
            raise SignatureError(
                "mahalanobis metric requires a fitted MahalanobisDistance"
            )
        return mahalanobis.to_reference(profile.matrix, failure_record)
    raise SignatureError(f"unknown distance metric {metric!r}")


def extract_degradation_window(distances: np.ndarray,
                               params: WindowParams | None = None, *,
                               hours: np.ndarray | None = None,
                               ) -> DegradationWindow:
    """Extract the final monotone stretch of a dissimilarity series.

    ``hours`` (optional) supplies the records' timestamps, letting the
    window size be measured in hours even when the sampling has gaps;
    without it, records are assumed one per hour.
    """
    params = params if params is not None else WindowParams()
    distances = np.asarray(distances, dtype=np.float64).ravel()
    if distances.shape[0] < 2:
        raise SignatureError("need at least two records to extract a window")
    if distances[-1] != 0.0 and not np.isclose(distances[-1], 0.0):
        raise SignatureError(
            "the last record must be the failure record (distance zero)"
        )
    if hours is not None:
        hours = np.asarray(hours, dtype=np.float64).ravel()
        if hours.shape != distances.shape:
            raise SignatureError("hours must align with the distances")
        if np.any(np.diff(hours) <= 0):
            raise SignatureError("hours must be strictly increasing")

    reversed_series = distances[::-1]
    accepted = _ratchet_scan(reversed_series, params.dip_tolerance)
    window_records = _trim_to_plateau(
        reversed_series[: accepted + 1], params
    )
    window_records = max(window_records, params.min_window)
    window_records = min(window_records, distances.shape[0] - 1)
    window_distances = distances[-(window_records + 1):].copy()
    if hours is None:
        return DegradationWindow(
            size=window_records,
            distances=window_distances,
        )
    lags = hours[-1] - hours[-(window_records + 1):]
    return DegradationWindow(
        size=int(lags[0]),
        distances=window_distances,
        hours_before_failure=lags,
    )


def derive_signature(profile: HealthProfile, *,
                     params: WindowParams | None = None,
                     max_order: int = 3,
                     metric: str = "euclidean",
                     mahalanobis: MahalanobisDistance | None = None,
                     observer: PipelineObserver | None = None,
                     ) -> DegradationSignature:
    """Run the paper's signature tool on one failed drive.

    Extracts the degradation window, fits free polynomials of order
    1..``max_order`` (Figure 8), evaluates the canonical constrained
    forms and reports the best of each family by RMSE.  ``observer``
    (optional) receives ``window_length`` / ``signature_fit_rmse``
    histogram observations and a ``signatures_derived`` count.
    """
    obs = resolve_observer(observer)
    distances = distance_to_failure(profile, metric=metric,
                                    mahalanobis=mahalanobis)
    window = extract_degradation_window(distances, params,
                                        hours=profile.hours)
    t, s = window.degradation_values()
    orders = [o for o in range(1, max_order + 1) if t.shape[0] > o]
    if not orders:
        raise SignatureError(
            f"window of drive {profile.serial!r} too small to fit any model"
        )
    fits = tuple(fit_polynomial_family(t, s, max_order=orders[-1]))
    best_fit = min(fits, key=lambda fit: fit.rmse)

    # All canonical orders in one broadcasted pass: rows are the
    # (t/d)^p - 1 model curves, reduced to per-order RMSEs together.
    order_range = np.arange(1, max_order + 1)
    models = (t / float(window.size))[None, :] ** order_range[:, None] - 1.0
    rmse_per_order = np.sqrt(np.mean((s[None, :] - models) ** 2, axis=1))
    canonical_rmse: dict[int, float] = {
        int(order): float(value)
        for order, value in zip(order_range, rmse_per_order)
    }
    best_canonical = min(canonical_rmse, key=lambda k: canonical_rmse[k])
    obs.count("signatures_derived")
    obs.observe("window_length", float(window.size))
    obs.observe("signature_fit_rmse", best_fit.rmse)
    return DegradationSignature(
        serial=profile.serial,
        window=window,
        polynomial_fits=fits,
        best_fit=best_fit,
        canonical_rmse=canonical_rmse,
        best_canonical_order=best_canonical,
    )


def signature_model_report(profile: HealthProfile, failure_type: FailureType,
                           *, params: WindowParams | None = None,
                           ) -> dict[str, float]:
    """RMSE comparison of the paper's candidate models for one drive.

    Convenience wrapper reproducing the Section IV-C numbers (e.g. the
    0.24 / 0.14 / 0.06 comparison for the Group 1 centroid).
    """
    distances = distance_to_failure(profile)
    window = extract_degradation_window(distances, params,
                                        hours=profile.hours)
    t, s = window.degradation_values()
    return compare_signature_models(t, s, window.size, failure_type)


# -- extraction internals ---------------------------------------------------


def _ratchet_scan(reversed_series: np.ndarray, dip_tolerance: float) -> int:
    """Walk backward in time accepting samples under the dip ratchet.

    Returns the last accepted index of the (reversed) series.  Width-3
    median filtering removes single-sample flickers so an isolated noisy
    record does not truncate a long monotone run.

    The scan is one NumPy pass: sample ``i`` violates the ratchet when
    its filtered value drops more than ``dip_tolerance`` below the
    running maximum of the samples before it (a prefix-maximum), and the
    accepted stretch ends just before the first violation.
    """
    filtered = medfilt(reversed_series, 3) if reversed_series.shape[0] >= 3 \
        else reversed_series
    prior_max = np.maximum.accumulate(filtered[:-1])
    violations = np.flatnonzero(filtered[1:] < prior_max - dip_tolerance)
    if violations.shape[0] == 0:
        return reversed_series.shape[0] - 1
    return int(violations[0])


def _trim_to_plateau(reversed_segment: np.ndarray,
                     params: WindowParams) -> int:
    """Trim the accepted stretch to the true window boundary.

    The boundary is the earliest reversed-index whose (median-filtered)
    dissimilarity comes within the flat tolerance of the stretch's
    maximum — i.e. where the monotone rise reaches the pre-degradation
    plateau.
    """
    if reversed_segment.shape[0] >= 5:
        filtered = medfilt(reversed_segment, 5)
    else:
        filtered = reversed_segment
    peak = float(filtered.max())
    flat_tolerance = max(params.flat_tolerance_floor,
                         params.flat_tolerance_fraction * peak)
    above = np.flatnonzero(filtered >= peak - flat_tolerance)
    if above.shape[0] == 0:
        return reversed_segment.shape[0] - 1
    return int(above[0])
