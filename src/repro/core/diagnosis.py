"""Z-score diagnosis of failure causes (Section V-A).

With failure groups in hand, the paper pinpoints likely causes by
comparing each group's attribute values against the good-drive
population over the 20-day pre-failure timeline (Figures 11 and 12):
high drive temperature singles out the logical-failure group, and
power-on-hours extremes single out the head-failure group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.categorize import CategorizationResult
from repro.core.taxonomy import FailureType
from repro.data.dataset import DiskDataset
from repro.errors import ReproError
from repro.stats.zscore import temporal_z_scores, two_population_z


@dataclass(frozen=True, slots=True)
class GroupZScores:
    """Temporal z-scores of one attribute for one failure group."""

    failure_type: FailureType
    attribute: str
    lags_hours: np.ndarray
    z_scores: np.ndarray

    def mean_z(self) -> float:
        """Mean z-score over the timeline (ignoring undefined lags)."""
        finite = self.z_scores[np.isfinite(self.z_scores)]
        if finite.shape[0] == 0:
            raise ReproError("no defined z-scores on the timeline")
        return float(finite.mean())


def temporal_group_z_scores(dataset: DiskDataset,
                            categorization: CategorizationResult,
                            attribute: str, *,
                            max_lag_hours: int = 480,
                            step_hours: int = 8) -> dict[FailureType, GroupZScores]:
    """Figure 11/12: per-group temporal z-scores of ``attribute``.

    At each lag before failure, the failure-group records observed at
    that lag are compared against all good-drive records of the
    attribute via Eq. (7).
    """
    good_values = np.concatenate(
        [profile.column(attribute) for profile in dataset.good_profiles]
    )
    if good_values.shape[0] < 2:
        raise ReproError("need good-drive records for the z-score baseline")

    results: dict[FailureType, GroupZScores] = {}
    for failure_type in FailureType:
        serials = categorization.serials_of_type(failure_type)
        profiles = [dataset.get(serial) for serial in serials]
        if not profiles:
            continue
        lags, z_scores = temporal_z_scores(
            profiles, good_values, attribute,
            max_lag_hours=max_lag_hours, step_hours=step_hours,
        )
        results[failure_type] = GroupZScores(
            failure_type=failure_type,
            attribute=attribute,
            lags_hours=lags,
            z_scores=z_scores,
        )
    return results


def group_attribute_z(dataset: DiskDataset,
                      categorization: CategorizationResult,
                      attribute: str) -> dict[FailureType, float]:
    """Single Eq. (7) z-score per group, pooling all pre-failure records."""
    good_values = np.concatenate(
        [profile.column(attribute) for profile in dataset.good_profiles]
    )
    results: dict[FailureType, float] = {}
    for failure_type in FailureType:
        serials = categorization.serials_of_type(failure_type)
        if not serials:
            continue
        failed_values = np.concatenate(
            [dataset.get(serial).column(attribute) for serial in serials]
        )
        results[failure_type] = two_population_z(failed_values, good_values)
    return results


def distinguishing_attribute(dataset: DiskDataset,
                             categorization: CategorizationResult,
                             target: FailureType,
                             candidates: tuple[str, ...]) -> str:
    """Attribute that best separates ``target`` from the other groups.

    The paper reports TC as "the only attribute that can distinguish
    Group 1 from the other two groups"; this helper automates that
    finding: it scores each candidate by the margin between the target
    group's z-score and the nearest other group's.
    """
    if not candidates:
        raise ReproError("need candidate attributes")
    best_margin = -np.inf
    best_attribute = candidates[0]
    for attribute in candidates:
        z_by_group = group_attribute_z(dataset, categorization, attribute)
        if target not in z_by_group or len(z_by_group) < 2:
            continue
        target_z = z_by_group[target]
        others = [abs(z) for t, z in z_by_group.items() if t is not target]
        margin = abs(target_z) - max(others)
        if margin > best_margin:
            best_margin = margin
            best_attribute = attribute
    return best_attribute
