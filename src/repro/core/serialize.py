"""JSON serialization of characterization results.

Operators want the pipeline's verdicts — the taxonomy, per-drive
signatures and prediction quality — in a machine-readable artifact that
outlives the Python session.  :func:`report_to_dict` flattens a
:class:`CharacterizationReport` into plain JSON types;
:func:`save_report_json` / :func:`load_report_summary` round-trip it on
disk.  The raw dataset is not embedded (use :func:`repro.data.save_csv`
for that); the summary references drives by serial.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.errors import ReproError

#: Schema version written into every artifact; bump on breaking changes.
SCHEMA_VERSION = 1

#: Significant digits kept for floats in canonical JSON.  12 digits is
#: far beyond the reproduction's numeric fidelity but short of the
#: platform-noise tail of a float64 repr, so artifacts diff cleanly.
_FLOAT_DIGITS = 12


def _jsonify(value: Any) -> Any:
    """Coerce a payload into deterministic, JSON-clean plain types.

    NumPy scalars become Python numbers, tuples become lists, floats are
    rounded to :data:`_FLOAT_DIGITS` significant digits and non-finite
    floats become ``None`` — JSON has no NaN/Infinity.
    """
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            return None
        return float(f"{value:.{_FLOAT_DIGITS}g}")
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    raise ReproError(
        f"cannot serialize {type(value).__name__!r} value {value!r}"
    )


def canonical_json_dumps(payload: Any) -> str:
    """Render ``payload`` as byte-stable JSON: sorted keys, indented,
    floats normalized — two runs producing equal payloads produce equal
    bytes, so report/trace diffs are reviewable."""
    return json.dumps(_jsonify(payload), indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


def canonical_json_line(payload: Any) -> str:
    """Render ``payload`` as one byte-stable JSON line (no newline).

    The JSONL sibling of :func:`canonical_json_dumps`: same key sorting
    and float normalization, but compact separators and no trailing
    newline, so streaming emitters (the serving layer's verdict stream)
    can write one canonical record per line.
    """
    return json.dumps(_jsonify(payload), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def report_to_dict(report: CharacterizationReport, *,
                   telemetry: dict[str, Any] | None = None,
                   data_quality: dict[str, Any] | None = None,
                   ) -> dict[str, Any]:
    """Flatten a report into JSON-serializable types.

    ``telemetry`` (optional) is embedded verbatim under a ``"telemetry"``
    key — the CLI passes stage timings and the metric snapshot of the
    run that produced the report.  ``data_quality`` (optional) is
    embedded under a ``"data_quality"`` key — quarantine counts, repair
    counts and the fault-injection log of the ingest that produced the
    dataset.  Both keys are omitted entirely when ``None``, so reports
    from clean, uninstrumented runs are byte-identical to before these
    sections existed.
    """
    groups = {}
    for cluster_id, group in report.categorization.groups.items():
        groups[str(cluster_id)] = {
            "failure_type": group.failure_type.name,
            "paper_group_number": group.paper_group_number,
            "n_records": group.n_records,
            "population_fraction": group.population_fraction,
            "properties": group.properties,
        }

    signatures = {}
    for serial, signature in report.signatures.items():
        signatures[serial] = {
            "window_hours": signature.window_size,
            "best_canonical_order": signature.best_canonical_order,
            "canonical_rmse": {
                str(order): value
                for order, value in signature.canonical_rmse.items()
            },
            "best_free_fit": {
                "order": signature.best_fit.order,
                "r_squared": signature.best_fit.r_squared,
                "rmse": signature.best_fit.rmse,
            },
        }

    summaries = {}
    for failure_type, summary in report.group_summaries.items():
        summaries[failure_type.name] = {
            "n_drives": summary.n_drives,
            "median_window_hours": summary.median_window,
            "window_range": list(summary.window_range),
            "consensus_order": summary.consensus_order,
            "centroid_serial": summary.centroid_serial,
            "top_correlated": list(summary.top_correlated),
        }

    predictions = {}
    for failure_type, prediction in report.predictions.items():
        predictions[failure_type.name] = {
            "window_hours": prediction.window,
            "rmse": prediction.rmse,
            "error_rate": prediction.error_rate,
            "n_train": prediction.n_train,
            "n_test": prediction.n_test,
            "tree_depth": prediction.tree_depth,
            "tree_leaves": prediction.tree_leaves,
        }

    drive_types = {
        serial: report.categorization.type_of_serial(serial).name
        for serial in report.records.serials
    }
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "n_failed_drives": report.records.n_records,
        "groups": groups,
        "drive_types": drive_types,
        "signatures": signatures,
        "group_summaries": summaries,
        "predictions": predictions,
    }
    if telemetry is not None:
        payload["telemetry"] = telemetry
    if data_quality is not None:
        payload["data_quality"] = data_quality
    return payload


def save_report_json(report: CharacterizationReport, path: str | Path, *,
                     telemetry: dict[str, Any] | None = None,
                     data_quality: dict[str, Any] | None = None) -> None:
    """Write the report summary to ``path`` as canonical JSON.

    Output is deterministic for equal reports — keys sorted, floats
    normalized — so artifacts from repeated runs diff cleanly.
    """
    path = Path(path)
    path.write_text(
        canonical_json_dumps(report_to_dict(report, telemetry=telemetry,
                                            data_quality=data_quality))
    )


def load_report_summary(path: str | Path) -> dict[str, Any]:
    """Load and validate a report summary written by ``save_report_json``."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ReproError(f"{path}: not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: expected a JSON object")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ReproError(
            f"{path}: schema version {version!r}, expected {SCHEMA_VERSION}"
        )
    for key in ("groups", "drive_types", "signatures", "group_summaries"):
        if key not in payload:
            raise ReproError(f"{path}: missing key {key!r}")
    known_types = {failure_type.name for failure_type in FailureType}
    unknown = set(payload["drive_types"].values()) - known_types
    if unknown:
        raise ReproError(f"{path}: unknown failure types {sorted(unknown)}")
    return payload
