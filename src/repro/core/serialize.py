"""JSON serialization of characterization results.

Operators want the pipeline's verdicts — the taxonomy, per-drive
signatures and prediction quality — in a machine-readable artifact that
outlives the Python session.  :func:`report_to_dict` flattens a
:class:`CharacterizationReport` into plain JSON types;
:func:`save_report_json` / :func:`load_report_summary` round-trip it on
disk.  The raw dataset is not embedded (use :func:`repro.data.save_csv`
for that); the summary references drives by serial.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.pipeline import CharacterizationReport
from repro.core.taxonomy import FailureType
from repro.errors import ReproError

#: Schema version written into every artifact; bump on breaking changes.
SCHEMA_VERSION = 1


def report_to_dict(report: CharacterizationReport) -> dict[str, Any]:
    """Flatten a report into JSON-serializable types."""
    groups = {}
    for cluster_id, group in report.categorization.groups.items():
        groups[str(cluster_id)] = {
            "failure_type": group.failure_type.name,
            "paper_group_number": group.paper_group_number,
            "n_records": group.n_records,
            "population_fraction": group.population_fraction,
            "properties": group.properties,
        }

    signatures = {}
    for serial, signature in report.signatures.items():
        signatures[serial] = {
            "window_hours": signature.window_size,
            "best_canonical_order": signature.best_canonical_order,
            "canonical_rmse": {
                str(order): value
                for order, value in signature.canonical_rmse.items()
            },
            "best_free_fit": {
                "order": signature.best_fit.order,
                "r_squared": signature.best_fit.r_squared,
                "rmse": signature.best_fit.rmse,
            },
        }

    summaries = {}
    for failure_type, summary in report.group_summaries.items():
        summaries[failure_type.name] = {
            "n_drives": summary.n_drives,
            "median_window_hours": summary.median_window,
            "window_range": list(summary.window_range),
            "consensus_order": summary.consensus_order,
            "centroid_serial": summary.centroid_serial,
            "top_correlated": list(summary.top_correlated),
        }

    predictions = {}
    for failure_type, prediction in report.predictions.items():
        predictions[failure_type.name] = {
            "window_hours": prediction.window,
            "rmse": prediction.rmse,
            "error_rate": prediction.error_rate,
            "n_train": prediction.n_train,
            "n_test": prediction.n_test,
            "tree_depth": prediction.tree_depth,
            "tree_leaves": prediction.tree_leaves,
        }

    drive_types = {
        serial: report.categorization.type_of_serial(serial).name
        for serial in report.records.serials
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "n_failed_drives": report.records.n_records,
        "groups": groups,
        "drive_types": drive_types,
        "signatures": signatures,
        "group_summaries": summaries,
        "predictions": predictions,
    }


def save_report_json(report: CharacterizationReport,
                     path: str | Path) -> None:
    """Write the report summary to ``path`` as indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(report_to_dict(report), indent=2,
                               sort_keys=True) + "\n")


def load_report_summary(path: str | Path) -> dict[str, Any]:
    """Load and validate a report summary written by ``save_report_json``."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ReproError(f"{path}: not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: expected a JSON object")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ReproError(
            f"{path}: schema version {version!r}, expected {SCHEMA_VERSION}"
        )
    for key in ("groups", "drive_types", "signatures", "group_summaries"):
        if key not in payload:
            raise ReproError(f"{path}: missing key {key!r}")
    known_types = {failure_type.name for failure_type in FailureType}
    unknown = set(payload["drive_types"].values()) - known_types
    if unknown:
        raise ReproError(f"{path}: unknown failure types {sorted(unknown)}")
    return payload
