"""Online degradation monitoring — the paper's proposed middleware.

Section VI's future work plans "a middleware software that will enhance
storage reliability" on top of the degradation signatures.  This module
is that middleware in library form: a :class:`DegradationMonitor` wraps
the trained per-group regression trees and consumes hourly SMART records
drive by drive, maintaining a rolling window per drive and emitting
:class:`DegradationAlert` events when a drive's estimated degradation
stage crosses the configured thresholds.

The monitor classifies each alerting drive into its most likely failure
type by scoring the current record with every group's tree and taking
the most pessimistic (lowest stage) verdict — an operator does not know
the failure type of a drive that has not failed yet, but the per-type
rescue clock depends on it, so the alert carries the full per-type
breakdown.
"""

from __future__ import annotations

import enum
import functools
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.columnar import AlertBlock, ColumnStateStore
from repro.core.prediction import DegradationPredictor
from repro.core.rescue import RescueEstimate, rescue_estimate
from repro.core.taxonomy import FailureType
from repro.errors import ReproError
from repro.smart.normalization import MinMaxNormalizer

#: Default stage thresholds of the monitor's severity ladder; shared
#: with the serving layer so an exported bundle reproduces the monitor
#: configuration exactly.
DEFAULT_WATCH_THRESHOLD = -0.05
DEFAULT_CRITICAL_THRESHOLD = -0.5
DEFAULT_HISTORY_HOURS = 48


@functools.total_ordering
class AlertLevel(enum.Enum):
    """Severity ladder of the monitor (totally ordered)."""

    HEALTHY = 0
    WATCH = 1      # degradation detected: stage below the watch threshold
    CRITICAL = 2   # deep degradation: imminent failure

    def __lt__(self, other: "AlertLevel") -> bool:
        if not isinstance(other, AlertLevel):
            return NotImplemented
        return self.value < other.value


@dataclass(frozen=True, slots=True)
class DegradationAlert:
    """One monitor verdict for one drive at one hour."""

    serial: str
    hour: int
    level: AlertLevel
    stage: float
    likely_type: FailureType
    estimates: dict[FailureType, RescueEstimate]

    @property
    def hours_remaining(self) -> float:
        return self.estimates[self.likely_type].hours_remaining


class DriveStateStore:
    """Keyed per-drive monitoring state: ring buffers plus last levels.

    All mutable state a streaming scorer accumulates lives here, keyed
    by drive serial: a bounded deque of the drive's last
    ``history_hours`` normalized records and the drive's most recent
    :class:`AlertLevel`.  Extracting it from the monitor makes the
    state an explicit, snapshottable object — the sharding seam the
    serving daemon partitions across worker processes (each shard owns
    one store, and a drive's serial hashes to exactly one shard, so no
    state is ever split or shared).

    The store is a passive container: it never computes a verdict, so
    any partitioning of drives across stores leaves every verdict
    byte-identical to a single-store run.
    """

    def __init__(self, history_hours: int = DEFAULT_HISTORY_HOURS) -> None:
        if history_hours < 1:
            raise ReproError("history_hours must be positive")
        self._history_hours = history_hours
        self._history: dict[str, deque[np.ndarray]] = {}
        self._levels: dict[str, AlertLevel] = {}
        self._last_hours: dict[str, int] = {}
        self._drives_evicted = 0

    @property
    def history_hours(self) -> int:
        """Ring-buffer capacity retained per drive."""
        return self._history_hours

    @property
    def n_tracked(self) -> int:
        """Drives with live ring-buffer state (O(1))."""
        return len(self._history)

    @property
    def drives_evicted(self) -> int:
        """Total drives dropped by :meth:`evict_idle` since creation."""
        return self._drives_evicted

    def record(self, serial: str, normalized: np.ndarray,
               level: AlertLevel, hour: int | None = None) -> None:
        """Append one normalized record and set the drive's level.

        ``hour`` feeds the idle-eviction clock; omitting it leaves the
        drive's last-seen hour unchanged (such drives only age out
        relative to hours they did report).
        """
        history = self._history.setdefault(
            serial, deque(maxlen=self._history_hours)
        )
        history.append(normalized)
        self._levels[serial] = level
        if hour is not None and hour > self._last_hours.get(
                serial, -(2 ** 63)):
            self._last_hours[serial] = hour

    def evict_idle(self, before_hour: int) -> int:
        """Drop every drive last observed strictly before ``before_hour``.

        The deque-backed twin of
        :meth:`repro.core.columnar.ColumnStateStore.evict_idle`, kept
        semantically identical so the scalar and columnar paths stay
        interchangeable: evicted drives vanish from the tracked set and
        a reappearing serial starts from a fresh, empty ring.
        """
        evicted = [serial for serial in self._history
                   if self._last_hours.get(serial, -(2 ** 63)) < before_hour]
        for serial in evicted:
            del self._history[serial]
            self._levels.pop(serial, None)
            self._last_hours.pop(serial, None)
        self._drives_evicted += len(evicted)
        return len(evicted)

    def level_of(self, serial: str) -> AlertLevel:
        """Last recorded level for a drive (HEALTHY if never seen)."""
        return self._levels.get(serial, AlertLevel.HEALTHY)

    def drives_at(self, level: AlertLevel) -> list[str]:
        """Serials currently at exactly ``level``."""
        return sorted(s for s, l in self._levels.items() if l is level)

    def serials(self) -> list[str]:
        """All tracked serials, sorted."""
        return sorted(self._history)

    def history_of(self, serial: str) -> np.ndarray:
        """Rolling window of normalized records for one drive."""
        history = self._history.get(serial)
        if not history:
            raise ReproError(f"no observations for drive {serial!r}")
        return np.vstack(list(history))

    def snapshot(self) -> dict:
        """JSON-clean summary of every tracked drive, sorted by serial.

        The drain/shutdown artifact: per drive, the last severity level
        and how many records the ring currently retains.  Deterministic
        for a given state, so snapshots diff cleanly across runs.
        """
        return {
            "history_hours": self._history_hours,
            "n_tracked": self.n_tracked,
            "drives_evicted": self._drives_evicted,
            "drives": {
                serial: {
                    "level": self._levels[serial].name,
                    "retained": len(history),
                }
                for serial, history in sorted(self._history.items())
            },
        }

    def dump_state(self) -> dict:
        """Full, JSON-clean state for crash recovery (exact round-trip).

        The deque-backed twin of
        :meth:`repro.core.columnar.ColumnStateStore.dump_state`: per
        drive the retained window (oldest-first), level code and
        last-seen hour, plus the eviction counter.  Floats round-trip
        float64 exactly via ``tolist()``.
        """
        sentinel = -(2 ** 63)
        return {
            "schema": 1,
            "kind": "deque",
            "history_hours": self._history_hours,
            "drives_evicted": self._drives_evicted,
            "drives": {
                serial: {
                    "level": self._levels[serial].value,
                    "last_hour": self._last_hours.get(serial, sentinel),
                    "window": [record.tolist() for record in history],
                }
                for serial, history in sorted(self._history.items())
            },
        }

    def restore(self, payload: dict) -> None:
        """Rebuild this store in place from a :meth:`dump_state` payload.

        Discards all current state; the restored store behaves
        identically to the dumped one through every public method.
        """
        try:
            if payload.get("kind") != "deque":
                raise ReproError(
                    f"cannot restore a DriveStateStore from a "
                    f"{payload.get('kind')!r} state dump")
            if int(payload["history_hours"]) != self._history_hours:
                raise ReproError(
                    f"state dump retains {payload['history_hours']} hours, "
                    f"store was built for {self._history_hours}")
            drives = payload["drives"]
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(
                f"malformed state dump for DriveStateStore: {error}"
            ) from error
        sentinel = -(2 ** 63)
        self._history = {}
        self._levels = {}
        self._last_hours = {}
        self._drives_evicted = int(payload.get("drives_evicted", 0))
        for serial, entry in drives.items():
            window = deque(
                (np.asarray(record, dtype=np.float64)
                 for record in entry["window"]),
                maxlen=self._history_hours)
            self._history[serial] = window
            self._levels[serial] = AlertLevel(int(entry["level"]))
            last_hour = int(entry["last_hour"])
            if last_hour != sentinel:
                self._last_hours[serial] = last_hour

    @classmethod
    def from_snapshot(cls, payload: dict) -> "DriveStateStore":
        """Build a fresh store from a :meth:`dump_state` payload."""
        try:
            history_hours = int(payload["history_hours"])
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(
                f"malformed state dump for DriveStateStore: {error}"
            ) from error
        store = cls(history_hours)
        store.restore(payload)
        return store


class DegradationMonitor:
    """Streaming degradation scorer over trained group predictors.

    Parameters
    ----------
    predictor:
        A :class:`DegradationPredictor` whose trees have been trained
        (``evaluate_all`` or ``evaluate_group`` per type).
    normalizer:
        The Eq. (1) scaler fitted on the characterization dataset;
        incoming raw records are scaled with it so the trees see the
        feature space they were trained on.
    watch_threshold / critical_threshold:
        Stage levels (in ``[-1, 1]``) triggering WATCH and CRITICAL.
    history_hours:
        Rolling window retained per drive (available to callers for
        trend inspection; the trees themselves act on single records).
    state:
        Optional externally-owned state store — the deque-backed
        :class:`DriveStateStore` or the struct-of-arrays
        :class:`~repro.core.columnar.ColumnStateStore`; when given its
        ``history_hours`` must match.  The serving layer passes its own
        store so per-drive state can be snapshotted and sharded; by
        default the monitor creates a private deque-backed one.
    """

    def __init__(self, predictor: DegradationPredictor,
                 normalizer: MinMaxNormalizer, *,
                 watch_threshold: float = DEFAULT_WATCH_THRESHOLD,
                 critical_threshold: float = DEFAULT_CRITICAL_THRESHOLD,
                 history_hours: int = DEFAULT_HISTORY_HOURS,
                 state: DriveStateStore | ColumnStateStore | None = None,
                 ) -> None:
        missing = [t for t in FailureType if t not in predictor.trees_]
        if missing:
            raise ReproError(
                f"predictor has no trained tree for: "
                f"{', '.join(t.name for t in missing)}"
            )
        if not normalizer.is_fitted:
            raise ReproError("normalizer must be fitted")
        if critical_threshold >= watch_threshold:
            raise ReproError(
                "critical_threshold must sit below watch_threshold"
            )
        if history_hours < 1:
            raise ReproError("history_hours must be positive")
        if state is not None and state.history_hours != history_hours:
            raise ReproError(
                f"state store retains {state.history_hours} hours but the "
                f"monitor was configured for {history_hours}"
            )
        self._predictor = predictor
        self._normalizer = normalizer
        self._watch = watch_threshold
        self._critical = critical_threshold
        self._history_hours = history_hours
        self._state = state if state is not None \
            else DriveStateStore(history_hours)

    # -- streaming API ----------------------------------------------------

    def observe(self, serial: str, hour: int,
                record: np.ndarray) -> DegradationAlert:
        """Ingest one hourly record and return the current verdict.

        ``record`` is a raw (unnormalized) Table I attribute vector.
        """
        record = np.asarray(record, dtype=np.float64).ravel()
        normalized = self._normalizer.transform(record.reshape(1, -1))[0]

        estimates: dict[FailureType, RescueEstimate] = {}
        for failure_type in FailureType:
            tree = self._predictor.tree_for(failure_type)
            stage = float(tree.predict(normalized.reshape(1, -1))[0])
            estimates[failure_type] = rescue_estimate(stage, failure_type)
        likely_type = min(estimates,
                          key=lambda t: estimates[t].stage)
        stage = estimates[likely_type].stage
        level = self._level_for(stage)
        self._state.record(serial, normalized, level, hour=int(hour))
        return DegradationAlert(
            serial=serial,
            hour=hour,
            level=level,
            stage=stage,
            likely_type=likely_type,
            estimates=estimates,
        )

    def observe_many(self, samples) -> list[DegradationAlert]:
        """Ingest a batch of ``(serial, hour, raw_record)`` samples.

        Semantically identical to calling :meth:`observe` once per
        sample, in order — same alerts, same per-drive history and
        level state — but the normalization and the per-group tree
        evaluations run once over the whole batch instead of once per
        sample.  Every arithmetic step is element-wise, so the batched
        path produces bit-identical stages (and therefore byte-identical
        serialized verdicts) to the per-sample path; the streaming
        scorer's ``push_many`` fast path and its throughput numbers rest
        on this method.
        """
        samples = list(samples)
        if not samples:
            return []
        raw = np.vstack([
            np.asarray(record, dtype=np.float64).ravel()
            for _, _, record in samples
        ])
        return self.observe_block(
            [serial for serial, _, _ in samples],
            [hour for _, hour, _ in samples],
            raw,
        )

    def observe_block(self, serials, hours,
                      matrix: np.ndarray) -> list[DegradationAlert]:
        """Ingest a columnar batch: serial list, hour list, raw matrix.

        The zero-copy twin of :meth:`observe_many` for callers that
        already hold their samples column-wise.  Row ``i`` of ``matrix``
        is the raw record of ``serials[i]`` at ``hours[i]``; alerts come
        back in row order and are bit-identical to per-sample
        :meth:`observe` calls.  Internally this is
        :meth:`observe_columns` plus full alert materialization —
        callers that can consume the struct-of-arrays
        :class:`~repro.core.columnar.AlertBlock` directly should, and
        skip the per-sample objects entirely.
        """
        return self.observe_columns(serials, hours, matrix).alerts()

    def observe_columns(self, serials, hours,
                        matrix: np.ndarray) -> AlertBlock:
        """Score one columnar batch as a single set of array ops.

        The streaming hot path: normalization, the per-group tree
        evaluations and the severity thresholds each run once over the
        whole batch (the rescue-clock inversion stays scalar, computed
        lazily per materialized alert so its libm rounding is exactly
        the per-sample path's), and the per-drive
        ring state updates with one fancy-indexed write when the store
        is a :class:`~repro.core.columnar.ColumnStateStore` (the scalar
        per-sample loop remains only for legacy deque-backed stores).
        Nothing is allocated per healthy drive; the returned
        :class:`~repro.core.columnar.AlertBlock` materializes
        :class:`DegradationAlert` objects lazily and bit-identically to
        :meth:`observe`.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ReproError(
                f"observe_block needs a 2-D record matrix, got "
                f"{matrix.ndim}-D"
            )
        if not (len(serials) == len(hours) == matrix.shape[0]):
            raise ReproError(
                f"observe_block column lengths disagree: {len(serials)} "
                f"serials, {len(hours)} hours, {matrix.shape[0]} rows"
            )
        types = tuple(FailureType)
        hours = np.asarray(hours, dtype=np.int64)
        if matrix.shape[0] == 0:
            empty = np.empty((len(types), 0), dtype=np.float64)
            return AlertBlock([], hours, empty,
                              np.empty(0, dtype=np.int64),
                              np.empty(0, dtype=np.int8), types)
        normalized = self._normalizer.transform(matrix)
        # (n_types, n_samples) stage matrix, one tree evaluation per type.
        stages = np.vstack([
            self._predictor.tree_for(failure_type).predict(normalized)
            for failure_type in types
        ])
        # First minimal stage in FailureType order — exactly the tie
        # semantics of ``min`` over the insertion-ordered estimates dict.
        likely_indices = np.argmin(stages, axis=0)
        picked = stages[likely_indices, np.arange(stages.shape[1])]
        level_codes = ((picked <= self._watch).astype(np.int8)
                       + (picked <= self._critical).astype(np.int8))

        if isinstance(self._state, ColumnStateStore):
            self._state.record_block(serials, normalized, level_codes,
                                     hours)
        else:
            for position, serial in enumerate(serials):
                self._state.record(
                    serial, normalized[position],
                    AlertLevel(int(level_codes[position])),
                    hour=int(hours[position]))
        return AlertBlock(serials, hours, stages,
                          likely_indices, level_codes, types)

    def observe_profile(self, profile) -> list[DegradationAlert]:
        """Replay a :class:`HealthProfile` through the monitor."""
        return [
            self.observe(profile.serial, int(hour), row)
            for hour, row in zip(profile.hours, profile.matrix)
        ]

    def replay(self, profile) -> list[DegradationAlert]:
        """Offline replay of one profile — alias of :meth:`observe_profile`.

        The serving layer's golden contract is stated against this
        method: a :class:`~repro.serve.scorer.StreamScorer` fed the same
        samples emits byte-identical verdicts.
        """
        return self.observe_profile(profile)

    # -- configuration ------------------------------------------------------

    @property
    def watch_threshold(self) -> float:
        """Stage at or below which a drive enters WATCH."""
        return self._watch

    @property
    def critical_threshold(self) -> float:
        """Stage at or below which a drive enters CRITICAL."""
        return self._critical

    @property
    def history_hours(self) -> int:
        """Ring-buffer capacity retained per drive."""
        return self._history_hours

    # -- fleet state --------------------------------------------------------

    @property
    def state(self) -> DriveStateStore | ColumnStateStore:
        """The keyed per-drive state store backing this monitor.

        Exposed so the serving layer can snapshot or relocate a shard's
        state without reaching into monitor internals.
        """
        return self._state

    @property
    def n_tracked(self) -> int:
        """Drives with live ring-buffer state (O(1))."""
        return self._state.n_tracked

    def level_of(self, serial: str) -> AlertLevel:
        """Last verdict for a drive (HEALTHY if never observed)."""
        return self._state.level_of(serial)

    def drives_at(self, level: AlertLevel) -> list[str]:
        """Serials currently at exactly ``level``."""
        return self._state.drives_at(level)

    def history_of(self, serial: str) -> np.ndarray:
        """Rolling window of normalized records for one drive."""
        return self._state.history_of(serial)

    def _level_for(self, stage: float) -> AlertLevel:
        if stage <= self._critical:
            return AlertLevel.CRITICAL
        if stage <= self._watch:
            return AlertLevel.WATCH
        return AlertLevel.HEALTHY
