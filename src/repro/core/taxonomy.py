"""Failure-type derivation from group manifestations (Table II).

The paper derives the failure *type* of each cluster from its distinctive
attribute manifestations: the group with the most uncorrectable errors
(lowest RUE health) is *bad-sector failures*; the group whose reallocated
sector counts saturate (highest raw R-RSC) is *read/write-head failures*;
the group that looks close to good states is *logical failures*.  The
rules below encode exactly that reading, applied to group medians, so
arbitrary cluster ids map deterministically onto the paper's Groups 1-3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.records import FailureRecordSet
from repro.errors import ReproError


class FailureType(enum.Enum):
    """The paper's three disk-failure categories."""

    LOGICAL = "logical failures"
    BAD_SECTOR = "bad sector failures"
    HEAD = "read/write head failures"

    @property
    def paper_group_number(self) -> int:
        """The group index the paper assigns this type (Table II)."""
        return {
            FailureType.LOGICAL: 1,
            FailureType.BAD_SECTOR: 2,
            FailureType.HEAD: 3,
        }[self]


#: Table II, verbatim property summaries per failure type.
TYPE_PROPERTIES: dict[FailureType, str] = {
    FailureType.LOGICAL: (
        "Similar to good states: a small number of write errors and "
        "internal scan errors, medium read errors."
    ),
    FailureType.BAD_SECTOR: (
        "Highest number of uncorrectable errors, more media errors and "
        "varying write errors."
    ),
    FailureType.HEAD: (
        "Highest number of write errors, larger high fly writes, longer "
        "power-on hours, low media errors and internal scan errors."
    ),
}


@dataclass(frozen=True, slots=True)
class GroupProperties:
    """One categorized failure group."""

    cluster_id: int
    failure_type: FailureType
    n_records: int
    population_fraction: float
    median_rue: float
    median_rrsc: float
    properties: str

    @property
    def paper_group_number(self) -> int:
        return self.failure_type.paper_group_number


def classify_groups(records: FailureRecordSet,
                    labels: np.ndarray) -> dict[int, GroupProperties]:
    """Assign a :class:`FailureType` to each cluster.

    Rules, in priority order over group medians of the failure records:

    1. bad-sector failures — the group with the lowest RUE health value
       (most reported uncorrectable errors);
    2. read/write-head failures — among the rest, the group with the
       highest raw reallocated-sector count (R-RSC);
    3. logical failures — the remaining group(s), whose read/write
       attributes sit near good-drive values.

    Exactly three clusters are expected (the paper's elbow); other counts
    raise, because the Table II reading is specific to three groups.
    """
    labels = np.asarray(labels)
    if labels.shape[0] != records.n_records:
        raise ReproError("labels must align with the failure records")
    cluster_ids = sorted(int(c) for c in np.unique(labels))
    if len(cluster_ids) != 3:
        raise ReproError(
            f"taxonomy rules expect 3 failure groups, got {len(cluster_ids)}"
        )

    rue = records.attribute_column("RUE")
    rrsc = records.attribute_column("R-RSC")
    median_rue = {c: float(np.median(rue[labels == c])) for c in cluster_ids}
    median_rrsc = {c: float(np.median(rrsc[labels == c])) for c in cluster_ids}

    bad_sector = min(cluster_ids, key=lambda c: median_rue[c])
    remaining = [c for c in cluster_ids if c != bad_sector]
    head = max(remaining, key=lambda c: median_rrsc[c])
    logical = next(c for c in remaining if c != head)

    assignment = {
        logical: FailureType.LOGICAL,
        bad_sector: FailureType.BAD_SECTOR,
        head: FailureType.HEAD,
    }
    total = records.n_records
    result: dict[int, GroupProperties] = {}
    for cluster_id in cluster_ids:
        failure_type = assignment[cluster_id]
        count = int(np.sum(labels == cluster_id))
        result[cluster_id] = GroupProperties(
            cluster_id=cluster_id,
            failure_type=failure_type,
            n_records=count,
            population_fraction=count / total,
            median_rue=median_rue[cluster_id],
            median_rrsc=median_rrsc[cluster_id],
            properties=TYPE_PROPERTIES[failure_type],
        )
    return result
