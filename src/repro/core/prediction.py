"""Degradation prediction with regression trees (Section V-B, Table III).

Per failure group, the training protocol is the paper's:

* every health sample of the group's failed drives gets a target value
  from the group's canonical signature (Eq. 3/4/6) at its lag before
  failure, with the fixed window sizes d = 12 / 380 / 24 and saturation
  at the good-state target 1.0;
* good-drive samples — ten times as many as the failed samples — are
  mixed in with target 1.0;
* samples are placed randomly into a 70% training / 30% test partition;
* a regression tree minimizing within-node squared error (Eq. 8) is
  trained and scored by RMSE and by the error rate (RMSE over the target
  range, which spans 2 from -1 to 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.categorize import CategorizationResult
from repro.core.signature_models import (
    PREDICTION_WINDOW_BY_TYPE,
    prediction_target,
)
from repro.core.taxonomy import FailureType
from repro.data.dataset import DiskDataset
from repro.data.splits import train_test_split
from repro.errors import ReproError
from repro.ml.metrics import rmse
from repro.ml.tree import RegressionTree
from repro.obs.observer import PipelineObserver, resolve_observer

#: Target range of the degradation values, used for the error rate: the
#: paper's percentages are RMSE / 2 (targets span [-1, 1]).
TARGET_RANGE = 2.0

#: Good-to-failed sample mixing ratio of the paper's protocol.
GOOD_SAMPLE_MULTIPLIER = 10


@dataclass(frozen=True, slots=True)
class PredictionReport:
    """Table III row: degradation-prediction quality for one group."""

    failure_type: FailureType
    window: int
    rmse: float
    error_rate: float
    n_train: int
    n_test: int
    tree_depth: int
    tree_leaves: int
    feature_importances: dict[str, float]


@dataclass(frozen=True, slots=True)
class GroupTrainingSet:
    """Assembled samples for one group's predictor."""

    features: np.ndarray
    targets: np.ndarray
    feature_names: tuple[str, ...]


class DegradationPredictor:
    """Train and evaluate per-group degradation predictors.

    Parameters
    ----------
    max_depth, min_samples_leaf:
        Regression-tree growth limits.
    train_fraction:
        Training share of the random split (paper: 0.7).
    seed:
        Seed for sampling good drives and splitting.
    observer:
        Telemetry sink for spans and metrics (default: no-op).
    """

    def __init__(self, *, max_depth: int = 8, min_samples_leaf: int = 10,
                 train_fraction: float = 0.7, seed: int = 17,
                 observer: PipelineObserver | None = None) -> None:
        self._max_depth = max_depth
        self._min_samples_leaf = min_samples_leaf
        self._train_fraction = train_fraction
        self._seed = seed
        self._observer = resolve_observer(observer)
        self.trees_: dict[FailureType, RegressionTree] = {}

    def build_training_set(self, dataset: DiskDataset,
                           categorization: CategorizationResult,
                           failure_type: FailureType, *,
                           window: int | None = None) -> GroupTrainingSet:
        """Assemble the mixed failed/good sample set for one group."""
        serials = categorization.serials_of_type(failure_type)
        if not serials:
            raise ReproError(f"no drives categorized as {failure_type}")
        if window is None:
            window = PREDICTION_WINDOW_BY_TYPE[failure_type]

        failed_features = []
        failed_targets = []
        for serial in serials:
            profile = dataset.get(serial)
            lags = profile.hours_before_failure()
            failed_features.append(profile.matrix)
            failed_targets.append(
                prediction_target(failure_type, lags, window)
            )
        features_failed = np.vstack(failed_features)
        targets_failed = np.concatenate(failed_targets)

        rng = np.random.default_rng(self._seed)
        good_matrix = np.vstack(
            [profile.matrix for profile in dataset.good_profiles]
        )
        n_good = min(good_matrix.shape[0],
                     GOOD_SAMPLE_MULTIPLIER * features_failed.shape[0])
        if n_good == 0:
            raise ReproError("dataset has no good-drive samples")
        chosen = rng.choice(good_matrix.shape[0], size=n_good, replace=False)
        features = np.vstack([features_failed, good_matrix[chosen]])
        targets = np.concatenate(
            [targets_failed, np.ones(n_good, dtype=np.float64)]
        )
        return GroupTrainingSet(
            features=features,
            targets=targets,
            feature_names=dataset.attributes,
        )

    def evaluate_group(self, dataset: DiskDataset,
                       categorization: CategorizationResult,
                       failure_type: FailureType, *,
                       window: int | None = None) -> PredictionReport:
        """Train on the 70% split, score on the 30% split."""
        obs = self._observer
        if window is None:
            window = PREDICTION_WINDOW_BY_TYPE[failure_type]
        with obs.span("predict-group", group=failure_type.name,
                      window=window):
            training_set = self.build_training_set(
                dataset, categorization, failure_type, window=window
            )
            split = train_test_split(
                training_set.targets.shape[0],
                train_fraction=self._train_fraction,
                rng=np.random.default_rng(self._seed),
            )
            x_train, x_test, y_train, y_test = split.select(
                training_set.features, training_set.targets
            )
            tree = RegressionTree(
                max_depth=self._max_depth,
                min_samples_leaf=self._min_samples_leaf,
            ).fit(x_train, y_train, feature_names=training_set.feature_names)
            self.trees_[failure_type] = tree
            predictions = tree.predict(x_test)
            model_rmse = rmse(y_test, predictions)
        obs.count("prediction_samples", training_set.targets.shape[0])
        obs.observe("prediction_rmse", model_rmse)
        importances = dict(
            zip(training_set.feature_names,
                (float(v) for v in tree.feature_importances()))
        )
        return PredictionReport(
            failure_type=failure_type,
            window=window,
            rmse=model_rmse,
            error_rate=model_rmse / TARGET_RANGE,
            n_train=split.train_indices.shape[0],
            n_test=split.test_indices.shape[0],
            tree_depth=tree.depth(),
            tree_leaves=tree.n_leaves(),
            feature_importances=importances,
        )

    def evaluate_all(self, dataset: DiskDataset,
                     categorization: CategorizationResult,
                     ) -> dict[FailureType, PredictionReport]:
        """Table III: one report per failure group."""
        return {
            failure_type: self.evaluate_group(
                dataset, categorization, failure_type
            )
            for failure_type in FailureType
        }

    def tree_for(self, failure_type: FailureType) -> RegressionTree:
        """The fitted tree of a group (after evaluation) — Figure 13."""
        try:
            return self.trees_[failure_type]
        except KeyError:
            raise ReproError(
                f"no tree trained for {failure_type}; run evaluate first"
            ) from None
