"""Failure categorization: clustering failure records into groups.

Section IV-B clusters the 30-feature failure records, selects the number
of groups by the Figure 3 elbow, and identifies each group's centroid
drive (Drives 57, 369 and 136 in the paper) whose records anchor the
later degradation analysis.  K-means is the default engine; Support
Vector Clustering is available as the cross-check the paper performed
("which generate the same results").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.records import FailureRecordSet
from repro.core.taxonomy import FailureType, GroupProperties, classify_groups
from repro.errors import ModelError, ReproError
from repro.ml.kmeans import ElbowAnalysis, KMeans, elbow_analysis
from repro.ml.svc import SupportVectorClustering
from repro.obs.observer import PipelineObserver, resolve_observer


@dataclass(frozen=True, slots=True)
class CategorizationResult:
    """Outcome of clustering + taxonomy on one failure-record set."""

    records: FailureRecordSet
    labels: np.ndarray
    elbow: ElbowAnalysis | None
    groups: dict[int, GroupProperties]
    centroid_serials: dict[int, str]

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def cluster_of_type(self, failure_type: FailureType) -> int:
        """Cluster id carrying the given failure type."""
        for cluster_id, group in self.groups.items():
            if group.failure_type is failure_type:
                return cluster_id
        raise ReproError(f"no group classified as {failure_type}")

    def serials_of_type(self, failure_type: FailureType) -> list[str]:
        """Serials of all failed drives in the group of the given type."""
        cluster_id = self.cluster_of_type(failure_type)
        return [
            serial for serial, label in zip(self.records.serials, self.labels)
            if int(label) == cluster_id
        ]

    def centroid_of_type(self, failure_type: FailureType) -> str:
        """Serial of the centroid drive of the given type's group."""
        return self.centroid_serials[self.cluster_of_type(failure_type)]

    def type_of_serial(self, serial: str) -> FailureType:
        try:
            index = self.records.serials.index(serial)
        except ValueError:
            raise ReproError(f"{serial!r} is not a failed drive") from None
        return self.groups[int(self.labels[index])].failure_type


class FailureCategorizer:
    """Cluster failure records into typed failure groups.

    Parameters
    ----------
    n_clusters:
        Number of groups, or ``None`` to select it by elbow analysis
        (the paper's Figure 3 procedure, which picks 3).
    method:
        ``"kmeans"`` (default) or ``"svc"``.
    seed:
        Random seed for the clustering engine.
    observer:
        Telemetry sink for spans and metrics (default: no-op).
    """

    def __init__(self, *, n_clusters: int | None = None,
                 method: str = "kmeans", seed: int = 0,
                 max_clusters: int = 10,
                 observer: PipelineObserver | None = None) -> None:
        if method not in ("kmeans", "svc"):
            raise ModelError(f"unknown clustering method {method!r}")
        if n_clusters is not None and n_clusters < 2:
            raise ModelError("n_clusters must be at least 2")
        self._n_clusters = n_clusters
        self._method = method
        self._seed = seed
        self._max_clusters = max_clusters
        self._observer = resolve_observer(observer)

    def categorize(self, records: FailureRecordSet) -> CategorizationResult:
        """Cluster ``records`` and derive the failure types."""
        obs = self._observer
        with obs.span("cluster", method=self._method,
                      n_records=records.n_records):
            elbow: ElbowAnalysis | None = None
            if self._n_clusters is None:
                with obs.span("elbow", max_clusters=self._max_clusters):
                    elbow = elbow_analysis(
                        records.features, max_clusters=self._max_clusters,
                        seed=self._seed,
                    )
                n_clusters = elbow.best_k
            else:
                n_clusters = self._n_clusters

            labels = self._cluster(records.features, n_clusters)
            groups = classify_groups(records, labels)
            centroids = _centroid_serials(records, labels)
        obs.gauge("clusters_found", n_clusters)
        return CategorizationResult(
            records=records,
            labels=labels,
            elbow=elbow,
            groups=groups,
            centroid_serials=centroids,
        )

    def _cluster(self, features: np.ndarray, n_clusters: int) -> np.ndarray:
        if self._method == "kmeans":
            model = KMeans(n_clusters, seed=self._seed).fit(features)
            assert model.labels_ is not None
            return model.labels_
        return self._cluster_svc(features, n_clusters)

    def _cluster_svc(self, features: np.ndarray,
                     n_clusters: int) -> np.ndarray:
        """SVC with a kernel-width sweep.

        The Gaussian width controls how many contours (clusters) appear;
        starting from the self-tuned ``1/median(d^2)`` the width is
        doubled until the requested cluster count emerges, mirroring how
        the SVC literature tunes ``q``.
        """
        squared = np.sum(
            (features[:, None, :] - features[None, :, :]) ** 2, axis=2
        )
        median_sq = float(np.median(
            squared[np.triu_indices(features.shape[0], k=1)]
        ))
        if median_sq <= 0:
            raise ModelError("degenerate failure records: all identical")

        def clusters_at(scale: float) -> tuple[int, np.ndarray]:
            model = SupportVectorClustering(
                gaussian_width=scale / median_sq, soft_margin=0.0
            )
            model.fit(features)
            assert model.labels_ is not None
            return model.n_clusters_, model.labels_

        # Geometric sweep to bracket the requested cluster count, then a
        # bisection on the width inside the bracket.
        under_scale: float | None = None
        over_scale: float | None = None
        scale = 0.5
        while scale <= 512.0:
            count, labels = clusters_at(scale)
            if count == n_clusters:
                return labels
            if count < n_clusters:
                under_scale = scale
            else:
                over_scale = scale
                break
            scale *= 2.0
        if under_scale is not None and over_scale is not None:
            low, high = under_scale, over_scale
            for _ in range(16):
                middle = (low + high) / 2.0
                count, labels = clusters_at(middle)
                if count == n_clusters:
                    return labels
                if count < n_clusters:
                    low = middle
                else:
                    high = middle
        raise ModelError(
            f"SVC width sweep found no width yielding {n_clusters} clusters"
        )


def _centroid_serials(records: FailureRecordSet,
                      labels: np.ndarray) -> dict[int, str]:
    """Serial of the record nearest each cluster's mean ("centroid drive")."""
    centroids: dict[int, str] = {}
    for cluster_id in (int(c) for c in np.unique(labels)):
        member_mask = labels == cluster_id
        members = records.features[member_mask]
        mean = members.mean(axis=0)
        distances = np.linalg.norm(members - mean, axis=1)
        member_serials = [
            serial for serial, is_member in zip(records.serials, member_mask)
            if is_member
        ]
        centroids[cluster_id] = member_serials[int(np.argmin(distances))]
    return centroids
