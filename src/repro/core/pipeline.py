"""End-to-end characterization pipeline.

:class:`CharacterizationPipeline` chains every stage of the paper on a
raw dataset: Eq. (1) normalization, failure-record construction, elbow
selection and clustering, Table II taxonomy, per-drive degradation
signatures, attribute influence, z-score diagnosis, and Table III
degradation prediction.  The returned
:class:`CharacterizationReport` is the library's primary result object.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.categorize import CategorizationResult, FailureCategorizer
from repro.core.influence import (
    rw_attribute_correlations,
    top_correlated_attributes,
)
from repro.core.prediction import DegradationPredictor, PredictionReport
from repro.core.records import (
    FailureRecordSet,
    build_failure_records,
    failure_records_from_arrays,
    failure_records_to_arrays,
)
from repro.core.signatures import (
    DegradationSignature,
    WindowParams,
    derive_signature,
)
from repro.core.taxonomy import FailureType
from repro.data.cache import DatasetCache
from repro.data.dataset import DiskDataset
from repro.errors import PipelineStageError, ReproError, SignatureError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.parallel import ParallelConfig, RetryPolicy, map_drives
from repro.smart.profile import HealthProfile


@dataclass(frozen=True, slots=True)
class GroupSignatureSummary:
    """Degradation-signature statistics of one failure group."""

    failure_type: FailureType
    n_drives: int
    median_window: float
    window_range: tuple[int, int]
    canonical_order_votes: dict[int, int]
    consensus_order: int
    centroid_serial: str
    top_correlated: tuple[str, ...]

    @property
    def population(self) -> int:
        return self.n_drives


@dataclass(frozen=True, slots=True)
class CharacterizationReport:
    """Everything the pipeline derives from one dataset."""

    dataset: DiskDataset                       # normalized view
    records: FailureRecordSet
    categorization: CategorizationResult
    signatures: dict[str, DegradationSignature]
    group_summaries: dict[FailureType, GroupSignatureSummary]
    predictions: dict[FailureType, PredictionReport] = field(default_factory=dict)

    def signature_of(self, serial: str) -> DegradationSignature:
        try:
            return self.signatures[serial]
        except KeyError:
            raise ReproError(f"no signature derived for {serial!r}") from None

    def group_of(self, serial: str) -> FailureType:
        return self.categorization.type_of_serial(serial)


@dataclass(frozen=True, slots=True)
class _SignatureTask:
    """Picklable per-drive worker of the signature fan-out.

    Runs uninstrumented (observers do not cross process boundaries); the
    pipeline replays the per-signature metrics when results merge back.
    Returns ``None`` for degenerate profiles instead of raising, so one
    drive's bad telemetry never aborts a whole chunk.
    """

    params: WindowParams

    def __call__(self, profile: HealthProfile) -> DegradationSignature | None:
        try:
            return derive_signature(profile, params=self.params)
        except SignatureError:
            return None


class CharacterizationPipeline:
    """Configure and run the full analysis.

    Parameters
    ----------
    n_clusters:
        Fixed group count, or ``None`` for elbow selection.
    window_params:
        Tunables of the degradation-window extraction.
    run_prediction:
        Whether to train the Table III predictors (the most expensive
        stage; disable for categorization-only runs).
    seed:
        Seed shared by clustering, sampling and splitting.
    n_jobs:
        Workers for the per-drive signature fan-out (``1`` = serial,
        ``0`` = one per available CPU).  A pure performance knob: any
        job count produces byte-identical reports.
    parallel_backend:
        ``"process"`` (default; sidesteps the GIL) or ``"thread"``.
    retry_policy:
        Worker-failure policy for the signature fan-out
        (:class:`~repro.parallel.RetryPolicy`).  The default retries
        nothing; :meth:`RetryPolicy.resilient` survives crashed or hung
        workers with byte-identical results.
    cache:
        Optional :class:`~repro.data.cache.DatasetCache` memoizing the
        normalized dataset and failure-record matrix between runs.
        Only raw input datasets are cached (already-normalized inputs
        bypass the cache); a hit restores bit-exact arrays, so cached
        and uncached runs produce byte-identical reports.
    observer:
        Telemetry sink for stage spans, metrics and progress events
        (default: a no-op observer — uninstrumented runs pay nothing).
    """

    def __init__(self, *, n_clusters: int | None = 3,
                 window_params: WindowParams | None = None,
                 run_prediction: bool = True,
                 clustering_method: str = "kmeans",
                 seed: int = 0,
                 n_jobs: int = 1,
                 parallel_backend: str = "process",
                 retry_policy: RetryPolicy | None = None,
                 cache: DatasetCache | None = None,
                 observer: PipelineObserver | None = None) -> None:
        self._observer = resolve_observer(observer)
        self._categorizer = FailureCategorizer(
            n_clusters=n_clusters, method=clustering_method, seed=seed,
            observer=self._observer,
        )
        self._window_params = window_params or WindowParams()
        self._run_prediction = run_prediction
        self._seed = seed
        self._parallel = ParallelConfig(
            n_jobs=n_jobs, backend=parallel_backend,
            retry=retry_policy if retry_policy is not None else RetryPolicy(),
        )
        self._cache = cache

    def run(self, dataset: DiskDataset) -> CharacterizationReport:
        """Analyze ``dataset`` (raw or already normalized).

        Every stage runs inside an error boundary: a non-library
        exception (a numpy shape error, a corrupt profile, a broken
        cache entry) is wrapped into
        :class:`~repro.errors.PipelineStageError` carrying the failing
        stage's name, the stages already completed and the partial
        progress counts — so callers learn *where* a run died, not just
        that it died.  Library errors (:class:`~repro.errors.ReproError`
        subclasses such as :class:`~repro.errors.SignatureError`) are
        already typed and pass through unchanged.
        """
        obs = self._observer
        completed: list[str] = []
        partial: dict[str, object] = {}
        with obs.span("pipeline", n_drives=len(dataset.profiles)):
            with self._boundary("prepare", completed, partial):
                normalized, records = self._prepare(dataset)
            obs.count("drives_processed", len(normalized.profiles))
            obs.gauge("drives_failed", len(normalized.failed_profiles))
            obs.gauge("failure_records", records.n_records)
            partial["n_drives"] = len(normalized.profiles)
            partial["n_failure_records"] = records.n_records

            with self._boundary("categorize", completed, partial):
                categorization = self._categorizer.categorize(records)
            partial["n_groups"] = len(categorization.groups)

            failed_profiles = normalized.failed_profiles
            signatures: dict[str, DegradationSignature] = {}
            with self._boundary("signatures", completed, partial):
                with obs.span("signatures", n_failed=len(failed_profiles)):
                    derived = map_drives(
                        _SignatureTask(self._window_params), failed_profiles,
                        self._parallel, observer=obs,
                        label="signature-fanout",
                    )
                    for profile, signature in zip(failed_profiles, derived):
                        if signature is None:
                            # Degenerate profiles (e.g. two records) carry
                            # no signature; they stay categorized but
                            # unsigned.
                            obs.count("signatures_skipped")
                            continue
                        signatures[profile.serial] = signature
                        obs.count("signatures_derived")
                        obs.observe("window_length",
                                    float(signature.window_size))
                        obs.observe("signature_fit_rmse",
                                    signature.best_fit.rmse)
                obs.event("signatures derived",
                          derived=len(signatures),
                          skipped=len(failed_profiles) - len(signatures))
                if failed_profiles and not signatures:
                    raise SignatureError(
                        "no degradation signature could be derived: every "
                        f"failed profile ({len(failed_profiles)}) has an "
                        "empty or degenerate degradation window — the "
                        "telemetry carries no pre-failure change to "
                        "characterize"
                    )
            partial["n_signatures"] = len(signatures)

            with self._boundary("influence", completed, partial):
                with obs.span("influence"):
                    summaries = self._summarize_groups(
                        normalized, categorization, signatures
                    )

            predictions: dict[FailureType, PredictionReport] = {}
            if self._run_prediction:
                predictor = DegradationPredictor(seed=self._seed,
                                                 observer=obs)
                with self._boundary("predict", completed, partial):
                    with obs.span("predict"):
                        predictions = predictor.evaluate_all(
                            normalized, categorization
                        )

            return CharacterizationReport(
                dataset=normalized,
                records=records,
                categorization=categorization,
                signatures=signatures,
                group_summaries=summaries,
                predictions=predictions,
            )

    @contextmanager
    def _boundary(self, stage: str, completed: list[str],
                  partial: dict[str, object]) -> Iterator[None]:
        """Wrap one stage: foreign exceptions become
        :class:`PipelineStageError` with progress context attached."""
        try:
            yield
        except ReproError:
            # Already a typed library error with its own context.
            self._observer.count("pipeline_stage_failures")
            raise
        except Exception as error:
            self._observer.count("pipeline_stage_failures")
            self._observer.event("stage failed", stage=stage,
                                 error=type(error).__name__)
            raise PipelineStageError(
                stage, error, completed=tuple(completed), partial=partial,
            ) from error
        completed.append(stage)

    def _prepare(self, dataset: DiskDataset
                 ) -> tuple[DiskDataset, FailureRecordSet]:
        """Normalize ``dataset`` and build its failure records, through
        the cache when one is configured and the input is raw."""
        obs = self._observer
        cache = self._cache
        key: str | None = None
        cached = None
        if cache is not None and not dataset.is_normalized:
            key = cache.key_for(dataset)
            cached = cache.load(key)
        if cached is not None:
            try:
                restored = failure_records_from_arrays(cached.extras)
            except ReproError:
                # Entry predates the record codec (or lost its extras);
                # drop it and recompute below.
                assert cache is not None and key is not None
                cache.invalidate(key)
                cached = None
        if cached is not None:
            with obs.span("normalize", cache_hit=True):
                normalized = cached.dataset
            with obs.span("failure-records", cache_hit=True):
                records = restored
            return normalized, records

        with obs.span("normalize", cache_hit=False if key else None):
            normalized = (dataset if dataset.is_normalized
                          else dataset.normalize())
        with obs.span("failure-records"):
            records = build_failure_records(normalized)
        if cache is not None and key is not None:
            cache.store(key, normalized,
                        extras=failure_records_to_arrays(records))
        return normalized, records

    def _summarize_groups(self, dataset: DiskDataset,
                          categorization: CategorizationResult,
                          signatures: dict[str, DegradationSignature],
                          ) -> dict[FailureType, GroupSignatureSummary]:
        summaries: dict[FailureType, GroupSignatureSummary] = {}
        for failure_type in FailureType:
            serials = categorization.serials_of_type(failure_type)
            group_signatures = [
                signatures[serial] for serial in serials if serial in signatures
            ]
            if not group_signatures:
                continue
            windows = np.array([s.window_size for s in group_signatures])
            votes: dict[int, int] = {}
            for signature in group_signatures:
                order = signature.best_canonical_order
                votes[order] = votes.get(order, 0) + 1
            consensus = max(votes, key=lambda order: votes[order])

            centroid_serial = categorization.centroid_of_type(failure_type)
            # Rank attributes by their mean |correlation| with degradation
            # across the whole group — more robust than the centroid alone.
            accumulated: dict[str, float] = {}
            for signature in group_signatures:
                correlations = rw_attribute_correlations(
                    dataset.get(signature.serial), signature.window
                )
                for symbol, value in correlations.items():
                    accumulated[symbol] = accumulated.get(symbol, 0.0) + abs(value)
            top = tuple(top_correlated_attributes(accumulated, count=2))
            summaries[failure_type] = GroupSignatureSummary(
                failure_type=failure_type,
                n_drives=len(serials),
                median_window=float(np.median(windows)),
                window_range=(int(windows.min()), int(windows.max())),
                canonical_order_votes=votes,
                consensus_order=consensus,
                centroid_serial=centroid_serial,
                top_correlated=top,
            )
        return summaries
