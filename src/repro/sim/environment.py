"""Environmental models: datacenter thermals and the power-on clock.

The paper's two environmental attributes are drive temperature (TC) and
power-on hours (POH).  Temperature is produced by a simple datacenter
thermal chain — room inlet temperature, a static per-drive placement
offset (rack position), activity-dependent self-heating and sensor noise.
POH follows the quirk documented in Section IV-D: the one-byte health
value drops by one only every 876 power-on hours, so consecutive hourly
samples usually repeat the same value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.config import FleetConfig


@dataclass(frozen=True, slots=True)
class ThermalEnvironment:
    """Thermal chain of one drive within the datacenter."""

    config: FleetConfig
    rack_offset_c: float
    mode_offset_c: float

    @classmethod
    def sample(cls, config: FleetConfig, rng: np.random.Generator,
               mode_offset_c: float = 0.0) -> "ThermalEnvironment":
        """Draw the static placement offset for one drive."""
        offset = rng.normal(0.0, config.rack_offset_std_c)
        return cls(config=config, rack_offset_c=float(offset),
                   mode_offset_c=float(mode_offset_c))

    def temperature_series(self, utilization: np.ndarray,
                           rng: np.random.Generator) -> np.ndarray:
        """Return hourly drive temperature (deg C) given utilization."""
        config = self.config
        n_hours = utilization.shape[0]
        inlet = config.inlet_temperature_c + rng.normal(
            0.0, config.inlet_temperature_std, size=n_hours
        )
        heating = config.activity_heating_c * utilization
        noise = rng.normal(0.0, config.temperature_noise_c, size=n_hours)
        return inlet + self.rack_offset_c + self.mode_offset_c + heating + noise

    @staticmethod
    def temperature_health(temperature_c: np.ndarray) -> np.ndarray:
        """Vendor health value for temperature: ``100 - deg C``, floored at 1.

        This matches the common vendor convention where the TC health
        value falls one-for-one as the drive heats up, which is why hotter
        (failed) drives show *negative* z-scores in the paper's Figure 11.
        """
        return np.maximum(1.0, 100.0 - temperature_c)


@dataclass(frozen=True, slots=True)
class PowerOnClock:
    """Power-on-hours counter of one drive.

    ``age_at_start_hours`` is the drive's accumulated operating time when
    the collection period begins; the drive is assumed powered on
    throughout the collection window (enterprise drives in a production
    data center are).
    """

    age_at_start_hours: float
    step_hours: float

    @classmethod
    def sample(cls, config: FleetConfig, rng: np.random.Generator,
               age_bias: float = 1.0) -> "PowerOnClock":
        """Draw a drive age from the fleet's lognormal age distribution.

        ``age_bias`` scales the median: failure modes that afflict old
        drives (head failures) pass a bias above one, modes hitting young
        drives pass a bias below one.
        """
        age = rng.lognormal(
            mean=np.log(config.median_age_hours * age_bias),
            sigma=config.age_sigma,
        )
        return cls(age_at_start_hours=float(age),
                   step_hours=config.poh_health_step_hours)

    def raw_series(self, hours: np.ndarray) -> np.ndarray:
        """Raw POH counter at each absolute sample hour."""
        return self.age_at_start_hours + np.asarray(hours, dtype=np.float64)

    def health_series(self, hours: np.ndarray) -> np.ndarray:
        """One-byte POH health value at each sample hour.

        The value starts at 100 for a fresh drive and decreases by one
        every ``step_hours`` of operation, floored at 1 — the stepwise
        behaviour the paper had to smooth before correlation analysis.
        """
        raw = self.raw_series(hours)
        return np.maximum(1.0, 100.0 - np.floor(raw / self.step_hours))
