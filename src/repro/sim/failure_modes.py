"""Failure-mode degradation processes.

Each failed drive is afflicted by exactly one failure mode.  The three
modes mirror the paper's Table II taxonomy:

* **LOGICAL** (Group 1) — file-structure / firmware-level corruption.
  SMART read/write attributes stay near good-drive values until a short
  final collapse (degradation window of a few hours, quadratic shape);
  the afflicted drives run persistently hot, which is the signal the
  paper's z-score analysis surfaces in Figure 11.
* **BAD_SECTOR** (Group 2) — media wear-out.  Unstable sectors accumulate
  steadily for hundreds of hours, driving uncorrectable errors (RUE) up
  monotonically — the long linear degradation of Figure 8(b); per-drive
  chronic write-error levels vary widely, giving the "diverse R-RSC" the
  paper observes.
* **HEAD** (Group 3) — read/write head wear.  Write errors exhaust the
  spare-sector pool in a short cubic burst (R-RSC saturates near its
  maximum), with chronically elevated high-fly writes and old drives
  (long power-on hours).

A mode contributes two kinds of stress to the drive's error channels:

* *chronic multipliers* applied over the entire profile, and
* a *ramp* confined to the degradation window of ``d`` hours before the
  failure, shaped so that the displacement of the afflicted attributes
  from their failure values follows ``(t / d) ** p`` for ``t`` hours
  before failure — the polynomial order ``p`` is what the paper's
  signature extraction recovers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.sim.config import FleetConfig


class FailureMode(enum.Enum):
    """Afflicting failure mode of a simulated drive."""

    GOOD = "good"
    LOGICAL = "logical"
    BAD_SECTOR = "bad_sector"
    HEAD = "head"

    @property
    def is_failure(self) -> bool:
        return self is not FailureMode.GOOD


#: Error channels a mode can stress.  Rate channels multiply a per-hour
#: event rate; the counter channels inject extra cumulative events.
RATE_CHANNELS = ("media_error", "seek", "high_fly", "spin_up")
COUNTER_CHANNELS = ("write_error", "scan_detect")


@dataclass(frozen=True, slots=True)
class RampSpec:
    """Ramp of one channel inside the degradation window.

    For rate channels ``strength`` is the peak multiplier added at the
    failure instant; for counter channels it is the total number of extra
    events injected across the window.
    """

    channel: str
    strength_low: float
    strength_high: float

    def __post_init__(self) -> None:
        if self.channel not in RATE_CHANNELS + COUNTER_CHANNELS:
            raise SimulationError(f"unknown stress channel {self.channel!r}")
        if not 0 < self.strength_low <= self.strength_high:
            raise SimulationError("ramp strengths must satisfy 0 < low <= high")

    def sample_strength(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.strength_low, self.strength_high))


@dataclass(frozen=True, slots=True)
class ModeProfile:
    """Full stress description of one failure mode.

    ``initial_reallocated`` bounds the log-uniform draw of the sectors a
    drive had already remapped before the collection period began — the
    lifetime accumulation that makes R-RSC "diverse" across bad-sector
    failures without introducing an in-profile drift.
    """

    mode: FailureMode
    window_range: tuple[int, int]
    exponent: float
    temp_offset_c: float
    age_bias: float
    chronic: dict[str, tuple[float, float]] = field(default_factory=dict)
    ramps: tuple[RampSpec, ...] = ()
    initial_reallocated: tuple[float, float] = (0.5, 20.0)

    def sample_window(self, rng: np.random.Generator) -> int:
        low, high = self.window_range
        return int(rng.integers(low, high + 1))

    def sample_initial_reallocated(self, rng: np.random.Generator) -> float:
        low, high = self.initial_reallocated
        if low <= 0 or high < low:
            raise SimulationError(
                "initial_reallocated bounds must satisfy 0 < low <= high"
            )
        return float(np.exp(rng.uniform(np.log(low), np.log(high))))

    def sample_chronic(self, rng: np.random.Generator) -> dict[str, float]:
        """Draw per-drive chronic multipliers (lognormal between bounds)."""
        multipliers: dict[str, float] = {}
        for channel, (low, high) in self.chronic.items():
            if channel not in RATE_CHANNELS + COUNTER_CHANNELS:
                raise SimulationError(f"unknown stress channel {channel!r}")
            if low <= 0 or high < low:
                raise SimulationError(
                    f"chronic bounds for {channel!r} must satisfy 0 < low <= high"
                )
            log_low, log_high = np.log(low), np.log(high)
            multipliers[channel] = float(np.exp(rng.uniform(log_low, log_high)))
        return multipliers


def ramp_progress(hours_before_failure: np.ndarray, window: int,
                  exponent: float) -> np.ndarray:
    """Progress of the degradation ramp in ``[0, 1]``.

    Returns ``1 - (t / d) ** p`` clipped to the window: zero before the
    window opens, one at the failure instant.  The *displacement* of a
    ramped attribute from its failure value is therefore
    ``(1 - progress) = (t / d) ** p``, which is exactly the polynomial
    family the paper fits in Figure 8.
    """
    t = np.asarray(hours_before_failure, dtype=np.float64)
    if window <= 0:
        raise SimulationError("degradation window must be positive")
    scaled = np.clip(t / float(window), 0.0, 1.0)
    return 1.0 - scaled ** exponent


def cumulative_ramp_increments(hours_before_failure: np.ndarray, window: int,
                               exponent: float,
                               total: float) -> tuple[np.ndarray, float]:
    """Per-hour event increments whose running sum follows the ramp.

    The cumulative count injected by the ramp equals
    ``total * ramp_progress``.  Returns ``(increments, pre_window_mass)``:
    the per-sample increments aligned with a profile ordered
    oldest-to-newest, and the event mass the ramp injected *before* the
    profile's first sample (non-zero when the degradation window predates
    the observation period — the norm for bad-sector failures, whose
    wear-out starts hundreds of hours before the drive is condemned).
    The caller warm-starts the sector pool with that mass.
    """
    t = np.asarray(hours_before_failure, dtype=np.float64)
    progress = ramp_progress(t, window, exponent)
    cumulative = total * progress
    pre_window = total * float(
        ramp_progress(np.asarray([t[0] + 1.0]), window, exponent)[0]
    )
    increments = np.diff(cumulative, prepend=pre_window)
    return np.maximum(increments, 0.0), pre_window


def mode_profile(mode: FailureMode, config: FleetConfig) -> ModeProfile:
    """Return the stress profile of ``mode`` under ``config``."""
    if mode is FailureMode.GOOD:
        return ModeProfile(
            mode=mode,
            window_range=(1, 1),
            exponent=1.0,
            temp_offset_c=0.0,
            age_bias=1.0,
        )
    if mode is FailureMode.LOGICAL:
        return ModeProfile(
            mode=mode,
            window_range=config.logical_window,
            exponent=config.logical_exponent,
            temp_offset_c=config.logical_temp_offset_c,
            age_bias=1.6,
            chronic={"media_error": (1.5, 4.0)},
            ramps=(
                RampSpec("media_error", 500.0, 1800.0),
                RampSpec("spin_up", 0.04, 0.10),
            ),
        )
    if mode is FailureMode.BAD_SECTOR:
        return ModeProfile(
            mode=mode,
            window_range=config.bad_sector_window,
            exponent=config.bad_sector_exponent,
            temp_offset_c=config.bad_sector_temp_offset_c,
            age_bias=1.1,
            chronic={
                "media_error": (800.0, 3200.0),
                "write_error": (2.0, 40.0),
            },
            ramps=(
                RampSpec("scan_detect", 250.0, 700.0),
            ),
            # Lifetime write-error accumulation: the "diverse R-RSC" the
            # paper observes among bad-sector failures.
            initial_reallocated=(10.0, 3500.0),
        )
    if mode is FailureMode.HEAD:
        return ModeProfile(
            mode=mode,
            window_range=config.head_window,
            exponent=config.head_exponent,
            temp_offset_c=config.head_temp_offset_c,
            age_bias=2.5,
            chronic={
                "high_fly": (8.0, 120.0),
                # Worn heads mistrack: a wide chronic spread (constant per
                # drive) keeps the fleet-wide SER range broad so that
                # after Eq. (1) normalization a single seek-error flicker
                # on a healthy drive stays small.
                "seek": (5.0, 200.0),
            },
            ramps=(
                # Exhaust (nearly) the whole spare pool inside the window:
                # R-RSC ends near its fleet-wide maximum, the paper's
                # "all above 0.94" manifestation.  The strengths stay at
                # the pool size, not beyond it, so the cumulative ramp
                # keeps its cubic shape instead of flat-lining at the cap.
                RampSpec("write_error",
                         0.97 * config.spare_sectors,
                         1.01 * config.spare_sectors),
                RampSpec("media_error", 400.0, 1200.0),
            ),
            initial_reallocated=(1.0, 30.0),
        )
    raise SimulationError(f"unhandled failure mode {mode!r}")
