"""Deterministic random-stream management for the simulator.

Every simulated entity (fleet, drive, subsystem) draws from its own
:class:`numpy.random.Generator`, derived from the fleet seed and a tuple
of string keys.  Two runs with the same configuration therefore produce
bit-identical datasets, and changing the number of drives does not perturb
the streams of unrelated drives.
"""

from __future__ import annotations

import zlib

import numpy as np


def child_rng(seed: int, *keys: str | int) -> np.random.Generator:
    """Return an independent generator for ``(seed, *keys)``.

    The keys are hashed with CRC32 (stable across processes, unlike
    Python's ``hash``) and folded into a :class:`numpy.random.SeedSequence`
    so sibling streams are statistically independent.
    """
    hashed = [zlib.crc32(str(key).encode("utf-8")) for key in keys]
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=tuple(hashed))
    return np.random.default_rng(sequence)
