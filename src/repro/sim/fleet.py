"""Fleet orchestration: build the drive population and run the simulation.

:class:`FleetSimulator` assigns every drive an outcome (good, or one of
the three failure modes at the configured mixture), schedules failure
times over the eight-week collection period, applies the observation
policy (20-day pre-failure profiles, truncated when the drive fails early
in the period; up to 7-day good-drive profiles) and simulates each drive
independently.

The result carries the ground-truth failure mode of every drive — the
studied data center had no such labels (that is exactly why the paper
clusters), but the simulator's labels let the test suite verify that the
categorization pipeline *recovers* the true structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import DiskDataset
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.parallel import ParallelConfig, map_drives
from repro.sim.config import FleetConfig
from repro.sim.drive import DriveSpec, simulate_drive
from repro.sim.failure_modes import FailureMode
from repro.sim.rng import child_rng

#: Share of failures occurring in the first 20 days of the period, by
#: failure mode.  The paper observes only 51.3% of failed drives with
#: full 20-day profiles — below the 65% a constant hazard would give —
#: indicating an infant-mortality excess early in the collection window
#: (cf. Xin et al.).  Infant mortality is a logical/electronic phenomenon;
#: bad-sector failures are wear-out events that need hundreds of hours of
#: accumulation, so their early share is small.  The mixture-weighted
#: average stays at ~0.47, preserving the Figure 1 histogram shape.
_EARLY_FAILURE_FRACTION = {
    FailureMode.LOGICAL: 0.55,
    FailureMode.BAD_SECTOR: 0.10,
    FailureMode.HEAD: 0.40,
}

#: Share of good drives whose profiles span the full 7-day window.
_FULL_GOOD_PROFILE_FRACTION = 0.8


@dataclass(frozen=True, slots=True)
class FleetResult:
    """Output of a fleet simulation.

    ``true_modes`` maps each serial to its ground-truth failure mode
    (including :attr:`FailureMode.GOOD` for surviving drives).
    """

    dataset: DiskDataset
    true_modes: dict[str, FailureMode]
    config: FleetConfig

    def failed_serials(self, mode: FailureMode | None = None) -> list[str]:
        """Serials of failed drives, optionally filtered to one mode."""
        return [
            serial for serial, true_mode in self.true_modes.items()
            if true_mode.is_failure and (mode is None or true_mode is mode)
        ]


@dataclass(frozen=True, slots=True)
class _DriveTask:
    """Picklable per-drive worker for the simulation fan-out."""

    config: FleetConfig

    def __call__(self, spec: DriveSpec):
        return simulate_drive(spec, self.config)


class FleetSimulator:
    """Deterministic simulator for one fleet configuration.

    ``n_jobs`` fans the per-drive simulation out over a worker pool
    (``0`` = one per available CPU).  Every drive draws from its own
    ``child_rng(seed, serial, ...)`` stream and results merge back in
    schedule order, so the fleet is bit-identical for any job count.
    """

    def __init__(self, config: FleetConfig,
                 observer: PipelineObserver | None = None, *,
                 n_jobs: int = 1,
                 parallel_backend: str = "process") -> None:
        self._config = config
        self._observer = resolve_observer(observer)
        self._parallel = ParallelConfig(n_jobs=n_jobs,
                                        backend=parallel_backend)

    @property
    def config(self) -> FleetConfig:
        return self._config

    def thermal_hazard_factor(self) -> float:
        """Multiplier on the logical-failure hazard from the inlet temp."""
        config = self._config
        return float(np.exp(
            config.thermal_failure_sensitivity
            * (config.inlet_temperature_c - config.reference_inlet_c)
        ))

    def build_specs(self) -> list[DriveSpec]:
        """Construct the population schedule without simulating."""
        config = self._config
        rng = child_rng(config.seed, "fleet", "schedule")
        specs: list[DriveSpec] = []

        modes = self._failure_mode_assignment(rng)
        for index, mode in enumerate(modes):
            serial = f"{config.drive_model}-F{index:05d}"
            failure_hour = self._sample_failure_hour(rng, mode)
            start = max(0, failure_hour - (config.failed_observation_hours - 1))
            specs.append(
                DriveSpec(
                    serial=serial,
                    mode=mode,
                    start_hour=start,
                    n_samples=failure_hour - start + 1,
                    failure_hour=failure_hour,
                )
            )

        n_good = config.n_drives - len(modes)
        for index in range(n_good):
            serial = f"{config.drive_model}-G{index:05d}"
            if rng.random() < _FULL_GOOD_PROFILE_FRACTION:
                length = config.good_observation_hours
            else:
                length = int(rng.integers(24, config.good_observation_hours + 1))
            start = int(rng.integers(0, config.period_hours - length + 1))
            specs.append(
                DriveSpec(
                    serial=serial,
                    mode=FailureMode.GOOD,
                    start_hour=start,
                    n_samples=length,
                )
            )
        return specs

    def run(self) -> FleetResult:
        """Simulate every drive and return the labeled dataset."""
        obs = self._observer
        with obs.span("simulate-fleet", n_drives=self._config.n_drives,
                      seed=self._config.seed):
            specs = self.build_specs()
            profiles = map_drives(_DriveTask(self._config), specs,
                                  self._parallel, observer=obs,
                                  label="simulate-drives")
            dataset = DiskDataset(profiles)
        obs.count("drives_simulated", len(specs))
        n_failed = sum(1 for spec in specs if spec.mode.is_failure)
        obs.event("fleet simulated", drives=len(specs), failed=n_failed)
        true_modes = {spec.serial: spec.mode for spec in specs}
        return FleetResult(dataset=dataset, true_modes=true_modes,
                           config=self._config)

    def _failure_mode_assignment(self, rng: np.random.Generator) -> list[FailureMode]:
        """Deterministic largest-remainder allocation of the mode mixture.

        The logical-failure weight is scaled by the thermal hazard
        factor, and the total failure count with it, so a hotter room
        produces more failures — almost all of them logical.
        """
        config = self._config
        factor = self.thermal_hazard_factor()
        base = config.mode_mixture.as_tuple()
        weights = (base[0] * factor, base[1], base[2])
        scale = sum(weights)
        n_failed = max(1, round(config.n_drives * config.failure_rate * scale))
        n_failed = min(n_failed, config.n_drives - 1)
        fractions = tuple(weight / scale for weight in weights)
        modes = (FailureMode.LOGICAL, FailureMode.BAD_SECTOR, FailureMode.HEAD)
        exact = [fraction * n_failed for fraction in fractions]
        counts = [int(np.floor(value)) for value in exact]
        remainders = [value - count for value, count in zip(exact, counts)]
        while sum(counts) < n_failed:
            best = int(np.argmax(remainders))
            counts[best] += 1
            remainders[best] = -1.0
        assignment = [
            mode for mode, count in zip(modes, counts) for _ in range(count)
        ]
        rng.shuffle(assignment)
        return assignment

    def _sample_failure_hour(self, rng: np.random.Generator,
                             mode: FailureMode) -> int:
        """Failure time: infant-mortality excess plus a constant hazard."""
        config = self._config
        horizon = config.failed_observation_hours
        if rng.random() < _EARLY_FAILURE_FRACTION[mode]:
            return int(rng.integers(24, horizon))
        return int(rng.integers(horizon, config.period_hours))


def simulate_fleet(config: FleetConfig | None = None,
                   observer: PipelineObserver | None = None, *,
                   n_jobs: int = 1) -> FleetResult:
    """Simulate a fleet with ``config`` (default configuration if omitted).

    ``n_jobs`` parallelizes the per-drive simulation; the result is
    bit-identical for any job count.
    """
    return FleetSimulator(config if config is not None else FleetConfig(),
                          observer=observer, n_jobs=n_jobs).run()
