"""Assembly of one simulated drive.

:func:`simulate_drive` wires the component models, workload, thermal
environment, sector pool and (for failed drives) a failure-mode stress
process into the hourly SMART profile the collection agent would record:
vendor health values for the first eight Table I attributes, raw counters
for R-RSC and R-CPSC, and the environmental POH / TC health values.

All per-drive randomness is derived from the fleet seed and the drive
serial, so profiles are reproducible individually and independent across
drives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from repro.errors import SimulationError
from repro.sim.components import HeadAssembly, MediaSurface, SpindleMotor
from repro.sim.config import FleetConfig
from repro.sim.environment import PowerOnClock, ThermalEnvironment
from repro.sim.failure_modes import (
    COUNTER_CHANNELS,
    RATE_CHANNELS,
    FailureMode,
    ModeProfile,
    cumulative_ramp_increments,
    mode_profile,
    ramp_progress,
)
from repro.sim.rng import child_rng
from repro.sim.sectors import SectorPool
from repro.sim.workload import WorkloadGenerator
from repro.smart.profile import HealthProfile

# Health-curve scales: the raw quantity at which the vendor health value
# bottoms out.  Linear curves keep the ramp shapes measurable in the
# recorded values.  Rate attributes are measured per million operations —
# like real firmware — so the health value tracks the underlying error
# probability rather than the hour-to-hour workload volume.
_RRER_SCALE = 4000.0       # raw read errors per million reads
_HER_SCALE = 4000.0        # ECC-recovered errors per million reads
_SER_SCALE = 10.0          # smoothed seek errors per hour
_SER_EWMA_ALPHA = 0.05     # firmware reports SER as a running rate
_RUE_SCALE = 300.0         # cumulative uncorrectable errors
_HFW_SCALE = 300.0         # cumulative high-fly writes
_CPSC_SCALE = 200.0        # currently pending sectors
_SUT_BASE_MS = 3000.0      # spin-up time floor
_SUT_SCALE_MS = 20000.0    # spin-up span to the worst health value

# Episodic symptom bursts: short error spikes that precede (and
# intersperse) the terminal window of logical and head failures, producing
# the pre-failure fluctuation visible in the paper's Figures 7(a)/7(c).
_BURST_PROBABILITY = {
    FailureMode.LOGICAL: 1.0 / 30.0,
    FailureMode.HEAD: 1.0 / 40.0,
}
_BURST_LOG_MEDIAN = np.log(400.0)
_BURST_LOG_SIGMA = 0.8


@dataclass(frozen=True, slots=True)
class DriveSpec:
    """Identity and schedule of one drive in the fleet.

    ``failure_hour`` is ``None`` for good drives; for failed drives it is
    the absolute hour of the failure event (the profile's final sample).
    ``start_hour``/``n_samples`` define the recorded observation window.
    """

    serial: str
    mode: FailureMode
    start_hour: int
    n_samples: int
    failure_hour: int | None = None

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise SimulationError(f"{self.serial}: n_samples must be positive")
        if self.start_hour < 0:
            raise SimulationError(f"{self.serial}: start_hour must be >= 0")
        if self.mode.is_failure:
            if self.failure_hour is None:
                raise SimulationError(
                    f"{self.serial}: failed drives need a failure_hour"
                )
            if self.failure_hour != self.start_hour + self.n_samples - 1:
                raise SimulationError(
                    f"{self.serial}: failure_hour must be the final sample"
                )
        elif self.failure_hour is not None:
            raise SimulationError(
                f"{self.serial}: good drives cannot have a failure_hour"
            )

    @property
    def hours(self) -> np.ndarray:
        return np.arange(self.start_hour, self.start_hour + self.n_samples,
                         dtype=np.int64)


def simulate_drive(spec: DriveSpec, config: FleetConfig) -> HealthProfile:
    """Produce the hourly SMART profile of one drive."""
    profile = mode_profile(spec.mode, config)
    hours = spec.hours

    rng_components = child_rng(config.seed, spec.serial, "components")
    rng_workload = child_rng(config.seed, spec.serial, "workload")
    rng_thermal = child_rng(config.seed, spec.serial, "thermal")
    rng_mode = child_rng(config.seed, spec.serial, "mode")
    rng_events = child_rng(config.seed, spec.serial, "events")

    media = MediaSurface.sample(rng_components)
    heads = HeadAssembly.sample(rng_components)
    spindle = SpindleMotor.sample(rng_components)
    environment = ThermalEnvironment.sample(
        config, rng_thermal, mode_offset_c=profile.temp_offset_c
    )
    clock = PowerOnClock.sample(config, rng_thermal, age_bias=profile.age_bias)
    workload = WorkloadGenerator(config).generate(hours, rng_workload)

    stresses, pre_window_mass = _stress_schedule(spec, profile, hours, rng_mode)

    # --- error events ------------------------------------------------
    read_error_rate = media.read_error_rate(
        workload.read_ops, stresses["media_error"]
    )
    read_errors = _poisson(rng_events, read_error_rate)
    recovered = _poisson(
        rng_events, read_error_rate * media.ecc_recovery_fraction
    )
    seek_errors = _poisson(
        rng_events,
        heads.seek_error_rate(workload.read_ops + workload.write_ops,
                              stresses["seek"]),
    )
    high_fly = _poisson(
        rng_events, heads.high_fly_rate(workload.write_ops, stresses["high_fly"])
    )
    write_errors = (
        _poisson(rng_events,
                 heads.write_error_rate(workload.write_ops, np.ones_like(hours,
                                                                         dtype=np.float64))
                 * stresses["write_error_chronic"])
        + stresses["write_error_extra"]
    )
    scan_detections = (
        _poisson(rng_events,
                 np.full(hours.shape[0], 1.0e-3)
                 * stresses["scan_detect_chronic"])
        + stresses["scan_detect_extra"]
    )

    # Degradation that began before the observation period warm-starts
    # the sector pool: the pending population sits at its steady state for
    # the first-sample arrival rate, and the escalated share of the
    # pre-observation scan detections is already on the RUE counter.
    pool = SectorPool(spare_sectors=config.spare_sectors)
    scan_pre_mass = pre_window_mass.get("scan_detect", 0.0)
    turnover = pool.recover_prob + pool.uncorrectable_prob
    initial_pending = min(scan_pre_mass,
                          float(scan_detections[0]) / max(turnover, 1.0e-9))
    escalated_fraction = pool.uncorrectable_prob / max(turnover, 1.0e-9)
    initial_uncorrectable = (scan_pre_mass - initial_pending) * escalated_fraction
    sectors = pool.simulate(
        write_errors, scan_detections,
        initial_reallocated=(profile.sample_initial_reallocated(rng_mode)
                             + pre_window_mass.get("write_error", 0.0)),
        initial_pending=initial_pending,
        initial_uncorrectable=initial_uncorrectable,
    )

    # --- physical series ----------------------------------------------
    temperature = environment.temperature_series(workload.utilization,
                                                 rng_thermal)
    spin_up_ms = spindle.spin_up_series(
        clock.raw_series(hours), temperature, stresses["spin_up"], rng_events
    )

    # --- recorded SMART values, Table I order --------------------------
    reallocated = np.floor(sectors.reallocated)
    pending = np.round(np.maximum(sectors.pending, 0.0))
    uncorrectable = np.floor(sectors.uncorrectable)
    cumulative_high_fly = np.cumsum(high_fly)

    read_errors_per_mread = read_errors / workload.read_ops * 1.0e6
    recovered_per_mread = recovered / workload.read_ops * 1.0e6

    columns = [
        _health(read_errors_per_mread, _RRER_SCALE),       # RRER
        _health(reallocated, float(config.spare_sectors)),  # RSC
        _health(_ewma(seek_errors, _SER_EWMA_ALPHA), _SER_SCALE),  # SER
        _health(uncorrectable, _RUE_SCALE),                # RUE
        _health(cumulative_high_fly, _HFW_SCALE),          # HFW
        _health(recovered_per_mread, _HER_SCALE),          # HER
        _health(pending, _CPSC_SCALE),                     # CPSC
        _health(spin_up_ms - _SUT_BASE_MS, _SUT_SCALE_MS),  # SUT
        reallocated,                                       # R-RSC (raw)
        pending,                                           # R-CPSC (raw)
        clock.health_series(hours),                        # POH
        np.maximum(1.0, np.round(100.0 - temperature)),    # TC
    ]
    matrix = np.column_stack(columns)
    if config.sample_loss_rate > 0.0:
        hours, matrix = _drop_lost_samples(spec, config, hours, matrix)
    return HealthProfile(
        serial=spec.serial,
        hours=hours,
        matrix=matrix,
        failed=spec.mode.is_failure,
    )


def _drop_lost_samples(spec: DriveSpec, config: FleetConfig,
                       hours: np.ndarray,
                       matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Simulate collection losses: random samples never reach the agent.

    The final record always survives (for failed drives it is the
    failure record that defines the drive's label), as does at least one
    earlier record so every profile keeps a time axis.
    """
    rng = child_rng(config.seed, spec.serial, "sampling")
    keep = rng.random(hours.shape[0]) >= config.sample_loss_rate
    keep[-1] = True
    if keep.sum() < 2:
        keep[0] = True
    return hours[keep], matrix[keep]


def _stress_schedule(spec: DriveSpec, profile: ModeProfile, hours: np.ndarray,
                     rng: np.random.Generator,
                     ) -> tuple[dict[str, np.ndarray], dict[str, float]]:
    """Build per-channel stress series for one drive.

    Rate channels get a multiplier series (chronic level, episodic bursts
    and the in-window ramp); counter channels get a chronic multiplier
    series plus an explicit array of extra events injected by the ramp.
    The second return value maps counter channels to the event mass their
    ramps injected before the profile's first sample (for pool warm-up).
    """
    n_samples = hours.shape[0]
    ones = np.ones(n_samples, dtype=np.float64)
    chronic = profile.sample_chronic(rng)

    stresses: dict[str, np.ndarray] = {}
    pre_window_mass: dict[str, float] = {}
    for channel in RATE_CHANNELS:
        stresses[channel] = ones * chronic.get(channel, 1.0)
    for channel in COUNTER_CHANNELS:
        stresses[f"{channel}_chronic"] = ones * chronic.get(channel, 1.0)
        stresses[f"{channel}_extra"] = np.zeros(n_samples, dtype=np.float64)

    if not spec.mode.is_failure:
        return stresses, pre_window_mass

    assert spec.failure_hour is not None
    hours_before_failure = (spec.failure_hour - hours).astype(np.float64)
    window = profile.sample_window(rng)
    progress = ramp_progress(hours_before_failure, window, profile.exponent)

    for ramp in profile.ramps:
        strength = ramp.sample_strength(rng)
        if ramp.channel in RATE_CHANNELS:
            stresses[ramp.channel] = stresses[ramp.channel] + strength * progress
        else:
            increments, pre_mass = cumulative_ramp_increments(
                hours_before_failure, window, profile.exponent, strength
            )
            stresses[f"{ramp.channel}_extra"] += increments
            pre_window_mass[ramp.channel] = (
                pre_window_mass.get(ramp.channel, 0.0) + pre_mass
            )

    burst_probability = _BURST_PROBABILITY.get(spec.mode)
    if burst_probability is not None:
        # Symptom bursts only outside the terminal window: inside it the
        # ramp must stay monotone for the degradation to be extractable.
        outside = hours_before_failure > window
        active = (rng.random(n_samples) < burst_probability) & outside
        magnitudes = rng.lognormal(_BURST_LOG_MEDIAN, _BURST_LOG_SIGMA,
                                   size=n_samples)
        stresses["media_error"] = stresses["media_error"] + np.where(
            active, magnitudes, 0.0
        )
    return stresses, pre_window_mass


def _health(raw: np.ndarray, scale: float) -> np.ndarray:
    """Linear vendor health curve: 100 at raw zero, 1 at ``scale`` or more."""
    fraction = np.clip(np.asarray(raw, dtype=np.float64) / scale, 0.0, 1.0)
    return np.maximum(1.0, np.round(100.0 * (1.0 - fraction)))


def _poisson(rng: np.random.Generator, rate: np.ndarray) -> np.ndarray:
    """Poisson event counts with a guard against negative rates."""
    return rng.poisson(np.maximum(rate, 0.0)).astype(np.float64)


def _ewma(series: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially-weighted running rate, as drive firmware reports it.

    Sparse error events (seek errors occur well under once per hour) would
    otherwise make the health value jump a full quantum on every single
    event; the running rate matches how vendors actually derive rate-type
    health values from event streams.
    """
    return lfilter([alpha], [1.0, -(1.0 - alpha)], series)
