"""Physical component models of a simulated drive.

Each component owns the per-operation event probabilities that feed the
SMART counters: the media surface produces read errors (raw read error
rate, hardware-ECC recoveries), the head assembly produces seek errors and
high-fly writes, and the spindle motor determines spin-up time.  Component
parameters are drawn per drive so the fleet shows realistic unit-to-unit
spread even among good drives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class MediaSurface:
    """Magnetic media: source of read errors.

    ``read_error_prob`` is the per-read probability of a raw read error;
    ``ecc_recovery_fraction`` of those are recovered by hardware ECC and
    show up in the HER counter instead of escalating.
    """

    read_error_prob: float
    ecc_recovery_fraction: float

    @classmethod
    def sample(cls, rng: np.random.Generator) -> "MediaSurface":
        prob = rng.lognormal(mean=np.log(1.0e-6), sigma=0.4)
        recovery = rng.uniform(0.90, 0.99)
        return cls(read_error_prob=float(prob),
                   ecc_recovery_fraction=float(recovery))

    def read_error_rate(self, read_ops: np.ndarray,
                        stress: np.ndarray) -> np.ndarray:
        """Expected raw read errors per hour under a stress multiplier."""
        return read_ops * self.read_error_prob * stress

    def ecc_recovered_rate(self, read_error_rate: np.ndarray) -> np.ndarray:
        """Expected ECC-recovered errors per hour."""
        return read_error_rate * self.ecc_recovery_fraction


@dataclass(frozen=True, slots=True)
class HeadAssembly:
    """Read/write heads: source of seek errors, high-fly writes and
    (through degraded writes) sector reallocations."""

    seek_error_prob: float
    high_fly_prob: float
    write_error_prob: float

    @classmethod
    def sample(cls, rng: np.random.Generator) -> "HeadAssembly":
        seek = rng.lognormal(mean=np.log(3.0e-8), sigma=0.4)
        high_fly = rng.lognormal(mean=np.log(1.0e-8), sigma=0.5)
        write = rng.lognormal(mean=np.log(2.0e-9), sigma=0.5)
        return cls(seek_error_prob=float(seek),
                   high_fly_prob=float(high_fly),
                   write_error_prob=float(write))

    def seek_error_rate(self, total_ops: np.ndarray,
                        stress: np.ndarray) -> np.ndarray:
        """Expected seek errors per hour."""
        return total_ops * self.seek_error_prob * stress

    def high_fly_rate(self, write_ops: np.ndarray,
                      stress: np.ndarray) -> np.ndarray:
        """Expected high-fly writes per hour."""
        return write_ops * self.high_fly_prob * stress

    def write_error_rate(self, write_ops: np.ndarray,
                         stress: np.ndarray) -> np.ndarray:
        """Expected unrecoverable write errors per hour (reallocations)."""
        return write_ops * self.write_error_prob * stress


@dataclass(frozen=True, slots=True)
class SpindleMotor:
    """Spindle and bearings: determine spin-up time.

    Spin-up time grows with bearing wear (a function of drive age) and
    with operating temperature, and carries per-measurement jitter.
    """

    base_spin_up_ms: float
    wear_ms_per_khour: float
    thermal_ms_per_c: float
    jitter_ms: float

    @classmethod
    def sample(cls, rng: np.random.Generator) -> "SpindleMotor":
        return cls(
            base_spin_up_ms=float(rng.normal(4000.0, 250.0)),
            wear_ms_per_khour=float(rng.lognormal(np.log(18.0), 0.4)),
            thermal_ms_per_c=float(rng.normal(22.0, 4.0)),
            jitter_ms=float(rng.uniform(30.0, 80.0)),
        )

    def spin_up_series(self, age_hours: np.ndarray, temperature_c: np.ndarray,
                       stress: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
        """Spin-up time (ms) at each sample."""
        wear = self.wear_ms_per_khour * age_hours / 1000.0
        thermal = self.thermal_ms_per_c * (temperature_c - 24.0)
        jitter = rng.normal(0.0, self.jitter_ms, size=age_hours.shape[0])
        return (self.base_spin_up_ms + wear + thermal) * stress + jitter
