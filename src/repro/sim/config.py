"""Configuration of the simulated fleet.

All knobs of the simulator live in :class:`FleetConfig`; the defaults are
calibrated so that the paper's analysis pipeline reproduces the published
shapes (group mix, degradation-window ranges, attribute manifestations) on
a fleet scaled down from the original 23,395 drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

#: Fleet size and failure count of the studied data center, for reference
#: and for full-scale runs.
PAPER_FLEET_SIZE = 23395
PAPER_FAILED_DRIVES = 433
PAPER_FAILURE_RATE = PAPER_FAILED_DRIVES / PAPER_FLEET_SIZE


@dataclass(frozen=True, slots=True)
class ModeMixture:
    """Population mix of the three failure modes among failed drives.

    Defaults are the paper's observed split: 59.6% logical, 7.6%
    bad-sector and 32.8% read/write-head failures.
    """

    logical: float = 0.596
    bad_sector: float = 0.076
    head: float = 0.328

    def __post_init__(self) -> None:
        total = self.logical + self.bad_sector + self.head
        if not 0.999 <= total <= 1.001:
            raise SimulationError(
                f"failure-mode mixture must sum to 1, got {total:.4f}"
            )
        if min(self.logical, self.bad_sector, self.head) < 0:
            raise SimulationError("failure-mode fractions must be non-negative")

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.logical, self.bad_sector, self.head)


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """All parameters of a simulated fleet.

    The simulator is deterministic given a config: the same instance
    always produces the same dataset.
    """

    # Population ------------------------------------------------------
    n_drives: int = 4000
    failure_rate: float = PAPER_FAILURE_RATE
    mode_mixture: ModeMixture = field(default_factory=ModeMixture)
    seed: int = 20150301
    drive_model: str = "RP-2015E"

    # Collection policy (paper Section III) ---------------------------
    period_hours: int = 1344            # eight weeks of hourly sampling
    failed_observation_hours: int = 480  # 20-day pre-failure profile
    good_observation_hours: int = 168    # up to 7-day good-drive profile
    # Probability that any individual sample is lost by the collection
    # agent ("Some failed drives might lose a number of samples" — the
    # paper).  The failure record itself is never lost.
    sample_loss_rate: float = 0.0

    # Sector pool ------------------------------------------------------
    total_sectors: int = 976_773_168     # a 500 GB-class drive
    spare_sectors: int = 4096

    # Workload ---------------------------------------------------------
    mean_read_ops_per_hour: float = 360_000.0
    mean_write_ops_per_hour: float = 144_000.0
    diurnal_amplitude: float = 0.25      # fraction of the mean
    workload_noise: float = 0.10         # lognormal sigma of hourly jitter
    # Optional trace-driven load: per-hour demand factors replayed
    # cyclically in place of the synthetic diurnal sine (factor 1.0 = the
    # configured mean).  Lets real utilization traces drive the fleet.
    workload_trace: tuple[float, ...] | None = None

    # Thermal environment -----------------------------------------------
    inlet_temperature_c: float = 24.0
    inlet_temperature_std: float = 0.8
    rack_offset_std_c: float = 2.5       # per-drive placement effect
    activity_heating_c: float = 5.0      # added at full utilization
    temperature_noise_c: float = 0.4

    # Drive age (power-on hours at the start of collection) -------------
    median_age_hours: float = 17_520.0   # two years
    age_sigma: float = 0.6               # lognormal sigma
    poh_health_step_hours: float = 876.0  # health value drops 1 per step

    # Degradation-window ranges per failure mode (inclusive, hours).
    # Bad-sector windows exceed the 20-day observation period on purpose:
    # sector wear-out starts long before the drive is condemned, so the
    # recorded profile captures a (truncated) monotone stretch spanning
    # essentially the whole observation — the paper's Figure 7(b).
    logical_window: tuple[int, int] = (2, 12)
    bad_sector_window: tuple[int, int] = (500, 900)
    head_window: tuple[int, int] = (10, 24)

    # Ramp exponents: displacement from the failure state follows
    # (t / d) ** exponent inside the degradation window, producing the
    # paper's quadratic / linear / cubic signatures.
    logical_exponent: float = 2.0
    bad_sector_exponent: float = 1.0
    head_exponent: float = 3.0

    # Logical failures run hot (paper Section V-A).
    logical_temp_offset_c: float = 9.0
    bad_sector_temp_offset_c: float = 3.0
    head_temp_offset_c: float = 1.5

    # Causal thermal model: the logical-failure hazard grows by this
    # fraction per degree of inlet temperature above the 24 C reference
    # (Arrhenius-like; cf. Sankar et al. on temperature and drive
    # failures).  At the reference inlet the configured mixture and
    # failure rate hold exactly; cooling the room reduces logical
    # failures — the intervention the paper's Section V-A recommends.
    thermal_failure_sensitivity: float = 0.09
    reference_inlet_c: float = 24.0

    def __post_init__(self) -> None:
        if self.n_drives <= 0:
            raise SimulationError("n_drives must be positive")
        if not 0.0 < self.failure_rate < 1.0:
            raise SimulationError("failure_rate must lie in (0, 1)")
        if self.period_hours <= 24:
            raise SimulationError("period_hours must exceed one day")
        if self.failed_observation_hours <= 0 or self.good_observation_hours <= 0:
            raise SimulationError("observation windows must be positive")
        if self.spare_sectors <= 0 or self.total_sectors <= self.spare_sectors:
            raise SimulationError("sector pool sizes are inconsistent")
        if not 0.0 <= self.sample_loss_rate < 1.0:
            raise SimulationError("sample_loss_rate must lie in [0, 1)")
        if self.workload_trace is not None:
            if len(self.workload_trace) == 0:
                raise SimulationError("workload_trace cannot be empty")
            if any(factor < 0 for factor in self.workload_trace):
                raise SimulationError("workload_trace factors must be >= 0")
        for name, window in (
            ("logical_window", self.logical_window),
            ("bad_sector_window", self.bad_sector_window),
            ("head_window", self.head_window),
        ):
            low, high = window
            if not 0 < low <= high:
                raise SimulationError(f"{name} must satisfy 0 < low <= high")

    @property
    def n_failed(self) -> int:
        """Number of failed drives implied by the failure rate."""
        return max(1, round(self.n_drives * self.failure_rate))

    @property
    def n_good(self) -> int:
        return self.n_drives - self.n_failed

    @classmethod
    def paper_scale(cls, seed: int = 20150301) -> "FleetConfig":
        """Return a configuration at the paper's full fleet size."""
        return cls(n_drives=PAPER_FLEET_SIZE, seed=seed)

    @classmethod
    def small(cls, seed: int = 20150301) -> "FleetConfig":
        """Return a small configuration suitable for unit tests."""
        return cls(n_drives=400, seed=seed)

    @classmethod
    def backup_system(cls, n_drives: int = 4000,
                      seed: int = 20150301) -> "FleetConfig":
        """A dedicated backup-storage fleet, after Ma et al. (FAST'15).

        The paper contrasts its mixed-workload data center with "dedicated
        backup storage systems where bad sector failures dominate": heavy
        sequential writes wear the media, few head or logical failures.
        Used by the generalization experiment to show the characterization
        approach transfers to a different storage system.
        """
        return cls(
            n_drives=n_drives,
            seed=seed,
            mode_mixture=ModeMixture(logical=0.15, bad_sector=0.60,
                                     head=0.25),
            mean_write_ops_per_hour=360_000.0,  # write-heavy backup load
            mean_read_ops_per_hour=144_000.0,
            failure_rate=0.028,                 # higher wear-out rate
        )
