"""Sector-pool dynamics: pending, reallocated and uncorrectable sectors.

This module models the error flow the paper describes in Section II-A:

* detected **write errors** are retried and, on persistent failure, the
  sector is remapped to the spare pool — reallocation "only occurs on
  detected write errors" and is bounded by the few-thousand-sector spare
  pool;
* the background **disk scan** marks unstable sectors as *pending*;
* pending sectors are either recovered by the built-in ECC or, when
  recovery fails, escalate to **uncorrectable errors**.

Pending sectors follow the AR(1) recursion

``pending[t] = retention * pending[t-1] + detections[t]``

with ``retention = 1 - recover_prob - uncorrectable_prob``; the recursion
is evaluated with :func:`scipy.signal.lfilter`, so simulating a profile is
vectorized over its full length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class SectorPoolHistory:
    """Cumulative sector-health counters over one profile."""

    pending: np.ndarray         # currently pending sectors per hour
    reallocated: np.ndarray     # cumulative reallocated sectors per hour
    uncorrectable: np.ndarray   # cumulative uncorrectable errors per hour


@dataclass(frozen=True, slots=True)
class SectorPool:
    """Spare-pool bookkeeping of one drive.

    Parameters
    ----------
    spare_sectors:
        Size of the spare pool; cumulative reallocations saturate here
        (a drive that exhausts its spares can no longer remap writes).
    recover_prob:
        Per-hour probability that a pending sector is recovered by ECC.
    uncorrectable_prob:
        Per-hour probability that a pending sector escalates to an
        uncorrectable error.

    The default resolution rates are slow (a pending sector lingers for
    roughly a day), matching how background scans revisit sectors, and
    keeping the pending population a smooth function of the arrival rate.
    """

    spare_sectors: int
    recover_prob: float = 0.020
    uncorrectable_prob: float = 0.015

    def __post_init__(self) -> None:
        if self.spare_sectors <= 0:
            raise SimulationError("spare_sectors must be positive")
        if not 0.0 <= self.recover_prob <= 1.0:
            raise SimulationError("recover_prob must lie in [0, 1]")
        if not 0.0 <= self.uncorrectable_prob <= 1.0:
            raise SimulationError("uncorrectable_prob must lie in [0, 1]")
        if self.recover_prob + self.uncorrectable_prob > 1.0:
            raise SimulationError(
                "recover_prob + uncorrectable_prob must not exceed 1"
            )

    @property
    def retention(self) -> float:
        """Fraction of pending sectors that stay pending each hour."""
        return 1.0 - self.recover_prob - self.uncorrectable_prob

    def simulate(self, write_errors: np.ndarray,
                 scan_detections: np.ndarray, *,
                 initial_reallocated: float = 0.0,
                 initial_pending: float = 0.0,
                 initial_uncorrectable: float = 0.0) -> SectorPoolHistory:
        """Evolve the pool over a profile.

        Parameters
        ----------
        write_errors:
            Unrecoverable write errors per hour (each triggers one
            reallocation while spares remain).
        scan_detections:
            Unstable sectors flagged by the background scan per hour.
        initial_reallocated:
            Sectors already remapped before the profile's first sample
            (the drive's lifetime accumulation).
        initial_pending, initial_uncorrectable:
            Warm-start state for degradation processes that began before
            the observation period: sectors pending at the first sample
            and uncorrectable errors already reported.
        """
        if min(initial_reallocated, initial_pending,
               initial_uncorrectable) < 0:
            raise SimulationError("initial pool state must be non-negative")
        write_errors = np.asarray(write_errors, dtype=np.float64)
        scan_detections = np.asarray(scan_detections, dtype=np.float64)
        if write_errors.shape != scan_detections.shape:
            raise SimulationError(
                "write_errors and scan_detections must align"
            )
        if np.any(write_errors < 0) or np.any(scan_detections < 0):
            raise SimulationError("event counts must be non-negative")

        pending, _ = lfilter(
            [1.0], [1.0, -self.retention], scan_detections,
            zi=np.asarray([self.retention * initial_pending]),
        )
        # Sectors leaving the pending state this hour, split between
        # recovery and escalation; the carried-over pending population is
        # last hour's.
        carried = np.concatenate(([initial_pending], pending[:-1]))
        uncorrectable = (initial_uncorrectable
                         + np.cumsum(self.uncorrectable_prob * carried))
        reallocated = np.minimum(
            initial_reallocated + np.cumsum(write_errors),
            float(self.spare_sectors),
        )
        return SectorPoolHistory(
            pending=pending,
            reallocated=reallocated,
            uncorrectable=uncorrectable,
        )
