"""Hourly I/O workload applied to simulated drives.

The studied storage system "experiences diverse workloads"; the simulator
models each drive's hourly read and write operation counts as a diurnal
sine pattern around a per-drive mean with lognormal jitter, which is the
standard shape for datacenter storage traffic and provides the activity
signal that feeds both the error processes (more operations, more chances
to fail) and the thermal model (more activity, more heat).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.config import FleetConfig


@dataclass(frozen=True, slots=True)
class HourlyWorkload:
    """Operation counts and utilization of one drive over its profile."""

    read_ops: np.ndarray
    write_ops: np.ndarray
    utilization: np.ndarray  # in [0, 1], drives the thermal model

    def __post_init__(self) -> None:
        if not (len(self.read_ops) == len(self.write_ops) == len(self.utilization)):
            raise SimulationError("workload series must have equal lengths")


class WorkloadGenerator:
    """Generate per-drive hourly workloads for a fleet configuration."""

    def __init__(self, config: FleetConfig) -> None:
        self._config = config

    def generate(self, hours: np.ndarray, rng: np.random.Generator) -> HourlyWorkload:
        """Return the workload of one drive over absolute ``hours``.

        Parameters
        ----------
        hours:
            Absolute sample timestamps (hours since collection start);
            the diurnal phase is derived from them so that truncated
            profiles stay aligned with the fleet-wide day/night cycle.
        rng:
            The drive's private random stream.
        """
        config = self._config
        hours = np.asarray(hours, dtype=np.float64)
        # Per-drive demand level: some drives serve hot data, some cold.
        demand = rng.lognormal(mean=0.0, sigma=0.35)
        if config.workload_trace is not None:
            # Trace-driven load: replay the per-hour demand factors
            # cyclically, aligned to absolute fleet time.
            trace = np.asarray(config.workload_trace, dtype=np.float64)
            diurnal = trace[hours.astype(np.int64) % trace.shape[0]]
        else:
            phase = rng.uniform(0.0, 2.0 * np.pi)
            diurnal = 1.0 + config.diurnal_amplitude * np.sin(
                2.0 * np.pi * (hours % 24) / 24.0 + phase
            )
        jitter = rng.lognormal(
            mean=0.0, sigma=config.workload_noise, size=hours.shape[0]
        )
        shape_factor = demand * diurnal * jitter
        read_ops = config.mean_read_ops_per_hour * shape_factor
        write_ops = config.mean_write_ops_per_hour * shape_factor
        # Utilization saturates: normalize against a busy-drive level.
        busy_level = (config.mean_read_ops_per_hour
                      + config.mean_write_ops_per_hour) * 2.0
        utilization = np.clip((read_ops + write_ops) / busy_level, 0.0, 1.0)
        return HourlyWorkload(
            read_ops=read_ops,
            write_ops=write_ops,
            utilization=utilization,
        )
