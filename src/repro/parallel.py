"""Deterministic fan-out of per-drive work across worker pools.

The characterization workload is embarrassingly parallel across drives:
each failed drive's distance series, degradation window and polynomial
fit depend on that drive alone, and each simulated drive draws from its
own ``child_rng(seed, serial, ...)`` stream.  :func:`map_drives` exploits
that shape while keeping the library's determinism guarantee:

* items are split into contiguous chunks and dispatched to a process or
  thread pool;
* results are merged back **in input order**, regardless of completion
  order, so ``map_drives(fn, items)`` returns exactly
  ``[fn(item) for item in items]`` for any ``n_jobs``;
* ``n_jobs=1`` short-circuits to a plain in-process loop — no executor,
  no pickling — so the serial path behaves exactly as before.

Backends
--------
``"process"`` (the default) sidesteps the GIL and suits the CPU-bound
signature/simulation stages; the mapped function and its items must be
picklable, which every profile, spec and params dataclass in this
library is.  ``"thread"`` avoids process start-up and pickling overhead
and suits NumPy-heavy callables that release the GIL, or tests that need
cheap concurrency.

Observers hold loggers and locks that must not cross process
boundaries, so the caller's observer itself never ships to workers.
Instead each worker exposes a process-local observer through
:func:`get_worker_observer`: mapped functions emit counters, gauges and
histogram observations into it, the worker returns its registry *delta*
alongside each chunk's results, and the parent merges the deltas into
the caller's registry in chunk-index order.  Serial and parallel runs
therefore report identical metric totals — ``n_jobs`` stays a pure
performance knob even for telemetry.  The caller's observer also sees
one span per fan-out with the chunk geometry in its attributes, plus
the ``parallel_chunks`` counter and ``parallel_jobs`` gauge.

Resilience
----------
A :class:`RetryPolicy` turns worker failure from fatal into recoverable:
each chunk gets a result deadline (``timeout_s``), failed or timed-out
chunks are retried in a *fresh* pool up to ``max_retries`` rounds with
exponential backoff, and — because the items themselves may be fine
even when the infrastructure is not — exhausted chunks fall back to
serial in-process re-execution (``serial_fallback``).  Results still
merge in input order, so a run that survived a crashed worker is
byte-identical to one that never crashed.  The default policy retries
nothing and keeps the original fail-fast semantics.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.errors import ParallelError, WorkerCrashError, WorkerTimeoutError
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import (
    NULL_OBSERVER,
    NoopObserver,
    PipelineObserver,
    resolve_observer,
)

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Supported executor backends.
BACKENDS = ("process", "thread")

#: Chunks dispatched per worker; >1 smooths imbalance between chunks
#: (some drives carry longer profiles than others) at the cost of a
#: little more dispatch overhead.
CHUNKS_PER_JOB = 4


def available_cpus() -> int:
    """CPUs this process may run on (affinity-aware, always >= 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def effective_jobs(n_jobs: int | None) -> int:
    """Resolve a job count: ``None``/``0`` means every available CPU."""
    if n_jobs is None or n_jobs == 0:
        return available_cpus()
    if n_jobs < 0:
        raise ParallelError(f"n_jobs must be >= 0, got {n_jobs}")
    return int(n_jobs)


def validate_backend(backend: str) -> str:
    """Check an executor backend name and return it unchanged.

    The single place the :data:`BACKENDS` contract is enforced — used
    by :class:`ParallelConfig` and by the serving daemon's shard layer,
    so both reject unknown backends with the same
    :class:`~repro.errors.ParallelError` message.
    """
    if backend not in BACKENDS:
        raise ParallelError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a fan-out behaves when workers fail.

    Parameters
    ----------
    max_retries:
        Pool rounds to retry failed chunks before giving up on the pool
        (``0`` = no pool retries, the historical fail-fast behavior).
    backoff_s:
        Base of the exponential backoff slept between retry rounds
        (``backoff_s * 2**round``); ``0`` retries immediately.
    timeout_s:
        Per-chunk result deadline, or ``None`` for no deadline.  A
        timed-out chunk counts as failed; its pool is abandoned (the
        stuck worker may never return) and survivors are retried in a
        fresh one.
    serial_fallback:
        After pool retries are exhausted, re-execute the failed chunks
        serially in-process.  This isolates infrastructure failure from
        data failure: if the items are fine the run completes with
        byte-identical results, and if an item genuinely raises, the
        exception propagates exactly as on the serial path.
    """

    max_retries: int = 0
    backoff_s: float = 0.1
    timeout_s: float | None = None
    serial_fallback: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParallelError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ParallelError(
                f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ParallelError(
                f"timeout_s must be positive, got {self.timeout_s}")

    @classmethod
    def resilient(cls, *, max_retries: int = 2,
                  timeout_s: float | None = None) -> "RetryPolicy":
        """The production preset: retry, back off, fall back to serial."""
        return cls(max_retries=max_retries, backoff_s=0.1,
                   timeout_s=timeout_s, serial_fallback=True)


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """How a fan-out runs.

    Parameters
    ----------
    n_jobs:
        Worker count; ``0`` means one per available CPU, ``1`` runs
        inline without an executor.
    backend:
        ``"process"`` or ``"thread"``.
    chunk_size:
        Items per dispatched chunk, or ``None`` to derive one from the
        item count (:func:`default_chunk_size`).
    retry:
        Worker-failure policy; the default retries nothing (failures
        propagate immediately, exactly as before).
    """

    n_jobs: int = 1
    backend: str = "process"
    chunk_size: int | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.n_jobs < 0:
            raise ParallelError(f"n_jobs must be >= 0, got {self.n_jobs}")
        validate_backend(self.backend)
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ParallelError("chunk_size must be at least 1")


def default_chunk_size(n_items: int, n_jobs: int) -> int:
    """Items per chunk targeting :data:`CHUNKS_PER_JOB` chunks per worker."""
    if n_items <= 0:
        return 1
    target_chunks = max(1, n_jobs * CHUNKS_PER_JOB)
    return max(1, -(-n_items // target_chunks))


def chunked(items: Sequence[_T], chunk_size: int) -> list[list[_T]]:
    """Split ``items`` into contiguous chunks of ``chunk_size``."""
    if chunk_size < 1:
        raise ParallelError("chunk_size must be at least 1")
    return [
        list(items[start:start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]


#: Per-thread slot holding the observer :func:`get_worker_observer`
#: hands out.  ``threading.local`` isolates thread-backend workers from
#: each other exactly as process isolation does for process workers.
_WORKER_TELEMETRY = threading.local()


class _WorkerTelemetry(NoopObserver):
    """Metrics-only observer capturing a worker's registry delta.

    Spans and events stay no-ops (they would need loggers and tracers
    that cannot cross the process boundary); counters, gauges and
    histogram observations land in a private registry whose
    ``dump_state()`` rides home with the chunk results.
    """

    __slots__ = ("metrics",)

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)


def get_worker_observer() -> PipelineObserver:
    """The observer a mapped function should emit telemetry through.

    Inside a :func:`map_drives` worker this is the chunk's capture
    observer (or the caller's own observer on the serial path), so
    counters survive the process boundary; anywhere else it is
    :data:`~repro.obs.observer.NULL_OBSERVER`, so mapped functions can
    call it unconditionally.
    """
    return getattr(_WORKER_TELEMETRY, "observer", NULL_OBSERVER)


@contextmanager
def _install_worker_observer(observer: PipelineObserver) -> Iterator[None]:
    """Install ``observer`` as this thread's worker observer."""
    previous = getattr(_WORKER_TELEMETRY, "observer", None)
    _WORKER_TELEMETRY.observer = observer
    try:
        yield
    finally:
        if previous is None:
            del _WORKER_TELEMETRY.observer
        else:
            _WORKER_TELEMETRY.observer = previous


def _run_chunk(fn: Callable[[_T], _R], chunk: list[_T],
               capture: bool = False,
               ) -> tuple[list[_R], dict[str, Any] | None]:
    """Worker body: apply ``fn`` to one chunk (module-level so process
    backends can pickle it).

    With ``capture`` a fresh :class:`_WorkerTelemetry` observer is
    installed for the chunk and its registry state returned alongside
    the results; without it the results ride with ``None`` and whatever
    observer is already installed (the caller's own, on serial paths)
    receives the emissions directly.
    """
    if not capture:
        return [fn(item) for item in chunk], None
    telemetry = _WorkerTelemetry()
    with _install_worker_observer(telemetry):
        results = [fn(item) for item in chunk]
    return results, telemetry.metrics.dump_state()


def map_drives(fn: Callable[[_T], _R], items: Iterable[_T],
               config: ParallelConfig | None = None, *,
               observer: PipelineObserver | None = None,
               label: str = "map-drives",
               initializer: Callable[..., None] | None = None,
               initargs: tuple[Any, ...] = ()) -> list[_R]:
    """Apply ``fn`` to every item, fanning out according to ``config``.

    Returns results in input order for every backend and job count —
    the ordered merge is what makes ``n_jobs`` a pure performance knob
    with no analytic effect.  Exceptions raised by ``fn`` propagate to
    the caller (the earliest-submitted failing chunk wins).

    ``initializer(*initargs)`` runs once in every worker before any
    chunk (and once inline on the serial path), so callers can replicate
    process-wide state — e.g. the experiment harness re-applies its
    fleet scale in each worker.  ``fn`` may emit metrics through
    :func:`get_worker_observer`; worker registry deltas merge back into
    ``observer``'s registry in chunk-index order, so serial and parallel
    runs report identical totals.  ``observer`` also receives a
    ``label`` span wrapping the whole fan-out with ``n_items`` /
    ``n_jobs`` / ``backend`` / ``n_chunks`` attributes.
    """
    cfg = config if config is not None else ParallelConfig()
    obs = resolve_observer(observer)
    materialized = list(items)
    if not materialized:
        return []
    jobs = min(effective_jobs(cfg.n_jobs), len(materialized))
    if jobs <= 1:
        if initializer is not None:
            initializer(*initargs)
        with obs.span(label, n_items=len(materialized), n_jobs=1,
                      backend="inline"), _install_worker_observer(obs):
            return [fn(item) for item in materialized]

    chunk_size = (cfg.chunk_size if cfg.chunk_size is not None
                  else default_chunk_size(len(materialized), jobs))
    chunks = chunked(materialized, chunk_size)
    executor_cls: Any = (ProcessPoolExecutor if cfg.backend == "process"
                         else ThreadPoolExecutor)
    registry = getattr(obs, "metrics", None)
    capture = isinstance(registry, MetricsRegistry)
    with obs.span(label, n_items=len(materialized), n_jobs=jobs,
                  backend=cfg.backend, n_chunks=len(chunks),
                  chunk_size=chunk_size):
        payloads = _execute_chunks(fn, chunks, executor_cls, jobs,
                                   cfg.retry, obs, capture=capture,
                                   initializer=initializer,
                                   initargs=initargs)
    if capture:
        # Chunk-index order makes the merge deterministic: counter sums
        # are order-free, but last-write-wins gauges need a fixed order.
        for _chunk_results, state in payloads:
            if state is not None:
                registry.merge_state(state)
    obs.count("parallel_chunks", len(chunks))
    obs.gauge("parallel_jobs", jobs)
    return [result
            for chunk_results, _state in payloads
            for result in chunk_results]


_ChunkPayload = tuple[list[Any], "dict[str, Any] | None"]


def _execute_chunks(fn: Callable[[_T], _R], chunks: list[list[_T]],
                    executor_cls: Any, jobs: int, policy: RetryPolicy,
                    obs: PipelineObserver, *, capture: bool,
                    initializer: Callable[..., None] | None,
                    initargs: tuple[Any, ...]) -> list[_ChunkPayload]:
    """Run every chunk through worker pools, retrying per ``policy``.

    Round 0 dispatches everything; each later round re-dispatches only
    the chunks that failed, in a fresh pool (a broken or timed-out pool
    cannot be trusted again).  Chunks still failing after
    ``policy.max_retries`` rounds either re-execute serially in-process
    (``serial_fallback``) or raise a typed error.  The per-chunk result
    slots keep the input-order merge intact whatever the retry history.
    """
    results: list[_ChunkPayload | None] = [None] * len(chunks)
    pending = list(range(len(chunks)))
    last_error: BaseException | None = None
    for round_no in range(policy.max_retries + 1):
        if round_no:
            obs.count("parallel_retries", len(pending))
            obs.event("retrying failed chunks", round=round_no,
                      chunks=len(pending))
            if policy.backoff_s:
                time.sleep(policy.backoff_s * 2 ** (round_no - 1))
        pending, last_error = _pool_round(
            fn, chunks, results, pending, executor_cls, jobs, policy, obs,
            capture=capture, initializer=initializer, initargs=initargs,
        )
        if not pending:
            return results  # type: ignore[return-value]
        if policy.max_retries == 0 and not policy.serial_fallback:
            # Fail-fast compatibility path: no retries requested, no
            # fallback — surface the failure exactly as it occurred.
            break
    if policy.serial_fallback:
        obs.count("parallel_serial_fallbacks", len(pending))
        obs.event("falling back to serial re-execution",
                  chunks=len(pending))
        if initializer is not None:
            initializer(*initargs)
        # Fallback chunks run in-process with the caller's observer
        # installed, so their telemetry lands directly (no capture).
        with _install_worker_observer(obs):
            for index in pending:
                results[index] = _run_chunk(fn, chunks[index])
        return results  # type: ignore[return-value]
    assert last_error is not None
    if isinstance(last_error, FuturesTimeoutError):
        raise WorkerTimeoutError(
            f"{len(pending)} chunk(s) exceeded the {policy.timeout_s}s "
            f"deadline after {policy.max_retries + 1} attempt(s)"
        ) from last_error
    if isinstance(last_error, BrokenProcessPool):
        raise WorkerCrashError(
            f"worker pool broke and {len(pending)} chunk(s) were still "
            f"unfinished after {policy.max_retries + 1} attempt(s)"
        ) from last_error
    raise last_error


def _pool_round(fn: Callable[[_T], _R], chunks: list[list[_T]],
                results: list[_ChunkPayload | None], pending: list[int],
                executor_cls: Any, jobs: int, policy: RetryPolicy,
                obs: PipelineObserver, *, capture: bool,
                initializer: Callable[..., None] | None,
                initargs: tuple[Any, ...],
                ) -> tuple[list[int], BaseException | None]:
    """One dispatch round; returns (still-failed chunk indices, last error)."""
    failed: list[int] = []
    last_error: BaseException | None = None
    pool = executor_cls(max_workers=min(jobs, len(pending)),
                        initializer=initializer, initargs=initargs)
    abandoned = False
    try:
        futures = {index: pool.submit(_run_chunk, fn, chunks[index], capture)
                   for index in pending}
        for index in pending:
            if abandoned:
                # The pool is gone (timeout or crash); drain what
                # already finished, fail the rest without blocking.
                future = futures[index]
                if future.done() and not future.exception():
                    results[index] = future.result()
                else:
                    failed.append(index)
                continue
            try:
                results[index] = futures[index].result(
                    timeout=policy.timeout_s)
            except FuturesTimeoutError as error:
                obs.count("parallel_timeouts")
                failed.append(index)
                last_error = error
                abandoned = True
            except BrokenProcessPool as error:
                obs.count("parallel_worker_crashes")
                failed.append(index)
                last_error = error
                abandoned = True
            except Exception as error:  # noqa: BLE001 — fn's own failure
                failed.append(index)
                last_error = error
    finally:
        # A timed-out pool may hold a stuck worker: do not block on it.
        pool.shutdown(wait=not abandoned, cancel_futures=True)
    return failed, last_error
