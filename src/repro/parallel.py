"""Deterministic fan-out of per-drive work across worker pools.

The characterization workload is embarrassingly parallel across drives:
each failed drive's distance series, degradation window and polynomial
fit depend on that drive alone, and each simulated drive draws from its
own ``child_rng(seed, serial, ...)`` stream.  :func:`map_drives` exploits
that shape while keeping the library's determinism guarantee:

* items are split into contiguous chunks and dispatched to a process or
  thread pool;
* results are merged back **in input order**, regardless of completion
  order, so ``map_drives(fn, items)`` returns exactly
  ``[fn(item) for item in items]`` for any ``n_jobs``;
* ``n_jobs=1`` short-circuits to a plain in-process loop — no executor,
  no pickling — so the serial path behaves exactly as before.

Backends
--------
``"process"`` (the default) sidesteps the GIL and suits the CPU-bound
signature/simulation stages; the mapped function and its items must be
picklable, which every profile, spec and params dataclass in this
library is.  ``"thread"`` avoids process start-up and pickling overhead
and suits NumPy-heavy callables that release the GIL, or tests that need
cheap concurrency.

Workers run uninstrumented (observers hold loggers and locks that must
not cross process boundaries); the caller's observer sees one span per
fan-out with the chunk geometry in its attributes, plus the
``parallel_chunks`` counter and ``parallel_jobs`` gauge.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ParallelError
from repro.obs.observer import PipelineObserver, resolve_observer

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Supported executor backends.
BACKENDS = ("process", "thread")

#: Chunks dispatched per worker; >1 smooths imbalance between chunks
#: (some drives carry longer profiles than others) at the cost of a
#: little more dispatch overhead.
CHUNKS_PER_JOB = 4


def available_cpus() -> int:
    """CPUs this process may run on (affinity-aware, always >= 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def effective_jobs(n_jobs: int | None) -> int:
    """Resolve a job count: ``None``/``0`` means every available CPU."""
    if n_jobs is None or n_jobs == 0:
        return available_cpus()
    if n_jobs < 0:
        raise ParallelError(f"n_jobs must be >= 0, got {n_jobs}")
    return int(n_jobs)


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """How a fan-out runs.

    Parameters
    ----------
    n_jobs:
        Worker count; ``0`` means one per available CPU, ``1`` runs
        inline without an executor.
    backend:
        ``"process"`` or ``"thread"``.
    chunk_size:
        Items per dispatched chunk, or ``None`` to derive one from the
        item count (:func:`default_chunk_size`).
    """

    n_jobs: int = 1
    backend: str = "process"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.n_jobs < 0:
            raise ParallelError(f"n_jobs must be >= 0, got {self.n_jobs}")
        if self.backend not in BACKENDS:
            raise ParallelError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ParallelError("chunk_size must be at least 1")


def default_chunk_size(n_items: int, n_jobs: int) -> int:
    """Items per chunk targeting :data:`CHUNKS_PER_JOB` chunks per worker."""
    if n_items <= 0:
        return 1
    target_chunks = max(1, n_jobs * CHUNKS_PER_JOB)
    return max(1, -(-n_items // target_chunks))


def chunked(items: Sequence[_T], chunk_size: int) -> list[list[_T]]:
    """Split ``items`` into contiguous chunks of ``chunk_size``."""
    if chunk_size < 1:
        raise ParallelError("chunk_size must be at least 1")
    return [
        list(items[start:start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]


def _run_chunk(fn: Callable[[_T], _R], chunk: list[_T]) -> list[_R]:
    """Worker body: apply ``fn`` to one chunk (module-level so process
    backends can pickle it)."""
    return [fn(item) for item in chunk]


def map_drives(fn: Callable[[_T], _R], items: Iterable[_T],
               config: ParallelConfig | None = None, *,
               observer: PipelineObserver | None = None,
               label: str = "map-drives",
               initializer: Callable[..., None] | None = None,
               initargs: tuple[Any, ...] = ()) -> list[_R]:
    """Apply ``fn`` to every item, fanning out according to ``config``.

    Returns results in input order for every backend and job count —
    the ordered merge is what makes ``n_jobs`` a pure performance knob
    with no analytic effect.  Exceptions raised by ``fn`` propagate to
    the caller (the earliest-submitted failing chunk wins).

    ``initializer(*initargs)`` runs once in every worker before any
    chunk (and once inline on the serial path), so callers can replicate
    process-wide state — e.g. the experiment harness re-applies its
    fleet scale in each worker.  ``fn`` itself runs uninstrumented in
    the workers; ``observer`` receives a ``label`` span wrapping the
    whole fan-out with ``n_items`` / ``n_jobs`` / ``backend`` /
    ``n_chunks`` attributes.
    """
    cfg = config if config is not None else ParallelConfig()
    obs = resolve_observer(observer)
    materialized = list(items)
    if not materialized:
        return []
    jobs = min(effective_jobs(cfg.n_jobs), len(materialized))
    if jobs <= 1:
        if initializer is not None:
            initializer(*initargs)
        with obs.span(label, n_items=len(materialized), n_jobs=1,
                      backend="inline"):
            return [fn(item) for item in materialized]

    chunk_size = (cfg.chunk_size if cfg.chunk_size is not None
                  else default_chunk_size(len(materialized), jobs))
    chunks = chunked(materialized, chunk_size)
    executor_cls: Any = (ProcessPoolExecutor if cfg.backend == "process"
                         else ThreadPoolExecutor)
    results: list[list[_R]] = [[] for _ in chunks]
    with obs.span(label, n_items=len(materialized), n_jobs=jobs,
                  backend=cfg.backend, n_chunks=len(chunks),
                  chunk_size=chunk_size):
        with executor_cls(max_workers=jobs, initializer=initializer,
                          initargs=initargs) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
            for index, future in enumerate(futures):
                results[index] = future.result()
    obs.count("parallel_chunks", len(chunks))
    obs.gauge("parallel_jobs", jobs)
    return [result for chunk_results in results for result in chunk_results]
