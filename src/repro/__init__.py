"""repro — disk-failure categorization and quantified degradation signatures.

A full reproduction of "Characterizing Disk Failures with Quantified Disk
Degradation Signatures: An Early Experience" (IISWC 2015): the SMART
attribute model, a component-level fleet simulator standing in for the
paper's proprietary telemetry, the from-scratch ML substrate, and the
characterization pipeline that categorizes disk failures, derives their
degradation signatures and predicts degradation stages.

Quickstart::

    from repro import CharacterizationPipeline, FleetConfig, simulate_fleet

    fleet = simulate_fleet(FleetConfig(n_drives=2000, seed=7))
    report = CharacterizationPipeline().run(fleet.dataset)
    for failure_type, summary in report.group_summaries.items():
        print(failure_type.value, summary.n_drives, summary.consensus_order)
"""

from repro.core import (
    CharacterizationPipeline,
    CharacterizationReport,
    DegradationPredictor,
    DegradationSignature,
    FailureCategorizer,
    FailureType,
    WindowParams,
    build_failure_records,
    derive_signature,
    distance_to_failure,
    extract_degradation_window,
)
from repro.data import (
    DatasetCache,
    DiskDataset,
    load_backblaze_csv,
    load_csv,
    load_csv_resilient,
    sanitize_profiles,
    save_csv,
)
from repro.faults import ChaosConfig, inject_dataset, parse_chaos_spec
from repro.parallel import (
    ParallelConfig,
    RetryPolicy,
    get_worker_observer,
    map_drives,
)
from repro.serve import (
    ModelBundle,
    MonitorVerdict,
    StreamScorer,
    build_bundle,
    load_bundle,
    replay_fleet,
    save_bundle,
)
from repro.sim import FleetConfig, FleetSimulator, simulate_fleet
from repro.smart import (
    ATTRIBUTE_REGISTRY,
    CHARACTERIZATION_ATTRIBUTES,
    HealthProfile,
    MinMaxNormalizer,
    SmartRecord,
)

__version__ = "1.0.0"

__all__ = [
    "CharacterizationPipeline",
    "CharacterizationReport",
    "DegradationPredictor",
    "DegradationSignature",
    "FailureCategorizer",
    "FailureType",
    "WindowParams",
    "build_failure_records",
    "derive_signature",
    "distance_to_failure",
    "extract_degradation_window",
    "DatasetCache",
    "DiskDataset",
    "load_backblaze_csv",
    "load_csv",
    "load_csv_resilient",
    "sanitize_profiles",
    "save_csv",
    "ChaosConfig",
    "inject_dataset",
    "parse_chaos_spec",
    "ParallelConfig",
    "RetryPolicy",
    "get_worker_observer",
    "map_drives",
    "ModelBundle",
    "MonitorVerdict",
    "StreamScorer",
    "build_bundle",
    "load_bundle",
    "replay_fleet",
    "save_bundle",
    "FleetConfig",
    "FleetSimulator",
    "simulate_fleet",
    "ATTRIBUTE_REGISTRY",
    "CHARACTERIZATION_ATTRIBUTES",
    "HealthProfile",
    "MinMaxNormalizer",
    "SmartRecord",
    "__version__",
]
