"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type to handle any library failure while letting programming
errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class UnknownAttributeError(ReproError, KeyError):
    """A SMART attribute symbol is not present in the Table I registry."""

    def __init__(self, symbol: str) -> None:
        super().__init__(symbol)
        self.symbol = symbol

    def __str__(self) -> str:
        return f"unknown SMART attribute symbol: {self.symbol!r}"


class NormalizationError(ReproError):
    """Normalization was applied before fitting or to mismatched data."""


class DatasetError(ReproError):
    """A dataset container is malformed or an operation on it is invalid."""


class SimulationError(ReproError):
    """The fleet simulator was configured or driven inconsistently."""


class ModelError(ReproError):
    """A machine-learning model was used before fitting or misconfigured."""


class ConvergenceError(ModelError):
    """An iterative algorithm failed to converge within its iteration cap."""


class SignatureError(ReproError):
    """Degradation-signature extraction failed (e.g. empty window)."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with invalid parameters."""


class ObservabilityError(ReproError):
    """The instrumentation layer was misused (e.g. metric kind clash)."""


class ParallelError(ReproError):
    """The fan-out layer was misconfigured (bad job count or backend)."""


class WorkerCrashError(ParallelError):
    """A pool worker died (or its pool broke) and retries were exhausted."""


class WorkerTimeoutError(ParallelError):
    """A dispatched chunk exceeded its deadline and retries were exhausted."""


class CacheError(ReproError):
    """The on-disk dataset cache was misused or its directory is unusable."""


class FaultInjectionError(ReproError):
    """A chaos specification or fault injector was misconfigured."""


class QuarantineError(ReproError):
    """Sanitization left no usable data (every profile was quarantined)."""


class CheckpointError(ReproError):
    """A checkpoint directory is unusable or holds a malformed entry."""


class ServeError(ReproError):
    """The serving layer was misused (bad stream input or configuration)."""


class BundleError(ServeError):
    """A model-bundle artifact is corrupt, stale or malformed."""


class SinkError(ServeError):
    """An alert sink is misconfigured or failed to deliver an alert.

    Attributes
    ----------
    retry_after_s:
        Optional server-supplied wait hint (seconds) before the
        delivery should be retried — set by the webhook sink when the
        endpoint answered 429/503 with a ``Retry-After`` header.  The
        delivery pipeline prefers it over its own exponential backoff.
    """

    def __init__(self, message: str, *,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class WalError(ServeError):
    """A write-ahead log directory is unusable or holds corrupt records.

    Raised on non-tail corruption (a damaged record *followed by* valid
    data — torn tails are silently truncated instead), on segment
    files that cannot be read or written, and on recovery against a
    WAL produced by a different model bundle.
    """


class ShardRecoveringError(ServeError):
    """A batch targeted a shard that is being respawned after a crash.

    The serving daemon maps this to HTTP 503 with a ``Retry-After``
    header.  Like backpressure, admission is all-or-nothing: no sample
    of the rejected batch was enqueued, so the caller can retry the
    whole batch once the shard has replayed its snapshot + WAL suffix.

    Attributes
    ----------
    shard:
        Index of the recovering shard.
    retry_after_s:
        Suggested wait before retrying, in seconds.
    """

    def __init__(self, shard: int, retry_after_s: float) -> None:
        super().__init__(
            f"shard {shard} is recovering from a crash "
            f"(snapshot + WAL replay in progress); retry in "
            f"{retry_after_s:g}s"
        )
        self.shard = shard
        self.retry_after_s = retry_after_s


class BackpressureError(ServeError):
    """A bounded shard queue is full; the caller should retry later.

    The serving daemon maps this to HTTP 429 with a ``Retry-After``
    header.  Admission is all-or-nothing: when this error is raised,
    *no* sample from the rejected batch was enqueued or scored, so a
    retried batch never double-scores a drive-hour.

    Attributes
    ----------
    shard:
        Index of the saturated shard.
    retry_after_s:
        Suggested wait before retrying, in seconds.
    """

    def __init__(self, shard: int, retry_after_s: float,
                 capacity: int) -> None:
        super().__init__(
            f"shard {shard} ingest queue is full "
            f"({capacity} batches in flight); retry in {retry_after_s:g}s"
        )
        self.shard = shard
        self.retry_after_s = retry_after_s
        self.capacity = capacity


class LearnError(ReproError):
    """The continuous-learning loop was misused or misconfigured.

    Raised by :mod:`repro.learn` on invalid drift policies, refits
    attempted before the sliding window holds any failed drives,
    shadow reports over mismatched streams, and promotion decisions
    evaluated against the wrong champion generation.
    """


class PipelineStageError(ReproError):
    """A pipeline stage crashed on an unexpected (non-library) exception.

    The error boundary around each stage converts arbitrary crashes into
    this typed form so callers can tell *where* the pipeline died and
    what had already been computed, instead of parsing a raw traceback.

    Attributes
    ----------
    stage:
        Name of the stage that crashed (e.g. ``"signatures"``).
    completed:
        Names of the stages that finished before the crash, in order.
    partial:
        Coarse counts describing the partial results available at the
        time of the crash (e.g. drives processed, records built).
    """

    def __init__(self, stage: str, cause: BaseException,
                 completed: tuple[str, ...] = (),
                 partial: dict[str, int] | None = None) -> None:
        super().__init__(stage, str(cause))
        self.stage = stage
        self.cause = cause
        self.completed = completed
        self.partial = dict(partial or {})

    def __str__(self) -> str:
        done = ", ".join(self.completed) if self.completed else "none"
        suffix = ""
        if self.partial:
            counts = ", ".join(f"{key}={value}"
                               for key, value in sorted(self.partial.items()))
            suffix = f" [partial results: {counts}]"
        return (f"pipeline stage {self.stage!r} failed: "
                f"{type(self.cause).__name__}: {self.cause} "
                f"(completed stages: {done}){suffix}")
