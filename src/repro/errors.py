"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type to handle any library failure while letting programming
errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class UnknownAttributeError(ReproError, KeyError):
    """A SMART attribute symbol is not present in the Table I registry."""

    def __init__(self, symbol: str) -> None:
        super().__init__(symbol)
        self.symbol = symbol

    def __str__(self) -> str:
        return f"unknown SMART attribute symbol: {self.symbol!r}"


class NormalizationError(ReproError):
    """Normalization was applied before fitting or to mismatched data."""


class DatasetError(ReproError):
    """A dataset container is malformed or an operation on it is invalid."""


class SimulationError(ReproError):
    """The fleet simulator was configured or driven inconsistently."""


class ModelError(ReproError):
    """A machine-learning model was used before fitting or misconfigured."""


class ConvergenceError(ModelError):
    """An iterative algorithm failed to converge within its iteration cap."""


class SignatureError(ReproError):
    """Degradation-signature extraction failed (e.g. empty window)."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with invalid parameters."""


class ObservabilityError(ReproError):
    """The instrumentation layer was misused (e.g. metric kind clash)."""


class ParallelError(ReproError):
    """The fan-out layer was misconfigured (bad job count or backend)."""


class CacheError(ReproError):
    """The on-disk dataset cache was misused or its directory is unusable."""
