"""Fleet-level RAID reliability: Monte Carlo over group assignments.

:func:`drive_states_from_fleet` turns a simulated fleet (plus optional
degradation-monitor warning leads) into :class:`DriveState` records;
:class:`RaidReliabilityAnalysis` draws many random RAID groups from those
drives and measures the data-loss rate under a protection policy —
reactive RAID-5, reactive RAID-6, or signature-driven proactive
replacement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.raid.array import DriveState, RaidLevel, evaluate_group
from repro.sim.fleet import FleetResult
from repro.smart.attributes import attribute_index


@dataclass(frozen=True, slots=True)
class PolicyResult:
    """Loss statistics of one protection policy."""

    policy: str
    level: RaidLevel
    n_groups: int
    n_losses: int
    n_double_failure_losses: int
    n_latent_error_losses: int
    n_proactive_migrations: int

    @property
    def loss_rate(self) -> float:
        return self.n_losses / self.n_groups if self.n_groups else 0.0


def drive_states_from_fleet(fleet: FleetResult,
                            warning_leads: dict[str, float] | None = None,
                            ) -> list[DriveState]:
    """Extract per-drive RAID-relevant state from a simulated fleet.

    A drive carries latent errors when its final recorded pending or
    uncorrectable counters are non-zero — sectors a full rebuild read
    would hit.  The counters are read from the raw R-CPSC column and the
    RUE health value (below 100 means reported uncorrectable errors).
    """
    warning_leads = warning_leads or {}
    pending_column = attribute_index("R-CPSC")
    rue_column = attribute_index("RUE")
    states = []
    for profile in fleet.dataset.profiles:
        final = profile.matrix[-1]
        has_latent = final[pending_column] > 0 or final[rue_column] < 100.0
        states.append(
            DriveState(
                serial=profile.serial,
                failure_hour=(profile.failure_hour if profile.failed
                              else None),
                has_latent_errors=bool(has_latent),
                warning_lead_hours=warning_leads.get(profile.serial),
            )
        )
    return states


class RaidReliabilityAnalysis:
    """Monte Carlo data-loss estimation over random RAID groupings.

    Parameters
    ----------
    drives:
        Fleet drive states (from :func:`drive_states_from_fleet`).
    group_size:
        Drives per RAID group.
    n_groups:
        Groups sampled per policy evaluation (drives are drawn without
        replacement within a group, with replacement across groups, so
        arbitrarily many groups can be scored against one fleet).
    seed:
        Sampling seed.
    """

    def __init__(self, drives: list[DriveState], *, group_size: int = 8,
                 n_groups: int = 20000, seed: int = 99) -> None:
        if group_size < 3:
            raise ReproError("group_size must be at least 3")
        if n_groups < 1:
            raise ReproError("n_groups must be positive")
        if len(drives) < group_size:
            raise ReproError("not enough drives for a single group")
        self._drives = list(drives)
        self._group_size = group_size
        self._n_groups = n_groups
        self._seed = seed

    def evaluate(self, level: RaidLevel, *, proactive: bool = False,
                 reconstruction_hours: float = 12.0,
                 migration_hours: float = 6.0) -> PolicyResult:
        """Score one policy over the sampled groups."""
        rng = np.random.default_rng(self._seed)
        n_drives = len(self._drives)
        losses = 0
        double_failures = 0
        latent_losses = 0
        migrations = 0
        for _ in range(self._n_groups):
            chosen = rng.choice(n_drives, size=self._group_size,
                                replace=False)
            members = [self._drives[i] for i in chosen]
            outcome = evaluate_group(
                members, level,
                reconstruction_hours=reconstruction_hours,
                migration_hours=migration_hours,
                proactive=proactive,
            )
            migrations += outcome.n_proactive_migrations
            if outcome.data_loss:
                losses += 1
                if outcome.loss_cause == "double_failure":
                    double_failures += 1
                else:
                    latent_losses += 1
        policy = f"{'proactive' if proactive else 'reactive'}_{level.name}"
        return PolicyResult(
            policy=policy,
            level=level,
            n_groups=self._n_groups,
            n_losses=losses,
            n_double_failure_losses=double_failures,
            n_latent_error_losses=latent_losses,
            n_proactive_migrations=migrations,
        )
