"""RAID group failure semantics.

A RAID group of ``k`` drives tolerates a fixed number of simultaneous
member losses (one for RAID-5, two for RAID-6).  When a member fails,
the group reconstructs onto a spare for ``reconstruction_hours``; during
that window the group runs with reduced redundancy, and rebuilding reads
*every* sector of the surviving members — so a latent sector error on a
survivor defeats RAID-5 exactly as the paper (citing Bairavasundaram et
al.) warns.

:func:`evaluate_group` replays a group's timeline:

* drives whose failure carries enough warning lead time are migrated
  proactively (cloned while alive) and never enter the failure timeline;
* each remaining failure opens a reconstruction window; another member
  failure inside the window exceeds the redundancy and loses data;
* during a window that has consumed all redundancy (RAID-5: any window;
  RAID-6: a window already containing a second failure), a latent sector
  error on any survivor also loses data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ReproError


class RaidLevel(enum.Enum):
    """Supported redundancy schemes."""

    RAID5 = 1  # tolerates one member loss
    RAID6 = 2  # tolerates two member losses

    @property
    def parity_drives(self) -> int:
        return self.value


@dataclass(frozen=True, slots=True)
class DriveState:
    """Everything the RAID analysis needs to know about one drive.

    ``failure_hour`` is ``None`` for drives that survive the period.
    ``has_latent_errors`` marks drives carrying unreadable sectors
    (pending or uncorrectable) that a full-stripe rebuild would hit.
    ``warning_lead_hours`` is the advance notice a degradation monitor
    gave before the failure (``None`` when unwarned or not failing).
    """

    serial: str
    failure_hour: int | None = None
    has_latent_errors: bool = False
    warning_lead_hours: float | None = None

    @property
    def fails(self) -> bool:
        return self.failure_hour is not None


@dataclass(frozen=True, slots=True)
class GroupOutcome:
    """Result of replaying one RAID group's timeline."""

    data_loss: bool
    loss_cause: str | None          # "double_failure" | "latent_error"
    n_failures: int                 # unplanned member failures
    n_proactive_migrations: int     # failures converted to planned swaps

    @property
    def survived(self) -> bool:
        return not self.data_loss


def evaluate_group(members: list[DriveState], level: RaidLevel, *,
                   reconstruction_hours: float = 12.0,
                   migration_hours: float = 6.0,
                   proactive: bool = False) -> GroupOutcome:
    """Replay one group's failure timeline.

    Parameters
    ----------
    members:
        The group's drives.
    level:
        Redundancy scheme.
    reconstruction_hours:
        Degraded-mode window after each failure.
    migration_hours:
        Time needed to clone a warned drive; warnings shorter than this
        cannot be acted on.
    proactive:
        Whether warned failures are converted to planned migrations.
    """
    if len(members) < level.parity_drives + 1:
        raise ReproError(
            f"a {level.name} group needs at least {level.parity_drives + 1} "
            f"drives"
        )
    if reconstruction_hours <= 0:
        raise ReproError("reconstruction_hours must be positive")

    migrations = 0
    failures: list[DriveState] = []
    for drive in members:
        if not drive.fails:
            continue
        if (proactive and drive.warning_lead_hours is not None
                and drive.warning_lead_hours >= migration_hours):
            migrations += 1
            continue
        failures.append(drive)
    failures.sort(key=lambda drive: drive.failure_hour or 0)

    # Walk the failure timeline tracking overlapping reconstructions.
    for index, failure in enumerate(failures):
        start = float(failure.failure_hour or 0)
        end = start + reconstruction_hours
        overlapping = [
            other for other in failures[index + 1:]
            if start <= float(other.failure_hour or 0) < end
        ]
        if len(overlapping) >= level.parity_drives:
            return GroupOutcome(
                data_loss=True, loss_cause="double_failure",
                n_failures=len(failures),
                n_proactive_migrations=migrations,
            )
        # Redundancy consumed during this window: the initial failure plus
        # any overlapping ones.  With none left, a latent sector error on
        # a survivor is unrecoverable during the rebuild.
        redundancy_left = level.parity_drives - 1 - len(overlapping)
        if redundancy_left < 0:
            redundancy_left = 0
        if redundancy_left == 0:
            failed_serials = {f.serial for f in failures[: index + 1]}
            failed_serials.update(o.serial for o in overlapping)
            survivors = [
                drive for drive in members
                if drive.serial not in failed_serials
            ]
            if any(drive.has_latent_errors for drive in survivors):
                return GroupOutcome(
                    data_loss=True, loss_cause="latent_error",
                    n_failures=len(failures),
                    n_proactive_migrations=migrations,
                )
    return GroupOutcome(
        data_loss=False, loss_cause=None,
        n_failures=len(failures),
        n_proactive_migrations=migrations,
    )
