"""RAID reliability analysis.

The paper's opening motivation: "in RAID-5 systems, one drive failure
with any other sector error will result in data loss, which leads to
tremendous financial and economic costs".  This package quantifies that
risk on a simulated fleet — Monte Carlo over RAID groups drawn from the
fleet's drives, with double-failure and latent-sector-error loss modes
during reconstruction (after Bairavasundaram et al.) — and evaluates how
much of it signature-driven *proactive* replacement removes, closing the
loop on the paper's Section V implications.
"""

from repro.raid.array import (
    DriveState,
    GroupOutcome,
    RaidLevel,
    evaluate_group,
)
from repro.raid.reliability import (
    PolicyResult,
    RaidReliabilityAnalysis,
    drive_states_from_fleet,
)

__all__ = [
    "DriveState",
    "GroupOutcome",
    "RaidLevel",
    "evaluate_group",
    "PolicyResult",
    "RaidReliabilityAnalysis",
    "drive_states_from_fleet",
]
