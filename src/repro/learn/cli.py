"""``repro-learn`` — drive the continuous-learning loop offline.

Two subcommands (the loop's two halves an operator touches directly;
the in-daemon drift plane is ``repro-serve daemon --learn``):

* ``drill`` — run the deterministic end-to-end drift drill
  (:class:`~repro.learn.drill.DriftDrill`): simulate a baseline and a
  drifted fleet, detect the drift, refit a challenger, shadow-score,
  decide promotion, then serve the stream through live shard sets with
  a mid-stream promotion and verify byte-identity against offline
  scoring.  Prints one canonical JSON document; the same seed always
  prints the same bytes.
* ``push`` — promote (or roll back) a bundle on a *running* daemon:
  POST a bundle file to its ``/promote`` endpoint.

Examples::

   repro-learn drill --seed 11 --shards 1 --shards 2 --shards 4
   repro-learn push --url http://127.0.0.1:9200 \\
       --bundle challenger.bundle.json
   repro-learn push --url http://127.0.0.1:9200 --rollback
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request

from repro.core.serialize import canonical_json_dumps
from repro.errors import LearnError, ReproError
from repro.learn.drill import DriftDrill
from repro.obs import logging as obs_logging
from repro.obs.observer import NULL_OBSERVER, TelemetryObserver


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-learn`` argument grammar (``drill``/``push``)."""
    parser = argparse.ArgumentParser(
        prog="repro-learn",
        description="Continuous-learning tooling: the deterministic "
                    "drift drill and live bundle promotion.",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log progress (-vv for debug)")
    commands = parser.add_subparsers(dest="command", required=True)

    drill = commands.add_parser(
        "drill", help="run the end-to-end drift drill: detect, refit, "
                      "shadow, promote, verify byte-identity")
    drill.add_argument("--seed", type=int, default=11,
                       help="master seed (baseline fleet; the drifted "
                            "fleet uses seed+1; default 11)")
    drill.add_argument("--drives", type=int, default=360, metavar="N",
                       help="fleet size of both simulated populations "
                            "(default 360)")
    drill.add_argument("--block-size", type=int, default=256, metavar="N",
                       help="samples per streamed ingest block "
                            "(default 256)")
    drill.add_argument("--drift-delta", type=float, default=8.0,
                       metavar="CELSIUS",
                       help="inlet-temperature rise injected into the "
                            "drifted fleet (default 8.0)")
    drill.add_argument("--shards", type=int, action="append", default=[],
                       metavar="N",
                       help="serve the stream with this shard count "
                            "(repeatable; default: 1 and 2)")
    drill.add_argument("--output", metavar="PATH", default=None,
                       help="write the drill document here "
                            "(default: stdout)")

    push = commands.add_parser(
        "push", help="promote or roll back a bundle on a running daemon")
    push.add_argument("--url", required=True, metavar="URL",
                      help="daemon base URL, e.g. http://127.0.0.1:9200")
    push.add_argument("--bundle", metavar="PATH", default=None,
                      help="bundle file to POST to /promote (required "
                           "unless --rollback)")
    push.add_argument("--rollback", action="store_true",
                      help="swap back to the previously serving bundle "
                           "instead of pushing a new one")
    push.add_argument("--force", action="store_true",
                      help="skip the daemon's lineage check (promote a "
                           "bundle that does not name the champion as "
                           "its parent)")
    return parser


def run_drill(args: argparse.Namespace, observer: object) -> int:
    """``drill``: prepare once, serve per shard count, print the document."""
    shard_counts = args.shards or [1, 2]
    drill = DriftDrill(seed=args.seed, n_drives=args.drives,
                       block_size=args.block_size,
                       drift_delta_c=args.drift_delta,
                       observer=observer).prepare()
    document = {
        "core": drill.core_payload(),
        "runs": [drill.run(n_shards) for n_shards in shard_counts],
    }
    text = canonical_json_dumps(document)
    if args.output:
        with open(args.output, "w") as sink:
            sink.write(text)
        print(f"drill document written to {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    alarms = document["core"]["alarms"]
    decision = document["core"]["decision"]
    print(f"drill complete: {len(alarms)} drift alarm(s), "
          f"promote={decision['promote']}, "
          f"{len(shard_counts)} serving run(s) byte-identical to offline",
          file=sys.stderr)
    return 0


def run_push(args: argparse.Namespace) -> int:
    """``push``: POST a bundle (or a rollback) to a daemon's /promote."""
    base = args.url.rstrip("/")
    if args.rollback:
        if args.bundle is not None:
            raise LearnError("--rollback takes no --bundle (it swaps back "
                             "to the daemon's previous bundle)")
        url = f"{base}/promote?rollback=1"
        body = b""
    else:
        if args.bundle is None:
            raise LearnError("push needs --bundle (or --rollback)")
        with open(args.bundle, "rb") as handle:
            body = handle.read()
        url = f"{base}/promote"
        if args.force:
            url += "?force=1"
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            reply = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", "replace").strip()
        raise LearnError(
            f"daemon refused the request ({error.code}): {detail}"
        ) from error
    except urllib.error.URLError as error:
        raise LearnError(f"cannot reach daemon at {base}: "
                         f"{error.reason}") from error
    print(canonical_json_dumps(reply), end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: any library or I/O failure exits 2 with one line."""
    parser = build_parser()
    args = parser.parse_args(argv)
    obs_logging.configure(
        level=obs_logging.verbosity_to_level(args.verbose))
    observer = TelemetryObserver() if args.verbose else NULL_OBSERVER
    try:
        if args.command == "drill":
            return run_drill(args, observer)
        return run_push(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
