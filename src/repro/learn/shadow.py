"""Champion/challenger shadow scoring with a deterministic divergence report.

The third stage of the continuous-learning loop: before a challenger
bundle may replace the serving champion, it must score the *same*
stream side by side.  :class:`ShadowScorer` runs two independent
:class:`~repro.serve.scorer.StreamScorer`\\ s — same blocks, same order,
separate per-drive state — and accumulates a
:class:`DivergenceReport`: the verdict agreement rate, the full 3x3
severity confusion matrix (HEALTHY / WATCH / CRITICAL, champion rows by
challenger columns, built from
:meth:`AlertBlock.level_counts <repro.core.columnar.AlertBlock>`-style
severity codes with one ``bincount`` per block), the mean absolute
stage delta over rows where both sides produced a finite stage, and
per-drive alert deltas naming exactly which drives the two bundles
disagree about.

The report is deterministic by construction — pure column arithmetic in
stream order, serials sorted in the payload — so the same stream through
the same two bundles yields a byte-identical
:meth:`DivergenceReport.to_payload`.  The
:class:`~repro.learn.promote.PromotionPolicy` consumes the report; the
``shadow_divergence`` gauge tracks the running disagreement rate for
operators watching a live shadow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import LearnError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.serve.bundle import ModelBundle, content_hash
from repro.serve.scorer import StreamScorer, VerdictBlock

#: Severity levels in code order (the int8 codes of an AlertBlock).
_LEVELS = ("HEALTHY", "WATCH", "CRITICAL")


@dataclass(frozen=True, slots=True)
class DivergenceReport:
    """Everything the promotion policy needs about one shadow run.

    ``confusion`` is champion-severity rows by challenger-severity
    columns (code order HEALTHY, WATCH, CRITICAL); ``alert_deltas``
    maps each disagreeing drive serial to its
    ``{"champion_only": ..., "challenger_only": ...}`` alerting-row
    counts — drives where one bundle alerted and the other did not.
    """

    champion_sha256: str
    challenger_sha256: str
    champion_generation: int
    challenger_generation: int
    n_samples: int
    n_agree: int
    confusion: tuple[tuple[int, ...], ...]
    stage_delta_mean: float
    alert_deltas: dict[str, dict[str, int]]

    @property
    def agreement_rate(self) -> float:
        """Fraction of samples where both severities matched."""
        return self.n_agree / self.n_samples if self.n_samples else 1.0

    @property
    def divergence(self) -> float:
        """Fraction of samples where the severities differed."""
        return 1.0 - self.agreement_rate

    def to_payload(self) -> dict[str, Any]:
        """Deterministic plain-type mapping (sorted serials, exact ints)."""
        return {
            "champion_sha256": self.champion_sha256,
            "challenger_sha256": self.challenger_sha256,
            "champion_generation": self.champion_generation,
            "challenger_generation": self.challenger_generation,
            "n_samples": self.n_samples,
            "n_agree": self.n_agree,
            "agreement_rate": self.agreement_rate,
            "divergence": self.divergence,
            "levels": list(_LEVELS),
            "confusion": [list(row) for row in self.confusion],
            "stage_delta_mean": self.stage_delta_mean,
            "alert_deltas": {
                serial: dict(delta)
                for serial, delta in sorted(self.alert_deltas.items())
            },
        }


class ShadowScorer:
    """Score one stream through two bundles, tallying their divergence.

    Parameters
    ----------
    champion / challenger:
        The serving bundle and its candidate replacement.  Both must
        score the same attribute space (the stream feeds both
        unchanged).
    observer:
        Telemetry sink: each scored block refreshes the
        ``shadow_divergence`` gauge with the running disagreement
        rate and counts ``shadow_samples``.
    """

    def __init__(self, champion: ModelBundle, challenger: ModelBundle, *,
                 observer: PipelineObserver | None = None) -> None:
        if tuple(champion.attributes) != tuple(challenger.attributes):
            raise LearnError(
                "shadow scoring needs bundles over the same attribute "
                "space; champion and challenger disagree")
        self._observer = resolve_observer(observer)
        self._champion = champion
        self._challenger = challenger
        self._champion_sha = content_hash(champion.to_payload())
        self._challenger_sha = content_hash(challenger.to_payload())
        self._champion_scorer = StreamScorer(champion)
        self._challenger_scorer = StreamScorer(challenger)
        self._n_samples = 0
        self._n_agree = 0
        self._confusion = np.zeros((len(_LEVELS), len(_LEVELS)),
                                   dtype=np.int64)
        self._stage_delta_sum = 0.0
        self._stage_delta_count = 0
        self._alert_deltas: dict[str, dict[str, int]] = {}

    @property
    def n_samples(self) -> int:
        """Samples shadow-scored so far."""
        return self._n_samples

    @property
    def divergence(self) -> float:
        """Running disagreement rate."""
        if not self._n_samples:
            return 0.0
        return 1.0 - self._n_agree / self._n_samples

    def score_block(self, serials: Sequence[str], hours: Sequence[int],
                    matrix: np.ndarray) -> tuple[VerdictBlock, VerdictBlock]:
        """Score one block with both bundles and fold in the deltas.

        Returns ``(champion_block, challenger_block)`` — the champion
        block is the one a shadowing daemon would actually serve.
        """
        champ = self._champion_scorer.score_block(serials, hours, matrix)
        chall = self._challenger_scorer.score_block(serials, hours, matrix)
        champ_codes = champ.block.level_codes.astype(np.int64)
        chall_codes = chall.block.level_codes.astype(np.int64)
        agree = champ_codes == chall_codes
        self._n_samples += len(champ)
        self._n_agree += int(np.count_nonzero(agree))
        self._confusion += np.bincount(
            champ_codes * len(_LEVELS) + chall_codes,
            minlength=len(_LEVELS) ** 2,
        ).reshape(len(_LEVELS), len(_LEVELS))

        champ_stages = champ.block.stages[
            champ.block.likely_indices, np.arange(len(champ))]
        chall_stages = chall.block.stages[
            chall.block.likely_indices, np.arange(len(chall))]
        both_finite = np.isfinite(champ_stages) & np.isfinite(chall_stages)
        if both_finite.any():
            deltas = np.abs(champ_stages[both_finite]
                            - chall_stages[both_finite])
            self._stage_delta_sum += float(deltas.sum())
            self._stage_delta_count += int(both_finite.sum())

        champ_alerting = champ_codes > 0
        chall_alerting = chall_codes > 0
        for row in np.flatnonzero(champ_alerting != chall_alerting):
            serial = champ.serials[int(row)]
            delta = self._alert_deltas.setdefault(
                serial, {"champion_only": 0, "challenger_only": 0})
            if champ_alerting[row]:
                delta["champion_only"] += 1
            else:
                delta["challenger_only"] += 1

        self._observer.count("shadow_samples", len(champ))
        self._observer.gauge("shadow_divergence", self.divergence)
        return champ, chall

    def report(self) -> DivergenceReport:
        """Freeze the accumulated tallies into a divergence report."""
        if not self._n_samples:
            raise LearnError(
                "no samples were shadow-scored; nothing to report")
        mean_delta = (self._stage_delta_sum / self._stage_delta_count
                      if self._stage_delta_count else 0.0)
        return DivergenceReport(
            champion_sha256=self._champion_sha,
            challenger_sha256=self._challenger_sha,
            champion_generation=self._champion.generation,
            challenger_generation=self._challenger.generation,
            n_samples=self._n_samples,
            n_agree=self._n_agree,
            confusion=tuple(tuple(int(cell) for cell in row)
                            for row in self._confusion),
            stage_delta_mean=mean_delta,
            alert_deltas={serial: dict(delta)
                          for serial, delta in self._alert_deltas.items()},
        )
