"""Continuous learning: drift detection, shadow scoring, promotion.

The serving stack (:mod:`repro.serve`) freezes the paper's models into
a versioned bundle; this package closes the loop when the fleet walks
away from the data those models were trained on.  Four stages, each
usable on its own (see ``docs/learning.md``):

1. :class:`DriftDetector` — rolling per-attribute baselines over the
   columnar stream, raising :class:`DriftAlarm`\\ s on mean shifts and
   outlier-share changes, with warmup, hysteresis and cooldown.
2. :class:`SlidingWindow` + :func:`refit_challenger` — reassemble
   recent blocks into a dataset and re-run the full characterization
   pipeline to produce a lineage-stamped *challenger* bundle.
3. :class:`ShadowScorer` — score the same stream with champion and
   challenger side by side, freezing a deterministic
   :class:`DivergenceReport`.
4. :class:`PromotionPolicy` — turn the report into an auditable
   :class:`PromotionDecision`; the serving daemon's promotion plane
   (``POST /promote``, :meth:`ServingDaemon.promote_bundle
   <repro.serve.daemon.ServingDaemon.promote_bundle>`) performs the
   actual swap.

:class:`DriftDrill` wires all four into the deterministic end-to-end
drill behind ``repro-learn drill``.
"""

from repro.learn.drift import DriftAlarm, DriftDetector, DriftPolicy
from repro.learn.drill import DriftDrill, blocked_stream
from repro.learn.promote import PromotionDecision, PromotionPolicy
from repro.learn.refit import SlidingWindow, refit_challenger
from repro.learn.shadow import DivergenceReport, ShadowScorer

__all__ = [
    "DivergenceReport",
    "DriftAlarm",
    "DriftDetector",
    "DriftDrill",
    "DriftPolicy",
    "PromotionDecision",
    "PromotionPolicy",
    "ShadowScorer",
    "SlidingWindow",
    "blocked_stream",
    "refit_challenger",
]
