"""Incremental refit: a sliding window of the stream, retrained models.

The second stage of the continuous-learning loop: once drift alarms say
the frozen champion no longer matches the fleet, the stream itself
becomes the next training set.  A :class:`SlidingWindow` accumulates
streamed blocks back into per-drive time series (the inverse of the
columnar flattening the daemon ingests), failure labels arrive through
:meth:`SlidingWindow.mark_failed` (in production from the repair queue,
in the drill from the simulator's ground truth), and
:func:`refit_challenger` re-runs the paper's full characterization —
k-means taxonomy plus per-group regression trees, the exact
:class:`~repro.core.pipeline.CharacterizationPipeline` the offline path
uses — over the window to produce a *challenger*
:class:`~repro.serve.bundle.ModelBundle`.

The challenger reuses :func:`~repro.serve.bundle.build_bundle` and the
schema-version + sha256 machinery, inherits the champion's monitor
thresholds (a refit changes models, not alerting policy), and is
stamped with lineage (:func:`~repro.serve.bundle.stamp_lineage`):
``generation`` one past the champion's and ``parent_sha256`` naming it.
The promotion plane refuses challengers whose lineage does not match
the serving champion, so a stale refit can never skip the chain.

Determinism: the window stores samples in arrival order and sorts
drives by serial when building the dataset, and the pipeline itself is
seed-pinned — the same streamed blocks with the same labels and seed
produce a challenger with the identical content hash, which is what
the drift drill pins across runs.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.pipeline import CharacterizationPipeline
from repro.data.dataset import DiskDataset
from repro.errors import LearnError
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.serve.bundle import ModelBundle, build_bundle, stamp_lineage
from repro.smart.profile import HealthProfile


class SlidingWindow:
    """Per-drive reassembly of recent streamed blocks into a dataset.

    Parameters
    ----------
    attributes:
        Column names of the streamed record matrix, in order (must
        match the champion bundle's attribute ordering).
    max_hours:
        Optional retention horizon: :meth:`trim` drops samples older
        than ``latest_hour - max_hours``, bounding the window's memory
        on an endless stream.  ``None`` keeps everything.
    """

    def __init__(self, attributes: Sequence[str], *,
                 max_hours: int | None = None) -> None:
        if not attributes:
            raise LearnError("a sliding window needs attribute columns")
        if max_hours is not None and max_hours < 1:
            raise LearnError("max_hours must be positive when set")
        self._attributes = tuple(str(name) for name in attributes)
        self._max_hours = max_hours
        self._hours: dict[str, list[int]] = {}
        self._rows: dict[str, list[np.ndarray]] = {}
        self._failed: set[str] = set()
        self._latest_hour: int | None = None
        self._n_samples = 0

    @property
    def n_drives(self) -> int:
        """Drives with at least one sample in the window."""
        return len(self._hours)

    @property
    def n_samples(self) -> int:
        """Samples currently held across all drives."""
        return self._n_samples

    @property
    def failed_serials(self) -> tuple[str, ...]:
        """Serials currently labeled failed, sorted."""
        return tuple(sorted(self._failed))

    def add_block(self, serials: Sequence[str], hours: Sequence[int],
                  matrix: np.ndarray) -> None:
        """Fold one streamed block into the window, row by row."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._attributes):
            raise LearnError(
                f"window expects (n, {len(self._attributes)}) records, "
                f"got shape {tuple(matrix.shape)}")
        if len(serials) != matrix.shape[0] or len(hours) != matrix.shape[0]:
            raise LearnError(
                f"column lengths disagree: {len(serials)} serials, "
                f"{len(hours)} hours, {matrix.shape[0]} rows")
        for row, serial in enumerate(serials):
            serial = str(serial)
            hour = int(hours[row])
            self._hours.setdefault(serial, []).append(hour)
            self._rows.setdefault(serial, []).append(matrix[row].copy())
            self._n_samples += 1
            if self._latest_hour is None or hour > self._latest_hour:
                self._latest_hour = hour
        if self._max_hours is not None:
            self.trim()

    def mark_failed(self, serials: Sequence[str]) -> None:
        """Label drives as failed (the refit's supervision signal)."""
        self._failed.update(str(serial) for serial in serials)

    def trim(self, before_hour: int | None = None) -> int:
        """Drop samples older than the horizon; returns the drop count.

        ``before_hour`` defaults to ``latest_hour - max_hours`` (a
        no-op when no horizon is configured and none is given).
        """
        if before_hour is None:
            if self._max_hours is None or self._latest_hour is None:
                return 0
            before_hour = self._latest_hour - self._max_hours
        dropped = 0
        for serial in list(self._hours):
            hours = self._hours[serial]
            keep = [index for index, hour in enumerate(hours)
                    if hour >= before_hour]
            if len(keep) == len(hours):
                continue
            dropped += len(hours) - len(keep)
            if not keep:
                del self._hours[serial]
                del self._rows[serial]
                continue
            self._hours[serial] = [hours[index] for index in keep]
            self._rows[serial] = [self._rows[serial][index]
                                  for index in keep]
        self._n_samples -= dropped
        return dropped

    def to_dataset(self, *, min_samples: int = 2) -> DiskDataset:
        """Materialize the window as a raw :class:`DiskDataset`.

        Each drive's samples are sorted by hour (keeping the last
        arrival on a duplicated hour — a retried block must not fork a
        timeline) and drives with fewer than ``min_samples`` samples
        are skipped.  Drives iterate in sorted-serial order, so the
        dataset — and everything refit from it — is independent of
        block arrival interleaving across drives.
        """
        profiles: list[HealthProfile] = []
        for serial in sorted(self._hours):
            by_hour: dict[int, np.ndarray] = {}
            for hour, row in zip(self._hours[serial], self._rows[serial]):
                by_hour[hour] = row
            if len(by_hour) < min_samples:
                continue
            hours = sorted(by_hour)
            profiles.append(HealthProfile(
                serial=serial,
                hours=np.asarray(hours, dtype=np.int64),
                matrix=np.vstack([by_hour[hour] for hour in hours]),
                failed=serial in self._failed,
                attributes=self._attributes,
            ))
        if not profiles:
            raise LearnError(
                "sliding window holds no drive with enough samples to "
                "build a dataset")
        return DiskDataset(profiles)


def refit_challenger(dataset: DiskDataset, champion: ModelBundle, *,
                     seed: int = 0, n_clusters: int = 3, n_jobs: int = 1,
                     observer: PipelineObserver | None = None,
                     ) -> ModelBundle:
    """Retrain the paper's models on ``dataset``; return a challenger.

    Runs the full :class:`~repro.core.pipeline.CharacterizationPipeline`
    (taxonomy k-means + signature fitting + regression trees) with the
    given ``seed``, freezes the result with
    :func:`~repro.serve.bundle.build_bundle` under the champion's
    monitor thresholds, and stamps lineage against the champion.  The
    dataset must carry failed drives (the taxonomy has nothing to
    cluster otherwise) — a window with no marked failures raises
    :class:`~repro.errors.LearnError` before any expensive work.
    """
    obs = resolve_observer(observer)
    if dataset.summary().n_failed < n_clusters:
        raise LearnError(
            f"refit needs at least {n_clusters} failed drives in the "
            f"window, found {dataset.summary().n_failed} — mark failures "
            f"or widen the window")
    with obs.span("learn-refit", n_drives=dataset.summary().n_drives,
                  seed=seed):
        pipeline = CharacterizationPipeline(
            n_clusters=n_clusters, seed=seed, n_jobs=n_jobs, observer=obs)
        report = pipeline.run(dataset)
        challenger = build_bundle(
            report,
            watch_threshold=champion.watch_threshold,
            critical_threshold=champion.critical_threshold,
            history_hours=champion.history_hours,
            seed=seed,
        )
    obs.count("challengers_refit")
    return stamp_lineage(challenger, champion)
