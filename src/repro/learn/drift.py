"""Rolling per-attribute drift detection over the columnar stream.

The first stage of the continuous-learning loop (``docs/learning.md``):
a :class:`DriftDetector` rides the ingest path, folding every admitted
block's raw attribute columns into per-attribute baseline statistics —
count, mean and variance maintained incrementally by Chan's
parallel-batch form of Welford's algorithm, one vectorized update per
block — and raising typed :class:`DriftAlarm`\\ s when the stream walks
away from its baseline.

Two alarm kinds per attribute:

* **mean shift** — the block mean sits more than ``z_threshold``
  standard errors from the baseline mean (standard error uses the
  baseline variance over the block size, so sensitivity scales with
  how much evidence one block carries);
* **population share** — the fraction of the block's samples beyond
  ``outlier_sigma`` baseline standard deviations exceeds
  ``share_threshold`` (catches variance blow-ups and multi-modal
  shifts a mean test misses).

False-positive suppression is layered: no alarming during the first
``warmup_samples`` (the baseline is still forming), an alarm needs
``min_consecutive`` consecutive drifting blocks (hysteresis — one noisy
block never fires), and a fired attribute stays quiet for
``cooldown_blocks`` blocks (one sustained drift episode produces one
alarm, not one per block).  After warmup the baseline is *frozen
against drift*: blocks flagged as drifting are not absorbed, so the
baseline cannot chase the very shift it is measuring.

Everything is pure float64 arithmetic in stream order — the same blocks
in the same order produce byte-identical alarms, which is what lets the
drift drill (:mod:`repro.learn.drill`) pin its output across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import LearnError
from repro.obs.observer import PipelineObserver, resolve_observer

#: Floor on baseline variance when standardizing, so a constant
#: attribute (zero variance) cannot divide by zero; any real shift on
#: such an attribute saturates the z-score instead.
_VARIANCE_FLOOR = 1e-12


@dataclass(frozen=True, slots=True)
class DriftPolicy:
    """Thresholds and suppression knobs for :class:`DriftDetector`.

    Attributes
    ----------
    warmup_samples:
        Baseline samples absorbed before any alarming starts.
    z_threshold:
        Standard errors of mean shift that flag a block (mean-shift
        kind).
    outlier_sigma:
        Baseline standard deviations beyond which one sample counts as
        an outlier for the population-share kind.
    share_threshold:
        Outlier fraction of a block that flags it (population-share
        kind); under a stable baseline the expected share at 3 sigma
        is ~0.3%, so the default 0.10 needs a real population change.
    min_consecutive:
        Consecutive flagged blocks before an alarm fires (hysteresis).
    cooldown_blocks:
        Blocks an attribute stays silent after firing an alarm.
    """

    warmup_samples: int = 2048
    z_threshold: float = 4.0
    outlier_sigma: float = 3.0
    share_threshold: float = 0.10
    min_consecutive: int = 3
    cooldown_blocks: int = 16

    def __post_init__(self) -> None:
        if self.warmup_samples < 1:
            raise LearnError("warmup_samples must be positive")
        if self.z_threshold <= 0 or self.outlier_sigma <= 0:
            raise LearnError("z_threshold and outlier_sigma must be > 0")
        if not 0.0 < self.share_threshold < 1.0:
            raise LearnError("share_threshold must lie in (0, 1)")
        if self.min_consecutive < 1:
            raise LearnError("min_consecutive must be >= 1")
        if self.cooldown_blocks < 0:
            raise LearnError("cooldown_blocks must be >= 0")


@dataclass(frozen=True, slots=True)
class DriftAlarm:
    """One fired drift alarm: which attribute drifted, how, how far.

    ``score`` is the triggering statistic — the standard-error z for
    ``kind="mean_shift"``, the outlier share for
    ``kind="population_share"``; ``baseline`` and ``observed`` give the
    baseline mean (or expected share) and the block's value of the same
    quantity, so an operator can read the direction and magnitude of
    the shift straight off the alarm.
    """

    attribute: str
    kind: str
    block_index: int
    score: float
    baseline: float
    observed: float
    n_samples: int

    def describe(self) -> str:
        """One human-readable line (flight recorder / CLI)."""
        return (f"drift on {self.attribute} ({self.kind}) at block "
                f"{self.block_index}: score {self.score:.3f}, "
                f"baseline {self.baseline:.6g} -> "
                f"observed {self.observed:.6g}")

    def to_payload(self) -> dict[str, Any]:
        """Plain-type mapping for deterministic JSON artifacts."""
        return {
            "attribute": self.attribute,
            "kind": self.kind,
            "block_index": self.block_index,
            "score": float(self.score),
            "baseline": float(self.baseline),
            "observed": float(self.observed),
            "n_samples": self.n_samples,
        }


@dataclass(slots=True)
class _Baseline:
    """Vectorized Welford state: per-attribute count, mean, M2."""

    count: int = 0
    mean: np.ndarray = field(default_factory=lambda: np.zeros(0))
    m2: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def absorb(self, matrix: np.ndarray) -> None:
        """Fold one block into the baseline (Chan's parallel combine)."""
        n_block = matrix.shape[0]
        block_mean = matrix.mean(axis=0)
        block_m2 = ((matrix - block_mean) ** 2).sum(axis=0)
        if self.count == 0:
            self.count = n_block
            self.mean = block_mean
            self.m2 = block_m2
            return
        total = self.count + n_block
        delta = block_mean - self.mean
        self.mean = self.mean + delta * (n_block / total)
        self.m2 = (self.m2 + block_m2
                   + delta ** 2 * (self.count * n_block / total))
        self.count = total

    def variance(self) -> np.ndarray:
        """Per-attribute population variance (floored, never zero)."""
        if self.count < 2:
            return np.full_like(self.mean, _VARIANCE_FLOOR)
        return np.maximum(self.m2 / self.count, _VARIANCE_FLOOR)


class DriftDetector:
    """Incremental per-attribute drift alarms over streamed blocks.

    Parameters
    ----------
    attributes:
        Column names of the streamed record matrix, in order (the
        bundle's Table I ordering in the daemon).
    policy:
        Thresholds and suppression (defaults to :class:`DriftPolicy`).
    observer:
        Telemetry sink; every fired alarm bumps the ``drift_alarms``
        counter.  Telemetry never changes detection.
    """

    def __init__(self, attributes: Sequence[str], *,
                 policy: DriftPolicy | None = None,
                 observer: PipelineObserver | None = None) -> None:
        if not attributes:
            raise LearnError("drift detection needs at least one attribute")
        self._attributes = tuple(str(name) for name in attributes)
        self._policy = policy if policy is not None else DriftPolicy()
        self._observer = resolve_observer(observer)
        self._baseline = _Baseline()
        self._blocks_seen = 0
        self._alarms_fired = 0
        width = len(self._attributes)
        self._consecutive = {
            "mean_shift": np.zeros(width, dtype=np.int64),
            "population_share": np.zeros(width, dtype=np.int64),
        }
        self._cooldown = {
            "mean_shift": np.zeros(width, dtype=np.int64),
            "population_share": np.zeros(width, dtype=np.int64),
        }

    @property
    def policy(self) -> DriftPolicy:
        """The active thresholds."""
        return self._policy

    @property
    def baseline_samples(self) -> int:
        """Samples absorbed into the baseline so far."""
        return self._baseline.count

    @property
    def warmed_up(self) -> bool:
        """Whether alarming is active (warmup complete)."""
        return self._baseline.count >= self._policy.warmup_samples

    @property
    def blocks_seen(self) -> int:
        """Blocks consumed since construction."""
        return self._blocks_seen

    @property
    def alarms_fired(self) -> int:
        """Alarms fired since construction."""
        return self._alarms_fired

    def update(self, matrix: np.ndarray) -> list[DriftAlarm]:
        """Consume one block of raw records; return any fired alarms.

        ``matrix`` is the ``(n_samples, n_attributes)`` raw record
        matrix of one admitted ingest block.  During warmup the block
        is absorbed and nothing fires; after warmup a non-drifting
        block keeps refreshing the baseline while a drifting one is
        held out of it (baseline freeze).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._attributes):
            raise LearnError(
                f"drift update needs (n, {len(self._attributes)}) records, "
                f"got shape {tuple(matrix.shape)}")
        if matrix.shape[0] == 0:
            return []
        block_index = self._blocks_seen
        self._blocks_seen += 1
        if not self.warmed_up:
            self._baseline.absorb(matrix)
            return []

        policy = self._policy
        n_block = matrix.shape[0]
        base_mean = self._baseline.mean
        base_std = np.sqrt(self._baseline.variance())
        block_mean = matrix.mean(axis=0)
        z_scores = np.abs(block_mean - base_mean) \
            / (base_std / np.sqrt(n_block))
        outliers = np.abs(matrix - base_mean) \
            > policy.outlier_sigma * base_std
        shares = outliers.mean(axis=0)
        flagged = {
            "mean_shift": z_scores > policy.z_threshold,
            "population_share": shares > policy.share_threshold,
        }
        observed = {"mean_shift": block_mean, "population_share": shares}
        scores = {"mean_shift": z_scores, "population_share": shares}
        baselines = {
            "mean_shift": base_mean,
            "population_share": np.full_like(shares,
                                             policy.share_threshold),
        }

        alarms: list[DriftAlarm] = []
        for kind, flags in flagged.items():
            consecutive = self._consecutive[kind]
            cooldown = self._cooldown[kind]
            consecutive[:] = np.where(flags, consecutive + 1, 0)
            cooldown[:] = np.maximum(cooldown - 1, 0)
            firing = np.flatnonzero(
                (consecutive >= policy.min_consecutive) & (cooldown == 0))
            for column in firing:
                column = int(column)
                alarms.append(DriftAlarm(
                    attribute=self._attributes[column],
                    kind=kind,
                    block_index=block_index,
                    score=float(scores[kind][column]),
                    baseline=float(baselines[kind][column]),
                    observed=float(observed[kind][column]),
                    n_samples=n_block,
                ))
                cooldown[column] = policy.cooldown_blocks
                consecutive[column] = 0
        if not any(flags.any() for flags in flagged.values()):
            self._baseline.absorb(matrix)
        if alarms:
            self._alarms_fired += len(alarms)
            self._observer.count("drift_alarms", len(alarms))
        return alarms

    def describe(self) -> dict[str, Any]:
        """Operational summary for the daemon's ``/status`` payload."""
        return {
            "baseline_samples": self.baseline_samples,
            "warmed_up": self.warmed_up,
            "blocks_seen": self.blocks_seen,
            "alarms_fired": self.alarms_fired,
            "warmup_samples": self._policy.warmup_samples,
            "z_threshold": self._policy.z_threshold,
            "share_threshold": self._policy.share_threshold,
        }
