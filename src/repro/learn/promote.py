"""Promotion policy: when a challenger may replace the champion.

The final gate of the continuous-learning loop.  A
:class:`PromotionPolicy` turns a shadow run's
:class:`~repro.learn.shadow.DivergenceReport` into an explicit, audit
-friendly :class:`PromotionDecision`: every threshold that failed is a
named reason, and an empty reason list means *promote*.  The policy is
deliberately conservative — a challenger must have shadowed long
enough (``min_samples``), agree with the champion on the overwhelming
majority of verdicts (``min_agreement`` — a refit should refine the
models, not reinvent the fleet's alerting), keep the mean stage
disagreement small (``max_stage_delta``), and carry valid lineage
(generation exactly one past the champion, ``parent_sha256`` naming
it), so the promotion chain can always be walked backwards artifact by
artifact.

The decision object is pure data; actually swapping bundles is
:meth:`ServingDaemon.promote_bundle
<repro.serve.daemon.ServingDaemon.promote_bundle>` (live) or the
``repro-learn`` CLI's ``push`` (remote), both of which re-check lineage
at the moment of the swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import LearnError
from repro.learn.shadow import DivergenceReport
from repro.serve.bundle import ModelBundle, content_hash


@dataclass(frozen=True, slots=True)
class PromotionDecision:
    """The outcome of evaluating one challenger against the policy.

    ``promote`` is true exactly when ``reasons`` is empty; each reason
    is one human-readable sentence naming the failed gate.
    """

    promote: bool
    reasons: tuple[str, ...]
    challenger_sha256: str
    challenger_generation: int

    def to_payload(self) -> dict[str, Any]:
        """Plain-type mapping for deterministic JSON artifacts."""
        return {
            "promote": self.promote,
            "reasons": list(self.reasons),
            "challenger_sha256": self.challenger_sha256,
            "challenger_generation": self.challenger_generation,
        }


@dataclass(frozen=True, slots=True)
class PromotionPolicy:
    """Thresholds a shadow run must clear before promotion.

    Attributes
    ----------
    min_samples:
        Minimum shadow duration, in samples scored by both bundles.
    min_agreement:
        Minimum verdict (severity) agreement rate over the shadow run.
    max_stage_delta:
        Maximum mean absolute stage disagreement where both sides
        produced a finite stage.
    require_lineage:
        Whether the challenger must name the champion as its parent
        with generation exactly one higher (disable only for manual,
        forced rollouts).
    """

    min_samples: int = 1024
    min_agreement: float = 0.95
    max_stage_delta: float = 0.25
    require_lineage: bool = True

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise LearnError("min_samples must be positive")
        if not 0.0 < self.min_agreement <= 1.0:
            raise LearnError("min_agreement must lie in (0, 1]")
        if self.max_stage_delta < 0.0:
            raise LearnError("max_stage_delta must be >= 0")

    def evaluate(self, report: DivergenceReport, champion: ModelBundle,
                 challenger: ModelBundle) -> PromotionDecision:
        """Judge one challenger; every failed gate becomes a reason."""
        champion_sha = content_hash(champion.to_payload())
        challenger_sha = content_hash(challenger.to_payload())
        if (report.champion_sha256 != champion_sha
                or report.challenger_sha256 != challenger_sha):
            raise LearnError(
                "divergence report was produced for different bundles "
                "than the ones under evaluation")
        reasons: list[str] = []
        if report.n_samples < self.min_samples:
            reasons.append(
                f"shadow run too short: {report.n_samples} samples, "
                f"policy requires {self.min_samples}")
        if report.agreement_rate < self.min_agreement:
            reasons.append(
                f"verdict agreement {report.agreement_rate:.4f} below "
                f"policy minimum {self.min_agreement:.4f}")
        if report.stage_delta_mean > self.max_stage_delta:
            reasons.append(
                f"mean stage delta {report.stage_delta_mean:.4f} above "
                f"policy maximum {self.max_stage_delta:.4f}")
        if self.require_lineage:
            if challenger.parent_sha256 != champion_sha:
                reasons.append(
                    "challenger lineage does not name the champion as "
                    "its parent")
            if challenger.generation != champion.generation + 1:
                reasons.append(
                    f"challenger generation {challenger.generation} is "
                    f"not champion generation {champion.generation} + 1")
        return PromotionDecision(
            promote=not reasons,
            reasons=tuple(reasons),
            challenger_sha256=challenger_sha,
            challenger_generation=challenger.generation,
        )
