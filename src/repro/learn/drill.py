"""The deterministic end-to-end drift drill: detect → refit → shadow → promote.

:class:`DriftDrill` is the continuous-learning loop's acceptance gate,
run by ``repro-learn drill`` and pinned by the tier-1 suite.  It
simulates two seed-pinned fleets — a *baseline* fleet the champion is
trained on, and a *drifted* fleet (same population, next seed, inlet
temperature raised by ``drift_delta_c``) — then walks the full loop
over the drifted stream:

1. a :class:`~repro.learn.drift.DriftDetector` warms its baselines on
   the baseline fleet's stream and raises alarms on the drifted one;
2. a :class:`~repro.learn.refit.SlidingWindow` reassembles the drifted
   stream and :func:`~repro.learn.refit.refit_challenger` retrains a
   challenger bundle against the champion's lineage;
3. a :class:`~repro.learn.shadow.ShadowScorer` scores the drifted
   stream with both bundles and freezes a divergence report;
4. a :class:`~repro.learn.promote.PromotionPolicy` issues the
   promotion decision.

Everything above is shard-independent, collected once by
:meth:`DriftDrill.prepare` into :meth:`DriftDrill.core_payload` — the
document that must be byte-identical across repeated runs.  The serving
half, :meth:`DriftDrill.run`, replays the same drifted stream through a
live :class:`~repro.serve.shard.ShardSet` with a mid-stream
:meth:`promote <repro.serve.shard.ShardSet.promote>` and asserts the
served verdict stream is byte-identical to offline scoring with a
:meth:`swap_bundle <repro.serve.scorer.StreamScorer.swap_bundle>` at
the same block — for any shard count.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Any

import numpy as np

from repro.core.pipeline import CharacterizationPipeline
from repro.data.dataset import DiskDataset
from repro.errors import LearnError
from repro.learn.drift import DriftAlarm, DriftDetector, DriftPolicy
from repro.learn.promote import PromotionDecision, PromotionPolicy
from repro.learn.refit import SlidingWindow, refit_challenger
from repro.learn.shadow import DivergenceReport, ShadowScorer
from repro.obs.observer import PipelineObserver, resolve_observer
from repro.serve.bundle import ModelBundle, build_bundle, content_hash
from repro.serve.scorer import StreamScorer
from repro.serve.shard import ShardSet
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet

#: One streamed block: ``(serials, hours, matrix)`` columns.
Block = tuple[list[str], list[int], np.ndarray]


def blocked_stream(dataset: DiskDataset, block_size: int) -> list[Block]:
    """Flatten a dataset into arrival-ordered ingest blocks.

    Samples are ordered by ``(hour, serial)`` — the order a fleet-wide
    collector would ship them — and cut into ``block_size`` chunks.
    Deterministic for a given dataset.
    """
    if block_size < 1:
        raise LearnError("block_size must be positive")
    samples: list[tuple[int, str, np.ndarray]] = []
    for profile in dataset.profiles:
        for hour, row in zip(profile.hours, profile.matrix):
            samples.append((int(hour), profile.serial, row))
    samples.sort(key=lambda sample: (sample[0], sample[1]))
    blocks: list[Block] = []
    for start in range(0, len(samples), block_size):
        chunk = samples[start:start + block_size]
        blocks.append((
            [serial for _hour, serial, _row in chunk],
            [hour for hour, _serial, _row in chunk],
            np.vstack([row for _hour, _serial, row in chunk]),
        ))
    return blocks


class DriftDrill:
    """Seeded drifting-fleet walk of the whole learning loop.

    Parameters
    ----------
    seed:
        Master seed: the baseline fleet uses it, the drifted fleet uses
        ``seed + 1``, and every pipeline/refit run is pinned to it.
    n_drives:
        Fleet size of both simulated populations.  The default keeps
        enough failed drives (~2%) for the taxonomy's three clusters
        while staying cheap enough for the test tier.
    block_size:
        Samples per streamed ingest block.
    drift_delta_c:
        Inlet-temperature rise injected into the drifted fleet — the
        drill's drift signal.
    drift_policy:
        Detector thresholds.  ``None`` derives one from the default
        :class:`~repro.learn.drift.DriftPolicy` whose warmup spans the
        whole baseline stream, so alarming starts exactly when the
        drifted fleet does.
    promotion_policy:
        Promotion gates.  ``None`` uses a drill-lenient policy (low
        agreement floor, no stage-delta cap) so the decision hinges on
        shadow duration and lineage — the deterministic parts — rather
        than on threshold tuning.
    """

    def __init__(self, *, seed: int = 11, n_drives: int = 360,
                 block_size: int = 256, drift_delta_c: float = 8.0,
                 drift_policy: DriftPolicy | None = None,
                 promotion_policy: PromotionPolicy | None = None,
                 observer: PipelineObserver | None = None) -> None:
        if n_drives < 100:
            raise LearnError(
                "drill fleets need >= 100 drives to populate the "
                "failure taxonomy")
        self.seed = int(seed)
        self.n_drives = int(n_drives)
        self.block_size = int(block_size)
        self.drift_delta_c = float(drift_delta_c)
        self._drift_policy = drift_policy
        self._promotion_policy = (
            promotion_policy if promotion_policy is not None
            else PromotionPolicy(min_samples=1024, min_agreement=0.5,
                                 max_stage_delta=1e6))
        self._observer = resolve_observer(observer)
        self._prepared = False
        self.champion: ModelBundle | None = None
        self.challenger: ModelBundle | None = None
        self.alarms: list[DriftAlarm] = []
        self.report: DivergenceReport | None = None
        self.decision: PromotionDecision | None = None
        self.blocks: list[Block] = []
        self.promote_at = 0
        self._offline_sha256 = ""

    # -- the shard-independent core ---------------------------------------

    def prepare(self) -> "DriftDrill":
        """Run detect → refit → shadow → decide once; returns self.

        Expensive (two fleet simulations, two full pipeline runs, one
        shadow pass) — run it once and reuse the instance for any
        number of :meth:`run` calls.
        """
        obs = self._observer
        with obs.span("drill-prepare", seed=self.seed,
                      n_drives=self.n_drives):
            baseline_config = FleetConfig(n_drives=self.n_drives,
                                          seed=self.seed)
            baseline = simulate_fleet(baseline_config)
            champion_report = CharacterizationPipeline(
                seed=self.seed).run(baseline.dataset)
            self.champion = build_bundle(champion_report, seed=self.seed)

            drifted_config = replace(
                baseline_config, seed=self.seed + 1,
                inlet_temperature_c=(baseline_config.inlet_temperature_c
                                     + self.drift_delta_c))
            drifted = simulate_fleet(drifted_config)
            baseline_blocks = blocked_stream(baseline.dataset,
                                             self.block_size)
            self.blocks = blocked_stream(drifted.dataset, self.block_size)
            self.promote_at = len(self.blocks) // 2

            policy = self._drift_policy
            if policy is None:
                baseline_samples = sum(len(serials) for serials, _h, _m
                                       in baseline_blocks)
                policy = DriftPolicy(warmup_samples=baseline_samples)
            detector = DriftDetector(self.champion.attributes,
                                     policy=policy, observer=obs)
            for _serials, _hours, matrix in baseline_blocks:
                detector.update(matrix)
            self.alarms = []
            for _serials, _hours, matrix in self.blocks:
                self.alarms.extend(detector.update(matrix))
            if not self.alarms:
                raise LearnError(
                    "drill produced no drift alarms — the injected "
                    "temperature shift should always trip the detector")

            window = SlidingWindow(self.champion.attributes)
            for serials, hours, matrix in self.blocks:
                window.add_block(serials, hours, matrix)
            window.mark_failed(drifted.failed_serials())
            self.challenger = refit_challenger(
                window.to_dataset(), self.champion, seed=self.seed,
                observer=obs)

            shadow = ShadowScorer(self.champion, self.challenger,
                                  observer=obs)
            for serials, hours, matrix in self.blocks:
                shadow.score_block(serials, hours, matrix)
            self.report = shadow.report()
            self.decision = self._promotion_policy.evaluate(
                self.report, self.champion, self.challenger)
            self._offline_sha256 = self._offline_verdict_sha()
        self._prepared = True
        return self

    def _offline_verdict_sha(self) -> str:
        """sha256 of the canonical verdict stream with a mid-stream swap.

        The offline reference for :meth:`run`: champion scores the
        first half, :meth:`StreamScorer.swap_bundle` applies the
        challenger at the promotion fence, the challenger scores the
        rest — one hash over every canonical verdict line in order.
        """
        assert self.champion is not None and self.challenger is not None
        scorer = StreamScorer(self.champion)
        digest = hashlib.sha256()
        for index, (serials, hours, matrix) in enumerate(self.blocks):
            if index == self.promote_at:
                scorer.swap_bundle(self.challenger)
            for line in scorer.score_block(serials, hours,
                                           matrix).to_json_lines():
                digest.update(line.encode("utf-8") + b"\n")
        return digest.hexdigest()

    def core_payload(self) -> dict[str, Any]:
        """The shard-independent drill document (byte-identical per seed)."""
        if not self._prepared:
            raise LearnError("drill.prepare() must run before core_payload")
        assert (self.champion is not None and self.challenger is not None
                and self.report is not None and self.decision is not None)
        return {
            "schema": 1,
            "seed": self.seed,
            "n_drives": self.n_drives,
            "block_size": self.block_size,
            "drift_delta_c": self.drift_delta_c,
            "n_blocks": len(self.blocks),
            "promote_at_block": self.promote_at,
            "champion_sha256": content_hash(self.champion.to_payload()),
            "challenger_sha256": content_hash(self.challenger.to_payload()),
            "champion_generation": self.champion.generation,
            "challenger_generation": self.challenger.generation,
            "alarms": [alarm.to_payload() for alarm in self.alarms],
            "divergence": self.report.to_payload(),
            "decision": self.decision.to_payload(),
            "verdict_sha256": self._offline_sha256,
        }

    # -- the serving half -------------------------------------------------

    def run(self, n_shards: int, *, backend: str = "thread",
            wal_dir: Any = None) -> dict[str, Any]:
        """Serve the drifted stream with a live mid-stream promotion.

        Feeds the first half of the blocks to a fresh
        :class:`~repro.serve.shard.ShardSet` under the champion,
        promotes the challenger, feeds the rest, and hashes the served
        canonical verdict stream.  Raises
        :class:`~repro.errors.LearnError` unless the hash equals the
        offline reference — the byte-identity contract across shard
        counts and live promotion.
        """
        if not self._prepared:
            raise LearnError("drill.prepare() must run before run()")
        assert self.champion is not None and self.challenger is not None
        digest = hashlib.sha256()
        receipts: list[dict[str, Any]] = []
        with ShardSet(self.champion, n_shards=n_shards, backend=backend,
                      wal_dir=wal_dir) as shards:
            for index, (serials, hours, matrix) in enumerate(self.blocks):
                if index == self.promote_at:
                    receipts = shards.promote(self.challenger)
                block = shards.submit_block(serials, hours, matrix,
                                            block_id=f"drill-{index}")
                for line in block.to_json_lines():
                    digest.update(line.encode("utf-8") + b"\n")
        served = digest.hexdigest()
        if served != self._offline_sha256:
            raise LearnError(
                f"served verdict stream diverged from offline scoring "
                f"({served[:12]}… vs {self._offline_sha256[:12]}…) at "
                f"n_shards={n_shards}")
        return {
            "n_shards": n_shards,
            "backend": backend,
            "verdict_sha256": served,
            "matches_offline": True,
            "promotion_receipts": receipts,
        }
