"""Registry of the SMART attributes used for failure characterization.

The paper starts from the 23 attributes reported by the drives, discards
those that are constant across the fleet, and keeps the ten normalized
health values plus two raw counters of Table I.  This module encodes that
table: each attribute's symbol, standard SMART id, kind (read/write vs
environmental), and value form (vendor health value vs raw counter).

The registry is the single source of truth for attribute ordering; every
matrix in the library stores columns in :data:`CHARACTERIZATION_ATTRIBUTES`
order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import UnknownAttributeError


class AttributeKind(enum.Enum):
    """Whether an attribute reflects read/write activity or the environment."""

    READ_WRITE = "read/write"
    ENVIRONMENTAL = "environmental"


class ValueForm(enum.Enum):
    """Which representation of the SMART attribute is recorded.

    ``HEALTH`` is the vendor-normalized one-byte health value (higher is
    healthier for every attribute in Table I); ``RAW`` is the six-byte raw
    counter read directly from the drive's sensors.
    """

    HEALTH = "health value"
    RAW = "raw data"


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """Description of one selected SMART attribute (one row of Table I).

    Attributes
    ----------
    symbol:
        Short symbol used throughout the paper and this library
        (e.g. ``"RRER"`` for Raw Read Error Rate).
    smart_id:
        The standard SMART attribute identifier reported by drives.
    name:
        Human-readable attribute name.
    kind:
        Read/write related or environmental.
    form:
        Vendor health value or raw counter.
    raw_min, raw_max:
        Plausible range of the underlying raw counter; used by the
        simulator's vendor-normalization curves and by property tests.
    higher_raw_is_worse:
        Direction of the raw counter: ``True`` when a growing raw value
        indicates deteriorating health (error counts), ``False`` when the
        raw value is neutral or grows with normal operation (e.g. power-on
        hours).
    description:
        One-line summary of what the attribute measures.
    """

    symbol: str
    smart_id: int
    name: str
    kind: AttributeKind
    form: ValueForm
    raw_min: float
    raw_max: float
    higher_raw_is_worse: bool
    description: str

    @property
    def is_read_write(self) -> bool:
        return self.kind is AttributeKind.READ_WRITE

    @property
    def is_environmental(self) -> bool:
        return self.kind is AttributeKind.ENVIRONMENTAL


def _rw(symbol: str, smart_id: int, name: str, form: ValueForm,
        raw_max: float, worse: bool, description: str) -> AttributeSpec:
    return AttributeSpec(
        symbol=symbol,
        smart_id=smart_id,
        name=name,
        kind=AttributeKind.READ_WRITE,
        form=form,
        raw_min=0.0,
        raw_max=raw_max,
        higher_raw_is_worse=worse,
        description=description,
    )


#: Table I of the paper, in its published order.  The first ten attributes
#: are read/write related, the last two environmental.
ATTRIBUTE_REGISTRY: tuple[AttributeSpec, ...] = (
    _rw("RRER", 1, "Raw Read Error Rate", ValueForm.HEALTH, 1e9, True,
        "Rate of hardware read errors while reading data from the media."),
    _rw("RSC", 5, "Reallocated Sectors Count", ValueForm.HEALTH, 4096.0, True,
        "Count of sectors remapped to the spare pool after write errors."),
    _rw("SER", 7, "Seek Error Rate", ValueForm.HEALTH, 1e9, True,
        "Rate of positioning errors of the read/write heads."),
    _rw("RUE", 187, "Reported Uncorrectable Errors", ValueForm.HEALTH, 65535.0, True,
        "Errors that could not be recovered using hardware ECC."),
    _rw("HFW", 189, "High Fly Writes", ValueForm.HEALTH, 65535.0, True,
        "Writes performed with the head flying outside its normal range."),
    _rw("HER", 195, "Hardware ECC Recovered", ValueForm.HEALTH, 1e9, True,
        "Errors corrected by the drive's hardware ECC logic."),
    _rw("CPSC", 197, "Current Pending Sector Count", ValueForm.HEALTH, 4096.0, True,
        "Unstable sectors waiting to be remapped or recovered."),
    _rw("SUT", 3, "Spin Up Time", ValueForm.HEALTH, 30000.0, True,
        "Average time (ms) for the spindle to reach operating speed."),
    _rw("R-RSC", 5, "Reallocated Sectors Count (raw)", ValueForm.RAW, 4096.0, True,
        "Raw counter of reallocated sectors; more sensitive than the health value."),
    _rw("R-CPSC", 197, "Current Pending Sector Count (raw)", ValueForm.RAW, 4096.0, True,
        "Raw counter of pending sectors; more sensitive than the health value."),
    AttributeSpec(
        symbol="POH",
        smart_id=9,
        name="Power On Hours",
        kind=AttributeKind.ENVIRONMENTAL,
        form=ValueForm.HEALTH,
        raw_min=0.0,
        raw_max=70080.0,
        higher_raw_is_worse=True,
        description="Total time the drive has been powered on (health value "
                    "decreases by one every 876 hours in the studied fleet).",
    ),
    AttributeSpec(
        symbol="TC",
        smart_id=194,
        name="Temperature Celsius",
        kind=AttributeKind.ENVIRONMENTAL,
        form=ValueForm.HEALTH,
        raw_min=15.0,
        raw_max=70.0,
        higher_raw_is_worse=True,
        description="Internal drive temperature in degrees Celsius.",
    ),
)

#: Symbols of all twelve characterization attributes, in Table I order.
CHARACTERIZATION_ATTRIBUTES: tuple[str, ...] = tuple(
    spec.symbol for spec in ATTRIBUTE_REGISTRY
)

#: Symbols of the ten read/write-related attributes used for categorization.
READ_WRITE_ATTRIBUTES: tuple[str, ...] = tuple(
    spec.symbol for spec in ATTRIBUTE_REGISTRY if spec.is_read_write
)

#: Symbols of the two environmental attributes.
ENVIRONMENTAL_ATTRIBUTES: tuple[str, ...] = tuple(
    spec.symbol for spec in ATTRIBUTE_REGISTRY if spec.is_environmental
)

_BY_SYMBOL: dict[str, AttributeSpec] = {
    spec.symbol: spec for spec in ATTRIBUTE_REGISTRY
}

_INDEX_BY_SYMBOL: dict[str, int] = {
    spec.symbol: index for index, spec in enumerate(ATTRIBUTE_REGISTRY)
}


def get_attribute(symbol: str) -> AttributeSpec:
    """Return the :class:`AttributeSpec` for ``symbol``.

    Raises
    ------
    UnknownAttributeError
        If ``symbol`` is not one of the twelve Table I attributes.
    """
    try:
        return _BY_SYMBOL[symbol]
    except KeyError:
        raise UnknownAttributeError(symbol) from None


def attribute_index(symbol: str) -> int:
    """Return the column index of ``symbol`` in Table I order."""
    try:
        return _INDEX_BY_SYMBOL[symbol]
    except KeyError:
        raise UnknownAttributeError(symbol) from None
