"""Codec for 48-bit SMART raw values and common vendor packings.

SMART attributes carry a six-byte little-endian *raw value*; public
datasets (including Backblaze's drive stats) publish it as a decimal
integer, and several vendors pack sub-fields into it:

* **Temperature (id 194)** — current temperature in the low byte, with
  the lifetime minimum and maximum packed in the higher words
  (``cur | min << 16 | max << 32`` on common Seagate firmware).
* **Seagate error rates (ids 1, 7, 195)** — the number of errors in the
  high 16 bits and the number of operations in the low 32 bits, which is
  why a freshly wiped counter shows huge "errors" to naive readers.
* **Power-on hours (id 9)** — plain hours on most firmware; some vendors
  report minutes or pack a millisecond remainder in the high word.

This module converts between integers, six-byte fields and the decoded
sub-fields so raw telemetry can be interpreted consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: The raw field is 48 bits wide.
RAW48_MAX = (1 << 48) - 1


def encode_raw48(value: int) -> bytes:
    """Pack an integer into the six-byte little-endian raw field."""
    if not 0 <= value <= RAW48_MAX:
        raise ReproError(f"raw value {value} outside the 48-bit range")
    return int(value).to_bytes(6, "little")


def decode_raw48(field: bytes) -> int:
    """Unpack a six-byte little-endian raw field."""
    if len(field) != 6:
        raise ReproError(f"raw field must be 6 bytes, got {len(field)}")
    return int.from_bytes(field, "little")


@dataclass(frozen=True, slots=True)
class TemperatureReading:
    """Decoded temperature attribute: current plus lifetime extremes."""

    current_c: int
    lifetime_min_c: int
    lifetime_max_c: int


def decode_temperature(raw: int) -> TemperatureReading:
    """Decode the packed temperature raw value (id 194).

    Firmware that does not track lifetime extremes leaves the upper
    words zero; they are then reported equal to the current reading.
    """
    _check_raw(raw)
    current = raw & 0xFF
    minimum = (raw >> 16) & 0xFF
    maximum = (raw >> 32) & 0xFF
    if minimum == 0 and maximum == 0:
        minimum = maximum = current
    return TemperatureReading(
        current_c=current,
        lifetime_min_c=minimum,
        lifetime_max_c=maximum,
    )


def encode_temperature(current_c: int, lifetime_min_c: int | None = None,
                       lifetime_max_c: int | None = None) -> int:
    """Pack a temperature reading into the raw value."""
    minimum = lifetime_min_c if lifetime_min_c is not None else current_c
    maximum = lifetime_max_c if lifetime_max_c is not None else current_c
    for name, value in (("current", current_c), ("min", minimum),
                        ("max", maximum)):
        if not 0 <= value <= 0xFF:
            raise ReproError(f"temperature {name} {value} outside 0..255")
    if not minimum <= current_c <= maximum:
        raise ReproError("temperature extremes must bracket the current value")
    return current_c | (minimum << 16) | (maximum << 32)


@dataclass(frozen=True, slots=True)
class SeagateErrorRate:
    """Decoded Seagate-style error-rate raw value."""

    errors: int
    operations: int

    @property
    def errors_per_million(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.errors / self.operations * 1.0e6


def decode_seagate_error_rate(raw: int) -> SeagateErrorRate:
    """Split the packed error/operation counters (ids 1, 7, 195)."""
    _check_raw(raw)
    return SeagateErrorRate(
        errors=(raw >> 32) & 0xFFFF,
        operations=raw & 0xFFFFFFFF,
    )


def encode_seagate_error_rate(errors: int, operations: int) -> int:
    """Pack error/operation counters into the raw value."""
    if not 0 <= errors <= 0xFFFF:
        raise ReproError(f"error count {errors} outside 16-bit range")
    if not 0 <= operations <= 0xFFFFFFFF:
        raise ReproError(f"operation count {operations} outside 32-bit range")
    return (errors << 32) | operations


def decode_power_on_hours(raw: int, *, unit: str = "hours") -> float:
    """Decode the power-on-time raw value (id 9).

    ``unit`` names the firmware's counting convention: ``"hours"``
    (most drives), ``"minutes"`` or ``"seconds"`` (some WD/SSD
    firmware).  The result is always hours.
    """
    _check_raw(raw)
    divisors = {"hours": 1.0, "minutes": 60.0, "seconds": 3600.0}
    try:
        divisor = divisors[unit]
    except KeyError:
        raise ReproError(f"unknown POH unit {unit!r}") from None
    # Some firmware packs a millisecond remainder in the high word; the
    # hour counter proper lives in the low 32 bits.
    return ((raw & 0xFFFFFFFF) / divisor)


def _check_raw(raw: int) -> None:
    if not 0 <= raw <= RAW48_MAX:
        raise ReproError(f"raw value {raw} outside the 48-bit range")
