"""Scalar view of a single hourly SMART sample.

The bulk of the library works on the matrix representation stored in
:class:`repro.smart.profile.HealthProfile`; :class:`SmartRecord` is the
per-sample object handed to user code that wants to inspect individual
observations (examples, reporting, loaders).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError, UnknownAttributeError
from repro.smart.attributes import CHARACTERIZATION_ATTRIBUTES, attribute_index


@dataclass(frozen=True, slots=True)
class SmartRecord:
    """One hourly SMART sample of one drive.

    Attributes
    ----------
    serial:
        Drive serial number the sample belongs to.
    hour:
        Hours since the start of the collection period.
    values:
        The twelve attribute values in Table I order.  Depending on the
        pipeline stage these are raw/vendor values or normalized values;
        the record itself is agnostic.
    attributes:
        Symbols naming the columns of ``values``.
    """

    serial: str
    hour: int
    values: tuple[float, ...]
    attributes: tuple[str, ...] = field(default=CHARACTERIZATION_ATTRIBUTES)

    def __post_init__(self) -> None:
        if len(self.values) != len(self.attributes):
            raise DatasetError(
                f"record for {self.serial!r} has {len(self.values)} values "
                f"for {len(self.attributes)} attributes"
            )

    def __getitem__(self, symbol: str) -> float:
        """Return the value of attribute ``symbol``."""
        try:
            position = self.attributes.index(symbol)
        except ValueError:
            raise UnknownAttributeError(symbol) from None
        return self.values[position]

    def as_array(self) -> np.ndarray:
        """Return the values as a 1-D ``float64`` array."""
        return np.asarray(self.values, dtype=np.float64)

    def as_dict(self) -> dict[str, float]:
        """Return a ``symbol -> value`` mapping."""
        return dict(zip(self.attributes, self.values))

    @classmethod
    def from_mapping(cls, serial: str, hour: int,
                     values: dict[str, float]) -> "SmartRecord":
        """Build a record from a ``symbol -> value`` mapping.

        The mapping must contain every Table I attribute; extra keys raise
        :class:`UnknownAttributeError` so typos are caught early.
        """
        for symbol in values:
            attribute_index(symbol)  # validates the symbol
        missing = [s for s in CHARACTERIZATION_ATTRIBUTES if s not in values]
        if missing:
            raise DatasetError(f"record is missing attributes: {missing}")
        ordered = tuple(float(values[s]) for s in CHARACTERIZATION_ATTRIBUTES)
        return cls(serial=serial, hour=hour, values=ordered)
