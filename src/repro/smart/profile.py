"""Per-drive health profiles: the matrix form of SMART time series.

A :class:`HealthProfile` stores one drive's hourly samples as a dense
``(n_samples, n_attributes)`` matrix with an accompanying ``hours`` vector.
Failed drives carry up to 20 days (480 samples) ending at the failure
record; good drives carry up to 7 days (168 samples), matching the
collection policy of the studied data center.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.smart.attributes import CHARACTERIZATION_ATTRIBUTES, attribute_index
from repro.smart.record import SmartRecord

#: Collection policy of the studied data center, in hours.
FAILED_OBSERVATION_HOURS = 480   # 20 days before the failure event
GOOD_OBSERVATION_HOURS = 168     # up to 7 days per good drive


@dataclass(slots=True)
class HealthProfile:
    """Hourly SMART time series of one drive.

    Attributes
    ----------
    serial:
        Drive serial number (unique within a dataset).
    hours:
        Strictly increasing sample timestamps, hours since collection start.
    matrix:
        ``(len(hours), 12)`` float matrix of attribute values in Table I
        order.
    failed:
        Whether the drive was replaced due to a failure.  For failed
        drives, the last row is the *failure record* — the final health
        state before replacement.
    attributes:
        Column symbols; defaults to the Table I ordering.
    """

    serial: str
    hours: np.ndarray
    matrix: np.ndarray
    failed: bool
    attributes: tuple[str, ...] = field(default=CHARACTERIZATION_ATTRIBUTES)

    def __post_init__(self) -> None:
        self.hours = np.asarray(self.hours, dtype=np.int64)
        self.matrix = np.asarray(self.matrix, dtype=np.float64)
        if self.hours.ndim != 1:
            raise DatasetError(f"profile {self.serial!r}: hours must be 1-D")
        if self.matrix.ndim != 2:
            raise DatasetError(f"profile {self.serial!r}: matrix must be 2-D")
        if self.matrix.shape[0] != self.hours.shape[0]:
            raise DatasetError(
                f"profile {self.serial!r}: {self.matrix.shape[0]} rows for "
                f"{self.hours.shape[0]} timestamps"
            )
        if self.matrix.shape[1] != len(self.attributes):
            raise DatasetError(
                f"profile {self.serial!r}: {self.matrix.shape[1]} columns for "
                f"{len(self.attributes)} attributes"
            )
        if self.hours.shape[0] == 0:
            raise DatasetError(f"profile {self.serial!r} has no samples")
        if np.any(np.diff(self.hours) <= 0):
            raise DatasetError(
                f"profile {self.serial!r}: hours must be strictly increasing"
            )

    def __len__(self) -> int:
        return int(self.hours.shape[0])

    @property
    def n_samples(self) -> int:
        return len(self)

    @property
    def duration_hours(self) -> int:
        """Span of the profile from first to last sample, inclusive."""
        return int(self.hours[-1] - self.hours[0]) + 1

    @property
    def failure_hour(self) -> int:
        """Timestamp of the failure record (failed drives only)."""
        if not self.failed:
            raise DatasetError(
                f"profile {self.serial!r} is a good drive; no failure hour"
            )
        return int(self.hours[-1])

    def failure_record(self) -> np.ndarray:
        """Return the last recorded health state of a failed drive."""
        if not self.failed:
            raise DatasetError(
                f"profile {self.serial!r} is a good drive; no failure record"
            )
        return self.matrix[-1].copy()

    def column(self, symbol: str) -> np.ndarray:
        """Return the time series of attribute ``symbol``."""
        if self.attributes == CHARACTERIZATION_ATTRIBUTES:
            position = attribute_index(symbol)
        else:
            try:
                position = self.attributes.index(symbol)
            except ValueError:
                raise DatasetError(
                    f"profile {self.serial!r} has no attribute {symbol!r}"
                ) from None
        return self.matrix[:, position].copy()

    def last(self, n_samples: int) -> "HealthProfile":
        """Return a profile truncated to the final ``n_samples`` samples."""
        if n_samples <= 0:
            raise DatasetError("n_samples must be positive")
        return HealthProfile(
            serial=self.serial,
            hours=self.hours[-n_samples:].copy(),
            matrix=self.matrix[-n_samples:].copy(),
            failed=self.failed,
            attributes=self.attributes,
        )

    def hours_before_failure(self) -> np.ndarray:
        """Return, per sample, the number of hours before the failure event."""
        if not self.failed:
            raise DatasetError(
                f"profile {self.serial!r} is a good drive; no failure event"
            )
        return (self.hours[-1] - self.hours).astype(np.int64)

    def record_at(self, index: int) -> SmartRecord:
        """Return sample ``index`` as a :class:`SmartRecord`."""
        row = self.matrix[index]
        return SmartRecord(
            serial=self.serial,
            hour=int(self.hours[index]),
            values=tuple(float(v) for v in row),
            attributes=self.attributes,
        )

    def records(self) -> list[SmartRecord]:
        """Return all samples as :class:`SmartRecord` objects."""
        return [self.record_at(i) for i in range(len(self))]

    def with_matrix(self, matrix: np.ndarray) -> "HealthProfile":
        """Return a copy of this profile with ``matrix`` substituted.

        Used by normalization passes that rescale values but keep the
        temporal structure.
        """
        return HealthProfile(
            serial=self.serial,
            hours=self.hours.copy(),
            matrix=matrix,
            failed=self.failed,
            attributes=self.attributes,
        )
