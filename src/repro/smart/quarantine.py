"""Typed quarantine verdicts for unusable telemetry.

When ingest meets a record or a drive profile it cannot use, the
resilient path does not raise — it isolates the offender with a *typed
reason* so the run continues and the report can say exactly what was
excluded and why.  This module defines those reasons and the two
quarantine record shapes: per-sample and per-drive.

The reasons mirror how SMART collection fails in the field (missing
values, sensor glitches, duplicated or re-ordered uploads, profiles cut
short), which is also exactly the fault taxonomy
:mod:`repro.faults` knows how to inject.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class QuarantineReason(enum.Enum):
    """Why a sample or drive was excluded from analysis."""

    #: A row failed CSV-level parsing (wrong field count, bad number).
    MALFORMED_ROW = "malformed row"
    #: A sample holds NaN/Inf values (sensor blackout or glitch).
    NON_FINITE_VALUES = "non-finite values"
    #: A sample's value is wildly outside the fleet's plausible range.
    OUTLIER_VALUE = "outlier value"
    #: A sample repeats an already-seen timestamp for the same drive.
    DUPLICATE_TIMESTAMP = "duplicate timestamp"
    #: A drive's rows carried contradictory failed/good labels.
    INCONSISTENT_LABEL = "inconsistent failure label"
    #: A drive repeats a serial number already ingested.
    DUPLICATE_SERIAL = "duplicate serial"
    #: A drive's columns do not match the rest of the fleet.
    MISMATCHED_ATTRIBUTES = "mismatched attribute columns"
    #: A drive profile carries no samples at all.
    EMPTY_PROFILE = "empty profile"
    #: A drive profile keeps fewer than 2 usable samples — too short to
    #: normalize, window or characterize.
    TOO_FEW_RECORDS = "too few records"
    #: A drive profile failed strict validation for any other reason.
    MALFORMED_PROFILE = "malformed profile"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class QuarantinedSample:
    """One excluded sample: which drive, which hour, and why."""

    serial: str
    hour: int
    reason: QuarantineReason

    def describe(self) -> str:
        return f"{self.serial}@{self.hour}h: {self.reason}"


@dataclass(frozen=True, slots=True)
class QuarantinedDrive:
    """One excluded drive profile: who, why, and a human-readable detail."""

    serial: str
    reason: QuarantineReason
    detail: str = ""

    def describe(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.serial}: {self.reason}{suffix}"
