"""SMART attribute model.

This package implements the paper's Table I: the twelve disk health
attributes selected for failure characterization, the semantics of raw
sensor values versus vendor-normalized one-byte health values, and the
min-max normalization of Eq. (1) used throughout the analysis.
"""

from repro.smart.attributes import (
    ATTRIBUTE_REGISTRY,
    CHARACTERIZATION_ATTRIBUTES,
    ENVIRONMENTAL_ATTRIBUTES,
    READ_WRITE_ATTRIBUTES,
    AttributeKind,
    AttributeSpec,
    ValueForm,
    attribute_index,
    get_attribute,
)
from repro.smart.normalization import MinMaxNormalizer, VendorCurve, vendor_curve_for
from repro.smart.profile import HealthProfile
from repro.smart.quarantine import (
    QuarantinedDrive,
    QuarantinedSample,
    QuarantineReason,
)
from repro.smart.record import SmartRecord

__all__ = [
    "ATTRIBUTE_REGISTRY",
    "CHARACTERIZATION_ATTRIBUTES",
    "ENVIRONMENTAL_ATTRIBUTES",
    "READ_WRITE_ATTRIBUTES",
    "AttributeKind",
    "AttributeSpec",
    "ValueForm",
    "attribute_index",
    "get_attribute",
    "MinMaxNormalizer",
    "VendorCurve",
    "vendor_curve_for",
    "HealthProfile",
    "QuarantinedDrive",
    "QuarantinedSample",
    "QuarantineReason",
    "SmartRecord",
]
