"""Value normalization: vendor health curves and the paper's Eq. (1).

Two distinct normalizations exist in the SMART world and both appear in
the paper:

* **Vendor normalization** — the drive firmware folds each raw counter
  into a one-byte *health value* (conventionally starting near 100 and
  decreasing as the attribute deteriorates).  The paper notes the exact
  mapping is vendor-dependent; :class:`VendorCurve` models the common
  saturating-decay shape and is what the fleet simulator uses to produce
  health values from its raw counters.

* **Dataset normalization (Eq. 1)** — for a fair comparison between
  attributes the paper rescales every attribute to ``[-1, 1]`` with
  ``x_norm = 2 (x - x_min) / (x_max - x_min) - 1`` where the extrema are
  taken over the whole dataset.  :class:`MinMaxNormalizer` implements
  exactly this, including the fit/transform split needed so that failed
  and good drives are scaled with the same extrema.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NormalizationError
from repro.smart.attributes import AttributeSpec, ValueForm


@dataclass(frozen=True, slots=True)
class VendorCurve:
    """Mapping from a raw SMART counter to a one-byte health value.

    The curve follows the shape real firmware uses: the health value
    starts at ``best`` and decays toward ``worst`` as the raw counter
    grows, saturating once the counter reaches ``raw_scale``:

    ``health = worst + (best - worst) * max(0, 1 - raw / raw_scale) ** shape``

    ``shape`` > 1 makes early raw growth cheap (firmware tolerates a few
    errors), ``shape`` < 1 makes the health value drop quickly.
    """

    best: float = 100.0
    worst: float = 1.0
    raw_scale: float = 1000.0
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.raw_scale <= 0:
            raise NormalizationError("raw_scale must be positive")
        if self.shape <= 0:
            raise NormalizationError("shape must be positive")
        if self.best <= self.worst:
            raise NormalizationError("best health value must exceed worst")

    def health_value(self, raw: np.ndarray | float) -> np.ndarray | float:
        """Return the vendor health value(s) for raw counter value(s)."""
        raw_arr = np.asarray(raw, dtype=np.float64)
        fraction = np.clip(1.0 - raw_arr / self.raw_scale, 0.0, 1.0)
        health = self.worst + (self.best - self.worst) * fraction ** self.shape
        if np.isscalar(raw):
            return float(health)
        return health


def vendor_curve_for(spec: AttributeSpec) -> VendorCurve:
    """Return a plausible vendor curve for ``spec``.

    Raw-form attributes get an identity-like steep curve (they are reported
    raw, the curve only matters for the paired health value); error-count
    attributes saturate at a fraction of their raw range because firmware
    flags trouble well before the counter ceiling.
    """
    if spec.form is ValueForm.RAW:
        return VendorCurve(raw_scale=spec.raw_max, shape=1.0)
    span = spec.raw_max - spec.raw_min
    if span <= 0:
        raise NormalizationError(
            f"attribute {spec.symbol} has a degenerate raw range"
        )
    # Health value should bottom out around a tenth of the raw range for
    # counting attributes, mirroring conservative firmware thresholds.
    scale = span * (0.1 if spec.higher_raw_is_worse else 1.0)
    return VendorCurve(raw_scale=scale, shape=1.5)


class MinMaxNormalizer:
    """Per-column min-max scaler to ``[-1, 1]`` (Eq. 1 of the paper).

    Columns that are constant in the fitting data carry no information for
    characterization (the paper filters such attributes out); this scaler
    maps them to ``0.0`` and reports them via :attr:`constant_columns` so
    callers can drop them explicitly.
    """

    def __init__(self) -> None:
        self._minima: np.ndarray | None = None
        self._maxima: np.ndarray | None = None

    @classmethod
    def from_extrema(cls, minima: np.ndarray,
                     maxima: np.ndarray) -> "MinMaxNormalizer":
        """Reconstruct a fitted scaler from stored extrema.

        The round-trip counterpart of :attr:`minima` / :attr:`maxima`,
        used by the on-disk dataset cache to restore the exact scaler a
        cached normalized dataset was produced with.
        """
        minima = np.asarray(minima, dtype=np.float64).ravel()
        maxima = np.asarray(maxima, dtype=np.float64).ravel()
        if minima.shape != maxima.shape:
            raise NormalizationError(
                f"extrema misaligned: {minima.shape} vs {maxima.shape}"
            )
        if minima.shape[0] == 0:
            raise NormalizationError("extrema must cover at least one column")
        if not (np.all(np.isfinite(minima)) and np.all(np.isfinite(maxima))):
            raise NormalizationError("extrema contain non-finite values")
        if np.any(maxima < minima):
            raise NormalizationError("maxima must not be below minima")
        scaler = cls()
        scaler._minima = minima.copy()
        scaler._maxima = maxima.copy()
        return scaler

    @property
    def is_fitted(self) -> bool:
        return self._minima is not None

    @property
    def minima(self) -> np.ndarray:
        self._require_fitted()
        assert self._minima is not None
        return self._minima.copy()

    @property
    def maxima(self) -> np.ndarray:
        self._require_fitted()
        assert self._maxima is not None
        return self._maxima.copy()

    @property
    def constant_columns(self) -> np.ndarray:
        """Boolean mask of columns whose fitted min equals their max."""
        self._require_fitted()
        assert self._minima is not None and self._maxima is not None
        return self._maxima == self._minima

    def fit(self, matrix: np.ndarray) -> "MinMaxNormalizer":
        """Record per-column extrema of ``matrix`` (n_samples x n_columns)."""
        data = _as_2d(matrix)
        if data.shape[0] == 0:
            raise NormalizationError("cannot fit a normalizer on zero samples")
        if not np.all(np.isfinite(data)):
            raise NormalizationError("normalizer input contains non-finite values")
        self._minima = data.min(axis=0)
        self._maxima = data.max(axis=0)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply Eq. (1) with the fitted extrema.

        Values outside the fitted range (possible when transforming data
        not seen at fit time) are clipped to ``[-1, 1]`` so downstream
        distance computations stay bounded.
        """
        self._require_fitted()
        assert self._minima is not None and self._maxima is not None
        data = _as_2d(matrix)
        if data.shape[1] != self._minima.shape[0]:
            raise NormalizationError(
                f"expected {self._minima.shape[0]} columns, got {data.shape[1]}"
            )
        span = self._maxima - self._minima
        safe_span = np.where(span == 0, 1.0, span)
        scaled = 2.0 * (data - self._minima) / safe_span - 1.0
        scaled = np.where(span == 0, 0.0, scaled)
        return np.clip(scaled, -1.0, 1.0)

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    def inverse_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Map normalized values back to the original scale.

        Constant columns cannot be inverted from the normalized ``0.0``;
        they are restored to their (single) fitted value.
        """
        self._require_fitted()
        assert self._minima is not None and self._maxima is not None
        data = _as_2d(matrix)
        if data.shape[1] != self._minima.shape[0]:
            raise NormalizationError(
                f"expected {self._minima.shape[0]} columns, got {data.shape[1]}"
            )
        span = self._maxima - self._minima
        return (data + 1.0) / 2.0 * span + self._minima

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NormalizationError("normalizer used before fit()")


def _as_2d(matrix: np.ndarray) -> np.ndarray:
    data = np.asarray(matrix, dtype=np.float64)
    if data.ndim == 1:
        data = data.reshape(1, -1)
    if data.ndim != 2:
        raise NormalizationError(f"expected a 2-D matrix, got ndim={data.ndim}")
    return data
