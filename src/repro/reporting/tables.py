"""ASCII table rendering."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError


def format_float(value: float, precision: int = 3) -> str:
    """Format a float compactly, keeping sign alignment for small values."""
    if value != value:  # NaN
        return "nan"
    return f"{value:+.{precision}f}" if abs(value) < 10 else f"{value:.{precision}f}"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                *, title: str | None = None) -> str:
    """Render a list of rows as a boxed ASCII table.

    Cells are stringified with ``str``; numeric alignment is right, text
    alignment left.
    """
    if not headers:
        raise ReproError("a table needs at least one column")
    text_rows = [[_cell(value) for value in row] for row in rows]
    for index, row in enumerate(text_rows):
        if len(row) != len(headers):
            raise ReproError(
                f"row {index} has {len(row)} cells for {len(headers)} columns"
            )
    widths = [len(str(h)) for h in headers]
    for row in text_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, width in zip(cells, widths):
            if _is_numeric(cell):
                parts.append(cell.rjust(width))
            else:
                parts.append(cell.ljust(width))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row([str(h) for h in headers]))
    lines.append(separator)
    for row in text_rows:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
