"""Aggregate rendering of experiment results.

Used by the ``repro-experiments`` CLI and by callers that want one text
document covering a set of regenerated artifacts (e.g. for archiving a
reproduction run next to its EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.errors import ReproError


def render_results(results: Iterable[object], *,
                   title: str | None = None) -> str:
    """Join experiment results into one readable document."""
    sections = [str(result) for result in results]
    if not sections:
        raise ReproError("render_results needs at least one result")
    parts = []
    if title:
        rule = "=" * len(title)
        parts.append(f"{rule}\n{title}\n{rule}")
    parts.extend(sections)
    return "\n\n".join(parts) + "\n"


def save_results(results: Iterable[object], path: str | Path, *,
                 title: str | None = None) -> None:
    """Write :func:`render_results` output to ``path``."""
    Path(path).write_text(render_results(results, title=title))
