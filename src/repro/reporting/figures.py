"""ASCII figure rendering: histograms, line series, scatter plots, boxes."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.stats.summary import BoxSummary


def ascii_histogram(values: np.ndarray, *, n_bins: int = 10,
                    width: int = 50, title: str | None = None,
                    bin_labels: Sequence[str] | None = None) -> str:
    """Horizontal-bar histogram (Figure 1 style)."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.shape[0] == 0:
        raise ReproError("histogram needs data")
    counts, edges = np.histogram(values, bins=n_bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for index, count in enumerate(counts):
        if bin_labels is not None:
            label = bin_labels[index]
        else:
            label = f"[{edges[index]:8.1f}, {edges[index + 1]:8.1f})"
        bar = "#" * max(0, round(width * count / peak))
        lines.append(f"{label} |{bar} {count}")
    return "\n".join(lines)


def ascii_series(x: np.ndarray, series: dict[str, np.ndarray], *,
                 height: int = 16, width: int = 72,
                 title: str | None = None) -> str:
    """Plot one or more y-series over a shared x-axis on a character grid.

    Each series gets the first letter of its (unique-prefixed) name as its
    marker.  NaN values are skipped.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if not series:
        raise ReproError("ascii_series needs at least one series")
    stacked = []
    for values in series.values():
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape != x.shape:
            raise ReproError("every series must align with x")
        stacked.append(values)
    finite = np.concatenate([v[np.isfinite(v)] for v in stacked])
    if finite.shape[0] == 0:
        raise ReproError("no finite values to plot")
    y_low, y_high = float(finite.min()), float(finite.max())
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = float(x.min()), float(x.max())
    if x_high == x_low:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = _unique_markers(list(series))
    for (name, values), marker in zip(series.items(), markers):
        values = np.asarray(values, dtype=np.float64).ravel()
        for xi, yi in zip(x, values):
            if not np.isfinite(yi):
                continue
            column = round((xi - x_low) / (x_high - x_low) * (width - 1))
            row = round((y_high - yi) / (y_high - y_low) * (height - 1))
            grid[row][column] = marker

    lines = [title] if title else []
    lines.append(f"y: {y_low:.3g} .. {y_high:.3g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_low:.3g} .. {x_high:.3g}")
    legend = ", ".join(
        f"{marker}={name}" for (name, marker) in zip(series, markers)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def ascii_scatter(points: dict[str, tuple[np.ndarray, np.ndarray]], *,
                  height: int = 20, width: int = 72,
                  title: str | None = None) -> str:
    """Scatter plot of labeled point groups (Figure 4 style)."""
    if not points:
        raise ReproError("ascii_scatter needs at least one group")
    all_x = np.concatenate([np.asarray(x, dtype=np.float64).ravel()
                            for x, _ in points.values()])
    all_y = np.concatenate([np.asarray(y, dtype=np.float64).ravel()
                            for _, y in points.values()])
    if all_x.shape[0] == 0:
        raise ReproError("no points to plot")
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = _unique_markers(list(points))
    for (name, (xs, ys)), marker in zip(points.items(), markers):
        xs = np.asarray(xs, dtype=np.float64).ravel()
        ys = np.asarray(ys, dtype=np.float64).ravel()
        for xi, yi in zip(xs, ys):
            column = round((xi - x_low) / (x_high - x_low) * (width - 1))
            row = round((y_high - yi) / (y_high - y_low) * (height - 1))
            grid[row][column] = marker

    lines = [title] if title else []
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    legend = ", ".join(
        f"{marker}={name}" for (name, marker) in zip(points, markers)
    )
    lines.append(f"x: {x_low:.3g} .. {x_high:.3g}   y: {y_low:.3g} .. {y_high:.3g}")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def render_box_rows(summaries: dict[str, BoxSummary], *, width: int = 48,
                    title: str | None = None) -> str:
    """Render box summaries as aligned whisker diagrams (Figure 2 style).

    All boxes share one value axis spanning the collective min..max.
    """
    if not summaries:
        raise ReproError("render_box_rows needs at least one summary")
    low = min(s.minimum for s in summaries.values())
    high = max(s.maximum for s in summaries.values())
    if high == low:
        high = low + 1.0
    label_width = max(len(name) for name in summaries)

    def column(value: float) -> int:
        return round((value - low) / (high - low) * (width - 1))

    lines = [title] if title else []
    lines.append(f"{'':{label_width}}  {low:.3g} .. {high:.3g}")
    for name, summary in summaries.items():
        row = [" "] * width
        for position in range(column(summary.lower_whisker),
                              column(summary.upper_whisker) + 1):
            row[position] = "-"
        for position in range(column(summary.first_quartile),
                              column(summary.third_quartile) + 1):
            row[position] = "="
        row[column(summary.median)] = "|"
        lines.append(f"{name:{label_width}}  {''.join(row)}")
    return "\n".join(lines)


def _unique_markers(names: list[str]) -> list[str]:
    markers = []
    used: set[str] = set()
    fallback = iter("*#@%&$!?^~123456789")
    for name in names:
        candidate = name[0].upper() if name else "*"
        while candidate in used:
            candidate = next(fallback)
        used.add(candidate)
        markers.append(candidate)
    return markers
