"""Plain-text rendering of tables and figures.

The experiment harness regenerates every table and figure of the paper;
these helpers render them as ASCII so results are inspectable in a
terminal and comparable in golden-output tests.
"""

from repro.reporting.figures import (
    ascii_histogram,
    ascii_scatter,
    ascii_series,
    render_box_rows,
)
from repro.reporting.report import render_results, save_results
from repro.reporting.tables import ascii_table, format_float

__all__ = [
    "render_results",
    "save_results",
    "ascii_histogram",
    "ascii_scatter",
    "ascii_series",
    "render_box_rows",
    "ascii_table",
    "format_float",
]
