"""``repro-characterize`` — run the pipeline on a dataset from the shell.

The operator-facing entry point: point it at telemetry (native CSV or
Backblaze drive-stats files) or let it simulate a fleet, and it runs the
full characterization pipeline, prints the taxonomy / signature /
prediction summaries and optionally writes the machine-readable JSON
report.

Examples::

   repro-characterize --simulate 4000 --seed 42
   repro-characterize --csv fleet.csv --json report.json
   repro-characterize --backblaze 'data_Q1_2015/*.csv' --model ST4000DM000
"""

from __future__ import annotations

import argparse
import glob
import sys

from repro.core.pipeline import CharacterizationPipeline, CharacterizationReport
from repro.core.serialize import save_report_json
from repro.core.taxonomy import FailureType
from repro.data.backblaze import load_backblaze_csv
from repro.data.dataset import DiskDataset
from repro.data.loader import load_csv
from repro.errors import ReproError
from repro.reporting.tables import ascii_table
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-characterize",
        description="Categorize disk failures and derive degradation "
                    "signatures from SMART telemetry.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--simulate", type=int, metavar="N_DRIVES",
                        help="simulate a fleet of this size")
    source.add_argument("--csv", metavar="PATH",
                        help="load a native-format CSV dataset")
    source.add_argument("--backblaze", metavar="GLOB",
                        help="load Backblaze drive-stats daily CSVs")
    parser.add_argument("--model", default=None,
                        help="drive-model filter for Backblaze input")
    parser.add_argument("--seed", type=int, default=42,
                        help="seed for simulation and the pipeline")
    parser.add_argument("--clusters", type=int, default=3,
                        help="failure-group count (0 = elbow selection)")
    parser.add_argument("--no-prediction", action="store_true",
                        help="skip the Table III predictors")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable report here")
    return parser


def load_dataset(args: argparse.Namespace) -> DiskDataset:
    if args.simulate is not None:
        fleet = simulate_fleet(FleetConfig(n_drives=args.simulate,
                                           seed=args.seed))
        return fleet.dataset
    if args.csv is not None:
        return load_csv(args.csv)
    paths = sorted(glob.glob(args.backblaze))
    if not paths:
        raise ReproError(f"no files match {args.backblaze!r}")
    return load_backblaze_csv(paths, model=args.model)


def render_report(report: CharacterizationReport) -> str:
    sections = []
    taxonomy_rows = []
    for failure_type in FailureType:
        summary = report.group_summaries.get(failure_type)
        if summary is None:
            continue
        taxonomy_rows.append((
            f"Group {failure_type.paper_group_number}",
            failure_type.value,
            summary.n_drives,
            f"{summary.median_window:.0f} h",
            f"(t/d)^{summary.consensus_order} - 1",
            "/".join(summary.top_correlated),
        ))
    sections.append(ascii_table(
        ("group", "type", "drives", "median window", "signature",
         "dominant attrs"),
        taxonomy_rows,
        title="Failure taxonomy and degradation signatures",
    ))

    if report.predictions:
        prediction_rows = [
            (f"Group {t.paper_group_number}", p.window, f"{p.rmse:.3f}",
             f"{p.error_rate:.1%}")
            for t, p in report.predictions.items()
        ]
        sections.append(ascii_table(
            ("group", "d", "RMSE", "error rate"), prediction_rows,
            title="Degradation prediction quality",
        ))
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        dataset = load_dataset(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    summary = dataset.summary()
    print(f"loaded {summary.n_drives} drives "
          f"({summary.n_failed} failed, {summary.n_good} good)")
    if summary.n_failed < 3:
        print("error: need at least 3 failed drives to categorize",
              file=sys.stderr)
        return 1

    pipeline = CharacterizationPipeline(
        n_clusters=args.clusters if args.clusters > 0 else None,
        run_prediction=not args.no_prediction,
        seed=args.seed,
    )
    try:
        report = pipeline.run(dataset)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print()
    print(render_report(report))
    if args.json:
        save_report_json(report, args.json)
        print(f"\nreport written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
