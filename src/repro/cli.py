"""``repro-characterize`` — run the pipeline on a dataset from the shell.

The operator-facing entry point: point it at telemetry (native CSV or
Backblaze drive-stats files) or let it simulate a fleet, and it runs the
full characterization pipeline, prints the taxonomy / signature /
prediction summaries and optionally writes the machine-readable JSON
report.

Examples::

   repro-characterize --simulate 4000 --seed 42
   repro-characterize --csv fleet.csv --json report.json
   repro-characterize --backblaze 'data_Q1_2015/*.csv' --model ST4000DM000
   repro-characterize --simulate 500 -v --trace trace.json --metrics metrics.json
   repro-characterize --csv fleet.csv --jobs 4 --cache-dir /tmp/repro-cache
"""

from __future__ import annotations

import argparse
import glob
import sys
from pathlib import Path

from repro.core.pipeline import CharacterizationPipeline, CharacterizationReport
from repro.core.serialize import save_report_json
from repro.core.taxonomy import FailureType
from repro.data.backblaze import load_backblaze_csv
from repro.data.cache import DatasetCache
from repro.data.dataset import DiskDataset
from repro.data.loader import load_csv
from repro.errors import ReproError
from repro.obs import logging as obs_logging
from repro.obs.observer import (
    NULL_OBSERVER,
    PipelineObserver,
    TelemetryObserver,
)
from repro.reporting.tables import ascii_table
from repro.sim.config import FleetConfig
from repro.sim.fleet import simulate_fleet


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-characterize",
        description="Categorize disk failures and derive degradation "
                    "signatures from SMART telemetry.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--simulate", type=int, metavar="N_DRIVES",
                        help="simulate a fleet of this size")
    source.add_argument("--csv", metavar="PATH",
                        help="load a native-format CSV dataset")
    source.add_argument("--backblaze", metavar="GLOB",
                        help="load Backblaze drive-stats daily CSVs")
    parser.add_argument("--model", default=None,
                        help="drive-model filter for Backblaze input")
    parser.add_argument("--seed", type=int, default=42,
                        help="seed for simulation and the pipeline")
    parser.add_argument("--clusters", type=int, default=3,
                        help="failure-group count (0 = elbow selection)")
    parser.add_argument("--no-prediction", action="store_true",
                        help="skip the Table III predictors")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable report here")
    performance = parser.add_argument_group("performance")
    performance.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="workers for per-drive stages "
                                  "(1 = serial, 0 = all CPUs); any value "
                                  "produces byte-identical reports")
    performance.add_argument("--no-cache", action="store_true",
                             help="skip the on-disk dataset cache")
    performance.add_argument("--cache-dir", metavar="PATH", default=None,
                             help="dataset cache directory (default: "
                                  "$REPRO_CACHE_DIR or ~/.cache/repro)")
    telemetry = parser.add_argument_group("telemetry")
    telemetry.add_argument("-v", "--verbose", action="count", default=0,
                           help="log pipeline progress (-vv for debug)")
    telemetry.add_argument("--log-json", action="store_true",
                           help="emit log records as JSON lines")
    telemetry.add_argument("--trace", metavar="PATH", default=None,
                           help="write the stage span tree here as JSON")
    telemetry.add_argument("--metrics", metavar="PATH", default=None,
                           help="write the metrics snapshot here as JSON")
    return parser


def load_dataset(args: argparse.Namespace,
                 observer: PipelineObserver) -> DiskDataset:
    if args.simulate is not None:
        fleet = simulate_fleet(FleetConfig(n_drives=args.simulate,
                                           seed=args.seed),
                               observer=observer,
                               n_jobs=getattr(args, "jobs", 1))
        return fleet.dataset
    if args.csv is not None:
        return load_csv(args.csv, observer=observer)
    paths = sorted(glob.glob(args.backblaze))
    if not paths:
        raise ReproError(f"no files match {args.backblaze!r}")
    return load_backblaze_csv(paths, model=args.model, observer=observer)


def render_report(report: CharacterizationReport) -> str:
    sections = []
    taxonomy_rows = []
    for failure_type in FailureType:
        summary = report.group_summaries.get(failure_type)
        if summary is None:
            continue
        taxonomy_rows.append((
            f"Group {failure_type.paper_group_number}",
            failure_type.value,
            summary.n_drives,
            f"{summary.median_window:.0f} h",
            f"(t/d)^{summary.consensus_order} - 1",
            "/".join(summary.top_correlated),
        ))
    sections.append(ascii_table(
        ("group", "type", "drives", "median window", "signature",
         "dominant attrs"),
        taxonomy_rows,
        title="Failure taxonomy and degradation signatures",
    ))

    if report.predictions:
        prediction_rows = [
            (f"Group {t.paper_group_number}", p.window, f"{p.rmse:.3f}",
             f"{p.error_rate:.1%}")
            for t, p in report.predictions.items()
        ]
        sections.append(ascii_table(
            ("group", "d", "RMSE", "error rate"), prediction_rows,
            title="Degradation prediction quality",
        ))
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """Entry point: any library or I/O failure exits 2 with one line."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def run(args: argparse.Namespace) -> int:
    obs_logging.configure(
        level=obs_logging.verbosity_to_level(args.verbose),
        json_mode=args.log_json,
    )
    collect_telemetry = bool(args.verbose or args.log_json
                             or args.trace or args.metrics)
    observer = TelemetryObserver() if collect_telemetry else NULL_OBSERVER

    dataset = load_dataset(args, observer)
    summary = dataset.summary()
    print(f"loaded {summary.n_drives} drives "
          f"({summary.n_failed} failed, {summary.n_good} good)")
    if summary.n_failed < 3:
        raise ReproError("need at least 3 failed drives to categorize")

    cache = None
    if not args.no_cache:
        cache = DatasetCache(args.cache_dir, observer=observer)
    pipeline = CharacterizationPipeline(
        n_clusters=args.clusters if args.clusters > 0 else None,
        run_prediction=not args.no_prediction,
        seed=args.seed,
        n_jobs=args.jobs,
        cache=cache,
        observer=observer,
    )
    report = pipeline.run(dataset)
    print()
    print(render_report(report))
    if args.json:
        telemetry = (observer.telemetry_section()
                     if isinstance(observer, TelemetryObserver) else None)
        save_report_json(report, args.json, telemetry=telemetry)
        print(f"\nreport written to {args.json}")
    if args.trace:
        observer.tracer.save_json(args.trace)
        print(f"trace written to {args.trace}")
    if args.metrics:
        Path(args.metrics).write_text(observer.metrics.to_json())
        print(f"metrics written to {args.metrics}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
